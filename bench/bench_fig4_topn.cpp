// Fig. 4: speedup of the top-n parameter settings over the optimum — the
// near-optimal plateau that justifies approximation. Paper: top-10/50/100
// retain 96.7% / 92.4% / 90.1% of optimal performance on average.

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 4: speedup of the top-n settings over the optimum "
               "(A100) ===\n\n";

  TextTable table({"stencil", "top-10", "top-50", "top-100"});
  double sums[3] = {0.0, 0.0, 0.0};
  const std::size_t ns[3] = {10, 50, 100};
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<double> times;
    times.reserve(entry.universe.size());
    for (std::size_t i = 0; i < entry.universe.size(); ++i) {
      times.push_back(entry.simulator->measure_ms(entry.spec,
                                                  entry.universe[i], i));
    }
    std::sort(times.begin(), times.end());
    std::vector<std::string> row{name};
    for (int k = 0; k < 3; ++k) {
      const std::size_t n = std::min(ns[k], times.size()) - 1;
      const double speedup = times[0] / times[n];
      row.push_back(TextTable::fmt_pct(speedup));
      sums[k] += speedup;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const auto count = static_cast<double>(config.stencils.size());
  std::cout << "\naverages: top-10 " << TextTable::fmt_pct(sums[0] / count)
            << " (paper 96.7%), top-50 "
            << TextTable::fmt_pct(sums[1] / count)
            << " (paper 92.4%), top-100 "
            << TextTable::fmt_pct(sums[2] / count) << " (paper 90.1%)\n";
  return 0;
}
