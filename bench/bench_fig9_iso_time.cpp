// Fig. 9: iso-time comparison — best kernel time found within a fixed
// search-time budget (paper: 100 s wall clock on the GPU; here: the
// evaluator's virtual clock, which charges compile + timing-run costs).

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 9: iso-time comparison (A100, budget "
            << config.budget_s << " virtual s, mean of " << config.repeats
            << " runs) ===\n\n";

  TextTable final_table({"stencil", "csTuner", "Garvey", "OpenTuner",
                         "Artemis", "cs/Garvey", "cs/OpenTuner",
                         "cs/Artemis"});
  std::vector<double> speedup_sums(3, 0.0);

  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<std::string> header{"time_s"};
    for (const auto& m : bench::method_names()) header.push_back(m);
    TextTable table(std::move(header));

    std::vector<std::vector<double>> series;  // method -> per-checkpoint
    std::vector<double> finals;
    const std::size_t checkpoints = 10;
    for (const auto& method : bench::method_names()) {
      std::vector<std::vector<double>> per_repeat;
      std::vector<double> final_bests;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        tuner::StopCriteria stop;
        stop.max_virtual_seconds = config.budget_s;
        const auto result =
            bench::run_tuning(entry, method, config, stop, 2000 + r);
        std::vector<double> bests;
        for (std::size_t c = 1; c <= checkpoints; ++c) {
          bests.push_back(result.trace.best_at_time(
              config.budget_s * static_cast<double>(c) / checkpoints));
        }
        per_repeat.push_back(std::move(bests));
        final_bests.push_back(result.trace.final_best());
      }
      std::vector<double> mean(checkpoints);
      for (std::size_t c = 0; c < checkpoints; ++c) {
        std::vector<double> column;
        for (const auto& rep : per_repeat) column.push_back(rep[c]);
        mean[c] = tuner::mean_finite(column);
      }
      series.push_back(std::move(mean));
      finals.push_back(tuner::mean_finite(final_bests));
    }
    for (std::size_t c = 0; c < checkpoints; ++c) {
      std::vector<std::string> row{TextTable::fmt(
          config.budget_s * static_cast<double>(c + 1) / checkpoints, 0)};
      for (const auto& s : series) {
        row.push_back(std::isfinite(s[c]) ? TextTable::fmt(s[c]) : "-");
      }
      table.add_row(std::move(row));
    }
    std::cout << "stencil " << name << '\n';
    table.print(std::cout);
    std::cout << '\n';

    std::vector<std::string> frow{name};
    for (double f : finals) frow.push_back(TextTable::fmt(f));
    for (int b = 1; b <= 3; ++b) {
      const double speedup = finals[static_cast<std::size_t>(b)] / finals[0];
      frow.push_back(TextTable::fmt(speedup, 2) + "x");
      speedup_sums[static_cast<std::size_t>(b - 1)] += speedup;
    }
    final_table.add_row(std::move(frow));
  }

  std::cout << "final best after " << config.budget_s
            << " virtual s (ms; cs/X = csTuner speedup over X)\n";
  final_table.print(std::cout);
  const auto n = static_cast<double>(config.stencils.size());
  std::cout << "\naverage csTuner speedup: vs Garvey "
            << TextTable::fmt(speedup_sums[0] / n, 2) << "x, vs OpenTuner "
            << TextTable::fmt(speedup_sums[1] / n, 2) << "x, vs Artemis "
            << TextTable::fmt(speedup_sums[2] / n, 2) << "x\n";
  return 0;
}
