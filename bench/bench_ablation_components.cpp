// Ablation study (DESIGN.md): contribution of each csTuner component.
// Variants replace one pipeline stage with the naive alternative the paper
// argues against:
//   full            — the paper's csTuner
//   no-grouping     — singleton parameter groups (no Algorithm 1)
//   dim-grouping    — Garvey-style expert grouping by dimension
//   random-sampling — uniform subset instead of PMNF-guided filtering
//   no-approx       — fixed generation cap instead of CV(top-n) early stop
// Expected: the full pipeline matches or beats every ablation on final
// quality at an iso-time budget.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

namespace {

struct Variant {
  const char* name;
  core::GroupingMode grouping;
  core::SamplingMode sampling;
  bool approximation;
};

}  // namespace

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Ablation: csTuner component contributions (A100, budget "
            << config.budget_s << " virtual s, mean best in ms) ===\n\n";

  const Variant variants[] = {
      {"full", core::GroupingMode::kStatistical, core::SamplingMode::kPmnf,
       true},
      {"no-grouping", core::GroupingMode::kSingleton,
       core::SamplingMode::kPmnf, true},
      {"dim-grouping", core::GroupingMode::kByDimension,
       core::SamplingMode::kPmnf, true},
      {"random-sampling", core::GroupingMode::kStatistical,
       core::SamplingMode::kRandom, true},
      {"no-approx", core::GroupingMode::kStatistical,
       core::SamplingMode::kPmnf, false},
  };

  std::vector<std::string> header{"stencil"};
  for (const auto& v : variants) header.emplace_back(v.name);
  TextTable table(header);
  // Time-to-quality: virtual seconds until each variant reached 105% of the
  // full pipeline's final best (this is where approximation shows its value
  // — it saves search time, not endpoint quality).
  TextTable ttq_table(std::move(header));
  std::vector<double> sums(std::size(variants), 0.0);
  std::vector<double> ttq_sums(std::size(variants), 0.0);
  std::vector<std::size_t> ttq_counts(std::size(variants), 0);

  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<std::string> row{name};
    std::vector<std::string> ttq_row{name};
    std::vector<std::vector<tuner::ConvergenceTrace>> traces(
        std::size(variants));
    double full_best = 0.0;
    for (std::size_t v = 0; v < std::size(variants); ++v) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        core::CsTunerOptions options;
        options.dataset_size = config.dataset_size;
        options.universe_size = config.universe_size;
        options.ga = bench::paper_ga_options();
        options.grouping_mode = variants[v].grouping;
        options.sampling_mode = variants[v].sampling;
        options.use_approximation = variants[v].approximation;
        if (!variants[v].approximation) {
          options.ga.max_generations = 10;  // the manual cap regime
        }
        options.seed = 6000 + r;
        core::CsTuner tuner(options);
        tuner.set_dataset(entry.dataset);
        tuner.set_universe(entry.universe);
        tuner::Evaluator evaluator(*entry.simulator, *entry.space, {},
                                   6000 + r);
        tuner.tune(evaluator, {.max_virtual_seconds = config.budget_s});
        bests.push_back(evaluator.best_time_ms());
        traces[v].push_back(evaluator.trace());
      }
      const double mean = tuner::mean_finite(bests);
      if (v == 0) full_best = mean;
      row.push_back(TextTable::fmt(mean));
      sums[v] += mean / full_best;  // relative to the full pipeline
    }
    table.add_row(std::move(row));

    // Time-to-quality vs the full pipeline's endpoint.
    const double target = full_best * 1.05;
    for (std::size_t v = 0; v < std::size(variants); ++v) {
      std::vector<double> times;
      for (const auto& trace : traces[v]) {
        times.push_back(trace.time_to_reach(target));
      }
      const double mean_ttq = tuner::mean_finite(times);
      if (std::isfinite(mean_ttq)) {
        ttq_row.push_back(TextTable::fmt(mean_ttq, 1) + "s");
        ttq_sums[v] += mean_ttq;
        ++ttq_counts[v];
      } else {
        ttq_row.push_back("never");
      }
    }
    ttq_table.add_row(std::move(ttq_row));
  }
  table.print(std::cout);
  std::cout << "\nvirtual seconds to reach 105% of the full pipeline's "
               "final best:\n";
  ttq_table.print(std::cout);
  std::cout << "\nmean slowdown vs full pipeline:";
  for (std::size_t v = 1; v < std::size(variants); ++v) {
    std::cout << "  " << variants[v].name << " "
              << TextTable::fmt(
                     sums[v] / static_cast<double>(config.stencils.size()),
                     3)
              << "x";
  }
  std::cout << '\n';
  return 0;
}
