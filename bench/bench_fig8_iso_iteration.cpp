// Fig. 8: iso-iteration comparison — best kernel time found by each method
// after k tuner iterations (one iteration = one population of evaluations),
// averaged over repeats. Expected shape: csTuner starts better (dataset +
// PMNF sampling) and converges faster; OpenTuner converges slowly on the
// global space.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 8: iso-iteration comparison (A100, mean of "
            << config.repeats << " runs, best time in ms) ===\n\n";

  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<std::string> header{"iteration"};
    for (const auto& m : bench::method_names()) header.push_back(m);
    TextTable table(std::move(header));

    // method -> per-iteration mean best.
    std::vector<std::vector<double>> series;
    for (const auto& method : bench::method_names()) {
      std::vector<std::vector<double>> per_repeat;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        tuner::StopCriteria stop;
        stop.max_iterations = config.max_iterations;
        const auto result =
            bench::run_tuning(entry, method, config, stop, 1000 + r);
        std::vector<double> bests;
        for (std::size_t k = 1; k <= config.max_iterations; ++k) {
          bests.push_back(result.trace.best_at_iteration(k));
        }
        per_repeat.push_back(std::move(bests));
      }
      std::vector<double> mean(config.max_iterations);
      for (std::size_t k = 0; k < config.max_iterations; ++k) {
        std::vector<double> column;
        for (const auto& rep : per_repeat) column.push_back(rep[k]);
        mean[k] = tuner::mean_finite(column);
      }
      series.push_back(std::move(mean));
    }
    for (std::size_t k = 0; k < config.max_iterations; ++k) {
      std::vector<std::string> row{std::to_string(k + 1)};
      for (const auto& s : series) {
        row.push_back(std::isfinite(s[k]) ? TextTable::fmt(s[k]) : "-");
      }
      table.add_row(std::move(row));
    }
    std::cout << "stencil " << name << '\n';
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
