// Table III: the stencil suite. Prints the paper's columns plus the derived
// quantities the models use and a reference-kernel smoke run per stencil.

#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  std::cout << "=== Table III: stencils used for evaluation ===\n\n";
  TextTable table({"stencil", "input_grid", "order", "flops", "io_arrays",
                   "taps", "arith_intensity", "ref_run_ms(32^3)"});
  for (const auto& spec : stencil::all_stencils()) {
    // Correctness smoke: one naive sweep on a scaled-down grid.
    const auto small = stencil::scaled_stencil(spec.name, 32);
    auto grids = stencil::make_grids(small);
    const auto start = std::chrono::steady_clock::now();
    stencil::run_reference(small, grids.inputs, grids.outputs);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    table.add_row(
        {spec.name,
         std::to_string(spec.grid[0]) + "x" + std::to_string(spec.grid[1]) +
             "x" + std::to_string(spec.grid[2]),
         std::to_string(spec.order), std::to_string(spec.flops),
         std::to_string(spec.io_arrays), std::to_string(spec.taps.size()),
         TextTable::fmt(spec.arithmetic_intensity(), 2),
         TextTable::fmt(ms, 1)});
  }
  table.print(std::cout);
  return 0;
}
