// Fig. 3: percentage distribution of parameter pairs with the other
// parameters free. For each ordered pair (Pi, Pj): over each observed value
// v of Pi, the best-performing sampled setting with Pi == v nominates a Pj
// value; the pair's percentage is the fraction of nominations that disagree
// with the global optimum's Pj. Paper headline: 28.6% of pairs disagree with
// the optimum on average, 22.3% of pairs by more than 40%.

#include <iostream>
#include <map>

#include "common/table.hpp"
#include "harness.hpp"
#include "stats/histogram.hpp"

using namespace cstuner;
using space::kParamCount;
using space::ParamId;

namespace {

double pair_percentage(const std::vector<space::Setting>& settings,
                       const std::vector<double>& times, ParamId pi,
                       ParamId pj, const space::Setting& optimum) {
  std::map<std::int64_t, std::pair<double, std::int64_t>> best_by_value;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    auto [it, inserted] =
        best_by_value.try_emplace(settings[i].get(pi), times[i],
                                  settings[i].get(pj));
    if (!inserted && times[i] < it->second.first) {
      it->second = {times[i], settings[i].get(pj)};
    }
  }
  if (best_by_value.empty()) return 0.0;
  std::size_t differing = 0;
  for (const auto& [v, best] : best_by_value) {
    (void)v;
    if (best.second != optimum.get(pj)) ++differing;
  }
  return static_cast<double>(differing) /
         static_cast<double>(best_by_value.size());
}

}  // namespace

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 3: parameter-pair disagreement with the optimum ==="
            << "\n(fraction of pairs per disagreement-percentage bin)\n\n";

  TextTable table({"stencil", "[0,20%)", "[20,40%)", "[40,60%)", "[60,80%)",
                   "[80,100%]"});
  double sum_nonzero = 0.0, sum_over40 = 0.0;
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<double> times;
    times.reserve(entry.universe.size());
    std::size_t best = 0;
    for (std::size_t i = 0; i < entry.universe.size(); ++i) {
      times.push_back(entry.simulator->measure_ms(entry.spec,
                                                  entry.universe[i], i));
      if (times[i] < times[best]) best = i;
    }
    const auto& optimum = entry.universe[best];
    stats::Histogram hist(0.0, 1.0, 5);
    double pairs_nonzero = 0.0, pairs_over40 = 0.0, total = 0.0;
    for (std::size_t a = 0; a < kParamCount; ++a) {
      for (std::size_t b = 0; b < kParamCount; ++b) {
        if (a == b) continue;
        const double pct =
            pair_percentage(entry.universe, times, static_cast<ParamId>(a),
                            static_cast<ParamId>(b), optimum);
        hist.add(pct);
        total += 1.0;
        if (pct > 0.0) pairs_nonzero += 1.0;
        if (pct > 0.4) pairs_over40 += 1.0;
      }
    }
    std::vector<std::string> row{name};
    for (std::size_t bin = 0; bin < 5; ++bin) {
      row.push_back(TextTable::fmt_pct(hist.fraction(bin)));
    }
    table.add_row(std::move(row));
    sum_nonzero += pairs_nonzero / total;
    sum_over40 += pairs_over40 / total;
  }
  table.print(std::cout);
  const auto n = static_cast<double>(config.stencils.size());
  std::cout << "\naverage pairs disagreeing with optimum: "
            << TextTable::fmt_pct(sum_nonzero / n) << "  (paper: 28.6%)\n"
            << "average pairs differing by >40%:        "
            << TextTable::fmt_pct(sum_over40 / n) << "  (paper: 22.3%)\n";
  return 0;
}
