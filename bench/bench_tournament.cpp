// Iso-budget optimizer tournament for the CI tournament gate. A reduced,
// fixed-seed profile (two stencils, every registered optimizer, 10 virtual
// seconds per cell) runs through search::run_tournament and emits the
// byte-stable leaderboard JSON. CI diffs it against the committed
// bench/baseline_tournament.json with `cstuner report --tol 0%`: ranks,
// best times and eval counts gate exactly; wall-clock keys carry the
// "wall" prefix the comparator ignores.
//
// The profile is intentionally hard-coded (no CSTUNER_* env knobs): a 0%
// gate only means something when every run races the same workload.
//
// Usage: bench_tournament [out.json]   (JSON also goes to stdout)

#include <fstream>
#include <iostream>

#include "search/tournament.hpp"

using namespace cstuner;

int main(int argc, char** argv) {
  search::TournamentOptions options;  // fixed gate profile
  options.stencils = {"j3d7pt", "helmholtz"};
  options.budget_s = 10.0;
  options.seed = 4242;
  // options.optimizers left empty: every registered optimizer races, so a
  // newly added optimizer fails the gate until the baseline is regenerated.

  const search::TournamentResult result = search::run_tournament(options);
  const std::string json = search::tournament_json(result);

  search::print_tournament(result, std::cerr);
  std::cerr << "wall: " << result.wall_s << " s\n";

  std::cout << json << '\n';
  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << argv[1] << '\n';
      return 1;
    }
    out << json << '\n';
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << argv[1] << '\n';
      return 1;
    }
    std::cerr << "leaderboard written to " << argv[1] << '\n';
  }
  return 0;
}
