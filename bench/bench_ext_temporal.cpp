// Extension benchmark: temporal blocking (§VII future work, AN5D-style).
// Tunes each single-grid stencil twice — Table I space vs the extended
// space with TF in {1,2,4} — under the same virtual budget. Memory-bound
// stencils should profit from fusing time steps; the extension must never
// hurt (TF=1 remains available).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  std::cout << "=== Extension: temporal blocking on single-grid stencils "
               "(A100, budget "
            << config.budget_s << " virtual s) ===\n\n";

  TextTable table({"stencil", "tableI_best_ms", "temporal_best_ms",
                   "speedup", "best_TF"});
  for (const std::string name : {"j3d7pt", "j3d27pt", "helmholtz"}) {
    const auto spec = stencil::make_stencil(name);
    double bests[2];
    std::int64_t chosen_tf = 1;
    for (int variant = 0; variant < 2; ++variant) {
      space::SpaceLimits limits;
      limits.max_temporal = variant == 0 ? 1 : 4;
      space::SearchSpace space(spec, limits);
      gpusim::Simulator sim(gpusim::a100());
      Rng rng(fnv1a(name.data(), name.size()) + variant);
      core::CsTunerOptions options;
      options.universe_size = config.universe_size;
      options.dataset_size = config.dataset_size;
      options.ga = bench::paper_ga_options();
      options.seed = 7000;
      core::CsTuner tuner(options);
      tuner.set_universe(space.sample_universe(rng, config.universe_size));
      tuner::Evaluator evaluator(sim, space, {}, 7000);
      tuner.tune(evaluator, {.max_virtual_seconds = config.budget_s});
      bests[variant] = evaluator.best_time_ms();
      if (variant == 1) {
        chosen_tf = evaluator.best_setting()->get(space::kTemporal);
      }
    }
    table.add_row({name, TextTable::fmt(bests[0]), TextTable::fmt(bests[1]),
                   TextTable::fmt(bests[0] / bests[1], 2) + "x",
                   std::to_string(chosen_tf)});
  }
  table.print(std::cout);
  std::cout << "\n(time reported per time step; TF is the fusion factor of "
               "the winning setting)\n";
  return 0;
}
