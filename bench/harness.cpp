#include "harness.hpp"

#include <cstdlib>
#include <sstream>

namespace cstuner::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return std::strtod(v, nullptr);
  return fallback;
}

}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig c;
  c.repeats = env_size("CSTUNER_REPEATS", c.repeats);
  c.universe_size = env_size("CSTUNER_UNIVERSE", c.universe_size);
  c.dataset_size = env_size("CSTUNER_DATASET", c.dataset_size);
  c.budget_s = env_double("CSTUNER_BUDGET_S", c.budget_s);
  c.max_iterations = env_size("CSTUNER_ITERATIONS", c.max_iterations);
  if (const char* v = std::getenv("CSTUNER_STENCILS")) {
    std::istringstream is(v);
    std::string token;
    while (std::getline(is, token, ',')) {
      if (!token.empty()) c.stencils.push_back(token);
    }
  } else {
    c.stencils = stencil::stencil_names();
  }
  return c;
}

const ArtifactCache::Entry& ArtifactCache::get(
    const std::string& stencil_name, const std::string& arch_name) {
  const std::string key = stencil_name + "@" + arch_name;
  auto it = entries_.find(key);
  if (it != entries_.end()) return *it->second;

  auto entry = std::make_unique<Entry>();
  entry->spec = stencil::make_stencil(stencil_name);
  entry->space = std::make_unique<space::SearchSpace>(entry->spec);
  entry->simulator =
      std::make_unique<gpusim::Simulator>(gpusim::arch_by_name(arch_name));
  Rng rng(fnv1a(key.data(), key.size()));
  entry->universe =
      entry->space->sample_universe(rng, config_.universe_size);
  entry->dataset =
      tuner::collect_dataset(*entry->space, *entry->simulator,
                             config_.dataset_size, rng,
                             &ThreadPool::global());
  it = entries_.emplace(key, std::move(entry)).first;
  return *it->second;
}

ga::GaOptions paper_ga_options() {
  ga::GaOptions ga;
  ga.sub_populations = 2;
  ga.population_size = 16;
  ga.crossover_rate = 0.8;
  ga.mutation_rate = 0.005;
  return ga;
}

std::unique_ptr<tuner::Tuner> make_tuner(const std::string& method,
                                         const BenchConfig& config,
                                         const ArtifactCache::Entry& entry,
                                         std::uint64_t seed) {
  if (method == "csTuner") {
    core::CsTunerOptions options;
    options.dataset_size = config.dataset_size;
    options.universe_size = config.universe_size;
    options.ga = paper_ga_options();
    options.seed = seed;
    auto tuner = std::make_unique<core::CsTuner>(options);
    tuner->set_dataset(entry.dataset);
    tuner->set_universe(entry.universe);
    return tuner;
  }
  if (method == "Garvey") {
    baselines::GarveyOptions options;
    options.dataset_size = config.dataset_size;
    options.seed = seed;
    auto tuner = std::make_unique<baselines::Garvey>(options);
    tuner->set_dataset(entry.dataset);
    return tuner;
  }
  if (method == "OpenTuner") {
    baselines::OpenTunerOptions options;
    options.ga = paper_ga_options();
    options.seed = seed;
    return std::make_unique<baselines::OpenTuner>(options);
  }
  if (method == "Artemis") {
    baselines::ArtemisOptions options;
    options.seed = seed;
    return std::make_unique<baselines::Artemis>(options);
  }
  throw UsageError("unknown method: " + method);
}

RunResult run_tuning(const ArtifactCache::Entry& entry,
                     const std::string& method, const BenchConfig& config,
                     const tuner::StopCriteria& stop, std::uint64_t seed) {
  tuner::Evaluator evaluator(*entry.simulator, *entry.space, {}, seed);
  const double fault_rate = gpusim::FaultConfig::rate_from_env();
  if (fault_rate > 0.0) {
    evaluator.set_fault_injection(
        gpusim::FaultConfig::uniform(fault_rate, seed), entry.spec.name);
  }
  auto tuner = make_tuner(method, config, entry, seed);
  tuner->tune(evaluator, stop);
  RunResult result;
  result.trace = evaluator.trace();
  result.best_time_ms = evaluator.best_time_ms();
  result.virtual_time_s = evaluator.virtual_time_s();
  result.evaluations = evaluator.unique_evaluations();
  result.iterations = evaluator.iterations();
  result.fault_stats = evaluator.fault_stats();
  return result;
}

}  // namespace cstuner::bench
