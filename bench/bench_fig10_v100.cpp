// Fig. 10: generality on other GPU hardware — iso-time performance on the
// V100 platform normalized to Garvey (higher is better). The stencil
// dataset is re-collected on the V100 model, exactly as §V-D prescribes.
// Paper averages: csTuner 1.7x / OpenTuner ~1.4x / Artemis ~1.4x of Garvey
// (csTuner = 1.2x over OpenTuner and Artemis).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 10: iso-time performance normalized to Garvey "
               "(V100, budget "
            << config.budget_s << " virtual s) ===\n\n";

  TextTable table({"stencil", "csTuner", "Garvey", "OpenTuner", "Artemis"});
  std::vector<double> sums(4, 0.0);
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "v100");
    std::vector<double> finals;
    for (const auto& method : bench::method_names()) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        tuner::StopCriteria stop;
        stop.max_virtual_seconds = config.budget_s;
        const auto result =
            bench::run_tuning(entry, method, config, stop, 3000 + r);
        bests.push_back(result.trace.final_best());
      }
      finals.push_back(tuner::mean_finite(bests));
    }
    const double garvey = finals[1];
    std::vector<std::string> row{name};
    for (std::size_t m = 0; m < finals.size(); ++m) {
      const double normalized = garvey / finals[m];  // perf ratio
      row.push_back(TextTable::fmt(normalized, 2));
      sums[m] += normalized;
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const auto n = static_cast<double>(config.stencils.size());
  std::cout << "\naverages (paper: csTuner 1.7x over Garvey, 1.2x over "
               "OpenTuner/Artemis):\n  csTuner "
            << TextTable::fmt(sums[0] / n, 2) << "  Garvey "
            << TextTable::fmt(sums[1] / n, 2) << "  OpenTuner "
            << TextTable::fmt(sums[2] / n, 2) << "  Artemis "
            << TextTable::fmt(sums[3] / n, 2) << '\n';
  return 0;
}
