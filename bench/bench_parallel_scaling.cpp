// Parallel evaluation-engine scaling: the same GA-driven csTuner session is
// replayed with thread pools of 1/2/4/8 threads (pool workers = threads-1,
// since the calling thread participates in every batch). The determinism
// contract (docs/threading.md) guarantees every run performs the *same*
// unique evaluations and finds the *same* best kernel, so wall-clock
// evals/sec is an apples-to-apples throughput measure. Expect >= 2.5x at 4
// threads on a machine with 4+ hardware threads; on fewer cores the ratios
// flatten to ~1x (the work is CPU-bound).

#include <chrono>
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"

using namespace cstuner;

namespace {

struct ScalingResult {
  double wall_s = 0.0;
  double evals_per_s = 0.0;
  std::size_t unique_evals = 0;
  double best_time_ms = 0.0;
  space::Setting best_setting;
  std::size_t peak_queue_depth = 0;
  std::size_t peak_inflight = 0;
};

ScalingResult run_session(const bench::ArtifactCache::Entry& entry,
                          const bench::BenchConfig& config,
                          std::size_t threads) {
  ThreadPool pool(threads - 1);
  tuner::Evaluator evaluator(*entry.simulator, *entry.space, {}, 9000,
                             &pool);
  core::CsTunerOptions options;
  options.dataset_size = config.dataset_size;
  options.universe_size = config.universe_size;
  options.ga = bench::paper_ga_options();
  options.seed = 9000;
  core::CsTuner tuner(options);
  tuner.set_dataset(entry.dataset);
  tuner.set_universe(entry.universe);

  const auto start = std::chrono::steady_clock::now();
  tuner.tune(evaluator, {.max_virtual_seconds = config.budget_s});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScalingResult r;
  r.wall_s = wall_s;
  r.unique_evals = evaluator.unique_evaluations();
  r.evals_per_s =
      static_cast<double>(r.unique_evals) / std::max(wall_s, 1e-9);
  r.best_time_ms = evaluator.best_time_ms();
  r.best_setting = *evaluator.best_setting();
  r.peak_queue_depth = pool.peak_queue_depth();
  r.peak_inflight = pool.peak_inflight();
  return r;
}

}  // namespace

int main() {
  auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  const std::string stencil =
      config.stencils.empty() ? "j3d7pt" : config.stencils.front();
  const auto& entry = cache.get(stencil, "a100");

  std::cout << "=== Parallel evaluation scaling (" << stencil << ", "
            << std::thread::hardware_concurrency()
            << " hardware threads) ===\n\n";

  TextTable table({"threads", "wall_s", "unique_evals", "evals_per_s",
                   "speedup", "peak_queue", "peak_inflight", "best_ms",
                   "identical"});
  ScalingResult baseline;
  bool all_identical = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto r = run_session(entry, config, threads);
    if (threads == 1) baseline = r;
    const bool identical = r.best_setting == baseline.best_setting &&
                           r.best_time_ms == baseline.best_time_ms &&
                           r.unique_evals == baseline.unique_evals;
    all_identical = all_identical && identical;
    table.add_row({std::to_string(threads), TextTable::fmt(r.wall_s, 2),
                   std::to_string(r.unique_evals),
                   TextTable::fmt(r.evals_per_s, 1),
                   TextTable::fmt(r.evals_per_s / baseline.evals_per_s, 2),
                   std::to_string(r.peak_queue_depth),
                   std::to_string(r.peak_inflight),
                   TextTable::fmt(r.best_time_ms, 4),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nresults identical across thread counts: "
            << (all_identical ? "yes" : "NO — determinism bug") << "\n";

  // Instrumentation overhead: the same 4-thread session back-to-back with
  // the span tracer off and armed. The budget is <= 2% of wall time
  // (docs/observability.md); wall noise on shared runners makes this a
  // report, not a gate.
  const auto plain = run_session(entry, config, 4);
  obs::Tracer::global().set_enabled(true);
  const auto traced = run_session(entry, config, 4);
  obs::Tracer::global().set_enabled(false);
  const double overhead =
      (traced.wall_s - plain.wall_s) / std::max(plain.wall_s, 1e-9);
  std::cout << "instrumentation overhead (4 threads, tracer on): "
            << TextTable::fmt(overhead * 100.0, 2) << "% of "
            << TextTable::fmt(plain.wall_s, 2) << " s (budget 2%)\n";
  return all_identical ? 0 : 1;
}
