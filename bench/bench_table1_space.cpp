// Table I: the parameterized optimization space. Prints each parameter's
// range per stencil class plus the constrained-space statistics the paper
// quotes (">100 million settings" before implicit pruning).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  std::cout << "=== Table I: parameterized optimization space ===\n\n";

  // Parameter ranges for one representative of each grid size.
  for (const std::string name : {"j3d7pt", "hypterm"}) {
    const auto spec = stencil::make_stencil(name);
    space::SearchSpace sp(spec);
    std::cout << "stencil " << name << " (grid " << spec.grid[0] << "^3)\n";
    TextTable table({"parameter", "kind", "cardinality", "range"});
    for (const auto& p : sp.parameters()) {
      const char* kind = p.kind == space::ParamKind::kBool   ? "bool"
                         : p.kind == space::ParamKind::kEnum ? "enum"
                                                             : "pow2";
      table.add_row({p.name, kind, std::to_string(p.cardinality()),
                     "[" + std::to_string(p.values.front()) + ", " +
                         std::to_string(p.values.back()) + "]"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Constrained-space statistics (" << config.universe_size
            << "-setting probes):\n";
  TextTable stats({"stencil", "log10(cartesian)", "valid_fraction",
                   "universe_size"});
  bench::ArtifactCache cache(config);
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    Rng rng(42);
    std::size_t valid = 0;
    const std::size_t probes = 20000;
    for (std::size_t i = 0; i < probes; ++i) {
      if (entry.space->is_valid(entry.space->random_setting(rng))) ++valid;
    }
    stats.add_row({name,
                   TextTable::fmt(entry.space->log10_cartesian_size(), 1),
                   TextTable::fmt_pct(static_cast<double>(valid) / probes, 2),
                   std::to_string(entry.universe.size())});
  }
  stats.print(std::cout);
  return 0;
}
