// Extension benchmark: the §VII CPU target across the whole Table III
// suite. For each stencil and CPU model, the csTuner pipeline is compared
// against random search at the same evaluation budget — the generality
// claim is that the statistics/PMNF/GA machinery keeps its edge when only
// the parameterized space changes.

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "cputune/cpu_tuner.hpp"
#include "harness.hpp"

using namespace cstuner;
using namespace cstuner::cputune;

int main() {
  const auto config = bench::BenchConfig::from_env();
  std::cout << "=== Extension: CPU auto-tuning (csTuner pipeline vs random "
               "search at equal evaluation budget) ===\n\n";

  for (const CpuArch* arch : {&xeon_8380(), &epyc_7742()}) {
    TextTable table({"stencil", "tuned_ms", "random_ms", "advantage",
                     "evals", "groups"});
    double sum_adv = 0.0;
    for (const auto& name : config.stencils) {
      const auto spec = stencil::make_stencil(name);
      CpuSpace space(spec, *arch);
      CpuSimulator simulator(*arch);
      CpuTunerOptions options;
      options.seed = fnv1a(name.data(), name.size());
      CpuTuner tuner(options);
      const auto result = tuner.tune(space, simulator);

      Rng rng(options.seed + 1);
      double random_best = 1e300;
      for (std::size_t i = 0; i < result.evaluations; ++i) {
        random_best = std::min(
            random_best,
            simulator.measure_ms(spec, space.random_valid(rng), i));
      }
      const double advantage = random_best / result.best_time_ms;
      sum_adv += advantage;
      table.add_row({name, TextTable::fmt(result.best_time_ms, 2),
                     TextTable::fmt(random_best, 2),
                     TextTable::fmt(advantage, 2) + "x",
                     std::to_string(result.evaluations),
                     std::to_string(result.groups.size())});
    }
    std::cout << arch->name << " (" << arch->cores << " cores, "
              << arch->vector_doubles << "-wide SIMD)\n";
    table.print(std::cout);
    std::cout << "mean advantage over random search: "
              << TextTable::fmt(
                     sum_adv / static_cast<double>(config.stencils.size()),
                     2)
              << "x\n\n";
  }
  return 0;
}
