// Fig. 12: pre-processing overhead of csTuner (parameter grouping, search-
// space sampling, code generation) normalized to the search process. The
// paper measures both sides in wall-clock seconds on the GPU host; here the
// search side is the virtual search time the evaluator accrues (what the
// search would occupy the machine for), while pre-processing is genuinely
// executed and wall-clocked — including full CUDA source generation for
// every sampled setting. Paper headline: pre-processing is ~0.76% of search
// time on average, codegen at most ~1.04% (rhs4center).

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 12: pre-processing breakdown normalized to search "
               "time ===\n\n";

  TextTable table({"stencil", "grouping", "sampling", "codegen",
                   "total_preproc", "search_s", "kernels", "kernel_MB"});
  double sum_total = 0.0;
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    core::CsTunerOptions options;
    options.dataset_size = config.dataset_size;
    options.universe_size = config.universe_size;
    options.ga = bench::paper_ga_options();
    options.generate_kernels = true;  // the paper always generates code
    options.seed = 5000;
    core::CsTuner tuner(options);
    tuner.set_dataset(entry.dataset);
    tuner.set_universe(entry.universe);
    tuner::Evaluator evaluator(*entry.simulator, *entry.space, {}, 5000);
    tuner::StopCriteria stop;
    stop.max_virtual_seconds = config.budget_s;
    tuner.tune(evaluator, stop);

    const auto& report = tuner.report();
    const double search_s = evaluator.virtual_time_s();
    const double total =
        report.grouping_s + report.sampling_s + report.codegen_s;
    table.add_row(
        {name, TextTable::fmt_pct(report.grouping_s / search_s, 3),
         TextTable::fmt_pct(report.sampling_s / search_s, 3),
         TextTable::fmt_pct(report.codegen_s / search_s, 3),
         TextTable::fmt_pct(total / search_s, 3),
         TextTable::fmt(search_s, 1), std::to_string(report.sampled_count),
         TextTable::fmt(static_cast<double>(report.generated_kernel_bytes) /
                            1e6,
                        2)});
    sum_total += total / search_s;
  }
  table.print(std::cout);
  std::cout << "\naverage pre-processing share: "
            << TextTable::fmt_pct(
                   sum_total / static_cast<double>(config.stencils.size()),
                   3)
            << "  (paper: 0.76%)\n";
  return 0;
}
