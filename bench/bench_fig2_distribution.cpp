// Fig. 2: speedup distribution of parameter settings over the optimum.
// Paper headline: only ~5.1% of settings land within 20% of the optimum and
// ~24.2% are >5x slower — the space is biased toward poor settings.

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 2: speedup distribution over the optimum (A100) ==="
            << "\n(speedup = t_opt / t, binned [0,1] stride 0.2)\n\n";

  TextTable table({"stencil", "[0,0.2)", "[0.2,0.4)", "[0.4,0.6)",
                   "[0.6,0.8)", "[0.8,1.0]", "settings"});
  double sum_top = 0.0, sum_bottom = 0.0;
  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<double> times;
    times.reserve(entry.universe.size());
    for (std::size_t i = 0; i < entry.universe.size(); ++i) {
      times.push_back(entry.simulator->measure_ms(
          entry.spec, entry.universe[i], /*run_index=*/i));
    }
    const double best = stats::min(times);
    stats::Histogram hist(0.0, 1.0, 5);
    for (double t : times) hist.add(best / t);
    std::vector<std::string> row{name};
    for (std::size_t b = 0; b < 5; ++b) {
      row.push_back(TextTable::fmt_pct(hist.fraction(b)));
    }
    row.push_back(std::to_string(times.size()));
    table.add_row(std::move(row));
    sum_top += hist.fraction(4);
    sum_bottom += hist.fraction(0);
  }
  table.print(std::cout);
  const auto n = static_cast<double>(config.stencils.size());
  std::cout << "\naverage within 20% of optimum: "
            << TextTable::fmt_pct(sum_top / n) << "  (paper: 5.1%)\n"
            << "average >5x slowdown:          "
            << TextTable::fmt_pct(sum_bottom / n) << "  (paper: 24.2%)\n";
  return 0;
}
