// Space-construction gate for the constraint-propagating enumerator
// (docs/search-space.md). Builds a >= 10^9-raw-combination search space
// (scaled j3d7pt under widened limits) and certifies the LazyUniverse
// contract the tuner relies on:
//
//   - exactness: the block-count DP total equals the number of settings the
//     chunked walk actually produces;
//   - memory boundedness: the full ~19M-setting walk streams through
//     fixed-size windows, so its RSS growth stays under a hard cap while a
//     materialized universe of the same settings costs orders of magnitude
//     more;
//   - determinism: the full-walk digest and the spread-sample digest are
//     bit-identical across 0/4/8 ThreadPool workers, and the first-N prefix
//     of the walk equals take_all(N) (lazy vs materialized agreement).
//
// Payload is byte-stable: counts and 0/1 flags gate exactly under
// `cstuner report` (CI uses --tol 0%); throughput and RSS readings vary by
// machine and ride under "wall"/"info" keys the comparator ignores.
//
// Usage: bench_space_build [out.json]   (JSON also goes to stdout)

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "space/lazy_universe.hpp"
#include "stencil/stencils.hpp"

using namespace cstuner;
using namespace cstuner::space;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size in MB (Linux ru_maxrss is in KB).
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// FNV-1a over the raw parameter values, order-sensitive.
std::uint64_t fold(std::uint64_t h, const Setting& s) {
  for (std::size_t p = 0; p < kParamCount; ++p) {
    auto v = static_cast<std::uint64_t>(s.get(static_cast<ParamId>(p)));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 1469598103934665603ULL;

SearchSpace make_space() {
  // Scaled j3d7pt under widened limits: 10^10.3 raw combinations, ~19M
  // valid — big enough that rejection sampling cannot see the structure,
  // small enough that CI walks the whole valid space in seconds.
  SpaceLimits limits;
  limits.max_unroll = 8;
  limits.max_merge = 8;
  limits.max_tb_xy = 32;
  limits.max_tb_z = 8;
  return SearchSpace(stencil::scaled_stencil("j3d7pt", 32), limits);
}

struct WalkResult {
  std::uint64_t count = 0;
  std::uint64_t digest = kFnvSeed;
  std::uint64_t prefix_digest = kFnvSeed;  ///< first `prefix` settings
  double wall_s = 0.0;
};

WalkResult walk_all(LazyUniverse& lazy, std::uint64_t prefix) {
  WalkResult r;
  const double t0 = now_s();
  lazy.for_each_chunk([&](const std::vector<Setting>& chunk) {
    for (const Setting& s : chunk) {
      r.digest = fold(r.digest, s);
      if (r.count < prefix) r.prefix_digest = fold(r.prefix_digest, s);
      ++r.count;
    }
  });
  r.wall_s = now_s() - t0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint64_t kPrefix = 500000;     // materialized comparison
  constexpr std::size_t kSample = 20000;        // spread-sample size
  constexpr double kWalkRssCapMb = 256.0;       // memory-bounded gate
  const double bench_t0 = now_s();

  SearchSpace space = make_space();
  const double log10_raw = space.log10_cartesian_size();
  if (log10_raw < 9.0) {
    std::cerr << "FAIL: bench space is only 10^" << log10_raw
              << " raw combinations (need >= 10^9)\n";
    return 1;
  }

  const double rss_before_mb = peak_rss_mb();
  const double build_t0 = now_s();
  LazyUniverse lazy(space);
  const double wall_build_s = now_s() - build_t0;

  // Serial reference walk: exact count check + memory boundedness.
  WalkResult serial = walk_all(lazy, kPrefix);
  const double rss_walk_mb = peak_rss_mb();
  const bool count_exact = serial.count == lazy.valid_count();
  const bool memory_bounded = rss_walk_mb - rss_before_mb <= kWalkRssCapMb;

  // Lazy vs materialized: take_all(N) must reproduce the walk's prefix.
  const double mat_t0 = now_s();
  const auto materialized = lazy.take_all(kPrefix);
  const double wall_materialize_s = now_s() - mat_t0;
  std::uint64_t mat_digest = kFnvSeed;
  for (const Setting& s : materialized) mat_digest = fold(mat_digest, s);
  const bool lazy_vs_materialized = mat_digest == serial.prefix_digest;
  const double rss_materialized_mb = peak_rss_mb();

  // Worker sweep: full-walk and spread-sample digests for 0/4/8 workers.
  bool walk_bit_identical = true;
  bool sample_bit_identical = true;
  std::uint64_t sample_serial = 0;
  double walk_wall_4 = 0.0;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4},
                                    std::size_t{8}}) {
    ThreadPool pool(workers);
    LazyUniverse worker_lazy(space, {}, &pool);
    const WalkResult r = walk_all(worker_lazy, 0);
    if (workers == 4) walk_wall_4 = r.wall_s;
    walk_bit_identical &= r.digest == serial.digest;
    std::uint64_t sd = kFnvSeed;
    for (const Setting& s : worker_lazy.spread_sample(kSample)) {
      sd = fold(sd, s);
    }
    if (workers == 0) sample_serial = sd;
    sample_bit_identical &= sd == sample_serial;
  }

  const bool ok = count_exact && memory_bounded && lazy_vs_materialized &&
                  walk_bit_identical && sample_bit_identical;

  JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("stencil", "j3d7pt");
  json.field("scale", 32);
  json.field("prefix", kPrefix);
  json.field("sample", kSample);
  json.field("walk_rss_cap_mb", kWalkRssCapMb);
  json.end_object();
  // Deterministic payload (gated at 0% tolerance in CI).
  json.field("log10_raw", log10_raw);
  json.field("valid_count", lazy.valid_count());
  json.field("regions", lazy.regions().size());
  json.field("blocks", lazy.block_count());
  json.field("count_exact", count_exact ? 1 : 0);
  json.field("memory_bounded", memory_bounded ? 1 : 0);
  json.field("lazy_vs_materialized_identical", lazy_vs_materialized ? 1 : 0);
  json.field("walk_bit_identical_workers", walk_bit_identical ? 1 : 0);
  json.field("sample_bit_identical_workers", sample_bit_identical ? 1 : 0);
  // Machine-dependent readings (ignored by the report comparator).
  json.field("wall_build_s", wall_build_s);
  json.field("wall_walk_s", serial.wall_s);
  json.field("wall_walk_4_workers_s", walk_wall_4);
  json.field("wall_materialize_s", wall_materialize_s);
  json.key("info").begin_object();
  json.field("settings_per_s",
             static_cast<double>(serial.count) / serial.wall_s);
  json.field("rss_before_mb", rss_before_mb);
  json.field("rss_after_walk_mb", rss_walk_mb);
  json.field("rss_after_materialize_mb", rss_materialized_mb);
  json.end_object();
  json.field("wall_s", now_s() - bench_t0);
  json.end_object();

  std::cout << json.str() << '\n';
  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << argv[1] << '\n';
      return 1;
    }
    out << json.str() << '\n';
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << argv[1] << '\n';
      return 1;
    }
    std::cerr << "report written to " << argv[1] << '\n';
  }
  if (!ok) {
    std::cerr << "FAIL: count_exact=" << count_exact
              << " memory_bounded=" << memory_bounded
              << " lazy_vs_materialized=" << lazy_vs_materialized
              << " walk_bit_identical=" << walk_bit_identical
              << " sample_bit_identical=" << sample_bit_identical << '\n';
    return 1;
  }
  return 0;
}
