// Deterministic smoke benchmark for the CI bench-regression gate. A small,
// fixed tuning profile (two stencils x four methods, virtual-clock budget)
// runs single-threaded and emits a JSON report whose payload is
// bit-reproducible: best times, evaluation counts and the deterministic
// subset of the metrics registry. CI diffs it against the committed
// bench/baseline_smoke.json with `cstuner report --tol 10%`.
//
// The profile is intentionally hard-coded (no CSTUNER_* env knobs): the
// gate only means something when every run measures the same workload.
// Wall-clock readings are emitted under "wall"-prefixed keys, which the
// comparator ignores by default.
//
// Usage: bench_smoke [out.json]   (JSON also goes to stdout)

#include <chrono>
#include <fstream>
#include <iostream>

#include "common/json.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"

using namespace cstuner;

namespace {

// Registry counters that are deterministic under the threading contract
// (docs/threading.md): batch structure, GA generations and communication
// counts do not depend on scheduling. Cache-hit and retry counters do
// (concurrent probes race on shared keys), so they stay out of the gate.
const std::vector<std::string> kGatedCounters = {
    "cstuner.passes",      "evaluator.batches",  "evaluator.evals",
    "evaluator.iterations", "ga.generations",     "ga.migrations",
    "minimpi.sends",       "minimpi.bytes_sent", "regress.pmnf_fits",
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config;  // fixed smoke profile; env knobs ignored
  config.universe_size = 2000;
  config.dataset_size = 64;
  config.budget_s = 10.0;
  config.stencils = {"j3d7pt", "helmholtz"};
  const std::uint64_t seed = 4242;

  bench::ArtifactCache cache(config);
  const tuner::StopCriteria stop{.max_virtual_seconds = config.budget_s};

  const auto wall_start = std::chrono::steady_clock::now();

  JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("universe", static_cast<std::uint64_t>(config.universe_size));
  json.field("dataset", static_cast<std::uint64_t>(config.dataset_size));
  json.field("budget_s", config.budget_s);
  json.field("seed", seed);
  json.end_object();

  TextTable table({"stencil", "method", "best_ms", "evals", "virtual_s"});
  json.key("results").begin_array();
  for (const auto& stencil : config.stencils) {
    const auto& entry = cache.get(stencil, "a100");
    for (const auto& method : bench::method_names()) {
      const auto r = bench::run_tuning(entry, method, config, stop, seed);
      json.begin_object();
      json.field("stencil", stencil);
      json.field("method", method);
      json.field("best_ms", r.best_time_ms);
      json.field("evals", static_cast<std::uint64_t>(r.evaluations));
      json.field("iterations", static_cast<std::uint64_t>(r.iterations));
      json.field("virtual_s", r.virtual_time_s);
      json.end_object();
      table.add_row({stencil, method, TextTable::fmt(r.best_time_ms, 4),
                     std::to_string(r.evaluations),
                     TextTable::fmt(r.virtual_time_s, 2)});
    }
  }
  json.end_array();

  json.key("counters").begin_object();
  for (const auto& name : kGatedCounters) {
    json.field(name, obs::metrics().counter(name).value());
  }
  json.end_object();

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  json.field("wall_s", wall_s);
  json.end_object();

  table.print(std::cerr);
  std::cerr << "wall: " << wall_s << " s\n";

  std::cout << json.str() << '\n';
  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << argv[1] << '\n';
      return 1;
    }
    out << json.str() << '\n';
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << argv[1] << '\n';
      return 1;
    }
    std::cerr << "report written to " << argv[1] << '\n';
  }
  return 0;
}
