#pragma once
// Shared machinery for the experiment binaries: environment-driven knobs,
// per-(stencil, arch) cached artifacts (search space, candidate universe,
// performance dataset), and tuner construction matching §V-A2.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cstuner.hpp"

namespace cstuner::bench {

/// Experiment knobs, overridable via environment variables:
///   CSTUNER_REPEATS   repeats per method (paper: 10; default 5)
///   CSTUNER_UNIVERSE  candidate-universe size (default 20000)
///   CSTUNER_DATASET   performance-dataset size (default 128)
///   CSTUNER_BUDGET_S  iso-time virtual budget in seconds (default 100)
///   CSTUNER_STENCILS  comma-separated stencil subset (default: all eight)
struct BenchConfig {
  std::size_t repeats = 5;
  std::size_t universe_size = 20000;
  std::size_t dataset_size = 128;
  double budget_s = 100.0;
  std::size_t max_iterations = 10;
  std::vector<std::string> stencils;

  static BenchConfig from_env();
};

/// Cached per-(stencil, arch) experiment artifacts, shared across methods
/// and repeats so comparisons are on equal footing.
class ArtifactCache {
 public:
  struct Entry {
    stencil::StencilSpec spec;
    std::unique_ptr<space::SearchSpace> space;
    std::unique_ptr<gpusim::Simulator> simulator;
    std::vector<space::Setting> universe;
    tuner::PerfDataset dataset;
  };

  explicit ArtifactCache(const BenchConfig& config) : config_(config) {}

  /// Builds (or returns) the artifacts for one stencil on one GPU.
  const Entry& get(const std::string& stencil_name,
                   const std::string& arch_name);

 private:
  BenchConfig config_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

/// The four §V methods. `seed` varies across repeats.
std::unique_ptr<tuner::Tuner> make_tuner(const std::string& method,
                                         const BenchConfig& config,
                                         const ArtifactCache::Entry& entry,
                                         std::uint64_t seed);

inline const std::vector<std::string>& method_names() {
  static const std::vector<std::string> names = {"csTuner", "Garvey",
                                                 "OpenTuner", "Artemis"};
  return names;
}

/// Runs one tuning session and returns the evaluator (trace + best).
/// Fault injection is armed from the CSTUNER_FAULT_RATE environment knob
/// (the CI fault-storm gate runs the whole bench suite under it); the
/// resulting failure statistics ride along in `fault_stats`.
struct RunResult {
  tuner::ConvergenceTrace trace;
  double best_time_ms = 0.0;
  double virtual_time_s = 0.0;
  std::size_t evaluations = 0;
  std::size_t iterations = 0;
  tuner::FaultStats fault_stats;
};

RunResult run_tuning(const ArtifactCache::Entry& entry,
                     const std::string& method, const BenchConfig& config,
                     const tuner::StopCriteria& stop, std::uint64_t seed);

/// Standard GA options of the evaluation (§V-A2).
ga::GaOptions paper_ga_options();

}  // namespace cstuner::bench
