// Fig. 11: sensitivity of csTuner to the sampling ratio (5%..50%, stride
// 5%). Expected shape: 5% is the worst for about half the stencils; the
// middle range (15-40%) is stable thanks to the PMNF filter.

#include <iostream>

#include "common/table.hpp"
#include "harness.hpp"

using namespace cstuner;

int main() {
  const auto config = bench::BenchConfig::from_env();
  bench::ArtifactCache cache(config);
  std::cout << "=== Fig. 11: csTuner iso-time performance vs sampling ratio "
               "(A100, budget "
            << config.budget_s
            << " virtual s; values normalized to the best ratio per "
               "stencil) ===\n\n";

  std::vector<double> ratios;
  for (int p = 5; p <= 50; p += 5) ratios.push_back(p / 100.0);

  std::vector<std::string> header{"stencil"};
  for (double r : ratios) {
    header.push_back(TextTable::fmt(r * 100.0, 0) + "%");
  }
  TextTable table(std::move(header));

  for (const auto& name : config.stencils) {
    const auto& entry = cache.get(name, "a100");
    std::vector<double> finals;
    for (double ratio : ratios) {
      std::vector<double> bests;
      for (std::size_t r = 0; r < config.repeats; ++r) {
        core::CsTunerOptions options;
        options.dataset_size = config.dataset_size;
        options.universe_size = config.universe_size;
        options.sampling.ratio = ratio;
        options.ga = bench::paper_ga_options();
        options.seed = 4000 + r;
        core::CsTuner tuner(options);
        tuner.set_dataset(entry.dataset);
        tuner.set_universe(entry.universe);
        tuner::Evaluator evaluator(*entry.simulator, *entry.space, {},
                                   4000 + r);
        tuner::StopCriteria stop;
        stop.max_virtual_seconds = config.budget_s;
        tuner.tune(evaluator, stop);
        bests.push_back(evaluator.best_time_ms());
      }
      finals.push_back(tuner::mean_finite(bests));
    }
    double best_final = finals[0];
    for (double f : finals) best_final = std::min(best_final, f);
    std::vector<std::string> row{name};
    for (double f : finals) {
      row.push_back(TextTable::fmt(best_final / f, 3));  // perf, 1.0 = best
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
