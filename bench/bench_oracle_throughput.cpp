// Oracle-throughput gate for the batch evaluation pipeline
// (docs/performance.md). The benchmark embeds the pre-batch-oracle scalar
// pipeline — transcribed verbatim below under namespace `prepr` — and races
// it against Evaluator::evaluate_batch in the same process, interleaved
// round for round, so the speedup it reports is a ratio of two numbers
// measured under identical machine conditions rather than a comparison of
// wall readings from different runs.
//
// The replica doubles as the bit-identity oracle: it computes every mean
// time through the historical code path (per-run full profile, uncached
// 19-round setting hash, eager Box-Muller noise, unordered_map cache), so
// `scalar_batch_bit_identical` certifies that the SoA batch pipeline
// reproduces the original model bit for bit — not merely that two copies of
// the new code agree. A worker sweep (0/4/8 threads, clean and under a 20%
// fault storm) certifies that batch commit order keeps results independent
// of the worker count.
//
// Two throughput ratios are reported per stencil:
//   - oracle_speedup_x: the measurement kernel alone — pre-PR three full
//     profile() calls plus eager noise per setting, versus one batched
//     profile_times() pass plus lazy noise. This is the "oracle" the ISSUE
//     names (Simulator::profile is the hot path the PR targets).
//   - speedup_x: end-to-end Evaluator::evaluate_batch versus the replica
//     engine, including hashing, validation, caching and commit.
//
// Payload is byte-stable: determinism flags are 0/1 numerics and eval
// counts are exact, so the `cstuner report` comparator gates them at any
// tolerance; the speedup ratios are gated with a generous tolerance (CI
// uses --tol 25%); raw timings ride under "wall"-prefixed keys, which the
// comparator ignores.
//
// Usage: bench_oracle_throughput [out.json]   (JSON also goes to stdout)

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "codegen/cuda_codegen.hpp"
#include "common/json.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/compute_model.hpp"
#include "gpusim/fault_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/simulator.hpp"
#include "space/resource_model.hpp"
#include "space/search_space.hpp"
#include "space/setting.hpp"
#include "obs/obs.hpp"
#include "stencil/stencils.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fault.hpp"
#include "tuner/trace.hpp"

namespace prepr {
// ---------------------------------------------------------------------------
// The pre-batch-oracle evaluation pipeline, kept verbatim (modulo namespace
// qualification) from the last commit before the SoA refactor. Do not
// "fix" or modernise this code: it is the measurement baseline and the
// independent reference the bit-identity gate compares against.
// ---------------------------------------------------------------------------

using namespace cstuner;
using namespace cstuner::space;

// The pre-refactor build had these functions in separate translation units
// (setting.cpp, rng.cpp, memory_model.cpp, compute_model.cpp, simulator.cpp)
// with no LTO, so none of them could inline into the evaluator. noinline
// restores those call boundaries; without it the single-TU transcription
// measures 10-20% faster than the binary it replicates ever ran.

/// Setting::hash before memoization: re-chains all 19 rounds per call.
[[gnu::noinline]] std::uint64_t setting_hash(const Setting& s) {
  std::uint64_t h = 0x435354554e4552ULL;  // "CSTUNER"
  for (std::int64_t v : s.raw()) {
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

/// Rng seeding + Rng::normal before the lazy-second-draw change: both
/// Box-Muller values are computed eagerly and the sine half is stored for
/// the next call. The store goes through a volatile so the dead second
/// draw is actually paid for, as the original member write was.
[[gnu::noinline]] double seeded_eager_normal(std::uint64_t seed) {
  Rng rng(seed);
  double u1 = rng.uniform();
  while (u1 <= 1e-300) u1 = rng.uniform();
  const double u2 = rng.uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  volatile double cached_second = r * std::sin(theta);
  (void)cached_second;
  return r * std::cos(theta);
}

/// Taps reading each input array (rebuilt per profile call, as before).
std::map<int, int> taps_per_array(const stencil::StencilSpec& spec) {
  std::map<int, int> counts;
  for (const auto& t : spec.taps) ++counts[t.array];
  return counts;
}

[[gnu::noinline]] gpusim::MemoryAnalysis analyze_memory(
    const gpusim::GpuArch& arch, const stencil::StencilSpec& spec,
    const Setting& setting, const codegen::LaunchGeometry& geometry,
    const gpusim::OccupancyResult& occ) {
  gpusim::MemoryAnalysis m;
  const double points = static_cast<double>(spec.points());
  const bool shared = setting.flag(kUseShared);
  const bool streaming = setting.flag(kUseStreaming);
  const bool retiming = setting.flag(kUseRetiming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;

  const double tbx = static_cast<double>(setting.get(kTBx));
  const double bmx = static_cast<double>(setting.get(kBMx));
  double coal = 0.25 + 0.75 * std::min(1.0, tbx / 32.0);
  coal /= 1.0 + 0.75 * (std::min(bmx, 4.0) - 1.0);
  if (streaming && sd == 0) coal *= 0.5;
  m.coalescing_eff = clamp(coal, 0.25 / 2.0, 1.0);

  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  double tile_elems = 1.0;
  double tile_interior = 1.0;
  for (int d = 0; d < 3; ++d) {
    double extent;
    if (streaming && d == sd) {
      extent = static_cast<double>(2 * spec.order + 1);
      tile_interior *= 1.0;
    } else {
      const double interior = static_cast<double>(
          setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]));
      extent = interior + 2.0 * spec.order;
      tile_interior *= interior;
    }
    tile_elems *= extent;
  }
  const double halo_factor = tile_elems / std::max(tile_interior, 1.0);

  const double block_bytes =
      tile_elems * 8.0 * static_cast<double>(spec.n_inputs);
  const double sm_working_set =
      block_bytes * std::max(occ.blocks_per_sm, 1);
  double l1_fit = static_cast<double>(arch.l1_bytes_per_sm) /
                  std::max(sm_working_set, 1.0);
  m.l1_hit_rate = 0.80 * clamp(std::sqrt(l1_fit), 0.05, 1.0);
  m.l1_hit_rate *= 0.5 + 0.5 * m.coalescing_eff;

  const double plane_bytes = static_cast<double>(spec.grid[0]) *
                             static_cast<double>(spec.grid[1]) * 8.0 *
                             static_cast<double>(spec.n_inputs);
  const double l2_fit =
      static_cast<double>(arch.l2_bytes) / std::max(plane_bytes, 1.0);
  m.l2_hit_rate = 0.75 * clamp(l2_fit, 0.08, 1.0);

  const auto tap_counts = taps_per_array(spec);
  const std::int64_t staged = std::min<std::int64_t>(spec.n_inputs, 2);
  double dram_reads = 0.0;
  for (const auto& [array, taps] : tap_counts) {
    double reuse_misses = static_cast<double>(taps - 1);
    if (shared && array < staged) {
      reuse_misses *= 0.02;
    } else {
      if (streaming) reuse_misses *= 0.45;
      if (retiming && spec.order >= 2) reuse_misses *= 0.55;
      reuse_misses *= (1.0 - m.l1_hit_rate);
      reuse_misses *= (1.0 - m.l2_hit_rate);
    }
    const double compulsory =
        1.0 + (halo_factor - 1.0) * (1.0 - m.l2_hit_rate);
    dram_reads += points * 8.0 * (compulsory + reuse_misses);
  }
  dram_reads /= (0.25 + 0.75 * m.coalescing_eff);

  double dram_writes =
      points * 8.0 * static_cast<double>(spec.n_outputs);
  dram_writes /= (0.4 + 0.6 * m.coalescing_eff);

  m.dram_read_bytes = dram_reads;
  m.dram_write_bytes = dram_writes;

  const double hiding =
      clamp(0.14 + 1.5 * std::pow(occ.occupancy, 0.62), 0.06, 1.0);
  const double grid_fill =
      clamp(static_cast<double>(geometry.total_blocks()) /
                static_cast<double>(arch.num_sms),
            0.05, 1.0);
  m.achieved_dram_gbps = arch.dram_gbps * hiding * std::sqrt(grid_fill);

  const double dram_time_ms =
      (dram_reads + dram_writes) / (m.achieved_dram_gbps * 1e6);
  const double l2_traffic =
      (dram_reads + dram_writes) / std::max(1.0 - m.l2_hit_rate, 0.25);
  const double l2_time_ms = l2_traffic / (arch.l2_gbps * hiding * 1e6);
  m.mem_time_ms = std::max(dram_time_ms, l2_time_ms);
  return m;
}

[[gnu::noinline]] gpusim::ComputeAnalysis analyze_compute(
    const gpusim::GpuArch& arch, const stencil::StencilSpec& spec,
    const Setting& setting, const codegen::LaunchGeometry& geometry,
    const gpusim::OccupancyResult& occ) {
  gpusim::ComputeAnalysis c;
  const bool streaming = setting.flag(kUseStreaming);
  const bool prefetch = setting.flag(kUsePrefetching);
  const bool shared = setting.flag(kUseShared);
  const bool constant = setting.flag(kUseConstant);
  const bool retiming = setting.flag(kUseRetiming);

  const double unroll = static_cast<double>(
      setting.get(kUFx) * setting.get(kUFy) * setting.get(kUFz));
  const double merged = static_cast<double>(setting.points_per_thread());
  c.ilp = 1.0 + 0.22 * std::log2(unroll) + 0.08 * std::log2(merged);
  c.ilp = clamp(c.ilp, 1.0, 1.9);

  c.instr_overhead = 1.0 + 0.22 / std::sqrt(unroll);

  double lane_eff = 1.0;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  for (int d = 0; d < 3; ++d) {
    std::int64_t coverage;
    if (streaming && d == sd) {
      coverage = setting.get(kSB);
    } else {
      coverage = setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]);
    }
    const std::int64_t extent = spec.grid[static_cast<std::size_t>(d)];
    const std::int64_t covered =
        ceil_div<std::int64_t>(extent, coverage) * coverage;
    lane_eff *= static_cast<double>(extent) / static_cast<double>(covered);
  }
  c.divergence_eff = clamp(lane_eff, 0.3, 1.0);

  const double hiding = clamp(
      0.12 + 1.6 * std::pow(occ.occupancy * c.ilp, 0.65), 0.05, 1.0);

  double eff = hiding * c.divergence_eff / c.instr_overhead;

  if (constant) {
    eff *= (spec.taps.size() >= 20) ? 1.06 : 0.97;
  }
  if (retiming) {
    eff *= (spec.order >= 2) ? 1.07 : 0.95;
  }
  if (shared) eff *= 0.94;

  const double slots = static_cast<double>(arch.num_sms) *
                       std::max(occ.blocks_per_sm, 1);
  const double blocks = static_cast<double>(geometry.total_blocks());
  const double waves = std::ceil(blocks / slots);
  const double fill = blocks / (waves * slots);
  eff *= clamp(fill, 0.05, 1.0);

  c.fp64_eff = clamp(eff, 1e-4, 1.0);
  c.flop_time_ms = spec.total_flops() / (arch.fp64_gflops * c.fp64_eff) / 1e6;

  if (shared) {
    double syncs_per_block = 2.0;
    if (streaming) {
      syncs_per_block = static_cast<double>(setting.get(kSB)) + 1.0;
    }
    double sync_us = 0.9 * syncs_per_block * waves /
                     std::sqrt(static_cast<double>(
                         std::max(occ.blocks_per_sm, 1)));
    if (prefetch) sync_us *= 0.45;
    c.sync_time_ms = sync_us / 1e3;
  } else if (streaming && prefetch) {
    c.sync_time_ms = 0.0;
  }
  return c;
}

/// Simulator::profile before invariant hoisting: every call re-derives the
/// geometry partials, resource estimate, tap histogram and flop totals from
/// the spec, and assembles the full metric vector even when only the time
/// is consumed.
gpusim::KernelProfile profile(const gpusim::GpuArch& arch,
                              const stencil::StencilSpec& spec,
                              const Setting& setting) {
  gpusim::KernelProfile p;
  p.geometry = codegen::compute_launch_geometry(spec, setting);
  p.resources = space::estimate_resources(spec, setting);

  p.occupancy = gpusim::compute_occupancy(arch, p.geometry.threads_per_block(),
                                          p.resources.registers_per_thread,
                                          p.resources.shared_mem_per_block);
  if (p.occupancy.blocks_per_sm < 1) {
    throw ConstraintError(
        "kernel unlaunchable: zero blocks per SM for setting " +
        setting.to_string());
  }

  p.memory = prepr::analyze_memory(arch, spec, setting, p.geometry,
                                   p.occupancy);
  p.compute = prepr::analyze_compute(arch, spec, setting, p.geometry,
                                     p.occupancy);

  const double tf = static_cast<double>(setting.get(kTemporal));
  double flop_time = p.compute.flop_time_ms;
  double sync_time = p.compute.sync_time_ms;
  double mem_time = p.memory.mem_time_ms;
  if (tf > 1.0) {
    const double redundancy = 1.0 + 0.15 * spec.order * (tf - 1.0);
    flop_time *= tf * redundancy;
    sync_time *= tf;
    mem_time *= 1.0 + 0.10 * spec.order * (tf - 1.0);
  }

  const double longest = std::max(flop_time, mem_time);
  const double shortest = std::min(flop_time, mem_time);
  double time = longest + 0.18 * shortest;
  time += sync_time;
  time += arch.kernel_launch_us / 1e3;
  p.time_ms = time / tf;

  auto& m = p.metrics;
  m[gpusim::kAchievedOccupancy] = p.occupancy.occupancy;
  {
    const double slots = static_cast<double>(arch.num_sms) *
                         std::max(p.occupancy.blocks_per_sm, 1);
    const double blocks = static_cast<double>(p.geometry.total_blocks());
    const double waves = std::ceil(blocks / slots);
    m[gpusim::kWavesPerGrid] = waves;
    m[gpusim::kSmEfficiency] =
        clamp(blocks / (waves * slots), 0.0, 1.0) *
        clamp(static_cast<double>(p.geometry.total_blocks()) /
                  static_cast<double>(arch.num_sms),
              0.0, 1.0);
  }
  m[gpusim::kIpc] = p.compute.fp64_eff * p.compute.ilp;
  m[gpusim::kL1HitRate] = p.memory.l1_hit_rate;
  m[gpusim::kL2HitRate] = p.memory.l2_hit_rate;
  m[gpusim::kDramReadGb] = p.memory.dram_read_bytes / 1e9;
  m[gpusim::kDramWriteGb] = p.memory.dram_write_bytes / 1e9;
  m[gpusim::kDramThroughputGbps] =
      (p.memory.dram_read_bytes + p.memory.dram_write_bytes) / 1e6 /
      std::max(p.time_ms, 1e-9);
  m[gpusim::kGldEfficiency] = p.memory.coalescing_eff;
  m[gpusim::kSmemBytesPerBlock] =
      static_cast<double>(p.resources.shared_mem_per_block);
  m[gpusim::kRegistersPerThread] =
      static_cast<double>(p.resources.registers_per_thread);
  m[gpusim::kWarpExecEfficiency] = p.compute.divergence_eff;
  {
    const double total = p.compute.flop_time_ms + p.memory.mem_time_ms +
                         p.compute.sync_time_ms + 1e-12;
    m[gpusim::kStallMemoryRatio] = p.memory.mem_time_ms / total;
    m[gpusim::kStallSyncRatio] = p.compute.sync_time_ms / total;
  }
  m[gpusim::kFp64Efficiency] =
      spec.total_flops() / 1e6 / std::max(p.time_ms, 1e-9) /
      arch.fp64_gflops;
  return p;
}

std::uint64_t noise_seed(const gpusim::GpuArch& arch,
                         const stencil::StencilSpec& spec,
                         const Setting& setting, std::uint64_t run_index) {
  std::uint64_t h = fnv1a(arch.name.data(), arch.name.size());
  h = hash_combine(h, fnv1a(spec.name.data(), spec.name.size()));
  h = hash_combine(h, setting_hash(setting));
  h = hash_combine(h, run_index);
  return h;
}

[[gnu::noinline]] double measure_ms(const gpusim::GpuArch& arch,
                                    const stencil::StencilSpec& spec,
                                    const Setting& setting,
                                    std::uint64_t run_index) {
  const gpusim::KernelProfile p = profile(arch, spec, setting);
  const double z =
      clamp(seeded_eager_normal(noise_seed(arch, spec, setting, run_index)),
            -3.0, 3.0);
  return p.time_ms * (1.0 + 0.015 * z);
}

/// The historical evaluation engine, transcribed method for method from the
/// pre-refactor Evaluator (probe/commit phases, mutex-guarded unordered_map
/// cache shards, quarantine and fault-stats locks, observability counters,
/// trace bookkeeping). The fault pipeline is present but disarmed — exactly
/// the state the old engine ran its clean benchmarks in — so every lock,
/// branch and atomic of the old clean path is paid here too.
class ScalarEvaluator {
 public:
  ScalarEvaluator(const gpusim::GpuArch& arch,
                  const stencil::StencilSpec& spec,
                  const space::SearchSpace& space, std::uint64_t seed)
      : arch_(arch),
        spec_(spec),
        space_(space),
        run_salt_(hash_combine(seed, 0x4556414cULL)) {}

  std::vector<tuner::EvalResult> evaluate_batch(
      std::span<const Setting> settings) {
    CSTUNER_TRACE_SPAN("eval", "prepr.batch");
    CSTUNER_OBS_COUNT("prepr.batches", 1);
    CSTUNER_OBS_OBSERVE("prepr.batch_size", settings.size());
    const std::size_t n = settings.size();
    std::vector<tuner::EvalResult> results(n);
    std::vector<std::uint64_t> keys(n, 0);
    std::vector<Probe> probes(n);
    const int max_attempts = effective_max_attempts();

    const auto commit_phase = [&] {
      for (std::size_t i = 0; i < n; ++i) {
        results[i] = commit_one(keys[i], settings[i], probes[i]);
      }
    };

    const auto probe = [&](std::size_t i) {
      keys[i] = setting_hash(settings[i]);  // pre-memoization Setting::hash
      probes[i] = probe_one(keys[i], settings[i], max_attempts);
    };
    try {
      if (pool_ != nullptr) {
        pool_->parallel_for(n, probe);
      } else {
        for (std::size_t i = 0; i < n; ++i) probe(i);
      }
    } catch (...) {
      commit_phase();
      throw;
    }
    commit_phase();
    return results;
  }

  double best_time_ms() const { return best_time_ms_; }

 private:
  static constexpr double kTicksPerSecond = 1e12;
  static constexpr std::size_t kCacheShards = 16;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, tuner::EvalResult> map;
  };

  struct Probe {
    enum class State : std::uint8_t {
      kCached,
      kQuarantine,
      kInvalid,
      kMeasured,
    };
    State state = State::kInvalid;
    tuner::EvalResult result;
    std::int64_t overhead_ticks = 0;
    bool replayed = false;
  };

  static std::int64_t to_ticks(double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * kTicksPerSecond));
  }

  Shard& shard_for(std::uint64_t key) {
    return shards_[(key >> 56) & (kCacheShards - 1)];
  }

  bool cache_lookup(std::uint64_t key, tuner::EvalResult& value_out) {
    Shard& shard = shard_for(key);
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (const auto it = shard.map.find(key); it != shard.map.end()) {
        value_out = it->second;
        hit = true;
      }
    }
    if (hit) CSTUNER_OBS_COUNT("prepr.cache_hits", 1);
    return hit;
  }

  double measure(std::uint64_t key, const Setting& setting) const {
    CSTUNER_OBS_COUNT("prepr.measure_runs", costs_.runs_per_eval);
    double sum_ms = 0.0;
    for (int run = 0; run < costs_.runs_per_eval; ++run) {
      const auto run_index =
          hash_combine(run_salt_, key) + static_cast<std::uint64_t>(run);
      double ms = prepr::measure_ms(arch_, spec_, setting, run_index);
      if (injector_.has_value()) {
        ms *= injector_->noise_factor(key, static_cast<std::uint64_t>(run));
      }
      sum_ms += ms;
    }
    return sum_ms / costs_.runs_per_eval;
  }

  int effective_max_attempts() const {
    if (!std::isfinite(policy_.fault_budget_s)) return policy_.max_attempts;
    const auto spent = fault_overhead_ticks_.load(std::memory_order_acquire);
    return spent >= to_ticks(policy_.fault_budget_s) ? 1
                                                     : policy_.max_attempts;
  }

  Probe run_attempt_ladder(std::uint64_t key, const Setting& setting,
                           int max_attempts) const {
    (void)max_attempts;  // consumed by the (disarmed) fault ladder
    Probe probe;
    probe.state = Probe::State::kMeasured;
    if (!injector_.has_value()) {
      probe.result = {tuner::EvalStatus::kOk, measure(key, setting), 1};
      return probe;
    }
    // The armed ladder is unreachable here (the replica never arms the
    // injector); the clean-path costs above are what the gate measures.
    probe.result = {tuner::EvalStatus::kTransient,
                    std::numeric_limits<double>::infinity(), 1};
    return probe;
  }

  Probe probe_one(std::uint64_t key, const Setting& setting,
                  int max_attempts) {
    Probe probe;
    if (tuner::EvalResult cached; cache_lookup(key, cached)) {
      probe.state = Probe::State::kCached;
      probe.result = cached;
      return probe;
    }
    {
      std::lock_guard<std::mutex> lock(fault_mutex_);
      if (quarantine_.contains(key)) {
        probe.state = Probe::State::kQuarantine;
        probe.result = {tuner::EvalStatus::kQuarantined,
                        std::numeric_limits<double>::infinity(), 0};
        return probe;
      }
    }
    if (!space_.is_valid(setting)) {
      probe.state = Probe::State::kInvalid;
      probe.result = {tuner::EvalStatus::kInvalid,
                      std::numeric_limits<double>::infinity(), 0};
      return probe;
    }
    if (checkpoint_ != nullptr) {
      const auto& replay = checkpoint_->replay();
      if (const auto it = replay.find(key); it != replay.end()) {
        probe.state = Probe::State::kMeasured;
        probe.result = it->second.to_result();
        probe.overhead_ticks = it->second.overhead_ticks;
        probe.replayed = true;
        return probe;
      }
    }
    return run_attempt_ladder(key, setting, max_attempts);
  }

  tuner::EvalResult commit_one(std::uint64_t key, const Setting& setting,
                               const Probe& probe) {
    switch (probe.state) {
      case Probe::State::kCached:
      case Probe::State::kInvalid:
        return probe.result;
      case Probe::State::kQuarantine: {
        std::lock_guard<std::mutex> fault_lock(fault_mutex_);
        ++stats_.quarantine_hits;
        std::lock_guard<std::mutex> result_lock(result_mutex_);
        trace_.record_event(key, tuner::EvalStatus::kQuarantined, 0);
        return probe.result;
      }
      case Probe::State::kMeasured:
        break;
    }

    const tuner::EvalResult& result = probe.result;
    const bool cacheable =
        result.ok() || result.status == tuner::EvalStatus::kCompileFail ||
        result.status == tuner::EvalStatus::kCrash;
    {
      Shard& shard = shard_for(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (cacheable) {
        const auto [it, inserted] = shard.map.emplace(key, result);
        if (!inserted) return it->second;
      } else if (const auto it = shard.map.find(key);
                 it != shard.map.end()) {
        return it->second;
      }
    }

    bool quarantined_now = false;
    {
      std::lock_guard<std::mutex> lock(fault_mutex_);
      if (!cacheable && quarantine_.contains(key)) {
        ++stats_.quarantine_hits;
        tuner::EvalResult hit{tuner::EvalStatus::kQuarantined,
                              std::numeric_limits<double>::infinity(), 0};
        std::lock_guard<std::mutex> result_lock(result_mutex_);
        trace_.record_event(key, tuner::EvalStatus::kQuarantined, 0);
        return hit;
      }
      if (result.failed()) {
        if (cacheable) {
          quarantined_now = quarantine_.insert(key).second;
        } else {
          const int count = ++fail_counts_[key];
          if (count >= policy_.quarantine_threshold) {
            quarantined_now = quarantine_.insert(key).second;
          }
        }
        if (quarantined_now) ++stats_.quarantined_settings;
      }
      stats_.retries += result.attempts > 1 ? result.attempts - 1u : 0u;
      if (result.ok() && result.attempts > 1) ++stats_.recovered;
      if (probe.replayed) ++stats_.replayed;
    }
    if (result.failed()) CSTUNER_OBS_COUNT("prepr.failed", 1);

    if (probe.overhead_ticks != 0) {
      virtual_time_ticks_.fetch_add(probe.overhead_ticks,
                                    std::memory_order_acq_rel);
      fault_overhead_ticks_.fetch_add(probe.overhead_ticks,
                                      std::memory_order_acq_rel);
    }
    if (result.ok()) {
      const double cost_s = costs_.compile_s +
                            costs_.runs_per_eval * (result.time_ms / 1e3 +
                                                    costs_.launch_overhead_s);
      virtual_time_ticks_.fetch_add(to_ticks(cost_s),
                                    std::memory_order_acq_rel);
      unique_evals_.fetch_add(1, std::memory_order_acq_rel);
      CSTUNER_OBS_COUNT("prepr.evals", 1);
    }

    std::lock_guard<std::mutex> lock(result_mutex_);
    if (result.failed()) {
      trace_.record_event(key, result.status, result.attempts);
    } else if (result.attempts > 1) {
      trace_.record_event(key, tuner::EvalStatus::kOk, result.attempts);
    }
    if (result.ok() && result.time_ms < best_time_ms_) {
      best_time_ms_ = result.time_ms;
      best_setting_ = setting;
      trace_.record(0, unique_evals_.load(std::memory_order_acquire),
                    static_cast<double>(virtual_time_ticks_.load(
                        std::memory_order_acquire)) /
                        kTicksPerSecond,
                    best_time_ms_);
    }
    return result;
  }

  const gpusim::GpuArch& arch_;
  const stencil::StencilSpec& spec_;
  const space::SearchSpace& space_;
  tuner::EvalCosts costs_;
  std::uint64_t run_salt_;
  ThreadPool* pool_ = nullptr;
  std::optional<tuner::FaultInjector> injector_;
  tuner::RetryPolicy policy_;
  tuner::Checkpoint* checkpoint_ = nullptr;

  std::vector<Shard> shards_{kCacheShards};
  std::atomic<std::int64_t> virtual_time_ticks_{0};
  std::atomic<std::size_t> unique_evals_{0};
  std::atomic<std::int64_t> fault_overhead_ticks_{0};

  std::mutex fault_mutex_;
  tuner::FaultStats stats_;
  std::unordered_map<std::uint64_t, int> fail_counts_;
  std::unordered_set<std::uint64_t> quarantine_;

  std::mutex result_mutex_;
  double best_time_ms_ = std::numeric_limits<double>::infinity();
  std::optional<Setting> best_setting_;
  tuner::ConvergenceTrace trace_;
};

}  // namespace prepr

namespace {

using namespace cstuner;

constexpr std::size_t kUniverse = 4000;
constexpr int kRounds = 7;
constexpr std::uint64_t kUniverseSeed = 42;
constexpr std::uint64_t kEvalSeed = 1;

struct ResultBits {
  std::uint8_t status;
  std::uint8_t attempts;
  std::uint64_t time_bits;
  bool operator==(const ResultBits&) const = default;
};

std::vector<ResultBits> to_bits(const std::vector<tuner::EvalResult>& rs) {
  std::vector<ResultBits> out;
  out.reserve(rs.size());
  for (const auto& r : rs) {
    out.push_back({static_cast<std::uint8_t>(r.status), r.attempts,
                   std::bit_cast<std::uint64_t>(r.time_ms)});
  }
  return out;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One batch evaluation on a fresh engine; returns results + aggregates so
/// the worker sweep can compare everything commit order could disturb.
struct BatchRun {
  std::vector<ResultBits> results;
  std::uint64_t virtual_time_bits;
  std::uint64_t unique_evals;
  std::vector<std::uint64_t> quarantined;
  double seconds;
};

BatchRun run_batch(const gpusim::Simulator& sim,
                   const space::SearchSpace& space,
                   const std::vector<space::Setting>& universe,
                   ThreadPool* pool, const gpusim::FaultConfig* faults,
                   const std::string& scope) {
  tuner::Evaluator eval(sim, space, {}, kEvalSeed, pool);
  eval.reserve_cache(universe.size());
  if (faults != nullptr) eval.set_fault_injection(*faults, scope);
  const double t0 = now_s();
  const auto results = eval.evaluate_batch(universe);
  const double t1 = now_s();
  return {to_bits(results),
          std::bit_cast<std::uint64_t>(eval.virtual_time_s()),
          eval.unique_evaluations(), eval.quarantined_keys(), t1 - t0};
}

struct StencilReport {
  std::uint64_t valid_evals = 0;
  bool scalar_batch_bit_identical = true;
  bool workers_bit_identical = true;
  bool workers_faulted_bit_identical = true;
  bool oracle_bit_identical = true;
  double speedup = 0.0;
  double scalar_ns_per_eval = 0.0;
  double batch_ns_per_eval = 0.0;
  double oracle_speedup = 0.0;
  double oracle_scalar_ns_per_eval = 0.0;
  double oracle_batch_ns_per_eval = 0.0;
};

StencilReport run_stencil(const std::string& name,
                          const gpusim::GpuArch& arch) {
  const stencil::StencilSpec spec = stencil::make_stencil(name);
  space::SearchSpace space(spec);
  Rng rng(kUniverseSeed);
  const std::vector<space::Setting> universe =
      space.sample_universe(rng, kUniverse);
  gpusim::Simulator sim(arch);

  StencilReport rep;

  // --- Oracle subset: the settings the measurement kernel actually runs on
  // (valid and launchable). Built outside the timed regions; both oracle
  // pipelines get the identical subset, so the comparison is symmetric.
  std::vector<space::Setting> valid;
  std::vector<space::ResourceUsage> valid_usages;
  valid.reserve(universe.size());
  valid_usages.reserve(universe.size());
  for (const auto& s : universe) {
    space::ResourceUsage usage;
    if (!space.is_valid(s, &usage)) continue;
    const auto geom = codegen::compute_launch_geometry(spec, s);
    const auto occ = gpusim::compute_occupancy(
        arch, geom.threads_per_block(), usage.registers_per_thread,
        usage.shared_mem_per_block);
    if (occ.blocks_per_sm < 1) continue;
    valid.push_back(s);
    valid_usages.push_back(usage);
  }
  const auto& inv = sim.invariants(spec);
  const std::uint64_t run_salt = hash_combine(kEvalSeed, 0x4556414cULL);
  std::vector<double> oracle_times(valid.size());
  std::vector<double> oracle_old_means(valid.size());
  std::vector<double> oracle_new_means(valid.size());

  // --- Throughput: interleaved rounds, fresh engines, min-of-rounds. The
  // two pipelines alternate within one process so slow-machine phases (this
  // gate runs on shared CI cores) hit both sides alike; min-of-rounds then
  // discards scheduler noise that inflates individual rounds.
  double scalar_best_s = std::numeric_limits<double>::infinity();
  double batch_best_s = std::numeric_limits<double>::infinity();
  double oracle_old_best_s = std::numeric_limits<double>::infinity();
  double oracle_new_best_s = std::numeric_limits<double>::infinity();
  std::vector<tuner::EvalResult> scalar_results(universe.size());
  std::vector<ResultBits> batch_results;
  for (int round = 0; round < kRounds; ++round) {
    {
      prepr::ScalarEvaluator scalar(arch, spec, space, kEvalSeed);
      const double t0 = now_s();
      scalar_results = scalar.evaluate_batch(universe);
      scalar_best_s = std::min(scalar_best_s, now_s() - t0);
    }
    {
      BatchRun b = run_batch(sim, space, universe, nullptr, nullptr, name);
      batch_best_s = std::min(batch_best_s, b.seconds);
      batch_results = std::move(b.results);
    }
    // Oracle, pre-PR: per setting, three measure_ms calls — each a full
    // profile (geometry, resources, occupancy, memory, compute, the whole
    // metric vector) plus an uncached 19-round hash and an eager
    // Box-Muller draw — exactly what ScalarEvaluator::measure paid.
    {
      const double t0 = now_s();
      for (std::size_t i = 0; i < valid.size(); ++i) {
        const std::uint64_t key = prepr::setting_hash(valid[i]);
        const std::uint64_t base_run = hash_combine(run_salt, key);
        double sum_ms = 0.0;
        for (std::uint64_t run = 0; run < 3; ++run) {
          sum_ms += prepr::measure_ms(arch, spec, valid[i], base_run + run);
        }
        oracle_old_means[i] = sum_ms / 3;
      }
      oracle_old_best_s = std::min(oracle_old_best_s, now_s() - t0);
    }
    // Oracle, this PR: one batched profile_times pass over the SoA arena
    // (hoisted invariants, reused usages, times only), then three lazy
    // noise draws per setting from the premixed seed.
    {
      const double t0 = now_s();
      sim.profile_times(inv, valid, valid_usages, oracle_times);
      for (std::size_t i = 0; i < valid.size(); ++i) {
        const std::uint64_t key = valid[i].hash();
        const std::uint64_t base_run = hash_combine(run_salt, key);
        const std::uint64_t premixed =
            hash_combine(inv.noise_seed_prefix, key);
        double sum_ms = 0.0;
        for (std::uint64_t run = 0; run < 3; ++run) {
          sum_ms += gpusim::Simulator::noisy_time_from(
              premixed, oracle_times[i], base_run + run);
        }
        oracle_new_means[i] = sum_ms / 3;
      }
      oracle_new_best_s = std::min(oracle_new_best_s, now_s() - t0);
    }
  }
  const double n = static_cast<double>(universe.size());
  const double nv = static_cast<double>(valid.size());
  rep.scalar_ns_per_eval = scalar_best_s / n * 1e9;
  rep.batch_ns_per_eval = batch_best_s / n * 1e9;
  rep.speedup = scalar_best_s / batch_best_s;
  rep.oracle_scalar_ns_per_eval = oracle_old_best_s / nv * 1e9;
  rep.oracle_batch_ns_per_eval = oracle_new_best_s / nv * 1e9;
  rep.oracle_speedup = oracle_old_best_s / oracle_new_best_s;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(oracle_old_means[i]) !=
        std::bit_cast<std::uint64_t>(oracle_new_means[i])) {
      rep.oracle_bit_identical = false;
    }
  }

  // --- Bit-identity: the historical pipeline and the batch oracle must
  // agree on every status and every time, bit for bit.
  const auto scalar_bits = to_bits(scalar_results);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (scalar_bits[i].status ==
        static_cast<std::uint8_t>(tuner::EvalStatus::kOk)) {
      ++rep.valid_evals;
    }
    if (scalar_bits[i].status != batch_results[i].status ||
        scalar_bits[i].time_bits != batch_results[i].time_bits) {
      rep.scalar_batch_bit_identical = false;
    }
  }

  // --- Worker sweep: serial, 4 and 8 workers must commit identical bits,
  // clean and under a 20% fault storm (retries, quarantine, penalties).
  const BatchRun serial = run_batch(sim, space, universe, nullptr, nullptr,
                                    name);
  const gpusim::FaultConfig storm = gpusim::FaultConfig::uniform(0.20);
  const BatchRun serial_faulted =
      run_batch(sim, space, universe, nullptr, &storm, name);
  for (const std::size_t workers : {std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(workers);
    const BatchRun clean = run_batch(sim, space, universe, &pool, nullptr,
                                     name);
    if (clean.results != serial.results ||
        clean.virtual_time_bits != serial.virtual_time_bits ||
        clean.unique_evals != serial.unique_evals) {
      rep.workers_bit_identical = false;
    }
    const BatchRun faulted =
        run_batch(sim, space, universe, &pool, &storm, name);
    if (faulted.results != serial_faulted.results ||
        faulted.virtual_time_bits != serial_faulted.virtual_time_bits ||
        faulted.quarantined != serial_faulted.quarantined) {
      rep.workers_faulted_bit_identical = false;
    }
  }
  if (serial.results != batch_results) rep.scalar_batch_bit_identical = false;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> stencils = {"j3d7pt", "helmholtz"};
  const gpusim::GpuArch& arch = gpusim::a100();

  const auto wall_start = std::chrono::steady_clock::now();

  JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("universe", static_cast<std::uint64_t>(kUniverse));
  json.field("rounds", static_cast<std::uint64_t>(kRounds));
  json.field("universe_seed", kUniverseSeed);
  json.field("eval_seed", kEvalSeed);
  json.field("arch", arch.name);
  json.end_object();

  TextTable table({"stencil", "scalar ns/eval", "batch ns/eval", "e2e x",
                   "oracle x", "bit-identical"});
  bool all_identical = true;
  json.key("results").begin_array();
  for (const auto& name : stencils) {
    const StencilReport rep = run_stencil(name, arch);
    const bool identical = rep.scalar_batch_bit_identical &&
                           rep.workers_bit_identical &&
                           rep.workers_faulted_bit_identical &&
                           rep.oracle_bit_identical;
    all_identical = all_identical && identical;
    json.begin_object();
    json.field("stencil", name);
    json.field("valid_evals", rep.valid_evals);
    json.field("scalar_batch_bit_identical",
               rep.scalar_batch_bit_identical ? 1 : 0);
    json.field("workers_bit_identical", rep.workers_bit_identical ? 1 : 0);
    json.field("workers_faulted_bit_identical",
               rep.workers_faulted_bit_identical ? 1 : 0);
    json.field("oracle_bit_identical", rep.oracle_bit_identical ? 1 : 0);
    json.field("speedup_x", rep.speedup);
    json.field("oracle_speedup_x", rep.oracle_speedup);
    json.field("wall_scalar_ns_per_eval", rep.scalar_ns_per_eval);
    json.field("wall_batch_ns_per_eval", rep.batch_ns_per_eval);
    json.field("wall_oracle_scalar_ns_per_eval",
               rep.oracle_scalar_ns_per_eval);
    json.field("wall_oracle_batch_ns_per_eval", rep.oracle_batch_ns_per_eval);
    json.end_object();
    table.add_row({name, TextTable::fmt(rep.scalar_ns_per_eval, 0),
                   TextTable::fmt(rep.batch_ns_per_eval, 0),
                   TextTable::fmt(rep.speedup, 2),
                   TextTable::fmt(rep.oracle_speedup, 2),
                   identical ? "yes" : "NO"});
  }
  json.end_array();
  json.field("all_bit_identical", all_identical ? 1 : 0);

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  json.field("wall_s", wall_s);
  json.end_object();

  table.print(std::cerr);
  std::cerr << "wall: " << wall_s << " s\n";

  std::cout << json.str() << '\n';
  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << argv[1] << '\n';
      return 1;
    }
    out << json.str() << '\n';
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << argv[1] << '\n';
      return 1;
    }
    std::cerr << "report written to " << argv[1] << '\n';
  }
  return !all_identical;
}
