// Component micro-benchmarks (google-benchmark): throughput of the pieces
// the auto-tuning pipeline leans on. Not a paper figure; used to verify the
// framework itself stays out of the way (cf. §V-F overhead discussion).

#include <benchmark/benchmark.h>

#include "core/grouping.hpp"
#include "core/sampling.hpp"
#include "cstuner.hpp"

using namespace cstuner;

namespace {

const stencil::StencilSpec& bench_spec() {
  static const auto spec = stencil::make_stencil("j3d7pt");
  return spec;
}

space::SearchSpace& bench_space() {
  static space::SearchSpace space(bench_spec());
  return space;
}

space::Setting valid_setting() {
  Rng rng(99);
  return bench_space().random_valid(rng);
}

}  // namespace

static void BM_ConstraintCheck(benchmark::State& state) {
  const auto s = valid_setting();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench_space().is_valid(s));
  }
}
BENCHMARK(BM_ConstraintCheck);

static void BM_SimulatorProfile(benchmark::State& state) {
  gpusim::Simulator sim(gpusim::a100());
  const auto s = valid_setting();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.profile(bench_spec(), s).time_ms);
  }
}
BENCHMARK(BM_SimulatorProfile);

static void BM_RandomValidSetting(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench_space().random_valid(rng));
  }
}
BENCHMARK(BM_RandomValidSetting);

static void BM_KernelCodegen(benchmark::State& state) {
  const auto spec =
      stencil::make_stencil(state.range(0) == 0 ? "j3d7pt" : "rhs4center");
  space::SearchSpace space(spec);
  Rng rng(13);
  const auto s = space.random_valid(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::generate_kernel(spec, s).source);
  }
}
BENCHMARK(BM_KernelCodegen)->Arg(0)->Arg(1);

static void BM_PairCvGrouping(benchmark::State& state) {
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(3);
  const auto dataset = tuner::collect_dataset(bench_space(), sim, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::group_parameters(bench_space(), dataset));
  }
}
BENCHMARK(BM_PairCvGrouping);

static void BM_PmnfFit(benchmark::State& state) {
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(3);
  const auto dataset = tuner::collect_dataset(bench_space(), sim, 128, rng);
  const auto groups = core::group_parameters(bench_space(), dataset);
  const auto x = dataset.feature_matrix();
  const regress::PmnfFitter fitter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fitter.fit_best(x, dataset.times_ms, groups).rse);
  }
}
BENCHMARK(BM_PmnfFit);

static void BM_GaGeneration(benchmark::State& state) {
  // One full island-GA run of a few generations over a synthetic fitness.
  for (auto _ : state) {
    ga::GaOptions options;
    options.sub_populations = 2;
    options.population_size = 16;
    options.max_generations = 5;
    options.seed = 21;
    ga::IslandGa island({64, 64, 64}, options);
    auto result = island.run(
        [](const ga::Genome& g) {
          double f = 0.0;
          for (auto v : g) f -= static_cast<double>(v) * v;
          return f;
        },
        [](const ga::GaState&) { return false; });
    benchmark::DoNotOptimize(result.best_fitness);
  }
}
BENCHMARK(BM_GaGeneration);

static void BM_TiledExecutorSweep(benchmark::State& state) {
  const auto spec = stencil::scaled_stencil("j3d7pt", 32);
  space::SearchSpace space(spec);
  Rng rng(31);
  const auto setting = space.random_valid(rng);
  auto grids = stencil::make_grids(spec);
  for (auto _ : state) {
    exec::run_tiled(spec, setting, grids.inputs, grids.outputs);
    benchmark::DoNotOptimize(grids.outputs[0].at(0, 0, 0));
  }
}
BENCHMARK(BM_TiledExecutorSweep);

BENCHMARK_MAIN();
