#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "stencil/reference_kernel.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::stencil {
namespace {

TEST(StencilSuite, AllEightStencilsExist) {
  EXPECT_EQ(stencil_names().size(), 8u);
  for (const auto& name : stencil_names()) {
    EXPECT_EQ(make_stencil(name).name, name);
  }
}

TEST(StencilSuite, UnknownNameThrows) {
  EXPECT_THROW(make_stencil("nosuch"), UsageError);
}

/// Table III rows, verbatim from the paper.
struct TableIIIRow {
  const char* name;
  int grid;
  int order;
  int flops;
  int io_arrays;
};

class TableIIITest : public ::testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIIITest, MatchesPaper) {
  const auto& row = GetParam();
  const auto spec = make_stencil(row.name);
  EXPECT_EQ(spec.grid[0], row.grid);
  EXPECT_EQ(spec.grid[1], row.grid);
  EXPECT_EQ(spec.grid[2], row.grid);
  EXPECT_EQ(spec.order, row.order);
  EXPECT_EQ(spec.flops, row.flops);
  EXPECT_EQ(spec.io_arrays, row.io_arrays);
  EXPECT_EQ(spec.n_inputs + spec.n_outputs, spec.io_arrays);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableIIITest,
    ::testing::Values(TableIIIRow{"j3d7pt", 512, 1, 10, 2},
                      TableIIIRow{"j3d27pt", 512, 1, 32, 2},
                      TableIIIRow{"helmholtz", 512, 2, 17, 2},
                      TableIIIRow{"cheby", 512, 1, 38, 5},
                      TableIIIRow{"hypterm", 320, 4, 358, 13},
                      TableIIIRow{"addsgd4", 320, 2, 373, 10},
                      TableIIIRow{"addsgd6", 320, 3, 626, 10},
                      TableIIIRow{"rhs4center", 320, 2, 666, 8}),
    [](const auto& info) { return std::string(info.param.name); });

class StencilShapeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StencilShapeTest, TapsRespectOrder) {
  const auto spec = make_stencil(GetParam());
  int max_offset = 0;
  for (const auto& t : spec.taps) {
    max_offset = std::max({max_offset, std::abs(t.dx), std::abs(t.dy),
                           std::abs(t.dz)});
    EXPECT_GE(t.array, 0);
    EXPECT_LT(t.array, spec.n_inputs);
  }
  EXPECT_EQ(max_offset, spec.order);
}

TEST_P(StencilShapeTest, EveryInputArrayIsRead) {
  const auto spec = make_stencil(GetParam());
  std::set<int> arrays;
  for (const auto& t : spec.taps) arrays.insert(t.array);
  EXPECT_EQ(arrays.size(), static_cast<std::size_t>(spec.n_inputs));
}

TEST_P(StencilShapeTest, DerivedQuantitiesConsistent) {
  const auto spec = make_stencil(GetParam());
  EXPECT_GT(spec.points(), 0);
  EXPECT_DOUBLE_EQ(spec.total_flops(),
                   static_cast<double>(spec.flops) *
                       static_cast<double>(spec.points()));
  EXPECT_GT(spec.arithmetic_intensity(), 0.0);
  // Centre tap present for every input 0 pattern.
  bool has_center = false;
  for (const auto& t : spec.taps) {
    if (t.dx == 0 && t.dy == 0 && t.dz == 0) has_center = true;
  }
  EXPECT_TRUE(has_center);
}

INSTANTIATE_TEST_SUITE_P(AllStencils, StencilShapeTest,
                         ::testing::ValuesIn(stencil_names()),
                         [](const auto& info) { return info.param; });

TEST(TapBuilders, StarTapCount) {
  EXPECT_EQ(make_star_taps(1, 0, 1.0).size(), 7u);
  EXPECT_EQ(make_star_taps(2, 0, 1.0).size(), 13u);
  EXPECT_EQ(make_star_taps(4, 0, 1.0).size(), 25u);
}

TEST(TapBuilders, BoxTapCount) {
  EXPECT_EQ(make_box_taps(0, 1.0).size(), 27u);
}

TEST(Grid3, IndexingRoundTrip) {
  Grid3 g(4, 5, 6, 2);
  g.at(-2, -2, -2) = 1.5;
  g.at(3, 4, 5) = 2.5;
  g.at(5, 6, 7) = 3.5;  // halo corner
  EXPECT_DOUBLE_EQ(g.at(-2, -2, -2), 1.5);
  EXPECT_DOUBLE_EQ(g.at(3, 4, 5), 2.5);
  EXPECT_DOUBLE_EQ(g.at(5, 6, 7), 3.5);
}

TEST(Grid3, OutOfHaloThrows) {
  Grid3 g(4, 4, 4, 1);
  EXPECT_THROW(g.at(-2, 0, 0), Error);
  EXPECT_THROW(g.at(0, 5, 0), Error);
}

TEST(Grid3, FillPatternDeterministicAndSaltDependent) {
  Grid3 a(4, 4, 4, 1), b(4, 4, 4, 1), c(4, 4, 4, 1);
  a.fill_pattern(1);
  b.fill_pattern(1);
  c.fill_pattern(2);
  EXPECT_DOUBLE_EQ(Grid3::max_abs_diff(a, b), 0.0);
  EXPECT_GT(Grid3::max_abs_diff(a, c), 0.0);
}

TEST(Grid3, PatternValuesBounded) {
  Grid3 g(6, 6, 6, 2);
  g.fill_pattern(3);
  for (int z = -2; z < 8; ++z) {
    for (int y = -2; y < 8; ++y) {
      for (int x = -2; x < 8; ++x) {
        EXPECT_GE(g.at(x, y, z), 0.5);
        EXPECT_LT(g.at(x, y, z), 1.5);
      }
    }
  }
}

TEST(ReferenceKernel, ConstantInputStarGivesWeightSum) {
  auto spec = scaled_stencil("j3d7pt", 8);
  GridSet grids = make_grids(spec);
  grids.inputs[0].fill(1.0);
  run_reference(spec, grids.inputs, grids.outputs);
  // With input == 1, each point is the sum of tap weights, then the
  // pointwise rounds — identical at every point.
  const double v0 = grids.outputs[0].at(0, 0, 0);
  EXPECT_DOUBLE_EQ(grids.outputs[0].at(4, 4, 4), v0);
  double weight_sum = 0.0;
  for (const auto& t : spec.taps) weight_sum += t.weight;
  // No pointwise rounds change for j3d7pt? apply same rounds:
  double expected = weight_sum;
  for (int r = 0; r < pointwise_rounds(spec); ++r) {
    expected = expected * 1.0000001 + 1e-12;
  }
  EXPECT_NEAR(v0, expected, 1e-12);
}

TEST(ReferenceKernel, OutputArraysScaleInversely) {
  auto spec = scaled_stencil("cheby", 8);
  GridSet grids = make_grids(spec);
  run_reference(spec, grids.inputs, grids.outputs);
  // Output o is scaled by 1/(o+1) before the pointwise rounds; with zero
  // rounds they would be exactly proportional. Allow the rounds' epsilon.
  const double a = grids.outputs[0].at(3, 3, 3);
  const double b = grids.outputs[1].at(3, 3, 3);
  EXPECT_NEAR(a / b, 2.0, 1e-4);
}

TEST(ReferenceKernel, PointwiseRoundsMatchFlopBudget) {
  for (const auto& name : stencil_names()) {
    const auto spec = make_stencil(name);
    const int from_taps =
        static_cast<int>(spec.taps.size()) * 2 * spec.n_outputs;
    if (from_taps >= spec.flops) {
      EXPECT_EQ(pointwise_rounds(spec), 0) << name;
    } else {
      EXPECT_GT(pointwise_rounds(spec), 0) << name;
    }
  }
}

TEST(ScaledStencil, PreservesPatternShrinksGrid) {
  const auto spec = scaled_stencil("hypterm", 24);
  const auto full = make_stencil("hypterm");
  EXPECT_EQ(spec.grid[0], 24);
  EXPECT_EQ(spec.taps.size(), full.taps.size());
  EXPECT_EQ(spec.flops, full.flops);
}

TEST(ScaledStencil, TooSmallForOrderThrows) {
  EXPECT_THROW(scaled_stencil("hypterm", 6), Error);
}

}  // namespace
}  // namespace cstuner::stencil
