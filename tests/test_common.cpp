#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace cstuner {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == child.next());
  EXPECT_LT(equal, 4);
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Hash, Fnv1aStableAndDistinct) {
  const std::string a = "hello", b = "hellp";
  EXPECT_EQ(fnv1a(a.data(), a.size()), fnv1a(a.data(), a.size()));
  EXPECT_NE(fnv1a(a.data(), a.size()), fnv1a(b.data(), b.size()));
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(MathUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(MathUtil, Pow2Range) {
  EXPECT_EQ(pow2_range(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pow2_range(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(pow2_range(100),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(MathUtil, Clamp) {
  EXPECT_EQ(clamp(5, 0, 10), 5);
  EXPECT_EQ(clamp(-1, 0, 10), 0);
  EXPECT_EQ(clamp(11, 0, 10), 10);
}

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    CSTUNER_CHECK_MSG(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConstraintError("x"), Error);
  EXPECT_THROW(throw NumericError("x"), Error);
  EXPECT_THROW(throw UsageError("x"), Error);
}

TEST(Table, AlignedPrintContainsAllCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2.5"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  for (const char* needle : {"name", "value", "alpha", "beta", "2.5"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
}

TEST(Table, CsvFormat) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt_pct(0.1234, 1), "12.3%");
}

TEST(Logging, LevelGatesOutput) {
  auto& logger = Logger::instance();
  const auto saved = logger.level();
  logger.set_level(LogLevel::kOff);
  CSTUNER_ERROR << "this must not crash even when gated";
  logger.set_level(saved);
  SUCCEED();
}

}  // namespace
}  // namespace cstuner
