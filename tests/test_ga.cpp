#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>

#include "common/error.hpp"
#include "ga/island_ga.hpp"

namespace cstuner::ga {
namespace {

TEST(Gene, BitWidth) {
  EXPECT_EQ(gene_bits(1), 1);
  EXPECT_EQ(gene_bits(2), 1);
  EXPECT_EQ(gene_bits(3), 2);
  EXPECT_EQ(gene_bits(4), 2);
  EXPECT_EQ(gene_bits(5), 3);
  EXPECT_EQ(gene_bits(1024), 10);
}

TEST(Gene, MutationStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto v = mutate_gene(3, 5, 0.5, rng);
    EXPECT_LT(v, 5u);
  }
}

TEST(Gene, ZeroRateIsIdentity) {
  Rng rng(2);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(mutate_gene(v, 8, 0.0, rng), v);
  }
}

TEST(Gene, HighRateActuallyMutates) {
  Rng rng(3);
  int changed = 0;
  for (int i = 0; i < 200; ++i) changed += (mutate_gene(0, 16, 0.5, rng) != 0);
  EXPECT_GT(changed, 100);
}

TEST(Gene, CrossoverTakesGenesFromParents) {
  Rng rng(4);
  const Genome a = {0, 0, 0, 0, 0, 0, 0, 0};
  const Genome b = {1, 1, 1, 1, 1, 1, 1, 1};
  bool saw_a = false, saw_b = false;
  for (int i = 0; i < 20; ++i) {
    const auto child = uniform_crossover(a, b, rng);
    for (auto g : child) {
      EXPECT_TRUE(g == 0 || g == 1);
      saw_a |= (g == 0);
      saw_b |= (g == 1);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Gene, RandomGenomeRespectsCardinalities) {
  Rng rng(5);
  const std::vector<std::uint32_t> cards = {1, 2, 10, 100};
  for (int i = 0; i < 100; ++i) {
    const auto g = random_genome(cards, rng);
    ASSERT_EQ(g.size(), 4u);
    for (std::size_t d = 0; d < 4; ++d) EXPECT_LT(g[d], cards[d]);
  }
}

TEST(Gene, MutateGenomeKeepsEveryGeneValid) {
  Rng rng(6);
  const std::vector<std::uint32_t> cards = {3, 7, 16};
  Genome g = {2, 6, 15};
  for (int i = 0; i < 500; ++i) {
    mutate_genome(g, cards, 0.2, rng);
    for (std::size_t d = 0; d < 3; ++d) EXPECT_LT(g[d], cards[d]);
  }
}

GaOptions small_options() {
  GaOptions o;
  o.sub_populations = 2;
  o.population_size = 8;
  o.max_generations = 40;
  o.seed = 9;
  return o;
}

TEST(IslandGa, MaximizesSimpleUnimodalFitness) {
  // Fitness peaks at gene values (17, 3).
  GaOptions o = small_options();
  o.max_generations = 300;
  o.mutation_rate = 0.05;  // small space: mutate aggressively
  IslandGa island({32, 8}, o);
  const auto result = island.run(
      [](const Genome& g) {
        const double dx = static_cast<double>(g[0]) - 17.0;
        const double dy = static_cast<double>(g[1]) - 3.0;
        return -(dx * dx + dy * dy);
      },
      [](const GaState& state) { return state.best_fitness == 0.0; });
  EXPECT_EQ(result.best[0], 17u);
  EXPECT_EQ(result.best[1], 3u);
  EXPECT_DOUBLE_EQ(result.best_fitness, 0.0);
}

TEST(IslandGa, StopPredicateHaltsEvolution) {
  IslandGa island({64}, small_options());
  const auto result = island.run(
      [](const Genome&) { return 1.0; },
      [](const GaState& state) { return state.generation >= 3; });
  EXPECT_EQ(result.generations, 3u);
}

TEST(IslandGa, MaxGenerationsCapRespected) {
  GaOptions o = small_options();
  o.max_generations = 5;
  IslandGa island({64}, o);
  const auto result = island.run([](const Genome&) { return 0.5; },
                                 [](const GaState&) { return false; });
  EXPECT_EQ(result.generations, 5u);
}

TEST(IslandGa, StateContainsAllSubpopulationFitnesses) {
  GaOptions o = small_options();
  o.sub_populations = 3;
  o.population_size = 4;
  IslandGa island({16}, o);
  std::size_t observed = 0;
  island.run([](const Genome& g) { return static_cast<double>(g[0]); },
             [&](const GaState& state) {
               observed = state.fitnesses.size();
               // Sorted descending.
               for (std::size_t i = 1; i < state.fitnesses.size(); ++i) {
                 EXPECT_LE(state.fitnesses[i], state.fitnesses[i - 1]);
               }
               return true;
             });
  EXPECT_EQ(observed, 12u);
}

TEST(IslandGa, BatchFitnessReceivesWholeGenerations) {
  GaOptions o = small_options();
  o.sub_populations = 4;
  o.max_generations = 3;
  IslandGa island({32}, o);
  // Islands evaluate concurrently (one minimpi rank thread each), so the
  // batch callback must be thread-safe — here it only touches atomics.
  std::atomic<int> batches{0};
  std::atomic<int> genomes_seen{0};
  island.run(
      [&](const std::vector<Genome>& genomes) {
        EXPECT_EQ(genomes.size(), 8u);  // one island's population at a time
        batches.fetch_add(1);
        genomes_seen.fetch_add(static_cast<int>(genomes.size()));
        std::vector<double> fitnesses;
        fitnesses.reserve(genomes.size());
        for (const auto& g : genomes) {
          fitnesses.push_back(static_cast<double>(g[0]));
        }
        return fitnesses;
      },
      [](const GaState&) { return false; });
  // 4 islands x (1 initial + 3 generations) batches of 8 genomes each.
  EXPECT_EQ(batches.load(), 16);
  EXPECT_EQ(genomes_seen.load(), 128);
}

TEST(IslandGa, BatchAndScalarFitnessAgree) {
  auto fitness = [](const Genome& g) {
    return -std::fabs(static_cast<double>(g[0]) * 0.3 -
                      static_cast<double>(g[1]));
  };
  IslandGa scalar_island({64, 16}, small_options());
  const auto scalar = scalar_island.run(
      fitness, [](const GaState& state) { return state.generation >= 8; });
  IslandGa batch_island({64, 16}, small_options());
  const auto batch = batch_island.run(
      [&](const std::vector<Genome>& genomes) {
        std::vector<double> fitnesses;
        fitnesses.reserve(genomes.size());
        for (const auto& g : genomes) fitnesses.push_back(fitness(g));
        return fitnesses;
      },
      [](const GaState& state) { return state.generation >= 8; });
  // The scalar overload is a wrapper over the batch one; identical seeds
  // must give identical evolution.
  EXPECT_EQ(scalar.best, batch.best);
  EXPECT_DOUBLE_EQ(scalar.best_fitness, batch.best_fitness);
  EXPECT_EQ(scalar.generations, batch.generations);
}

TEST(IslandGa, MigrationSpreadsEliteAcrossIslands) {
  // One island will find the optimum quickly; with migration every
  // generation, the global best must reach fitness 0 fast even with a tiny
  // per-island population.
  GaOptions o;
  o.sub_populations = 4;
  o.population_size = 6;
  o.max_generations = 200;
  o.migrants = 2;
  o.mutation_rate = 0.05;
  o.seed = 77;
  IslandGa island({64}, o);
  const auto result = island.run(
      [](const Genome& g) {
        return -std::fabs(static_cast<double>(g[0]) - 42.0);
      },
      [](const GaState& state) { return state.best_fitness == 0.0; });
  EXPECT_DOUBLE_EQ(result.best_fitness, 0.0);
  EXPECT_LT(result.generations, 200u);
}

TEST(IslandGa, SingleValueGenesSupported) {
  // A degenerate dimension (cardinality 1) must not break anything.
  IslandGa island({1, 4}, small_options());
  const auto result = island.run(
      [](const Genome& g) { return static_cast<double>(g[1]); },
      [](const GaState& state) { return state.best_fitness == 3.0; });
  EXPECT_EQ(result.best[0], 0u);
  EXPECT_EQ(result.best[1], 3u);
}

TEST(IslandGa, DeterministicForFixedSeed) {
  auto run_once = [] {
    IslandGa island({128, 128}, small_options());
    return island.run(
        [](const Genome& g) {
          return -std::fabs(static_cast<double>(g[0]) * 0.7 -
                            static_cast<double>(g[1]));
        },
        [](const GaState& state) { return state.generation >= 10; });
  };
  const auto a = run_once();
  const auto b = run_once();
  // Thread interleaving does not affect the GA itself (per-rank RNG streams
  // and synchronous generations), so results must match exactly.
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(IslandGa, CustomInitializerSeedsPopulation) {
  GaOptions o = small_options();
  o.max_generations = 1;
  o.mutation_rate = 0.0;
  o.crossover_rate = 0.0;  // children are clones of their slot
  o.initializer = [](Rng&) { return Genome{7}; };
  IslandGa island({16}, o);
  const auto result = island.run(
      [](const Genome& g) { return static_cast<double>(g[0]); },
      [](const GaState&) { return true; });
  // With no variation operators, the seeded genome survives verbatim.
  EXPECT_EQ(result.best[0], 7u);
}

TEST(IslandGa, MigrationIntervalRespected) {
  // With a huge interval, islands never exchange individuals; the run must
  // still complete and return a best.
  GaOptions o = small_options();
  o.migration_interval = 1000;
  o.max_generations = 5;
  IslandGa island({32}, o);
  const auto result = island.run(
      [](const Genome& g) { return -static_cast<double>(g[0]); },
      [](const GaState&) { return false; });
  EXPECT_EQ(result.generations, 5u);
}

TEST(IslandGa, InvalidOptionsRejected) {
  EXPECT_THROW(IslandGa({}, small_options()), Error);
  EXPECT_THROW(IslandGa({0}, small_options()), Error);
  GaOptions bad = small_options();
  bad.population_size = 1;
  EXPECT_THROW(IslandGa({4}, bad), Error);
}

// --- Rank-failure recovery: ring healing, elite adoption, degradation.

/// Kill predicate for a fixed plan (the FaultInjector provides the real,
/// one-shot implementation; the GA-level tests use a pure function).
KillPredicate plan_kills(std::vector<tuner::RankKill> plan) {
  return [plan](int rank, std::uint64_t generation) {
    for (const auto& kill : plan) {
      if (kill.rank == rank && kill.generation == generation) return true;
    }
    return false;
  };
}

/// Thread-safe event collector.
struct EventLog {
  std::mutex mu;
  std::vector<tuner::IslandEvent> events;

  IslandEventSink sink() {
    return [this](const tuner::IslandEvent& e) {
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(e);
    };
  }
  std::size_t count(tuner::IslandEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == kind);
    return n;
  }
};

TEST(IslandGaSurvival, KilledIslandDoesNotAbortTheRun) {
  GaOptions o = small_options();
  o.sub_populations = 4;
  o.max_generations = 8;
  o.kill_predicate = plan_kills({{1, 3}});
  EventLog log;
  o.event_sink = log.sink();
  IslandGa island({64}, o);
  const auto result = island.run(
      [](const Genome& g) { return -static_cast<double>(g[0]); },
      [](const GaState&) { return false; });
  EXPECT_EQ(result.generations, 8u);
  EXPECT_EQ(result.rank_deaths, 1u);
  EXPECT_EQ(result.islands_survived, 3u);
  EXPECT_EQ(log.count(tuner::IslandEvent::Kind::kRankDeath), 1u);
  // Exactly one survivor's left edge pointed at the dead island.
  EXPECT_EQ(log.count(tuner::IslandEvent::Kind::kRingHeal), 1u);
  for (const auto& e : log.events) {
    if (e.kind == tuner::IslandEvent::Kind::kRankDeath) {
      EXPECT_EQ(e.rank, 1);
      EXPECT_EQ(e.generation, 3u);
    }
    if (e.kind == tuner::IslandEvent::Kind::kRingHeal) {
      EXPECT_EQ(e.rank, 2);  // the dead island's right live neighbour
      EXPECT_EQ(e.peer, 1);
    }
  }
}

TEST(IslandGaSurvival, DeadIslandsBestGenomeSurvivesAdoption) {
  // No variation operators: populations are frozen at their random initial
  // genomes, so the global best is known exactly. Kill the island that
  // holds it *after* it has migrated its elites; ring healing + adoption
  // must keep that genome alive to the final result.
  GaOptions o = small_options();
  o.sub_populations = 4;
  o.max_generations = 8;
  o.crossover_rate = 0.0;
  o.mutation_rate = 0.0;
  const std::vector<std::uint32_t> cards = {64, 64};
  auto fitness = [](const Genome& g) {
    return static_cast<double>(g[0]) * 64.0 + static_cast<double>(g[1]);
  };

  // Replicate each island's initial population (same RNG derivation as
  // IslandGa::run) to find which island owns the global best.
  double global_best = -1.0;
  int best_island = -1;
  for (int r = 0; r < o.sub_populations; ++r) {
    Rng rng(hash_combine(o.seed, static_cast<std::uint64_t>(r) + 101));
    for (int i = 0; i < o.population_size; ++i) {
      const double f = fitness(random_genome(cards, rng));
      if (f > global_best) {
        global_best = f;
        best_island = r;
      }
    }
  }
  ASSERT_GE(best_island, 0);

  o.kill_predicate = plan_kills(
      {{best_island, 3}});  // dies after migrating at generations 1 and 2
  EventLog log;
  o.event_sink = log.sink();
  IslandGa island(cards, o);
  const auto result =
      island.run(fitness, [](const GaState&) { return false; });
  EXPECT_EQ(result.rank_deaths, 1u);
  // The acceptance bar: the run's best is no worse than the best genome the
  // dead island ever produced (here: exactly it, since nothing evolves).
  EXPECT_DOUBLE_EQ(result.best_fitness, global_best);
  EXPECT_EQ(log.count(tuner::IslandEvent::Kind::kEliteAdoption), 1u);
}

TEST(IslandGaSurvival, DegradesToSingleIsland) {
  GaOptions o = small_options();
  o.sub_populations = 4;
  o.max_generations = 8;
  o.kill_predicate = plan_kills({{0, 2}, {1, 3}, {3, 4}});
  IslandGa island({64}, o);
  const auto result = island.run(
      [](const Genome& g) { return -static_cast<double>(g[0]); },
      [](const GaState&) { return false; });
  // Rank 2 survives alone, keeps evolving, and writes the closure as the
  // elected coordinator.
  EXPECT_EQ(result.generations, 8u);
  EXPECT_EQ(result.islands_survived, 1u);
  EXPECT_EQ(result.rank_deaths, 3u);
}

TEST(IslandGaSurvival, GenerationZeroKillRemovesIslandBeforeFirstSync) {
  GaOptions o = small_options();
  o.max_generations = 4;
  o.kill_predicate = plan_kills({{1, 0}});
  EventLog log;
  o.event_sink = log.sink();
  IslandGa island({64}, o);
  const auto result = island.run(
      [](const Genome& g) { return -static_cast<double>(g[0]); },
      [](const GaState&) { return false; });
  EXPECT_EQ(result.islands_survived, 1u);
  // The survivor's first sync sees the gen-0 death and heals its ring edge.
  EXPECT_EQ(log.count(tuner::IslandEvent::Kind::kRingHeal), 1u);
}

TEST(IslandGaSurvival, MinIslandsViolationAborts) {
  GaOptions o = small_options();
  o.sub_populations = 4;
  o.max_generations = 8;
  o.min_islands = 3;
  o.kill_predicate = plan_kills({{0, 2}, {1, 3}});
  IslandGa island({64}, o);
  EXPECT_THROW(
      island.run([](const Genome& g) { return -static_cast<double>(g[0]); },
                 [](const GaState&) { return false; }),
      Error);
}

TEST(IslandGaSurvival, AllIslandsKilledAborts) {
  GaOptions o = small_options();
  o.max_generations = 8;
  o.kill_predicate = plan_kills({{0, 1}, {1, 1}});
  IslandGa island({64}, o);
  EXPECT_THROW(
      island.run([](const Genome& g) { return -static_cast<double>(g[0]); },
                 [](const GaState&) { return false; }),
      Error);
}

TEST(IslandGaSurvival, DeterministicWithKillPlan) {
  auto run_once = [](EventLog& log) {
    GaOptions o = small_options();
    o.sub_populations = 4;
    o.max_generations = 10;
    o.kill_predicate = plan_kills({{2, 4}});
    o.event_sink = log.sink();
    IslandGa island({128, 128}, o);
    return island.run(
        [](const Genome& g) {
          return -std::fabs(static_cast<double>(g[0]) * 0.7 -
                            static_cast<double>(g[1]));
        },
        [](const GaState&) { return false; });
  };
  EventLog log_a, log_b;
  const auto a = run_once(log_a);
  const auto b = run_once(log_b);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.islands_survived, b.islands_survived);
  EXPECT_EQ(log_a.events.size(), log_b.events.size());
}

}  // namespace
}  // namespace cstuner::ga
