// The temporal-blocking extension (§VII / AN5D-style): space shape,
// constraints, resource pressure, model behaviour, codegen and — most
// importantly — step-for-step semantics of the executor.

#include <gtest/gtest.h>

#include "codegen/cuda_codegen.hpp"
#include "common/error.hpp"
#include "exec/cpu_executor.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"

namespace cstuner {
namespace {

using namespace space;

SpaceLimits temporal_limits() {
  SpaceLimits limits;
  limits.max_temporal = 4;
  return limits;
}

Setting streaming_base() {
  Setting s;
  s.set(kTBx, 32);
  s.set(kTBy, 8);
  s.set(kTBz, 1);
  s.set(kUseShared, kOn);
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 64);
  return s;
}

TEST(TemporalSpace, DisabledByDefault) {
  SearchSpace space(stencil::make_stencil("j3d7pt"));
  EXPECT_EQ(space.parameter(kTemporal).values,
            (std::vector<std::int64_t>{1}));
}

TEST(TemporalSpace, EnabledThroughLimits) {
  SearchSpace space(stencil::make_stencil("j3d7pt"), temporal_limits());
  EXPECT_EQ(space.parameter(kTemporal).values,
            (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(TemporalSpace, RequiresStreamingAndSingleGrid) {
  SearchSpace space(stencil::make_stencil("j3d7pt"), temporal_limits());
  Setting s = streaming_base();
  s.set(kTemporal, 2);
  EXPECT_TRUE(space.is_valid(s)) << *space.checker().violation(s);

  Setting no_streaming = s;
  no_streaming.set(kUseStreaming, kOff);
  no_streaming = space.checker().canonicalized(no_streaming);
  EXPECT_FALSE(space.is_valid(no_streaming));

  SearchSpace multi(stencil::make_stencil("cheby"), temporal_limits());
  Setting multi_grid = streaming_base();
  multi_grid.set(kTemporal, 2);
  const auto why = multi.checker().violation(multi_grid);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("single in/out"), std::string::npos);
}

TEST(TemporalSpace, RepairCollapsesInexpressibleTemporal) {
  SearchSpace space(stencil::make_stencil("cheby"), temporal_limits());
  Setting s = streaming_base();
  s.set(kTemporal, 4);
  const Setting repaired = space.checker().repaired(s);
  EXPECT_EQ(repaired.get(kTemporal), 1);
  EXPECT_TRUE(space.is_valid(repaired));
}

TEST(TemporalResources, FusedStepsRaisePressure) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting base = streaming_base();
  Setting fused = base;
  fused.set(kTemporal, 4);
  const auto r_base = estimate_resources(spec, base);
  const auto r_fused = estimate_resources(spec, fused);
  EXPECT_GT(r_fused.registers_per_thread, r_base.registers_per_thread);
  EXPECT_GT(r_fused.shared_mem_per_block, r_base.shared_mem_per_block);
}

TEST(TemporalModel, AmortizesMemoryTraffic) {
  // j3d7pt is memory bound: fusing steps should reduce per-step time as
  // long as resources allow, because global traffic is paid once.
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec, temporal_limits());
  gpusim::Simulator sim(gpusim::a100());
  Setting base = streaming_base();
  ASSERT_TRUE(space.is_valid(base));
  Setting fused = base;
  fused.set(kTemporal, 2);
  ASSERT_TRUE(space.is_valid(fused));
  EXPECT_LT(sim.profile(spec, fused).time_ms,
            sim.profile(spec, base).time_ms);
}

TEST(TemporalModel, RedundantComputeCostsComputeBoundKernels) {
  // For a compute-bound per-step profile, fusing cannot give a free win:
  // per-step compute grows with the overlap redundancy.
  const auto spec = stencil::make_stencil("j3d7pt");
  gpusim::Simulator sim(gpusim::a100());
  Setting fused2 = streaming_base();
  fused2.set(kTemporal, 2);
  Setting fused4 = streaming_base();
  fused4.set(kTemporal, 4);
  const auto p2 = sim.profile(spec, fused2);
  const auto p4 = sim.profile(spec, fused4);
  // Compute share strictly grows with the fusion factor.
  EXPECT_GT(p4.compute.flop_time_ms, p2.compute.flop_time_ms);
}

TEST(TemporalCodegen, EmitsTimeLoop) {
  const auto spec = stencil::make_stencil("j3d7pt");
  Setting s = streaming_base();
  s.set(kTemporal, 4);
  const auto kernel = codegen::generate_kernel(spec, s);
  EXPECT_NE(kernel.source.find("for (int tt = 0; tt < 4; ++tt)"),
            std::string::npos);
  EXPECT_NE(kernel.source.find("temporal blocking"), std::string::npos);
  int depth = 0;
  for (char c : kernel.source) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TemporalExec, ReferenceStepsMatchManualPingPong) {
  auto spec = stencil::scaled_stencil("j3d7pt", 12);
  // Two manual steps.
  auto manual = stencil::make_grids(spec);
  stencil::run_reference(spec, manual.inputs, manual.outputs);
  stencil::copy_interior(manual.outputs[0], manual.inputs[0]);
  stencil::run_reference(spec, manual.inputs, manual.outputs);
  // run_reference_steps with steps=2.
  auto stepped = stencil::make_grids(spec);
  stencil::run_reference_steps(spec, stepped, 2);
  EXPECT_EQ(stencil::Grid3::max_abs_diff(manual.outputs[0],
                                         stepped.outputs[0]),
            0.0);
}

TEST(TemporalExec, TiledStepsMatchReferenceSteps) {
  auto spec = stencil::scaled_stencil("helmholtz", 16);
  SearchSpace space(spec, temporal_limits());
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const auto setting = space.random_valid(rng);
    for (int steps : {1, 2, 3}) {
      EXPECT_EQ(exec::max_divergence_from_reference_steps(spec, setting,
                                                          steps),
                0.0)
          << "steps=" << steps << " setting=" << setting.to_string();
    }
  }
}

TEST(TemporalExec, MultiGridStencilRejected) {
  auto spec = stencil::scaled_stencil("cheby", 12);
  auto grids = stencil::make_grids(spec);
  EXPECT_THROW(stencil::run_reference_steps(spec, grids, 2), Error);
}

TEST(TemporalTuning, TunerExploitsTemporalWhenEnabled) {
  // With the extension enabled, the universe contains TF>1 settings and the
  // best-found setting should at least not regress vs the TF=1 space.
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace plain(spec);
  SearchSpace temporal(spec, temporal_limits());
  gpusim::Simulator sim(gpusim::a100());
  Rng rng_a(11), rng_b(11);
  const auto plain_universe = plain.sample_universe(rng_a, 4000);
  const auto temporal_universe = temporal.sample_universe(rng_b, 4000);

  auto best_of = [&](const std::vector<Setting>& universe) {
    double best = 1e300;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      best = std::min(best, sim.measure_ms(spec, universe[i], i));
    }
    return best;
  };
  const double plain_best = best_of(plain_universe);
  const double temporal_best = best_of(temporal_universe);
  EXPECT_LT(temporal_best, plain_best * 1.05);

  // And some TF>1 settings exist in the temporal universe.
  bool saw_fused = false;
  for (const auto& s : temporal_universe) {
    saw_fused |= (s.get(kTemporal) > 1);
  }
  EXPECT_TRUE(saw_fused);
}

}  // namespace
}  // namespace cstuner
