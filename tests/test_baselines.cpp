#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stencil/stencils.hpp"
#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "baselines/opentuner.hpp"
#include "baselines/subspace.hpp"

namespace cstuner::baselines {
namespace {

using namespace space;

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()) {
    Rng rng(7);
    dataset_ = tuner::collect_dataset(space_, sim_, 96, rng);
  }

  double universe_median() {
    Rng rng(8);
    const auto universe = space_.sample_universe(rng, 1500);
    std::vector<double> times;
    for (std::size_t i = 0; i < universe.size(); ++i) {
      times.push_back(sim_.measure_ms(spec_, universe[i], i));
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  }

  stencil::StencilSpec spec_;
  SearchSpace space_;
  gpusim::Simulator sim_;
  tuner::PerfDataset dataset_;
};

TEST(Subspace, SmallCartesianEnumeratedFully) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  Rng rng(1);
  // useShared x useConstant: 4 combos.
  const auto combos =
      enumerate_combos(space, {kUseShared, kUseConstant}, 100, rng);
  EXPECT_EQ(combos.size(), 4u);
}

TEST(Subspace, LargeCartesianSampledDistinct) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  Rng rng(2);
  const auto combos = enumerate_combos(
      space, {kTBx, kTBy, kCMx, kBMx, kUFx}, 200, rng);
  EXPECT_EQ(combos.size(), 200u);
  std::set<std::vector<std::int64_t>> distinct(combos.begin(), combos.end());
  EXPECT_EQ(distinct.size(), combos.size());
}

TEST(Subspace, ApplyComboCanonicalizes) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  Setting base;
  base.set(kSD, 2);  // stale streaming field
  const auto applied =
      apply_combo(space, {kUseStreaming}, {kOff}, base);
  EXPECT_EQ(applied.get(kSD), 1);  // canonicalization fixed it
}

TEST_F(BaselineFixture, OpenTunerGlobalGaImproves) {
  OpenTuner tuner;
  tuner::Evaluator evaluator(sim_, space_, {}, 31);
  tuner.tune(evaluator, {.max_virtual_seconds = 20.0});
  EXPECT_TRUE(evaluator.best_setting().has_value());
  EXPECT_TRUE(space_.is_valid(*evaluator.best_setting()));
  EXPECT_LT(evaluator.best_time_ms(), universe_median());
}

TEST_F(BaselineFixture, OpenTunerIterationBudgetRespected) {
  OpenTuner tuner;
  tuner::Evaluator evaluator(sim_, space_, {}, 32);
  tuner.tune(evaluator, {.max_iterations = 4});
  EXPECT_EQ(evaluator.iterations(), 4u);
}

TEST_F(BaselineFixture, HillClimberRunsAndImproves) {
  OpenTunerOptions options;
  options.technique = OpenTunerTechnique::kHillClimber;
  OpenTuner tuner(options);
  EXPECT_EQ(tuner.name(), "OpenTuner/hill");
  tuner::Evaluator evaluator(sim_, space_, {}, 33);
  tuner.tune(evaluator, {.max_virtual_seconds = 10.0});
  EXPECT_TRUE(evaluator.best_setting().has_value());
}

TEST_F(BaselineFixture, DifferentialEvolutionRunsAndImproves) {
  OpenTunerOptions options;
  options.technique = OpenTunerTechnique::kDifferentialEvolution;
  OpenTuner tuner(options);
  tuner::Evaluator evaluator(sim_, space_, {}, 34);
  tuner.tune(evaluator, {.max_virtual_seconds = 10.0});
  EXPECT_TRUE(evaluator.best_setting().has_value());
  EXPECT_TRUE(space_.is_valid(*evaluator.best_setting()));
}

TEST_F(BaselineFixture, GarveyPicksMemoryTypeAndTunes) {
  Garvey tuner;
  tuner.set_dataset(dataset_);
  tuner::Evaluator evaluator(sim_, space_, {}, 35);
  tuner.tune(evaluator, {.max_virtual_seconds = 20.0});
  const auto [shared, constant] = tuner.chosen_memory_flags();
  EXPECT_TRUE(shared == kOff || shared == kOn);
  EXPECT_TRUE(constant == kOff || constant == kOn);
  EXPECT_TRUE(evaluator.best_setting().has_value());
  // Garvey starts from the naive mapping, so it should at least clearly
  // beat the sample median within the budget.
  EXPECT_LT(evaluator.best_time_ms(), universe_median());
}

TEST_F(BaselineFixture, GarveyWithoutPresetDatasetCollectsItsOwn) {
  GarveyOptions options;
  options.dataset_size = 48;
  Garvey tuner(options);
  tuner::Evaluator evaluator(sim_, space_, {}, 36);
  tuner.tune(evaluator, {.max_virtual_seconds = 8.0});
  EXPECT_TRUE(evaluator.best_setting().has_value());
}

TEST_F(BaselineFixture, ArtemisHierarchicalSearchImproves) {
  Artemis tuner;
  tuner::Evaluator evaluator(sim_, space_, {}, 37);
  tuner.tune(evaluator, {.max_virtual_seconds = 20.0});
  EXPECT_TRUE(evaluator.best_setting().has_value());
  EXPECT_TRUE(space_.is_valid(*evaluator.best_setting()));
  EXPECT_LT(evaluator.best_time_ms(), universe_median());
}

TEST_F(BaselineFixture, ArtemisStopsOnTimeBudget) {
  Artemis tuner;
  tuner::Evaluator evaluator(sim_, space_, {}, 38);
  tuner.tune(evaluator, {.max_virtual_seconds = 3.0});
  // May overshoot by at most one evaluation's cost.
  EXPECT_LT(evaluator.virtual_time_s(), 3.0 + 1.0);
}

TEST_F(BaselineFixture, AllMethodsDeterministicForFixedSeed) {
  auto run = [&](tuner::Tuner& tuner) {
    tuner::Evaluator evaluator(sim_, space_, {}, 39);
    tuner.tune(evaluator, {.max_iterations = 3});
    return evaluator.best_time_ms();
  };
  {
    Garvey a, b;
    a.set_dataset(dataset_);
    b.set_dataset(dataset_);
    EXPECT_DOUBLE_EQ(run(a), run(b));
  }
  {
    Artemis a, b;
    EXPECT_DOUBLE_EQ(run(a), run(b));
  }
}

}  // namespace
}  // namespace cstuner::baselines
