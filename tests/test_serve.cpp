// Serve-layer robustness: protocol roundtrips, admission/backpressure
// accounting, warm-store persistence and prediction validity, and the
// SessionManager guarantees the daemon is built on — concurrent sessions
// bit-identical to serial runs under a fault storm, deadline expiry that
// never poisons a neighbour, and drain/re-adopt recovery that finishes with
// the same bits an uninterrupted run produces.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/error.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/session_manager.hpp"
#include "serve/warm_store.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_serve_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small but real tuning request: finishes in a couple of seconds, large
/// enough that every pipeline stage runs.
TuneRequest small_tune(const std::string& stencil, std::uint64_t seed) {
  TuneRequest request;
  request.stencil = stencil;
  request.seed = seed;
  request.budget_s = 2.0;
  request.universe = 400;
  request.fault_rate = 0.2;  // the storm: ~20% of evaluations fault
  return request;
}

ServeOptions quiet_options(const std::string& dir) {
  ServeOptions options;
  options.state_dir = dir;
  options.warm_start = false;  // predictions depend on completion order
  return options;
}

SessionResult run_to_completion(const std::string& dir,
                                const TuneRequest& request) {
  SessionManager manager(quiet_options(dir));
  const SubmitOutcome out = manager.submit(request);
  EXPECT_TRUE(out.accepted);
  const auto result = manager.result(out.id, 90.0);
  EXPECT_TRUE(result.has_value());
  return result.value_or(SessionResult{});
}

void expect_bit_identical(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.best_time_bits, b.best_time_bits);
  EXPECT_EQ(a.best_setting, b.best_setting);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.virtual_time_bits, b.virtual_time_bits);
}

// --- Protocol --------------------------------------------------------------

TEST(ServeProtocol, SessionStateNamesRoundtrip) {
  for (const SessionState state :
       {SessionState::kQueued, SessionState::kRunning, SessionState::kDone,
        SessionState::kFailed, SessionState::kCancelled,
        SessionState::kExpired, SessionState::kInterrupted}) {
    EXPECT_EQ(session_state_from_name(session_state_name(state)), state);
  }
  EXPECT_TRUE(session_state_final(SessionState::kDone));
  EXPECT_TRUE(session_state_final(SessionState::kExpired));
  EXPECT_FALSE(session_state_final(SessionState::kInterrupted));
  EXPECT_FALSE(session_state_final(SessionState::kRunning));
}

TEST(ServeProtocol, TuneRequestJsonRoundtrip) {
  TuneRequest request;
  request.kind = "analyze";
  request.stencil = "cheby";
  request.arch = "v100";
  request.method = "garvey";
  request.tenant = "team-a";
  request.seed = 42;
  request.budget_s = 12.5;
  request.deadline_s = 3.25;
  request.fault_rate = 0.125;
  request.universe = 1234;
  request.samples = 9;
  request.enumerate = false;
  request.warm = {2, 1, 1, 1, 4, 8};

  JsonWriter json;
  json.begin_object();
  request.write_fields(json);
  json.end_object();
  const TuneRequest parsed = TuneRequest::from_json(json_parse(json.str()));

  EXPECT_EQ(parsed.kind, request.kind);
  EXPECT_EQ(parsed.stencil, request.stencil);
  EXPECT_EQ(parsed.arch, request.arch);
  EXPECT_EQ(parsed.method, request.method);
  EXPECT_EQ(parsed.tenant, request.tenant);
  EXPECT_EQ(parsed.seed, request.seed);
  EXPECT_EQ(parsed.budget_s, request.budget_s);
  EXPECT_EQ(parsed.deadline_s, request.deadline_s);
  EXPECT_EQ(parsed.fault_rate, request.fault_rate);
  EXPECT_EQ(parsed.universe, request.universe);
  EXPECT_EQ(parsed.samples, request.samples);
  EXPECT_EQ(parsed.enumerate, request.enumerate);
  EXPECT_EQ(parsed.warm, request.warm);
}

TEST(ServeProtocol, SessionResultBitsSurviveJson) {
  SessionResult result;
  result.state = SessionState::kExpired;
  result.best_time_bits = 0x400921FB54442D18ULL;  // pi, full mantissa
  result.best_setting = "TBx=32 TBy=4";
  result.evaluations = 777;
  result.iterations = 13;
  result.virtual_time_bits = 0x3FF0000000000001ULL;  // 1.0 + 1 ulp
  result.error = "deadline";

  JsonWriter json;
  json.begin_object();
  result.write_fields(json);
  json.end_object();
  const SessionResult parsed = SessionResult::from_json(json_parse(json.str()));

  EXPECT_EQ(parsed.state, result.state);
  EXPECT_EQ(parsed.best_time_bits, result.best_time_bits);
  EXPECT_EQ(parsed.best_setting, result.best_setting);
  EXPECT_EQ(parsed.evaluations, result.evaluations);
  EXPECT_EQ(parsed.iterations, result.iterations);
  EXPECT_EQ(parsed.virtual_time_bits, result.virtual_time_bits);
  EXPECT_EQ(parsed.error, result.error);
}

TEST(ServeProtocol, WriteFileAtomicReplacesWholeFile) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/data.json";
  write_file_atomic(path, "first contents, quite long to make a torn "
                          "overwrite visible");
  write_file_atomic(path, "second");
  EXPECT_EQ(read_file(path), "second");
  EXPECT_THROW(read_file(dir + "/missing.json"), Error);
}

// --- Admission -------------------------------------------------------------

TEST(Admission, QueueBoundShedsWithGrowingRetryAfter) {
  AdmissionOptions options;
  options.max_queued = 2;
  options.tenant_quota = 100;
  AdmissionController admission(options);

  EXPECT_TRUE(admission.try_admit("a").admitted);
  const double retry_at_1 = [] {
    AdmissionOptions probe_options;
    probe_options.max_queued = 0;
    AdmissionController probe(probe_options);
    return probe.try_admit("x").retry_after_s;
  }();
  EXPECT_TRUE(admission.try_admit("a").admitted);
  const AdmissionDecision shed = admission.try_admit("a");
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "queue_full");
  // Deeper queue => longer hint: the full queue's hint must exceed the
  // empty queue's.
  EXPECT_GT(shed.retry_after_s, retry_at_1);
  EXPECT_GT(shed.retry_after_s, 0.0);
}

TEST(Admission, TenantQuotaIsPerTenant) {
  AdmissionOptions options;
  options.max_queued = 100;
  options.tenant_quota = 1;
  AdmissionController admission(options);

  EXPECT_TRUE(admission.try_admit("a").admitted);
  const AdmissionDecision over = admission.try_admit("a");
  EXPECT_FALSE(over.admitted);
  EXPECT_EQ(over.reason, "tenant_quota");
  // Another tenant is unaffected.
  EXPECT_TRUE(admission.try_admit("b").admitted);
  // Finishing releases the quota: start, finish, re-admit.
  admission.on_start();
  admission.on_finish("a");
  EXPECT_TRUE(admission.try_admit("a").admitted);
}

TEST(Admission, DrainingRefusesEverything) {
  AdmissionController admission;
  admission.set_draining(true);
  const AdmissionDecision refused = admission.try_admit("a");
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.reason, "draining");
}

TEST(Admission, AdoptBypassesQueueBoundButChargesTenant) {
  AdmissionOptions options;
  options.max_queued = 0;  // nothing gets in the front door
  options.tenant_quota = 100;
  AdmissionController admission(options);

  EXPECT_FALSE(admission.try_admit("a").admitted);
  admission.adopt("a");  // accepted work from a previous life must re-enter
  EXPECT_EQ(admission.queued(), 1u);
  EXPECT_EQ(admission.tenant_load("a"), 1u);
  admission.on_abandon("a");
  EXPECT_EQ(admission.queued(), 0u);
  EXPECT_EQ(admission.tenant_load("a"), 0u);
}

// --- Warm store ------------------------------------------------------------

TEST(WarmStoreTest, PersistsAcrossReopenAndKeepsFasterEntry) {
  const std::string dir = fresh_dir("warm");
  const std::string path = dir + "/warm_store.json";
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  Rng rng(5);
  const space::Setting fast = space.random_valid(rng);
  const space::Setting slow = space.random_valid(rng);

  {
    WarmStore store(path);
    store.add(spec, "a100", slow, 9.0);
    store.add(spec, "a100", fast, 3.0);  // replaces: faster
    store.add(spec, "a100", slow, 7.0);  // dropped: slower than 3.0
    EXPECT_EQ(store.size(), 1u);
  }
  WarmStore reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  const auto predicted = reopened.predict(space, "a100");
  ASSERT_TRUE(predicted.has_value());
  EXPECT_TRUE(space.is_valid(*predicted));
  EXPECT_EQ(predicted->to_string(), fast.to_string());
}

TEST(WarmStoreTest, CrossStencilPredictionIsAlwaysValid) {
  // Deposit best-knowns for several stencils, then ask for one the store
  // has never seen: whatever tier answers, the setting must be valid in
  // the *target* space.
  WarmStore store;  // in-memory
  Rng rng(17);
  for (const char* name :
       {"j3d7pt", "j3d27pt", "cheby", "hypterm", "addsgd4"}) {
    const auto spec = stencil::make_stencil(name);
    space::SearchSpace space(spec);
    store.add(spec, "a100", space.random_valid(rng), 5.0);
  }
  const auto target_spec = stencil::make_stencil("helmholtz");
  space::SearchSpace target(target_spec);
  const auto predicted = store.predict(target, "a100");
  ASSERT_TRUE(predicted.has_value());
  EXPECT_TRUE(target.is_valid(*predicted));
}

TEST(WarmStoreTest, MalformedFileIsIgnoredNotFatal) {
  const std::string dir = fresh_dir("warm_bad");
  const std::string path = dir + "/warm_store.json";
  write_file_atomic(path, "{this is not json");
  WarmStore store(path);
  EXPECT_EQ(store.size(), 0u);
}

TEST(WarmStoreTest, TruncationAtEveryByteLoadsEmptyNeverCrashes) {
  // The exhaustive corruption sweep (docs/durability.md): a store file cut
  // at EVERY byte prefix — and a garbage-suffixed one — must load as empty
  // (or, at full length, intact), keep predicting without poisoning, and
  // never throw out of the constructor.
  const std::string dir = fresh_dir("warm_torn");
  const std::string good_path = dir + "/warm_store.json";
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  Rng rng(23);
  {
    WarmStore store(good_path);
    store.add(spec, "a100", space.random_valid(rng), 3.0);
    store.add(stencil::make_stencil("cheby"), "v100",
              space::SearchSpace(stencil::make_stencil("cheby"))
                  .random_valid(rng),
              5.0);
  }
  const std::string good = read_file(good_path);
  ASSERT_GT(good.size(), 2u);

  const std::string torn_path = dir + "/torn.json";
  for (std::size_t len = 0; len <= good.size(); ++len) {
    write_file_atomic(torn_path, good.substr(0, len));
    WarmStore store(torn_path);
    // All-or-nothing: either the prefix still parses as the complete
    // document (the final bytes are just the trailing newline) and every
    // entry loads, or the store starts empty. Never a partial load.
    EXPECT_TRUE(store.size() == 0u || store.size() == 2u)
        << "partial load (" << store.size() << " entries) at prefix " << len;
    if (len == good.size()) {
      EXPECT_EQ(store.size(), 2u) << "intact store must load fully";
    }
    // A corrupt store must degrade predictions to "none", not garbage.
    const auto predicted = store.predict(space, "a100");
    if (store.size() == 0) {
      EXPECT_FALSE(predicted.has_value());
    } else {
      ASSERT_TRUE(predicted.has_value());
      EXPECT_TRUE(space.is_valid(*predicted));
    }
  }
  // Garbage variants: binary noise alone, and noise spliced after a torn
  // prefix. Must load empty (or fully, never partially) without throwing.
  write_file_atomic(torn_path, std::string("\x00\xff\x13garbage", 10));
  WarmStore garbaged(torn_path);
  EXPECT_EQ(garbaged.size(), 0u);
  write_file_atomic(torn_path, good.substr(0, good.size() / 2) + "\xfe\x01[");
  WarmStore spliced(torn_path);
  EXPECT_EQ(spliced.size(), 0u);
}

// --- SessionManager --------------------------------------------------------

TEST(SessionManagerTest, RejectsUnknownStencilWithoutChargingQuota) {
  SessionManager manager(quiet_options(fresh_dir("badreq")));
  TuneRequest request = small_tune("nosuch", 1);
  EXPECT_THROW(manager.submit(request), UsageError);
  EXPECT_EQ(manager.stats().accepted_total, 0u);
  EXPECT_EQ(manager.stats().rejected_total, 0u);
}

TEST(SessionManagerTest, OverloadShedsTypedAndKeepsEveryAcceptedSession) {
  ServeOptions options = quiet_options(fresh_dir("overload"));
  options.admission.max_running = 1;
  options.admission.max_queued = 1;
  SessionManager manager(options);

  std::vector<std::uint64_t> accepted;
  std::size_t rejected = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SubmitOutcome out = manager.submit(small_tune("j3d7pt", seed));
    if (out.accepted) {
      accepted.push_back(out.id);
    } else {
      ++rejected;
      EXPECT_EQ(out.reject_reason, "queue_full");
      EXPECT_GT(out.retry_after_s, 0.0);
    }
  }
  // Bounded queue: 1 running + 1 queued admitted, the rest shed.
  EXPECT_EQ(accepted.size(), 2u);
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(manager.stats().rejected_total, 2u);
  // Zero dropped-but-accepted: every accepted id reaches a final result.
  for (const std::uint64_t id : accepted) {
    const auto result = manager.result(id, 90.0);
    ASSERT_TRUE(result.has_value()) << "session " << id;
    EXPECT_EQ(result->state, SessionState::kDone);
  }
}

TEST(SessionManagerTest, CancelQueuedSessionReleasesItsSlot) {
  ServeOptions options = quiet_options(fresh_dir("cancelq"));
  options.admission.max_running = 1;
  SessionManager manager(options);

  const SubmitOutcome first = manager.submit(small_tune("j3d7pt", 1));
  const SubmitOutcome second = manager.submit(small_tune("j3d7pt", 2));
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(manager.cancel(second.id));
  const auto cancelled = manager.status(second.id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, SessionState::kCancelled);
  // Cancelling a resting session is a no-op "false".
  EXPECT_FALSE(manager.cancel(second.id));
  const auto result = manager.result(first.id, 90.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->state, SessionState::kDone);
}

TEST(SessionManagerTest, ConcurrentFaultStormSessionsMatchSerialRuns) {
  // Two tunes with a 20% fault storm run concurrently (shared ThreadPool,
  // interleaved batches) and must finish bit-identical to the same
  // requests run one at a time in their own managers.
  const TuneRequest request_a = small_tune("j3d7pt", 11);
  const TuneRequest request_b = small_tune("j3d27pt", 12);

  const SessionResult serial_a =
      run_to_completion(fresh_dir("storm_serial_a"), request_a);
  const SessionResult serial_b =
      run_to_completion(fresh_dir("storm_serial_b"), request_b);
  EXPECT_EQ(serial_a.state, SessionState::kDone);
  EXPECT_EQ(serial_b.state, SessionState::kDone);

  ServeOptions options = quiet_options(fresh_dir("storm_concurrent"));
  options.admission.max_running = 2;
  SessionManager manager(options);
  const SubmitOutcome out_a = manager.submit(request_a);
  const SubmitOutcome out_b = manager.submit(request_b);
  ASSERT_TRUE(out_a.accepted);
  ASSERT_TRUE(out_b.accepted);
  const auto concurrent_a = manager.result(out_a.id, 90.0);
  const auto concurrent_b = manager.result(out_b.id, 90.0);
  ASSERT_TRUE(concurrent_a.has_value());
  ASSERT_TRUE(concurrent_b.has_value());
  expect_bit_identical(*concurrent_a, serial_a);
  expect_bit_identical(*concurrent_b, serial_b);
}

TEST(SessionManagerTest, DeadlineExpiryDoesNotPoisonConcurrentSession) {
  // Session A expires its virtual deadline almost immediately; session B
  // shares the pool the whole time and must still finish bit-identical to
  // running alone.
  const TuneRequest request_b = small_tune("j3d7pt", 21);
  const SessionResult serial_b =
      run_to_completion(fresh_dir("deadline_serial"), request_b);

  ServeOptions options = quiet_options(fresh_dir("deadline_concurrent"));
  options.admission.max_running = 2;
  SessionManager manager(options);
  TuneRequest request_a = small_tune("helmholtz", 20);
  request_a.budget_s = 5.0;
  request_a.deadline_s = 0.05;  // virtual seconds; fires within the tune
  const SubmitOutcome out_a = manager.submit(request_a);
  const SubmitOutcome out_b = manager.submit(request_b);
  ASSERT_TRUE(out_a.accepted);
  ASSERT_TRUE(out_b.accepted);

  const auto expired = manager.result(out_a.id, 90.0);
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->state, SessionState::kExpired);
  EXPECT_FALSE(expired->error.empty());

  const auto concurrent_b = manager.result(out_b.id, 90.0);
  ASSERT_TRUE(concurrent_b.has_value());
  expect_bit_identical(*concurrent_b, serial_b);
}

TEST(SessionManagerTest, DrainParksRunningSessionAndRestartResumesBitIdentical) {
  const std::string state_dir = fresh_dir("drain_resume");
  TuneRequest request = small_tune("j3d7pt", 31);
  // Sized so the run lasts a couple hundred milliseconds of wall time —
  // the drain below lands well inside it.
  request.budget_s = 600.0;
  request.universe = 20000;

  // Reference: the same request, never interrupted.
  const SessionResult reference =
      run_to_completion(fresh_dir("drain_reference"), request);
  EXPECT_EQ(reference.state, SessionState::kDone);

  std::uint64_t id = 0;
  {
    SessionManager manager(quiet_options(state_dir));
    const SubmitOutcome out = manager.submit(request);
    ASSERT_TRUE(out.accepted);
    id = out.id;
    // Let it get into the tune, then drain mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(manager.drain(30.0));
    const auto parked = manager.status(id);
    ASSERT_TRUE(parked.has_value());
    EXPECT_EQ(parked->state, SessionState::kInterrupted);
    // Parked sessions publish no result.json — that absence marks them
    // for re-adoption.
    EXPECT_FALSE(fs::exists(state_dir + "/sessions/" + std::to_string(id) +
                            "/result.json"));
  }

  SessionManager restarted(quiet_options(state_dir));
  EXPECT_EQ(restarted.adopted(), 1u);
  const auto resumed = restarted.result(id, 90.0);
  ASSERT_TRUE(resumed.has_value());
  expect_bit_identical(*resumed, reference);
}

TEST(SessionManagerTest, AnalyzeSessionsReportLintCounts) {
  SessionManager manager(quiet_options(fresh_dir("analyze")));
  TuneRequest request;
  request.kind = "analyze";
  request.stencil = "cheby";
  request.samples = 4;
  request.seed = 3;
  const SubmitOutcome out = manager.submit(request);
  ASSERT_TRUE(out.accepted);
  const auto result = manager.result(out.id, 90.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->state, SessionState::kDone);
  EXPECT_EQ(result->evaluations, 4u);
  // Deterministic rerun: the same seed gives the same verdicts.
  SessionManager again(quiet_options(fresh_dir("analyze2")));
  const SubmitOutcome out2 = again.submit(request);
  ASSERT_TRUE(out2.accepted);
  const auto result2 = again.result(out2.id, 90.0);
  ASSERT_TRUE(result2.has_value());
  EXPECT_EQ(result2->lint_errors, result->lint_errors);
  EXPECT_EQ(result2->lint_warnings, result->lint_warnings);
}

}  // namespace
}  // namespace cstuner::serve
