#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "stencil/stencils.hpp"
#include "tuner/dataset.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests.
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::size_t sum = 0;
  // Serial fallback: the body runs on the calling thread in index order.
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Sibling indices still ran to completion.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, SubmitDeliversCompletionAndExceptions) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto ok = pool.submit([&] { ran = true; });
  ok.get();
  EXPECT_TRUE(ran.load());
  auto bad = pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
  // And submit() still works after heavy parallel_for traffic.
  auto f = pool.submit([&] { total.fetch_add(1); });
  f.get();
  EXPECT_EQ(total.load(), 50u * 17u + 1u);
}

TEST(ThreadPool, ConcurrentParallelForCallersDoNotDeadlock) {
  // Several caller threads (like minimpi ranks) sharing one pool must all
  // finish even when the pool has fewer workers than callers.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(32, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 20u * 32u);
}

TEST(ThreadPool, QueueDepthAndInflightTrackLoad) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.inflight(), 0u);

  // Block both workers, then pile tasks behind them: the queue depth and
  // the inflight count become observable and the peaks latch them.
  std::mutex gate;
  std::unique_lock<std::mutex> hold(gate);
  std::condition_variable started_cv;
  std::mutex started_mutex;
  std::size_t started = 0;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 2; ++i) {
    futures.push_back(pool.submit([&] {
      {
        std::lock_guard<std::mutex> lock(started_mutex);
        ++started;
      }
      started_cv.notify_all();
      std::lock_guard<std::mutex> wait(gate);
    }));
  }
  {
    std::unique_lock<std::mutex> lock(started_mutex);
    started_cv.wait(lock, [&] { return started == 2; });
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  EXPECT_EQ(pool.inflight(), 2u);
  EXPECT_EQ(pool.queue_depth(), 3u);
  EXPECT_GE(pool.peak_inflight(), 2u);
  EXPECT_GE(pool.peak_queue_depth(), 3u);

  hold.unlock();
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.inflight(), 0u);
  // Peaks survive the drain until explicitly reset.
  EXPECT_GE(pool.peak_inflight(), 2u);
  pool.reset_peaks();
  EXPECT_EQ(pool.peak_queue_depth(), 0u);
  EXPECT_EQ(pool.peak_inflight(), 0u);
}

// ---------------------------------------------------------------------------
// Evaluator determinism across worker counts.
// ---------------------------------------------------------------------------

class ParallelEvalFixture : public ::testing::Test {
 protected:
  ParallelEvalFixture()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()) {}

  stencil::StencilSpec spec_;
  space::SearchSpace space_;
  gpusim::Simulator sim_;
};

struct RunOutcome {
  double best_time_ms = 0.0;
  double virtual_time_s = 0.0;
  std::size_t unique_evals = 0;
  space::Setting best_setting;
};

TEST_F(ParallelEvalFixture, BatchMatchesSerialEvaluationExactly) {
  Rng rng(11);
  const auto settings = space_.sample_universe(rng, 200);

  tuner::Evaluator serial(sim_, space_, {}, 7, nullptr);
  std::vector<double> serial_times;
  serial_times.reserve(settings.size());
  for (const auto& s : settings) serial_times.push_back(serial.evaluate(s));

  ThreadPool pool(4);
  tuner::Evaluator batched(sim_, space_, {}, 7, &pool);
  const auto batch_times = batched.evaluate_batch(settings);

  ASSERT_EQ(batch_times.size(), serial_times.size());
  for (std::size_t i = 0; i < settings.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch_times[i].time_or_inf(), serial_times[i])
        << "index " << i;
  }
  EXPECT_EQ(batched.unique_evaluations(), serial.unique_evaluations());
  EXPECT_DOUBLE_EQ(batched.virtual_time_s(), serial.virtual_time_s());
  EXPECT_DOUBLE_EQ(batched.best_time_ms(), serial.best_time_ms());
}

TEST_F(ParallelEvalFixture, DuplicatesInOneBatchChargeOnce) {
  Rng rng(12);
  const auto base = space_.random_valid(rng);
  const std::vector<space::Setting> batch = {base, base, base};
  ThreadPool pool(4);
  tuner::Evaluator evaluator(sim_, space_, {}, 3, &pool);
  const auto times = evaluator.evaluate_batch(batch);
  EXPECT_EQ(evaluator.unique_evaluations(), 1u);
  EXPECT_DOUBLE_EQ(times[0].time_ms, times[1].time_ms);
  EXPECT_DOUBLE_EQ(times[0].time_ms, times[2].time_ms);
}

TEST_F(ParallelEvalFixture, DatasetCollectionIdenticalAcrossWorkerCounts) {
  auto collect = [&](std::size_t workers) {
    ThreadPool pool(workers);
    Rng rng(21);
    return tuner::collect_dataset(space_, sim_, 64, rng, &pool);
  };
  const auto serial = collect(0);
  const auto four = collect(4);
  const auto eight = collect(8);
  ASSERT_EQ(serial.size(), four.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial.settings[i] == four.settings[i]);
    EXPECT_TRUE(serial.settings[i] == eight.settings[i]);
    EXPECT_DOUBLE_EQ(serial.times_ms[i], four.times_ms[i]);
    EXPECT_DOUBLE_EQ(serial.times_ms[i], eight.times_ms[i]);
    for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
      EXPECT_DOUBLE_EQ(serial.metrics(i, m), four.metrics(i, m));
      EXPECT_DOUBLE_EQ(serial.metrics(i, m), eight.metrics(i, m));
    }
  }
}

TEST_F(ParallelEvalFixture, GaDrivenTuningIdenticalAcrossWorkerCounts) {
  auto run = [&](std::size_t workers) {
    ThreadPool pool(workers);
    tuner::Evaluator evaluator(sim_, space_, {}, 42, &pool);
    core::CsTunerOptions options;
    options.universe_size = 1200;
    options.dataset_size = 64;
    options.seed = 42;
    core::CsTuner tuner(options);
    tuner.tune(evaluator, {.max_virtual_seconds = 10.0});
    RunOutcome out;
    out.best_time_ms = evaluator.best_time_ms();
    out.virtual_time_s = evaluator.virtual_time_s();
    out.unique_evals = evaluator.unique_evaluations();
    out.best_setting = *evaluator.best_setting();
    return out;
  };
  const auto serial = run(0);
  const auto four = run(4);
  const auto eight = run(8);

  // The issue's determinism contract: the same best setting, best time and
  // unique-evaluation count no matter how many workers measured the
  // batches.
  EXPECT_TRUE(serial.best_setting == four.best_setting);
  EXPECT_TRUE(serial.best_setting == eight.best_setting);
  EXPECT_DOUBLE_EQ(serial.best_time_ms, four.best_time_ms);
  EXPECT_DOUBLE_EQ(serial.best_time_ms, eight.best_time_ms);
  EXPECT_EQ(serial.unique_evals, four.unique_evals);
  EXPECT_EQ(serial.unique_evals, eight.unique_evals);
  EXPECT_DOUBLE_EQ(serial.virtual_time_s, four.virtual_time_s);
  EXPECT_DOUBLE_EQ(serial.virtual_time_s, eight.virtual_time_s);
}

}  // namespace
}  // namespace cstuner
