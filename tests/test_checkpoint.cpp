#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/fault_model.hpp"
#include "stencil/stencils.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/dataset.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::tuner {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

JournalEntry make_entry(std::uint64_t key, EvalStatus status, double time_ms,
                        std::uint8_t attempts, std::int64_t overhead_ticks) {
  JournalEntry e;
  e.key = key;
  e.status = status;
  e.time_bits = std::bit_cast<std::uint64_t>(time_ms);
  e.attempts = attempts;
  e.overhead_ticks = overhead_ticks;
  return e;
}

TEST(Checkpoint, LoadOnEmptyDirectoryIsCleanSlate) {
  Checkpoint cp(fresh_dir("empty"));
  EXPECT_EQ(cp.load(), 0u);
  EXPECT_TRUE(cp.replay().empty());
  EXPECT_FALSE(cp.loaded_dataset().has_value());
  EXPECT_FALSE(cp.loaded_stats().has_value());
}

TEST(Checkpoint, JournalRoundTripsAndFirstOccurrenceWins) {
  const std::string dir = fresh_dir("journal");
  const double kInf = std::numeric_limits<double>::infinity();
  {
    Checkpoint cp(dir);
    cp.append(make_entry(1, EvalStatus::kOk, 3.25, 1, 0));
    cp.append(make_entry(2, EvalStatus::kCompileFail, kInf, 1, 250000000000));
    cp.append(make_entry(1, EvalStatus::kOk, 99.0, 2, 7));  // duplicate key
    cp.append(make_entry(3, EvalStatus::kTransient, kInf, 3, 468000000000));
    cp.flush();
  }
  Checkpoint cp(dir);
  EXPECT_EQ(cp.load(), 3u);  // 4 lines, 3 distinct keys
  const auto& replay = cp.replay();
  ASSERT_TRUE(replay.contains(1));
  EXPECT_EQ(replay.at(1).time_ms(), 3.25);  // first occurrence, not 99.0
  EXPECT_EQ(replay.at(1).attempts, 1);
  EXPECT_EQ(replay.at(2).status, EvalStatus::kCompileFail);
  EXPECT_TRUE(std::isinf(replay.at(2).time_ms()));
  EXPECT_EQ(replay.at(2).overhead_ticks, 250000000000);
  EXPECT_EQ(replay.at(3).status, EvalStatus::kTransient);
  EXPECT_EQ(replay.at(3).attempts, 3);
  EXPECT_EQ(replay.at(1).to_result().status, EvalStatus::kOk);
  EXPECT_EQ(replay.at(1).to_result().time_ms, 3.25);
}

TEST(Checkpoint, IslandEventsRoundTripAndDeduplicate) {
  const std::string dir = fresh_dir("island_events");
  {
    Checkpoint cp(dir);
    EXPECT_FALSE(cp.has_journal_file());
    cp.append(make_entry(1, EvalStatus::kOk, 3.25, 1, 0));
    cp.append_island_event({IslandEvent::Kind::kRankDeath, 1, 3, -1});
    cp.append_island_event({IslandEvent::Kind::kRingHeal, 2, 3, 1});
    cp.append_island_event({IslandEvent::Kind::kEliteAdoption, 2, 3, 1});
    // A resumed run re-fires the same kill and re-emits the event; the
    // journal must not grow a duplicate line.
    cp.append_island_event({IslandEvent::Kind::kRankDeath, 1, 3, -1});
    cp.flush();
    EXPECT_TRUE(cp.has_journal_file());
  }
  Checkpoint cp(dir);
  EXPECT_EQ(cp.load(), 1u);  // island events are not replay entries
  ASSERT_EQ(cp.island_events().size(), 3u);
  const IslandEvent& death = cp.island_events()[0];
  EXPECT_EQ(death.kind, IslandEvent::Kind::kRankDeath);
  EXPECT_EQ(death.rank, 1);
  EXPECT_EQ(death.generation, 3u);
  EXPECT_EQ(death.peer, -1);
  EXPECT_EQ(cp.island_events()[1].kind, IslandEvent::Kind::kRingHeal);
  EXPECT_EQ(cp.island_events()[1].peer, 1);
  EXPECT_EQ(cp.island_events()[2].kind, IslandEvent::Kind::kEliteAdoption);
  // The loaded events seed the dedup set, so appending them again after a
  // resume is also a no-op.
  cp.append_island_event({IslandEvent::Kind::kRankDeath, 1, 3, -1});
  cp.flush();
  Checkpoint again(dir);
  again.load();
  EXPECT_EQ(again.island_events().size(), 3u);
  // And the deaths convert back into the kill plan that caused them.
  const auto plan = kill_plan_from_events(again.island_events());
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].rank, 1);
  EXPECT_EQ(plan[0].generation, 3u);
}

TEST(Checkpoint, TornJournalTailIsTruncatedOnLoad) {
  const std::string dir = fresh_dir("torn");
  {
    Checkpoint cp(dir);
    cp.append(make_entry(10, EvalStatus::kOk, 1.5, 1, 0));
    cp.append(make_entry(11, EvalStatus::kOk, 2.5, 1, 0));
    cp.flush();
  }
  const std::string journal = dir + "/journal.jsonl";
  const std::string intact = read_file(journal);
  {
    // Simulate a kill mid-write: half a JSON object, no newline.
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    out << R"({"key":12,"status":"ok","time_b)";
  }
  Checkpoint cp(dir);
  EXPECT_EQ(cp.load(), 2u);
  // The torn tail is gone from disk, so future appends stay well-formed.
  EXPECT_EQ(read_file(journal), intact);
  cp.append(make_entry(13, EvalStatus::kOk, 4.5, 1, 0));
  cp.flush();
  Checkpoint again(dir);
  EXPECT_EQ(again.load(), 3u);
  EXPECT_TRUE(again.replay().contains(13));
  EXPECT_FALSE(again.replay().contains(12));
}

TEST(Checkpoint, DatasetSerializationIsBitExact) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(31);
  const PerfDataset dataset = collect_dataset(space, sim, 48, rng, nullptr);

  const std::string json = serialize_dataset(dataset);
  const PerfDataset back = parse_dataset(json_parse(json));
  ASSERT_EQ(back.settings.size(), dataset.settings.size());
  ASSERT_EQ(back.times_ms.size(), dataset.times_ms.size());
  ASSERT_EQ(back.metrics.rows(), dataset.metrics.rows());
  ASSERT_EQ(back.metrics.cols(), dataset.metrics.cols());
  for (std::size_t i = 0; i < dataset.settings.size(); ++i) {
    EXPECT_TRUE(back.settings[i] == dataset.settings[i]);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.times_ms[i]),
              std::bit_cast<std::uint64_t>(dataset.times_ms[i]));
    for (std::size_t m = 0; m < dataset.metrics.cols(); ++m) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.metrics(i, m)),
                std::bit_cast<std::uint64_t>(dataset.metrics(i, m)));
    }
  }
}

TEST(Checkpoint, SnapshotIsAtomicAndLoadable) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(32);
  const PerfDataset dataset = collect_dataset(space, sim, 16, rng, nullptr);

  // Build some fault state to snapshot.
  Evaluator evaluator(sim, space, {}, 5, nullptr);
  gpusim::FaultConfig config;
  config.compile_fail_rate = 1.0;
  evaluator.set_fault_injection(config, "snap");
  evaluator.evaluate_result(space.random_valid(rng));

  const std::string dir = fresh_dir("snapshot");
  {
    Checkpoint cp(dir);
    cp.set_dataset_json(serialize_dataset(dataset));
    cp.write_snapshot(evaluator.serialize_state());
    cp.write_snapshot(evaluator.serialize_state());  // overwrite is fine
  }
  // write-temp + rename leaves no partial file behind.
  EXPECT_FALSE(fs::exists(dir + "/snapshot.json.tmp"));
  ASSERT_TRUE(fs::exists(dir + "/snapshot.json"));

  Checkpoint cp(dir);
  cp.load();
  ASSERT_TRUE(cp.loaded_dataset().has_value());
  EXPECT_TRUE(cp.has_dataset());
  ASSERT_EQ(cp.loaded_dataset()->settings.size(), dataset.settings.size());
  for (std::size_t i = 0; i < dataset.settings.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cp.loaded_dataset()->times_ms[i]),
              std::bit_cast<std::uint64_t>(dataset.times_ms[i]));
  }
  ASSERT_TRUE(cp.loaded_stats().has_value());
  EXPECT_EQ(cp.loaded_stats()->compile_fail, 1u);
  EXPECT_EQ(cp.loaded_stats()->quarantined_settings, 1u);
}

TEST(Checkpoint, TornSnapshotRecoversPreviousGoodSnapshot) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(33);
  const PerfDataset first = collect_dataset(space, sim, 12, rng, nullptr);
  const PerfDataset second = collect_dataset(space, sim, 20, rng, nullptr);

  const std::string dir = fresh_dir("torn_snapshot");
  {
    Checkpoint cp(dir);
    cp.set_dataset_json(serialize_dataset(first));
    cp.write_snapshot("{}");
    cp.set_dataset_json(serialize_dataset(second));
    cp.write_snapshot("{}");  // demotes the first snapshot to .prev
  }
  ASSERT_TRUE(fs::exists(dir + "/snapshot.prev.json"));
  {
    // A crash that tears snapshot.json itself (e.g. rename promoted a file
    // whose data pages never hit disk): truncate it mid-object.
    const std::string torn =
        read_file(dir + "/snapshot.json").substr(0, 40);
    std::ofstream out(dir + "/snapshot.json",
                      std::ios::binary | std::ios::trunc);
    out << torn;
  }
  Checkpoint cp(dir);
  cp.load();
  ASSERT_TRUE(cp.loaded_dataset().has_value());
  // The torn current snapshot is skipped; the previous good one answers.
  EXPECT_EQ(cp.loaded_dataset()->settings.size(), first.settings.size());
  for (std::size_t i = 0; i < first.settings.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cp.loaded_dataset()->times_ms[i]),
              std::bit_cast<std::uint64_t>(first.times_ms[i]));
  }
}

TEST(Checkpoint, SyncEveryMakesAppendsDurableWithoutFlush) {
  const std::string dir = fresh_dir("sync_every");
  Checkpoint cp(dir);
  cp.set_sync_policy(Checkpoint::SyncPolicy::kEvery);
  cp.append(make_entry(1, EvalStatus::kOk, 1.25, 1, 0));
  cp.append(make_entry(2, EvalStatus::kOk, 2.5, 1, 0));
  // No flush(), no destructor: a SIGKILL here must lose nothing. A second
  // reader sees both entries already on disk.
  Checkpoint reader(dir);
  EXPECT_EQ(reader.load(), 2u);
  EXPECT_TRUE(reader.replay().contains(1));
  EXPECT_TRUE(reader.replay().contains(2));
}

TEST(Checkpoint, SyncBatchBuffersUntilFlush) {
  const std::string dir = fresh_dir("sync_batch");
  Checkpoint cp(dir);  // kBatch is the default
  EXPECT_EQ(cp.sync_policy(), Checkpoint::SyncPolicy::kBatch);
  cp.append(make_entry(1, EvalStatus::kOk, 1.25, 1, 0));
  {
    Checkpoint reader(dir);
    EXPECT_EQ(reader.load(), 0u);  // still buffered in memory
  }
  cp.flush();
  Checkpoint reader(dir);
  EXPECT_EQ(reader.load(), 1u);
}

// ---------------------------------------------------------------------------
// The acceptance test: kill a tune after a random batch, resume it, and the
// final state must be bit-identical to the uninterrupted run.
// ---------------------------------------------------------------------------

struct TuneFingerprint {
  space::Setting best_setting;
  double best_time_ms = 0.0;
  double virtual_time_s = 0.0;
  std::size_t unique_evals = 0;
  FaultStats stats;
};

TuneFingerprint run_tune(Checkpoint& checkpoint) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  ThreadPool pool(2);
  Evaluator evaluator(sim, space, {}, 42, &pool);
  evaluator.set_fault_injection(gpusim::FaultConfig::uniform(0.2, 42),
                                spec.name);
  evaluator.set_checkpoint(&checkpoint);
  core::CsTunerOptions options;
  options.universe_size = 600;
  options.dataset_size = 48;
  options.seed = 42;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = 6.0});
  checkpoint.flush();

  TuneFingerprint fp;
  fp.best_setting = *evaluator.best_setting();
  fp.best_time_ms = evaluator.best_time_ms();
  fp.virtual_time_s = evaluator.virtual_time_s();
  fp.unique_evals = evaluator.unique_evaluations();
  fp.stats = evaluator.fault_stats();
  return fp;
}

TEST(Checkpoint, KilledAndResumedTuneIsBitIdenticalToUninterrupted) {
  // Reference: one uninterrupted faulty tune.
  const std::string full_dir = fresh_dir("resume_full");
  Checkpoint full_cp(full_dir);
  ASSERT_EQ(full_cp.load(), 0u);
  const TuneFingerprint full = run_tune(full_cp);

  // Fabricate the kill: keep the journal prefix up to a randomly chosen
  // batch boundary and tear the next line mid-write — exactly the on-disk
  // state a SIGKILL between flushes leaves behind.
  const std::string journal = read_file(full_dir + "/journal.jsonl");
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < journal.size();) {
    const std::size_t nl = journal.find('\n', pos);
    lines.push_back(journal.substr(pos, nl - pos + 1));
    pos = nl + 1;
  }
  ASSERT_GT(lines.size(), 3u);
  Rng kill_rng(2026);
  const std::size_t keep = static_cast<std::size_t>(
      kill_rng.uniform_int(1, static_cast<std::int64_t>(lines.size()) - 2));

  const std::string resumed_dir = fresh_dir("resume_killed");
  fs::create_directories(resumed_dir);
  {
    std::ofstream out(resumed_dir + "/journal.jsonl", std::ios::binary);
    for (std::size_t i = 0; i < keep; ++i) out << lines[i];
    out << lines[keep].substr(0, lines[keep].size() / 2);  // torn tail
  }

  // Resume: journaled outcomes replay, the rest re-measures.
  Checkpoint resumed_cp(resumed_dir);
  const std::size_t replayed = resumed_cp.load();
  ASSERT_GT(replayed, 0u);
  ASSERT_LE(replayed, keep);  // duplicate keys deduplicate
  const TuneFingerprint resumed = run_tune(resumed_cp);

  EXPECT_TRUE(full.best_setting == resumed.best_setting);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(full.best_time_ms),
            std::bit_cast<std::uint64_t>(resumed.best_time_ms));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(full.virtual_time_s),
            std::bit_cast<std::uint64_t>(resumed.virtual_time_s));
  EXPECT_EQ(full.unique_evals, resumed.unique_evals);
  EXPECT_EQ(full.stats.compile_fail, resumed.stats.compile_fail);
  EXPECT_EQ(full.stats.crash, resumed.stats.crash);
  EXPECT_EQ(full.stats.timeout, resumed.stats.timeout);
  EXPECT_EQ(full.stats.transient, resumed.stats.transient);
  EXPECT_EQ(full.stats.retries, resumed.stats.retries);
  EXPECT_EQ(full.stats.recovered, resumed.stats.recovered);
  EXPECT_EQ(full.stats.quarantined_settings,
            resumed.stats.quarantined_settings);
  EXPECT_EQ(full.stats.quarantine_hits, resumed.stats.quarantine_hits);
  EXPECT_DOUBLE_EQ(full.stats.fault_overhead_s,
                   resumed.stats.fault_overhead_s);
  // The resumed run served the recovered prefix from the journal. (A
  // non-cacheable transient entry replays once per re-evaluation, so the
  // counter can exceed the deduplicated journal size.)
  EXPECT_GE(resumed.stats.replayed, replayed);
  EXPECT_EQ(full.stats.replayed, 0u);

  // The two journals describe the same evaluation history (the resumed one
  // may omit duplicate-key lines that straddle the kill point, so compare
  // the deduplicated replay maps, not raw bytes).
  Checkpoint check_full(full_dir);
  Checkpoint check_resumed(resumed_dir);
  ASSERT_EQ(check_full.load(), check_resumed.load());
  for (const auto& [key, entry] : check_full.replay()) {
    const auto it = check_resumed.replay().find(key);
    ASSERT_NE(it, check_resumed.replay().end()) << "key " << key;
    EXPECT_EQ(it->second.status, entry.status);
    EXPECT_EQ(it->second.time_bits, entry.time_bits);
    EXPECT_EQ(it->second.attempts, entry.attempts);
    EXPECT_EQ(it->second.overhead_ticks, entry.overhead_ticks);
  }
}

}  // namespace
}  // namespace cstuner::tuner
