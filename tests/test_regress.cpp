#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "regress/least_squares.hpp"
#include "regress/matrix.hpp"
#include "regress/pmnf.hpp"

namespace cstuner::regress {
namespace {

TEST(Matrix, ShapeAndFill) {
  Matrix m(2, 3, 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const auto y = m.multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(LeastSquares, RecoversExactLinearModel) {
  // y = 3 + 2*x
  Matrix a(5, 2);
  std::vector<double> y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = static_cast<double>(i);
    y[i] = 3.0 + 2.0 * static_cast<double>(i);
  }
  const auto fit = solve_least_squares(a, y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-8);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-8);
  EXPECT_NEAR(fit.rss, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquares, NoisyFitHasReasonableRse) {
  Rng rng(2);
  const std::size_t n = 200;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0, 10);
    a(i, 0) = 1.0;
    a(i, 1) = x;
    y[i] = 1.0 + 0.5 * x + rng.normal(0.0, 0.3);
  }
  const auto fit = solve_least_squares(a, y);
  EXPECT_NEAR(fit.coefficients[1], 0.5, 0.05);
  EXPECT_NEAR(fit.rse, 0.3, 0.08);
  EXPECT_GT(fit.r2, 0.8);
}

TEST(LeastSquares, DegenerateColumnDoesNotCrash) {
  // Two identical columns: rank deficient; the ridge keeps it solvable.
  Matrix a(4, 2);
  std::vector<double> y = {1, 2, 3, 4};
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = static_cast<double>(i);
  }
  const auto fit = solve_least_squares(a, y);
  EXPECT_TRUE(std::isfinite(fit.coefficients[0]));
  EXPECT_TRUE(std::isfinite(fit.coefficients[1]));
}

TEST(LeastSquares, UnderdeterminedRseIsInfinite) {
  Matrix a(2, 3, 1.0);
  std::vector<double> y = {1, 2};
  const auto fit = solve_least_squares(a, y);
  EXPECT_TRUE(std::isinf(fit.rse));
}

TEST(Pmnf, TermValueMatchesDefinition) {
  // Group {0, 1}, i=2, j=1: (p0^2 log2 p0) * (p1^2 log2 p1)
  PmnfModel model({{0, 1}}, 2, 1, {0.0, 1.0});
  const std::vector<double> params = {4.0, 2.0};
  const double expected = (16.0 * 2.0) * (4.0 * 1.0);
  EXPECT_DOUBLE_EQ(model.predict(params), expected);
}

TEST(Pmnf, InterceptOnlyPrediction) {
  PmnfModel model({{0}}, 1, 0, {5.0, 0.0});
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{99.0}), 5.0);
}

TEST(Pmnf, ValuesBelowOneRejected) {
  PmnfModel model({{0}}, 1, 0, {0.0, 1.0});
  EXPECT_THROW(model.predict(std::vector<double>{0.5}), Error);
}

TEST(Pmnf, CandidateCountMatchesPaperConfig) {
  // i in {0,1,2}, j in {0,1} minus the degenerate (0,0): five candidates.
  PmnfFitter fitter;
  EXPECT_EQ(fitter.candidate_count(), 5u);
}

TEST(Pmnf, FitRecoversPlantedLinearGroups) {
  // y = 2 + 3*p0*p1 + 0.5*p2  with groups {0,1} and {2}: candidate (i=1,j=0)
  // is exact, so it must win on RSE.
  Rng rng(3);
  const std::size_t n = 120;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double p0 = std::exp2(static_cast<double>(rng.bounded(5)));
    const double p1 = std::exp2(static_cast<double>(rng.bounded(5)));
    const double p2 = std::exp2(static_cast<double>(rng.bounded(5)));
    x(r, 0) = p0;
    x(r, 1) = p1;
    x(r, 2) = p2;
    y[r] = 2.0 + 3.0 * p0 * p1 + 0.5 * p2;
  }
  PmnfFitter fitter;
  const auto best = fitter.fit_best(x, y, {{0, 1}, {2}});
  EXPECT_EQ(best.model.i_exponent(), 1);
  EXPECT_EQ(best.model.j_exponent(), 0);
  EXPECT_NEAR(best.model.coefficients()[0], 2.0, 1e-4);
  EXPECT_NEAR(best.model.coefficients()[1], 3.0, 1e-5);
  EXPECT_NEAR(best.model.coefficients()[2], 0.5, 1e-5);
  EXPECT_NEAR(best.rse, 0.0, 1e-4);  // tiny ridge keeps the solve regular
}

TEST(Pmnf, FitRecoversLogModel) {
  // y = 1 + 4*log2(p0): candidate (i=0, j=1) is exact.
  const std::size_t n = 60;
  Matrix x(n, 1);
  std::vector<double> y(n);
  Rng rng(5);
  for (std::size_t r = 0; r < n; ++r) {
    const double p0 = std::exp2(static_cast<double>(rng.bounded(8)));
    x(r, 0) = p0;
    y[r] = 1.0 + 4.0 * std::log2(p0);
  }
  PmnfFitter fitter;
  const auto best = fitter.fit_best(x, y, {{0}});
  EXPECT_EQ(best.model.i_exponent(), 0);
  EXPECT_EQ(best.model.j_exponent(), 1);
  EXPECT_NEAR(best.model.coefficients()[1], 4.0, 1e-5);
}

TEST(Pmnf, FitAllReturnsEveryCandidate) {
  Matrix x(10, 2);
  std::vector<double> y(10);
  Rng rng(7);
  for (std::size_t r = 0; r < 10; ++r) {
    x(r, 0) = std::exp2(static_cast<double>(rng.bounded(4)));
    x(r, 1) = std::exp2(static_cast<double>(rng.bounded(4)));
    y[r] = rng.uniform();
  }
  PmnfFitter fitter;
  const auto all = fitter.fit_all(x, y, {{0}, {1}});
  EXPECT_EQ(all.size(), fitter.candidate_count());
  for (const auto& fit : all) {
    EXPECT_EQ(fit.model.coefficients().size(), 3u);
  }
}

TEST(Pmnf, SearchSpaceIndependentOfGroupCount) {
  // The candidate count stays |I|x|J|-1 regardless of how many groups.
  PmnfFitter fitter;
  Matrix x(12, 4);
  std::vector<double> y(12);
  Rng rng(9);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      x(r, c) = std::exp2(static_cast<double>(rng.bounded(3)));
    }
    y[r] = rng.uniform();
  }
  EXPECT_EQ(fitter.fit_all(x, y, {{0}, {1}, {2}, {3}}).size(), 5u);
  EXPECT_EQ(fitter.fit_all(x, y, {{0, 1, 2, 3}}).size(), 5u);
}

TEST(Pmnf, ToStringMentionsGroupsAndExponents) {
  PmnfModel model({{0, 2}}, 2, 1, {1.0, -0.5});
  const auto s = model.to_string();
  EXPECT_NE(s.find("P0"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("^2"), std::string::npos);
  EXPECT_NE(s.find("log2"), std::string::npos);
}

}  // namespace
}  // namespace cstuner::regress
