#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/json.hpp"
#include "tuner/trace.hpp"

namespace cstuner::tuner {
namespace {

ConvergenceTrace make_trace() {
  ConvergenceTrace trace;
  trace.record(0, 4, 0.125, 3.5);
  trace.record(1, 9, 0.6789012345678901, 2.25);
  trace.record(2, 17, 1.0000000000000002, 2.25);
  trace.record_event(0x1234567890abcdefULL, EvalStatus::kCompileFail, 1);
  trace.record_event(42, EvalStatus::kOk, 3);  // retried success
  trace.record_event(42, EvalStatus::kQuarantined, 0);
  trace.record_event(7, EvalStatus::kTimeout, 2);
  return trace;
}

TEST(Trace, RecordEventAndCount) {
  const ConvergenceTrace trace = make_trace();
  EXPECT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.event_count(EvalStatus::kCompileFail), 1u);
  EXPECT_EQ(trace.event_count(EvalStatus::kOk), 1u);
  EXPECT_EQ(trace.event_count(EvalStatus::kQuarantined), 1u);
  EXPECT_EQ(trace.event_count(EvalStatus::kTimeout), 1u);
  EXPECT_EQ(trace.event_count(EvalStatus::kCrash), 0u);
}

TEST(Trace, ClearDropsPointsAndEvents) {
  ConvergenceTrace trace = make_trace();
  trace.clear();
  EXPECT_TRUE(trace.points.empty());
  EXPECT_TRUE(trace.events.empty());
}

TEST(Trace, JsonRoundTripIsBitIdentical) {
  const ConvergenceTrace trace = make_trace();
  JsonWriter json;
  trace.write_json(json);
  const ConvergenceTrace back =
      ConvergenceTrace::from_json(json_parse(json.str()));

  ASSERT_EQ(back.points.size(), trace.points.size());
  for (std::size_t i = 0; i < trace.points.size(); ++i) {
    EXPECT_EQ(back.points[i].iteration, trace.points[i].iteration);
    EXPECT_EQ(back.points[i].evaluations, trace.points[i].evaluations);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.points[i].virtual_time_s),
              std::bit_cast<std::uint64_t>(trace.points[i].virtual_time_s));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.points[i].best_time_ms),
              std::bit_cast<std::uint64_t>(trace.points[i].best_time_ms));
  }
  ASSERT_EQ(back.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(back.events[i].setting_key, trace.events[i].setting_key);
    EXPECT_EQ(back.events[i].status, trace.events[i].status);
    EXPECT_EQ(back.events[i].attempts, trace.events[i].attempts);
  }
}

TEST(Trace, SecondRoundTripIsTextIdentical) {
  // Serialization is a fixed point: write -> parse -> write reproduces the
  // exact same text (the shortest-round-trip double formatting is stable).
  const ConvergenceTrace trace = make_trace();
  JsonWriter first;
  trace.write_json(first);
  JsonWriter second;
  ConvergenceTrace::from_json(json_parse(first.str())).write_json(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Trace, EmptyTraceRoundTrips) {
  const ConvergenceTrace trace;
  JsonWriter json;
  trace.write_json(json);
  const ConvergenceTrace back =
      ConvergenceTrace::from_json(json_parse(json.str()));
  EXPECT_TRUE(back.points.empty());
  EXPECT_TRUE(back.events.empty());
}

TEST(Trace, FromJsonRejectsUnknownStatus) {
  const std::string bad =
      R"({"points":[],"events":[{"key":1,"status":"exploded","attempts":1}]})";
  EXPECT_THROW(ConvergenceTrace::from_json(json_parse(bad)), Error);
}

TEST(Trace, AllStatusNamesRoundTrip) {
  ConvergenceTrace trace;
  for (int s = 0; s <= static_cast<int>(EvalStatus::kQuarantined); ++s) {
    trace.record_event(static_cast<std::uint64_t>(s),
                       static_cast<EvalStatus>(s), 1);
  }
  JsonWriter json;
  trace.write_json(json);
  const ConvergenceTrace back =
      ConvergenceTrace::from_json(json_parse(json.str()));
  ASSERT_EQ(back.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(back.events[i].status, trace.events[i].status);
  }
}

}  // namespace
}  // namespace cstuner::tuner
