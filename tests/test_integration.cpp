// End-to-end properties of the whole system: the motivation observations
// the paper builds on (§III), cross-method comparisons, and cross-GPU
// behaviour. These run on reduced universes to stay fast but exercise every
// module together.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/grouping.hpp"
#include "cstuner.hpp"

namespace cstuner {
namespace {

using namespace space;

struct Workbench {
  explicit Workbench(const std::string& stencil,
                     const gpusim::GpuArch& arch = gpusim::a100())
      : spec(stencil::make_stencil(stencil)), space(spec), sim(arch) {
    Rng rng(fnv1a(stencil.data(), stencil.size()));
    universe = space.sample_universe(rng, 3000);
    dataset = tuner::collect_dataset(space, sim, 128, rng);
    times.reserve(universe.size());
    for (std::size_t i = 0; i < universe.size(); ++i) {
      times.push_back(sim.measure_ms(spec, universe[i], i));
    }
  }

  double best_time() const {
    return *std::min_element(times.begin(), times.end());
  }

  stencil::StencilSpec spec;
  SearchSpace space;
  gpusim::Simulator sim;
  std::vector<Setting> universe;
  std::vector<double> times;
  tuner::PerfDataset dataset;
};

TEST(Motivation, LowProportionOfHighPerformanceSettings) {
  // Fig. 2's premise: settings within 20% of the optimum are rare; a large
  // fraction is >5x slower.
  Workbench wb("j3d7pt");
  const double best = wb.best_time();
  std::size_t near_opt = 0, very_slow = 0;
  for (double t : wb.times) {
    if (best / t >= 0.8) ++near_opt;
    if (best / t < 0.2) ++very_slow;
  }
  const double near_frac =
      static_cast<double>(near_opt) / static_cast<double>(wb.times.size());
  const double slow_frac =
      static_cast<double>(very_slow) / static_cast<double>(wb.times.size());
  EXPECT_LT(near_frac, 0.25) << "high-performance settings should be rare";
  EXPECT_GT(slow_frac, 0.05) << "a sizeable fraction should be >5x slower";
}

TEST(Motivation, TopNSettingsFormPlateau) {
  // Fig. 4's premise: the n-th best setting is close to the optimum.
  Workbench wb("helmholtz");
  auto sorted = wb.times;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted[0] / sorted[9], 0.6);    // top-10
  EXPECT_GT(sorted[0] / sorted[99], 0.35);  // top-100
}

TEST(Motivation, ParametersAreCorrelated) {
  // Fig. 3's premise: separate tuning of parameter pairs misses the
  // optimum for a meaningful fraction of pairs. Verified indirectly: the
  // CV scores must spread (some pairs strongly coupled, some not).
  Workbench wb("j3d7pt");
  const auto pairs = core::compute_pair_cvs(wb.space, wb.dataset);
  std::vector<double> finite_scores;
  for (const auto& p : pairs) {
    if (p.score < 1e100) finite_scores.push_back(p.score);
  }
  ASSERT_GT(finite_scores.size(), 20u);
  const double lo = *std::min_element(finite_scores.begin(),
                                      finite_scores.end());
  const double hi = *std::max_element(finite_scores.begin(),
                                      finite_scores.end());
  EXPECT_LT(lo, 0.5 * hi) << "pair correlations should differ in strength";
}

TEST(EndToEnd, CsTunerBeatsRandomSamplingAtEqualBudget) {
  Workbench wb("cheby");
  // csTuner with a 25 virtual-second budget.
  core::CsTuner cs;
  cs.set_dataset(wb.dataset);
  cs.set_universe(wb.universe);
  tuner::Evaluator evaluator(wb.sim, wb.space, {}, 61);
  cs.tune(evaluator, {.max_virtual_seconds = 25.0});

  // Random search with the same budget.
  tuner::Evaluator random_eval(wb.sim, wb.space, {}, 61);
  Rng rng(62);
  while (random_eval.virtual_time_s() < 25.0) {
    random_eval.evaluate(wb.space.random_valid(rng));
  }
  EXPECT_LT(evaluator.best_time_ms(), random_eval.best_time_ms());
}

TEST(EndToEnd, AllFourMethodsProduceValidResults) {
  Workbench wb("addsgd4");
  std::vector<std::unique_ptr<tuner::Tuner>> tuners;
  {
    auto cs = std::make_unique<core::CsTuner>();
    cs->set_dataset(wb.dataset);
    cs->set_universe(wb.universe);
    tuners.push_back(std::move(cs));
  }
  {
    auto garvey = std::make_unique<baselines::Garvey>();
    garvey->set_dataset(wb.dataset);
    tuners.push_back(std::move(garvey));
  }
  tuners.push_back(std::make_unique<baselines::OpenTuner>());
  tuners.push_back(std::make_unique<baselines::Artemis>());

  for (auto& tuner : tuners) {
    tuner::Evaluator evaluator(wb.sim, wb.space, {}, 63);
    tuner->tune(evaluator, {.max_virtual_seconds = 15.0});
    ASSERT_TRUE(evaluator.best_setting().has_value()) << tuner->name();
    EXPECT_TRUE(wb.space.is_valid(*evaluator.best_setting()))
        << tuner->name();
    EXPECT_GT(evaluator.unique_evaluations(), 10u) << tuner->name();
  }
}

TEST(EndToEnd, CsTunerCompetitiveWithBaselinesIsoTime) {
  // The headline claim at reduced scale: csTuner's final best is at least
  // as good as the worst baseline and within tolerance of the best one.
  Workbench wb("j3d27pt");
  auto run = [&](tuner::Tuner& tuner, std::uint64_t seed) {
    tuner::Evaluator evaluator(wb.sim, wb.space, {}, seed);
    tuner.tune(evaluator, {.max_virtual_seconds = 30.0});
    return evaluator.best_time_ms();
  };
  core::CsTuner cs;
  cs.set_dataset(wb.dataset);
  cs.set_universe(wb.universe);
  const double cs_best = run(cs, 64);

  baselines::Garvey garvey;
  garvey.set_dataset(wb.dataset);
  const double garvey_best = run(garvey, 64);
  baselines::OpenTuner ot;
  const double ot_best = run(ot, 64);
  baselines::Artemis artemis;
  const double artemis_best = run(artemis, 64);

  const double worst_baseline =
      std::max({garvey_best, ot_best, artemis_best});
  const double best_baseline =
      std::min({garvey_best, ot_best, artemis_best});
  EXPECT_LE(cs_best, worst_baseline);
  EXPECT_LE(cs_best, best_baseline * 1.15);
}

TEST(EndToEnd, CrossGpuOptimaDiffer) {
  // §V-D: optimal settings are architecture-specific — at minimum, the two
  // GPU models must rank some settings differently.
  Workbench a100_wb("hypterm", gpusim::a100());
  gpusim::Simulator v100_sim(gpusim::v100());
  // Sort settings by A100 time and check whether the V100 model inverts the
  // order of A100-adjacent (i.e. competitive) settings somewhere.
  std::vector<std::size_t> order(a100_wb.universe.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return a100_wb.times[a] < a100_wb.times[b];
  });
  std::size_t rank_flips = 0;
  const std::size_t scan = std::min<std::size_t>(order.size() - 1, 500);
  for (std::size_t i = 0; i < scan; ++i) {
    const auto& s1 = a100_wb.universe[order[i]];
    const auto& s2 = a100_wb.universe[order[i + 1]];
    if (v100_sim.profile(a100_wb.spec, s1).time_ms >
        v100_sim.profile(a100_wb.spec, s2).time_ms) {
      ++rank_flips;
    }
  }
  EXPECT_GT(rank_flips, 0u);
}

TEST(EndToEnd, BestSettingExecutesCorrectlyOnCpu) {
  // Whatever the tuner picks must be semantics-preserving: validate the
  // winner with the tiled executor on a scaled-down grid.
  Workbench wb("helmholtz");
  core::CsTuner cs;
  cs.set_dataset(wb.dataset);
  cs.set_universe(wb.universe);
  tuner::Evaluator evaluator(wb.sim, wb.space, {}, 65);
  cs.tune(evaluator, {.max_virtual_seconds = 10.0});
  ASSERT_TRUE(evaluator.best_setting().has_value());

  auto small = stencil::scaled_stencil("helmholtz", 20);
  // Shrink the winning setting onto the small grid where necessary.
  Setting s = *evaluator.best_setting();
  space::SearchSpace small_space(small);
  if (!small_space.is_valid(s)) {
    GTEST_SKIP() << "winner does not fit the scaled grid";
  }
  EXPECT_EQ(exec::max_divergence_from_reference(small, s), 0.0);
}

TEST(EndToEnd, GeneratedKernelReflectsWinningSetting) {
  Workbench wb("j3d7pt");
  core::CsTuner cs;
  cs.set_dataset(wb.dataset);
  cs.set_universe(wb.universe);
  tuner::Evaluator evaluator(wb.sim, wb.space, {}, 66);
  cs.tune(evaluator, {.max_virtual_seconds = 10.0});
  const auto& best = *evaluator.best_setting();
  const auto kernel = codegen::generate_kernel(wb.spec, best);
  EXPECT_NE(kernel.source.find(best.to_string()), std::string::npos);
  EXPECT_NE(kernel.launch.find("dim3 grid"), std::string::npos);
}

}  // namespace
}  // namespace cstuner
