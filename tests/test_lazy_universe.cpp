#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "analysis/propagate.hpp"
#include "analysis/pruner.hpp"
#include "analysis/space_lint.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/simulator.hpp"
#include "space/lazy_universe.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner {
namespace {

using namespace space;

/// Reduced Table I limits: small enough that the raw cartesian product
/// (~3.5M combinations) is brute-forceable, structured enough to keep every
/// constraint family active (streaming, coverage, unroll support, resources).
SpaceLimits reduced_limits() {
  SpaceLimits limits;
  limits.max_unroll = 2;
  limits.max_merge = 2;
  limits.max_tb_xy = 4;
  limits.max_tb_z = 2;
  return limits;
}

stencil::StencilSpec reduced_spec(const std::string& name) {
  return stencil::scaled_stencil(name, 16);
}

/// Ground truth: every raw combination filtered through the full checker.
std::vector<Setting> brute_force(const SearchSpace& space) {
  std::vector<Setting> out;
  const auto& params = space.parameters();
  Setting s;
  std::function<void(std::size_t)> rec = [&](std::size_t p) {
    if (p == kParamCount) {
      if (space.is_valid(s)) out.push_back(s);
      return;
    }
    for (const auto v : params[p].values) {
      s.set(static_cast<ParamId>(p), v);
      rec(p + 1);
    }
  };
  rec(0);
  return out;
}

std::array<std::int64_t, kParamCount> key_of(const Setting& s) {
  std::array<std::int64_t, kParamCount> key{};
  for (std::size_t p = 0; p < kParamCount; ++p) {
    key[p] = s.get(static_cast<ParamId>(p));
  }
  return key;
}

std::vector<std::array<std::int64_t, kParamCount>> sorted_keys(
    const std::vector<Setting>& settings) {
  std::vector<std::array<std::int64_t, kParamCount>> keys;
  keys.reserve(settings.size());
  for (const auto& s : settings) keys.push_back(key_of(s));
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// FNV-1a over the raw parameter values, order-sensitive.
std::uint64_t digest(const std::vector<Setting>& settings) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& s : settings) {
    for (std::size_t p = 0; p < kParamCount; ++p) {
      auto v = static_cast<std::uint64_t>(s.get(static_cast<ParamId>(p)));
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
  }
  return h;
}

// -- LazyUniverse vs exhaustive ground truth --------------------------------

TEST(LazyUniverse, MatchesBruteForceOnReducedSpaces) {
  for (const char* name : {"j3d7pt", "hypterm"}) {
    SearchSpace space(reduced_spec(name), reduced_limits());
    const auto expected = brute_force(space);
    ASSERT_FALSE(expected.empty()) << name;

    LazyUniverse lazy(space);
    EXPECT_EQ(lazy.valid_count(), expected.size()) << name;

    const auto all = lazy.take_all();
    ASSERT_EQ(all.size(), expected.size()) << name;
    EXPECT_EQ(sorted_keys(all), sorted_keys(expected)) << name;

    // Every enumerated setting individually passes the checker.
    for (const auto& s : all) ASSERT_TRUE(space.is_valid(s));

    // Region counts partition the total.
    std::uint64_t by_region = 0;
    for (std::size_t r = 0; r < lazy.regions().size(); ++r) {
      by_region += lazy.region_count(r);
    }
    EXPECT_EQ(by_region, lazy.valid_count()) << name;
  }
}

TEST(LazyUniverse, ChunkedEnumerationMatchesTakeAll) {
  SearchSpace space(reduced_spec("j3d7pt"), reduced_limits());
  LazyUniverseOptions options;
  options.chunk = 1000;   // deliberately not a divisor of the total
  options.window = 4096;  // force several parallel windows
  LazyUniverse lazy(space, options);
  const auto all = lazy.take_all();

  // next_chunk: same settings in the same order, chunk bound respected.
  std::vector<Setting> chunked;
  std::vector<Setting> chunk;
  while (true) {
    chunk.clear();
    if (!lazy.next_chunk(chunk) && chunk.empty()) break;
    EXPECT_LE(chunk.size(), options.chunk);
    chunked.insert(chunked.end(), chunk.begin(), chunk.end());
    if (chunk.size() < options.chunk) break;
  }
  ASSERT_EQ(chunked.size(), all.size());
  EXPECT_EQ(digest(chunked), digest(all));

  // reset() rewinds to the exact same sequence.
  lazy.reset();
  chunk.clear();
  ASSERT_TRUE(lazy.next_chunk(chunk));
  ASSERT_FALSE(chunk.empty());
  EXPECT_EQ(key_of(chunk.front()), key_of(all.front()));

  // for_each_chunk: identical stream, windows notwithstanding.
  std::vector<Setting> streamed;
  lazy.for_each_chunk([&](const std::vector<Setting>& c) {
    EXPECT_LE(c.size(), options.chunk);
    streamed.insert(streamed.end(), c.begin(), c.end());
  });
  ASSERT_EQ(streamed.size(), all.size());
  EXPECT_EQ(digest(streamed), digest(all));
}

TEST(LazyUniverse, BitIdenticalAcrossWorkerCounts) {
  // Reduced space: the full enumeration digest must not depend on the pool.
  std::uint64_t full_digest = 0;
  // Full-size space (10^13 raw): the deterministic spread sample likewise.
  std::uint64_t sample_digest = 0;
  std::uint64_t exact_count = 0;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4},
                                    std::size_t{8}}) {
    ThreadPool pool(workers);
    {
      SearchSpace space(reduced_spec("j3d7pt"), reduced_limits());
      LazyUniverse lazy(space, {}, &pool);
      const std::uint64_t d = digest(lazy.take_all());
      if (workers == 0) full_digest = d;
      EXPECT_EQ(d, full_digest) << workers << " workers";
    }
    {
      SearchSpace space(stencil::make_stencil("j3d7pt"));
      LazyUniverse lazy(space, {}, &pool);
      if (workers == 0) exact_count = lazy.valid_count();
      EXPECT_EQ(lazy.valid_count(), exact_count) << workers << " workers";
      const std::uint64_t d = digest(lazy.spread_sample(5000));
      if (workers == 0) sample_digest = d;
      EXPECT_EQ(d, sample_digest) << workers << " workers";
    }
  }
  EXPECT_GT(exact_count, 0u);
}

TEST(LazyUniverse, SpreadSampleIsOrderedSubsetWithoutDuplicates) {
  SearchSpace space(reduced_spec("j3d7pt"), reduced_limits());
  LazyUniverse lazy(space);
  const auto all = lazy.take_all();
  const std::size_t k = 997;
  ASSERT_GT(all.size(), k);
  const auto sample = lazy.spread_sample(k);
  ASSERT_EQ(sample.size(), k);

  // A subsequence of the enumeration order: each sampled setting is found
  // in order by a single forward scan of the universe.
  std::size_t cursor = 0;
  for (const auto& s : sample) {
    while (cursor < all.size() && !(all[cursor] == s)) ++cursor;
    ASSERT_LT(cursor, all.size()) << "sample not in enumeration order";
    ++cursor;
  }

  std::set<std::array<std::int64_t, kParamCount>> unique;
  for (const auto& s : sample) unique.insert(key_of(s));
  EXPECT_EQ(unique.size(), sample.size());

  // Oversized requests degrade to the full universe.
  EXPECT_EQ(lazy.spread_sample(all.size() + 100).size(), all.size());
}

// -- Symbolic propagation vs exhaustive ground truth ------------------------

TEST(Propagate, ExactCountMatchesExhaustive) {
  SearchSpace space(reduced_spec("j3d7pt"), reduced_limits());
  const auto expected = brute_force(space);
  const auto result = analysis::propagate(space);
  ASSERT_TRUE(result.engine_applicable);
  EXPECT_EQ(result.valid_count, expected.size());

  std::uint64_t by_region = 0;
  for (const auto& summary : result.region_summaries) {
    by_region += summary.valid_count;
    if (summary.empty) EXPECT_EQ(summary.valid_count, 0u) << summary.label;
  }
  EXPECT_EQ(by_region, result.valid_count);
}

TEST(Propagate, DeadnessVerdictsMatchExhaustiveLiveness) {
  SearchSpace space(reduced_spec("hypterm"), reduced_limits());
  const auto settings = brute_force(space);
  const auto result = analysis::propagate(space);
  ASSERT_TRUE(result.engine_applicable);

  // Exhaustive per-(parameter, value) liveness.
  std::array<std::set<std::int64_t>, kParamCount> seen;
  for (const auto& s : settings) {
    for (std::size_t p = 0; p < kParamCount; ++p) {
      seen[p].insert(s.get(static_cast<ParamId>(p)));
    }
  }
  const auto& params = space.parameters();
  for (std::size_t p = 0; p < kParamCount; ++p) {
    const auto id = static_cast<ParamId>(p);
    for (std::size_t i = 0; i < params[p].values.size(); ++i) {
      const std::int64_t v = params[p].values[i];
      const bool live = seen[p].count(v) > 0;
      EXPECT_EQ(((result.live_masks[p] >> i) & 1U) != 0, live)
          << param_name(id) << "=" << v;
      EXPECT_EQ(result.value_proven_dead(id, v), !live)
          << param_name(id) << "=" << v;
    }
  }

  // Every certified dead pair really has no witness.
  for (const auto& pair : result.dead_pairs) {
    for (const auto& s : settings) {
      ASSERT_FALSE(s.get(pair.a) == pair.value_a &&
                   s.get(pair.b) == pair.value_b)
          << param_name(pair.a) << "=" << pair.value_a << " with "
          << param_name(pair.b) << "=" << pair.value_b;
    }
  }
  // The canonical-encoding holes (SD/prefetching without streaming) are
  // certified even in the reduced space.
  EXPECT_FALSE(result.dead_pairs.empty());
}

TEST(Propagate, FullSpaceProofsAndCountAgreeWithEnumerator) {
  SearchSpace space(stencil::make_stencil("hypterm"));
  const auto result = analysis::propagate(space);
  ASSERT_TRUE(result.engine_applicable);

  LazyUniverse lazy(space);
  EXPECT_EQ(result.valid_count, lazy.valid_count());

  // The known register-spill hole: merging 64 points per thread dies, the
  // minimal merge factor lives (mirrors the space-lint expectations).
  EXPECT_TRUE(result.value_proven_dead(kCMx, 64));
  EXPECT_FALSE(result.value_proven_dead(kCMx, 1));
  bool found = false;
  for (const auto& dead : result.dead_values) {
    if (dead.param == kCMx && dead.value == 64) {
      found = true;
      EXPECT_EQ(dead.rule, "register-spill");
      EXPECT_FALSE(dead.certificate.empty());
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(result.rule_prunes.count("register-spill"), 0u);
}

// -- Dedup regression -------------------------------------------------------

TEST(SettingDedup, DistinguishesSettingsUnderForcedHashCollision) {
  // Every setting hashes to the same bucket: only content comparison can
  // tell them apart (the historical bug dropped distinct settings here).
  SettingDedup dedup([](const Setting&) { return std::uint64_t{42}; });
  Setting a;
  Setting b;
  b.set(kTBx, 2);
  EXPECT_TRUE(dedup.insert(a));
  EXPECT_TRUE(dedup.insert(b));
  EXPECT_FALSE(dedup.insert(a));
  EXPECT_FALSE(dedup.insert(b));
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(SettingDedup, SampleUniverseHasNoDuplicates) {
  SearchSpace space(stencil::make_stencil("j3d7pt"));
  Rng rng(7);
  const auto universe = space.sample_universe(rng, 500);
  std::set<std::array<std::int64_t, kParamCount>> unique;
  for (const auto& s : universe) unique.insert(key_of(s));
  EXPECT_EQ(unique.size(), universe.size());
}

// -- StaticPruner over propagated domains -----------------------------------

TEST(StaticPruner, DomainsRejectProvenDeadSettingsBeforeFullCheck) {
  SearchSpace space(stencil::make_stencil("hypterm"));
  analysis::StaticPruner pruner(space);
  analysis::PropagateOptions options;
  options.compute_counts = false;
  pruner.set_domains(std::make_shared<analysis::PropagationResult>(
      analysis::propagate(space, options)));

  Rng rng(11);
  Setting doomed = space.random_valid(rng);
  doomed.set(kCMx, 64);  // proven dead (register spill) in every region
  EXPECT_FALSE(pruner.is_valid(doomed));
  EXPECT_GE(pruner.stats().domain_pruned, 1u);

  // Agreement with the ground-truth checker on a random mix.
  for (int i = 0; i < 200; ++i) {
    const Setting s = space.random_setting(rng);
    EXPECT_EQ(pruner.is_valid(s), space.is_valid(s));
  }
}

// -- Lint verdict tiers -----------------------------------------------------

TEST(SpaceLint, SymbolicPathProvesCountsAndTagsVerdicts) {
  SearchSpace space(stencil::make_stencil("j3d7pt"));
  const auto lint = analysis::lint_space(space);
  EXPECT_TRUE(lint.proven);
  EXPECT_GT(lint.valid_count, 0u);
  EXPECT_EQ(lint.skipped_pairs, 0u);
  ASSERT_TRUE(lint.report.has_rule("space.valid-count"));

  bool saw_proven = false;
  bool saw_heuristic = false;
  for (const auto& d : lint.report.diagnostics()) {
    if (d.rule == "space.valid-count") {
      EXPECT_EQ(d.verdict, "proven");
      saw_proven = true;
    }
    if (d.rule == "space.valid-fraction") {
      EXPECT_EQ(d.verdict, "heuristic");
      saw_heuristic = true;
    }
  }
  EXPECT_TRUE(saw_proven);
  EXPECT_TRUE(saw_heuristic);

  // The verdict is rendered in text and emitted as a JSON field.
  EXPECT_NE(lint.report.to_string().find("(proven)"), std::string::npos);
  JsonWriter json;
  lint.report.write_json(json);
  const auto parsed = json_parse(json.str());
  bool json_verdict = false;
  for (const auto& d : parsed.as_array()) {
    if (const auto* v = d.find("verdict")) {
      if (v->as_string() == "proven") json_verdict = true;
    }
  }
  EXPECT_TRUE(json_verdict);
}

TEST(SpaceLint, HeuristicFallbackTagsFindingsAndCapsPairProbes) {
  SearchSpace space(stencil::make_stencil("j3d7pt"));
  analysis::SpaceLintOptions options;
  options.use_symbolic = false;
  options.max_pair_probes = 3;
  const auto lint = analysis::lint_space(space, options);
  EXPECT_FALSE(lint.proven);
  EXPECT_EQ(lint.valid_count, 0u);
  EXPECT_EQ(lint.probed_pairs, 3u);
  EXPECT_GT(lint.skipped_pairs, 0u);
  EXPECT_TRUE(lint.report.has_rule("space.pairs-skipped"));
  for (const auto& d : lint.report.diagnostics()) {
    EXPECT_NE(d.verdict, "proven") << d.rule;
  }
}

TEST(SpaceLint, SymbolicAndHeuristicAgreeOnValueLiveness) {
  SearchSpace space(stencil::make_stencil("hypterm"));
  const auto proven = analysis::lint_space(space);
  analysis::SpaceLintOptions options;
  options.use_symbolic = false;
  const auto heuristic = analysis::lint_space(space, options);
  ASSERT_TRUE(proven.proven);
  ASSERT_FALSE(heuristic.proven);
  EXPECT_EQ(proven.dead_values, heuristic.dead_values);
  const auto& params = space.parameters();
  for (std::size_t p = 0; p < kParamCount; ++p) {
    const auto id = static_cast<ParamId>(p);
    for (const auto v : params[p].values) {
      EXPECT_EQ(proven.value_is_live(id, v, space),
                heuristic.value_is_live(id, v, space))
          << param_name(id) << "=" << v;
    }
  }
}

// -- CsTuner enumerate mode -------------------------------------------------

TEST(CsTunerEnumerate, TuneIsBitIdenticalAcrossWorkerCounts) {
  std::string best_setting;
  double best_ms = 0.0;
  std::size_t evals = 0;
  std::uint64_t exact = 0;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4},
                                    std::size_t{8}}) {
    const auto spec = stencil::make_stencil("j3d7pt");
    SearchSpace space(spec);
    gpusim::Simulator sim(gpusim::a100());
    ThreadPool pool(workers);
    tuner::Evaluator evaluator(sim, space, {}, 7);
    evaluator.set_thread_pool(&pool);

    core::CsTunerOptions options;
    options.enumerate_universe = true;
    options.universe_size = 2000;
    options.seed = 7;
    core::CsTuner tuner(options);
    tuner::StopCriteria stop;
    stop.max_virtual_seconds = 10.0;
    tuner.tune(evaluator, stop);

    ASSERT_TRUE(evaluator.best_setting().has_value());
    EXPECT_GT(tuner.report().universe_exact_count, options.universe_size);
    EXPECT_EQ(tuner.report().universe_count, options.universe_size);
    if (workers == 0) {
      best_setting = evaluator.best_setting()->to_string();
      best_ms = evaluator.best_time_ms();
      evals = evaluator.unique_evaluations();
      exact = tuner.report().universe_exact_count;
    }
    EXPECT_EQ(evaluator.best_setting()->to_string(), best_setting)
        << workers << " workers";
    EXPECT_EQ(evaluator.best_time_ms(), best_ms) << workers << " workers";
    EXPECT_EQ(evaluator.unique_evaluations(), evals) << workers << " workers";
    EXPECT_EQ(tuner.report().universe_exact_count, exact)
        << workers << " workers";
  }
}

TEST(CsTunerEnumerate, SmallSpaceIsEnumeratedInFull) {
  SpaceLimits limits;
  limits.max_unroll = 1;
  limits.max_merge = 1;
  limits.max_tb_xy = 2;
  limits.max_tb_z = 1;
  const auto spec = reduced_spec("j3d7pt");
  SearchSpace space(spec, limits);
  LazyUniverse lazy(space);
  ASSERT_GT(lazy.valid_count(), 0u);

  gpusim::Simulator sim(gpusim::a100());
  tuner::Evaluator evaluator(sim, space, {}, 7);
  core::CsTunerOptions options;
  options.enumerate_universe = true;
  options.universe_size = 100000;
  options.dataset_size = 32;
  core::CsTuner tuner(options);
  tuner::StopCriteria stop;
  stop.max_virtual_seconds = 5.0;
  tuner.tune(evaluator, stop);

  ASSERT_TRUE(evaluator.best_setting().has_value());
  // Below the universe cap the whole valid space becomes the universe.
  EXPECT_EQ(tuner.report().universe_exact_count, lazy.valid_count());
  EXPECT_EQ(tuner.report().universe_count,
            static_cast<std::size_t>(lazy.valid_count()));
}

}  // namespace
}  // namespace cstuner
