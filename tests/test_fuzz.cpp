// Generality fuzzing: the framework must handle arbitrary stencil patterns,
// not just the Table III suite. Random stencils sweep order, array counts
// and FLOP budgets through every layer — space construction, constraint
// checking, the simulator, the executor's semantics oracle and a short
// csTuner run.

#include <gtest/gtest.h>

#include <cmath>

#include "cstuner.hpp"

namespace cstuner {
namespace {

using namespace space;

class FuzzTest : public ::testing::TestWithParam<int> {};

stencil::StencilSpec random_spec(int seed,
                                 stencil::RandomStencilConfig config = {}) {
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  return stencil::make_random_stencil(rng, config);
}

TEST_P(FuzzTest, SpecIsInternallyConsistent) {
  const auto spec = random_spec(GetParam());
  EXPECT_GE(spec.order, 1);
  EXPECT_EQ(spec.n_inputs + spec.n_outputs, spec.io_arrays);
  EXPECT_FALSE(spec.taps.empty());
  int max_offset = 0;
  for (const auto& t : spec.taps) {
    EXPECT_GE(t.array, 0);
    EXPECT_LT(t.array, spec.n_inputs);
    max_offset = std::max({max_offset, std::abs(t.dx), std::abs(t.dy),
                           std::abs(t.dz)});
  }
  EXPECT_LE(max_offset, spec.order);
  EXPECT_GE(spec.flops,
            static_cast<int>(spec.taps.size()) * 2 * spec.n_outputs);
}

TEST_P(FuzzTest, SpaceSamplingAndSimulationWork) {
  const auto spec = random_spec(GetParam());
  SearchSpace search_space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const auto setting = search_space.random_valid(rng);
    const auto profile = sim.profile(spec, setting);
    EXPECT_TRUE(std::isfinite(profile.time_ms));
    EXPECT_GT(profile.time_ms, 0.0);
  }
}

TEST_P(FuzzTest, ExecutorMatchesReferenceOnRandomStencil) {
  stencil::RandomStencilConfig config;
  config.grid = 14;  // keep the naive sweep cheap
  config.max_inputs = 3;
  config.max_outputs = 2;
  config.max_order = 3;
  const auto spec = random_spec(GetParam(), config);
  SearchSpace search_space(spec);
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 3; ++i) {
    const auto setting = search_space.random_valid(rng);
    EXPECT_EQ(exec::max_divergence_from_reference(spec, setting), 0.0)
        << spec.name << " with " << setting.to_string();
  }
}

TEST_P(FuzzTest, CsTunerRunsOnRandomStencil) {
  const auto spec = random_spec(GetParam());
  SearchSpace search_space(spec);
  gpusim::Simulator sim(gpusim::a100());
  tuner::Evaluator evaluator(sim, search_space, {},
                             static_cast<std::uint64_t>(GetParam()));
  core::CsTunerOptions options;
  options.universe_size = 1500;
  options.dataset_size = 64;
  options.seed = static_cast<std::uint64_t>(GetParam());
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = 8.0});
  ASSERT_TRUE(evaluator.best_setting().has_value()) << spec.name;
  EXPECT_TRUE(search_space.is_valid(*evaluator.best_setting()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace cstuner
