#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "cputune/cpu_tuner.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::cputune {
namespace {

stencil::StencilSpec test_spec() { return stencil::make_stencil("j3d7pt"); }

TEST(CpuArch, PresetsSane) {
  EXPECT_EQ(xeon_8380().vector_doubles, 8);
  EXPECT_EQ(epyc_7742().vector_doubles, 4);
  EXPECT_GT(epyc_7742().cores, xeon_8380().cores);
  EXPECT_THROW(cpu_arch_by_name("m1"), UsageError);
}

TEST(CpuSpace, AdmissibleValueShapes) {
  CpuSpace space(test_spec(), xeon_8380());
  EXPECT_EQ(space.values(kThreads).back(), 64);  // pow2 <= 40 cores x 2 SMT
  EXPECT_EQ(space.values(kVecWidth).back(), 8);
  EXPECT_EQ(space.values(kSchedule).size(), 3u);
  EXPECT_EQ(space.values(kNtStores).size(), 2u);
}

TEST(CpuSpace, ConstraintRules) {
  CpuSpace space(test_spec(), xeon_8380());
  CpuSetting s;
  s.set(kThreads, 16);
  s.set(kTileX, 64);
  s.set(kTileY, 16);
  s.set(kTileZ, 16);
  s.set(kVecWidth, 8);
  s.set(kUnroll, 4);
  EXPECT_TRUE(space.is_valid(s));

  CpuSetting vec_too_wide = s;
  vec_too_wide.set(kTileX, 4);
  EXPECT_FALSE(space.is_valid(vec_too_wide));

  CpuSetting unroll_too_deep = s;
  unroll_too_deep.set(kUnroll, 8);
  unroll_too_deep.set(kTileZ, 4);
  EXPECT_FALSE(space.is_valid(unroll_too_deep));

  CpuSetting starved = s;
  starved.set(kTileX, 512);
  starved.set(kTileY, 128);
  starved.set(kTileZ, 128);
  starved.set(kThreads, 64);  // 1x4x4 tiles < 64 threads
  EXPECT_FALSE(space.is_valid(starved));
}

TEST(CpuSpace, RandomValidAndSampleDistinct) {
  CpuSpace space(test_spec(), epyc_7742());
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(space.is_valid(space.random_valid(rng)));
  }
  const auto sample = space.sample(rng, 200);
  EXPECT_GE(sample.size(), 150u);
  std::set<std::uint64_t> hashes;
  for (const auto& s : sample) {
    EXPECT_TRUE(hashes.insert(s.hash()).second);
  }
}

TEST(CpuModel, DeterministicAndPositive) {
  CpuSimulator sim(xeon_8380());
  CpuSpace space(test_spec(), xeon_8380());
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const auto s = space.random_valid(rng);
    const auto p = sim.profile(test_spec(), s);
    EXPECT_GT(p.time_ms, 0.0);
    EXPECT_TRUE(std::isfinite(p.time_ms));
    EXPECT_DOUBLE_EQ(p.time_ms, sim.profile(test_spec(), s).time_ms);
    EXPECT_GE(p.imbalance, 1.0);
  }
}

TEST(CpuModel, MoreThreadsHelpUpToSocket) {
  CpuSimulator sim(xeon_8380());
  CpuSetting s;
  s.set(kTileX, 512);
  s.set(kTileY, 16);
  s.set(kTileZ, 16);
  s.set(kVecWidth, 8);
  CpuSetting one = s, many = s;
  one.set(kThreads, 1);
  many.set(kThreads, 32);
  EXPECT_GT(sim.profile(test_spec(), one).time_ms,
            3.0 * sim.profile(test_spec(), many).time_ms);
}

TEST(CpuModel, VectorizationSpeedsUpComputeBoundStencil) {
  const auto heavy = stencil::make_stencil("rhs4center");
  CpuSimulator sim(xeon_8380());
  CpuSetting s;
  s.set(kThreads, 32);
  s.set(kTileX, 320);
  s.set(kTileY, 16);
  s.set(kTileZ, 16);
  CpuSetting scalar = s, simd = s;
  scalar.set(kVecWidth, 1);
  simd.set(kVecWidth, 8);
  EXPECT_GT(sim.profile(heavy, scalar).time_ms,
            2.0 * sim.profile(heavy, simd).time_ms);
}

TEST(CpuModel, NtStoresAvoidRfoTraffic) {
  CpuSimulator sim(xeon_8380());
  CpuSetting s;
  s.set(kThreads, 32);
  s.set(kTileX, 512);
  s.set(kTileY, 16);
  s.set(kTileZ, 16);
  s.set(kVecWidth, 8);
  CpuSetting nt = s;
  nt.set(kNtStores, 2);
  // j3d7pt is memory bound: removing read-for-ownership must help.
  EXPECT_LT(sim.profile(test_spec(), nt).memory_ms,
            sim.profile(test_spec(), s).memory_ms);
}

TEST(CpuModel, StaticImbalanceWhenTilesDontDivide) {
  CpuSimulator sim(xeon_8380());
  // 512/512 x 512/128 x 512/128 = 1 x 4 x 4 = 16 tiles.
  CpuSetting s;
  s.set(kTileX, 512);
  s.set(kTileY, 128);
  s.set(kTileZ, 128);
  s.set(kVecWidth, 8);
  CpuSetting exact = s, uneven = s;
  exact.set(kThreads, 16);   // 16 tiles / 16 threads: one round each
  uneven.set(kThreads, 12);  // 16 tiles / 12 threads: 2 rounds, 8 idle
  // threads=12 is not pow2-admissible; use 8 vs 16 instead:
  uneven.set(kThreads, 8);
  const auto p_exact = sim.profile(test_spec(), exact);
  const auto p_uneven = sim.profile(test_spec(), uneven);
  EXPECT_DOUBLE_EQ(p_exact.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(p_uneven.imbalance, 1.0);  // 16/8 also divides exactly
  // Fewer tiles than threads is rejected outright by the space.
  CpuSpace space(test_spec(), xeon_8380());
  CpuSetting starved = s;
  starved.set(kThreads, 64);  // 16 tiles cannot feed 64 threads
  EXPECT_FALSE(space.is_valid(starved));
}

TEST(CpuModel, DynamicScheduleBalancesButCosts) {
  CpuSimulator sim(xeon_8380());
  CpuSetting s;
  s.set(kThreads, 32);
  s.set(kTileX, 64);
  s.set(kTileY, 8);
  s.set(kTileZ, 8);
  s.set(kVecWidth, 8);
  CpuSetting dynamic = s;
  dynamic.set(kSchedule, 2);
  const auto p_static = sim.profile(test_spec(), s);
  const auto p_dynamic = sim.profile(test_spec(), dynamic);
  EXPECT_LE(p_dynamic.imbalance, p_static.imbalance + 0.05);
}

TEST(CpuTuner, PipelineFindsGoodSetting) {
  const auto spec = test_spec();
  CpuSpace space(spec, xeon_8380());
  CpuSimulator sim(xeon_8380());
  CpuTuner tuner;
  const auto result = tuner.tune(space, sim);

  EXPECT_TRUE(space.is_valid(result.best));
  EXPECT_GT(result.evaluations, 30u);
  EXPECT_LE(result.evaluations, 400u);
  EXPECT_FALSE(result.groups.empty());
  EXPECT_GT(result.sampled_count, 0u);

  // Beat the median of a random sample.
  Rng rng(9);
  std::vector<double> times;
  for (int i = 0; i < 500; ++i) {
    times.push_back(sim.measure_ms(spec, space.random_valid(rng), i));
  }
  std::sort(times.begin(), times.end());
  EXPECT_LT(result.best_time_ms, times[times.size() / 2]);
}

TEST(CpuTuner, GroupsPartitionParameters) {
  CpuSpace space(test_spec(), epyc_7742());
  CpuSimulator sim(epyc_7742());
  CpuTuner tuner;
  const auto result = tuner.tune(space, sim);
  std::vector<int> seen(kCpuParams, 0);
  for (const auto& g : result.groups) {
    for (std::size_t p : g) ++seen[p];
  }
  for (std::size_t p = 0; p < kCpuParams; ++p) EXPECT_EQ(seen[p], 1);
}

TEST(CpuTuner, DifferentArchitecturesPickDifferentVectorWidths) {
  const auto heavy = stencil::make_stencil("addsgd6");
  CpuSpace avx512(heavy, xeon_8380());
  CpuSpace avx2(heavy, epyc_7742());
  // AVX2 hardware cannot even express vec=8.
  EXPECT_EQ(avx512.values(kVecWidth).back(), 8);
  EXPECT_EQ(avx2.values(kVecWidth).back(), 4);
}

}  // namespace
}  // namespace cstuner::cputune
