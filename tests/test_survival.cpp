#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/fault_model.hpp"
#include "stencil/stencils.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/fault.hpp"

// Survivable distributed tuning (docs/fault-tolerance.md, "Distributed
// failures"): a full csTuner run with a deterministic rank-kill plan must
// complete, heal the migration ring around the dead islands, and stay
// bit-identical across evaluator worker counts and across checkpoint
// resume of the degraded run.

namespace cstuner {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_" + name;
  fs::remove_all(dir);
  return dir;
}

class SurvivalFixture : public ::testing::Test {
 protected:
  SurvivalFixture()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()) {}

  stencil::StencilSpec spec_;
  space::SearchSpace space_;
  gpusim::Simulator sim_;
};

struct SurvivalOutcome {
  space::Setting best_setting;
  double best_time_ms = 0.0;
  double virtual_time_s = 0.0;
  std::size_t unique_evals = 0;
  std::size_t kills_fired = 0;
};

// One 4-island tune over a universe large enough that at least one group
// exceeds the total GA population (4 islands x 16), so the island GA — and
// with it the kill plan — actually runs. The CV(top-n) approximation stops
// the GA after generation 2 on this space, so kills must be scheduled at
// generations 1-2 to fire.
SurvivalOutcome run_survival_tune(const space::SearchSpace& space,
                                  const gpusim::Simulator& sim,
                                  std::size_t workers,
                                  std::vector<tuner::RankKill> plan,
                                  tuner::Checkpoint* checkpoint = nullptr) {
  ThreadPool pool(workers);
  tuner::Evaluator evaluator(sim, space, {}, 42, &pool);
  if (checkpoint != nullptr) {
    evaluator.set_checkpoint(checkpoint);
  }
  evaluator.set_kill_plan(std::move(plan), "j3d7pt");
  core::CsTunerOptions options;
  options.universe_size = 8000;
  options.dataset_size = 64;
  options.seed = 42;
  options.ga.sub_populations = 4;
  options.ga.min_islands = 1;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {});
  SurvivalOutcome out;
  out.best_setting = *evaluator.best_setting();
  out.best_time_ms = evaluator.best_time_ms();
  out.virtual_time_s = evaluator.virtual_time_s();
  out.unique_evals = evaluator.unique_evaluations();
  if (const tuner::FaultInjector* injector = evaluator.fault_injector()) {
    out.kills_fired = injector->kills_fired();
  }
  return out;
}

TEST_F(SurvivalFixture, KillPlanTuneIsBitIdenticalAcrossWorkerCounts) {
  const std::vector<tuner::RankKill> plan = {{1, 2}};
  const auto serial = run_survival_tune(space_, sim_, 0, plan);
  const auto four = run_survival_tune(space_, sim_, 4, plan);
  const auto eight = run_survival_tune(space_, sim_, 8, plan);

  // Non-vacuous: the kill actually fired (the GA ran and reached gen 2).
  ASSERT_EQ(serial.kills_fired, 1u);

  for (const auto* run : {&four, &eight}) {
    EXPECT_EQ(run->kills_fired, 1u);
    EXPECT_TRUE(serial.best_setting == run->best_setting);
    EXPECT_DOUBLE_EQ(serial.best_time_ms, run->best_time_ms);
    EXPECT_DOUBLE_EQ(serial.virtual_time_s, run->virtual_time_s);
    EXPECT_EQ(serial.unique_evals, run->unique_evals);
  }
}

TEST_F(SurvivalFixture, KillAllButOneDegradesToSingleIsland) {
  // Three of four islands die at generation 1; the survivor finishes the
  // search alone (min_islands = 1) and still produces a finite best.
  const std::vector<tuner::RankKill> plan = {{0, 1}, {1, 1}, {3, 1}};
  const auto outcome = run_survival_tune(space_, sim_, 4, plan);
  EXPECT_EQ(outcome.kills_fired, 3u);
  EXPECT_TRUE(std::isfinite(outcome.best_time_ms));
  EXPECT_GT(outcome.unique_evals, 0u);
}

TEST_F(SurvivalFixture, DeadIslandCostsBudgetNotCorrectness) {
  const auto clean = run_survival_tune(space_, sim_, 4, {});
  const auto degraded =
      run_survival_tune(space_, sim_, 4, {{0, 1}, {1, 1}, {3, 1}});
  ASSERT_TRUE(std::isfinite(clean.best_time_ms));
  ASSERT_TRUE(std::isfinite(degraded.best_time_ms));
  // Losing islands shrinks the searched population, but the survivor must
  // still land within tolerance of the full-ring optimum.
  EXPECT_LE(degraded.best_time_ms, clean.best_time_ms * 2.0);
}

TEST_F(SurvivalFixture, DegradedRunResumesBitIdentically) {
  const std::string dir = fresh_dir("survival_resume");
  const std::vector<tuner::RankKill> plan = {{1, 2}};

  SurvivalOutcome first;
  std::size_t journaled_events = 0;
  {
    tuner::Checkpoint checkpoint(dir);
    checkpoint.load();
    first = run_survival_tune(space_, sim_, 4, plan, &checkpoint);
    checkpoint.flush();
    journaled_events = checkpoint.island_events().size();
  }
  ASSERT_EQ(first.kills_fired, 1u);
  // The death (and the heal/adoption it caused) reached the journal.
  ASSERT_GE(journaled_events, 1u);

  // Resume: reload the journal, derive the kill plan from the recorded
  // island deaths instead of passing it explicitly — the degraded topology
  // replays from the journal alone.
  tuner::Checkpoint resumed(dir);
  ASSERT_GT(resumed.load(), 0u);
  const auto replayed_plan = tuner::kill_plan_from_events(resumed.island_events());
  ASSERT_EQ(replayed_plan.size(), 1u);
  EXPECT_EQ(replayed_plan[0].rank, 1);
  EXPECT_EQ(replayed_plan[0].generation, 2u);

  const auto second =
      run_survival_tune(space_, sim_, 4, replayed_plan, &resumed);
  resumed.flush();

  EXPECT_TRUE(first.best_setting == second.best_setting);
  EXPECT_DOUBLE_EQ(first.best_time_ms, second.best_time_ms);
  EXPECT_DOUBLE_EQ(first.virtual_time_s, second.virtual_time_s);
  EXPECT_EQ(first.unique_evals, second.unique_evals);
  // Re-emitting the same events during the resume must not grow the journal.
  EXPECT_EQ(resumed.island_events().size(), journaled_events);
}

}  // namespace
}  // namespace cstuner
