// Cross-module property sweeps (parameterized over the full stencil suite):
// repair correctness, simulator physicality, codegen well-formedness, and
// sampling determinism under every stencil pattern.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "cstuner.hpp"

namespace cstuner {
namespace {

using namespace space;

class SuiteProperty : public ::testing::TestWithParam<std::string> {
 protected:
  SuiteProperty()
      : spec_(stencil::make_stencil(GetParam())),
        space_(spec_),
        sim_(gpusim::a100()) {}

  stencil::StencilSpec spec_;
  SearchSpace space_;
  gpusim::Simulator sim_;
};

TEST_P(SuiteProperty, RepairAlwaysProducesValidSettings) {
  // Repair must map ARBITRARY admissible-value combinations (even wildly
  // inconsistent ones) into the valid space.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Setting raw;
    for (std::size_t p = 0; p < kParamCount; ++p) {
      const auto& param = space_.parameters()[p];
      raw.set(static_cast<ParamId>(p),
              param.values[rng.index(param.cardinality())]);
    }
    const Setting repaired = space_.checker().repaired(raw);
    EXPECT_TRUE(space_.is_valid(repaired))
        << "raw: " << raw.to_string()
        << "\nrepaired: " << repaired.to_string() << "\nviolation: "
        << space_.checker().violation(repaired).value_or("none");
  }
}

TEST_P(SuiteProperty, RepairIsIdempotent) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Setting raw = space_.random_setting(rng);
    const Setting once = space_.checker().repaired(raw);
    const Setting twice = space_.checker().repaired(once);
    EXPECT_EQ(once, twice);
  }
}

TEST_P(SuiteProperty, RepairFixesValidSettingsToThemselves) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Setting valid = space_.random_valid(rng);
    EXPECT_EQ(space_.checker().repaired(valid), valid);
  }
}

TEST_P(SuiteProperty, SimulatorTimesArePhysical) {
  Rng rng(4);
  // The kernel can never beat the DRAM roofline on compulsory traffic or
  // the FP64 roofline on its FLOPs.
  const double flop_floor_ms =
      spec_.total_flops() / gpusim::a100().fp64_gflops / 1e6;
  const double mem_floor_ms =
      spec_.min_bytes() / gpusim::a100().dram_gbps / 1e6;
  const double floor_ms = std::max(flop_floor_ms, mem_floor_ms);
  for (int i = 0; i < 100; ++i) {
    const auto p = sim_.profile(spec_, space_.random_valid(rng));
    EXPECT_GE(p.time_ms, floor_ms * 0.99);
  }
}

TEST_P(SuiteProperty, SimulatorMetricsConsistentWithTime) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto p = sim_.profile(spec_, space_.random_valid(rng));
    // Throughput metrics derived from time must agree with the totals.
    const double implied_gbps =
        (p.memory.dram_read_bytes + p.memory.dram_write_bytes) / 1e6 /
        p.time_ms;
    EXPECT_NEAR(p.metric(gpusim::kDramThroughputGbps), implied_gbps,
                implied_gbps * 1e-9 + 1e-9);
    // Stall ratios partition (approximately) into [0, 1].
    const double stalls = p.metric(gpusim::kStallMemoryRatio) +
                          p.metric(gpusim::kStallSyncRatio);
    EXPECT_GE(stalls, 0.0);
    EXPECT_LE(stalls, 1.0 + 1e-9);
  }
}

TEST_P(SuiteProperty, CodegenBalancedForRandomSettings) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const auto setting = space_.random_valid(rng);
    const auto kernel = codegen::generate_kernel(spec_, setting);
    int depth = 0;
    for (char c : kernel.source) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    // Geometry covers the grid.
    const auto g = codegen::compute_launch_geometry(spec_, setting);
    for (int d = 0; d < 3; ++d) {
      std::int64_t coverage;
      if (setting.flag(kUseStreaming) &&
          d == static_cast<int>(setting.get(kSD)) - 1) {
        coverage = setting.get(kSB);
      } else {
        const ParamId tb[] = {kTBx, kTBy, kTBz};
        const ParamId cm[] = {kCMx, kCMy, kCMz};
        const ParamId bm[] = {kBMx, kBMy, kBMz};
        coverage = setting.get(tb[d]) * setting.get(cm[d]) *
                   setting.get(bm[d]);
      }
      EXPECT_GE(g.grid[d] * coverage, spec_.grid[static_cast<std::size_t>(d)]);
    }
  }
}

TEST_P(SuiteProperty, EvaluatorCacheConsistency) {
  tuner::Evaluator evaluator(sim_, space_, {}, 9);
  Rng rng(7);
  std::vector<Setting> settings;
  std::vector<double> first_times;
  for (int i = 0; i < 20; ++i) {
    settings.push_back(space_.random_valid(rng));
    first_times.push_back(evaluator.evaluate(settings.back()));
  }
  const double clock = evaluator.virtual_time_s();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(evaluator.evaluate(settings[static_cast<std::size_t>(i)]),
                     first_times[static_cast<std::size_t>(i)]);
  }
  EXPECT_DOUBLE_EQ(evaluator.virtual_time_s(), clock);
}

TEST_P(SuiteProperty, DatasetMetricsMatchSimulator) {
  Rng rng(8);
  const auto dataset = tuner::collect_dataset(space_, sim_, 16, rng);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    // Dataset rows must be reproducible from the simulator with the same
    // run index.
    const auto metrics =
        sim_.measure_metrics(spec_, dataset.settings[i], i);
    for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
      EXPECT_DOUBLE_EQ(dataset.metrics(i, m), metrics[m]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStencils, SuiteProperty,
                         ::testing::ValuesIn(stencil::stencil_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace cstuner
