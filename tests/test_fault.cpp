#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/fault_model.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner {
namespace {

// ---------------------------------------------------------------------------
// FaultModel: the deterministic decision kernel.
// ---------------------------------------------------------------------------

TEST(FaultModel, DecisionsAreDeterministic) {
  const gpusim::FaultConfig config = gpusim::FaultConfig::uniform(0.4, 77);
  const gpusim::FaultModel a(config);
  const gpusim::FaultModel b(config);
  for (std::uint64_t key = 0; key < 200; ++key) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      EXPECT_EQ(a.decide(key * 0x9E3779B9ULL, attempt),
                b.decide(key * 0x9E3779B9ULL, attempt));
    }
    EXPECT_DOUBLE_EQ(a.noise_factor(key, 0), b.noise_factor(key, 0));
  }
}

TEST(FaultModel, PermanentVerdictRepeatsEveryAttempt) {
  gpusim::FaultConfig config;
  config.compile_fail_rate = 0.3;
  config.crash_rate = 0.2;
  const gpusim::FaultModel model(config);
  int permanents = 0;
  for (std::uint64_t key = 0; key < 300; ++key) {
    const auto first = model.decide(key, 1);
    if (first == gpusim::FaultKind::kCompileFail ||
        first == gpusim::FaultKind::kCrash) {
      ++permanents;
      // A retry can never clear a permanent verdict.
      for (int attempt = 2; attempt <= 5; ++attempt) {
        EXPECT_EQ(model.decide(key, attempt), first);
      }
    }
  }
  EXPECT_GT(permanents, 0);
}

TEST(FaultModel, TransientFaultsRerollAcrossAttempts) {
  gpusim::FaultConfig config;
  config.timeout_rate = 0.5;
  const gpusim::FaultModel model(config);
  bool recovered = false;
  for (std::uint64_t key = 0; key < 200 && !recovered; ++key) {
    recovered = model.decide(key, 1) == gpusim::FaultKind::kTimeout &&
                model.decide(key, 2) == gpusim::FaultKind::kNone;
  }
  // At ~25% per key, some key must hang once and then succeed on retry.
  EXPECT_TRUE(recovered);
}

TEST(FaultModel, NoiseFactorTakesOnlyConfiguredValues) {
  gpusim::FaultConfig config;
  config.noisy_run_rate = 0.5;
  config.noise_multiplier = 1.5;
  const gpusim::FaultModel model(config);
  int noisy = 0;
  int clean = 0;
  for (std::uint64_t key = 0; key < 200; ++key) {
    const double f = model.noise_factor(key, key % 3);
    if (f == 1.5) {
      ++noisy;
    } else {
      EXPECT_DOUBLE_EQ(f, 1.0);
      ++clean;
    }
  }
  EXPECT_GT(noisy, 0);
  EXPECT_GT(clean, 0);

  const gpusim::FaultModel quiet(gpusim::FaultConfig{});
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_DOUBLE_EQ(quiet.noise_factor(key, 0), 1.0);
  }
}

TEST(FaultModel, UniformConfigSplitsAndClamps) {
  const auto c = gpusim::FaultConfig::uniform(0.2);
  EXPECT_NEAR(c.compile_fail_rate + c.crash_rate + c.timeout_rate +
                  c.transient_rate,
              0.2, 1e-12);
  EXPECT_TRUE(c.any());

  const auto clamped = gpusim::FaultConfig::uniform(2.0);
  EXPECT_NEAR(clamped.compile_fail_rate + clamped.crash_rate +
                  clamped.timeout_rate + clamped.transient_rate,
              0.95, 1e-12);

  EXPECT_FALSE(gpusim::FaultConfig::uniform(0.0).any());
  EXPECT_FALSE(gpusim::FaultConfig{}.any());
}

TEST(FaultInjector, ScopesSeeIndependentPatterns) {
  const auto config = gpusim::FaultConfig::uniform(0.4, 5);
  const tuner::FaultInjector a(config, "j3d7pt");
  const tuner::FaultInjector b(config, "helmholtz");
  bool differs = false;
  for (std::uint64_t key = 0; key < 200 && !differs; ++key) {
    differs = a.decide(key, 1) != b.decide(key, 1);
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// FaultStats JSON round trip (the bench/CLI reporting surface).
// ---------------------------------------------------------------------------

TEST(FaultStats, JsonRoundTripsAndSummarizes) {
  tuner::FaultStats stats;
  stats.compile_fail = 7;
  stats.crash = 2;
  stats.timeout = 3;
  stats.transient = 1;
  stats.retries = 9;
  stats.recovered = 5;
  stats.quarantined_settings = 4;
  stats.quarantine_hits = 11;
  stats.replayed = 6;
  stats.fault_overhead_s = 12.34567890123;
  EXPECT_EQ(stats.failed_evaluations(), 13u);
  EXPECT_TRUE(stats.any());

  JsonWriter json;
  stats.write_json(json);
  const auto back = tuner::FaultStats::from_json(json_parse(json.str()));
  EXPECT_EQ(back.compile_fail, stats.compile_fail);
  EXPECT_EQ(back.crash, stats.crash);
  EXPECT_EQ(back.timeout, stats.timeout);
  EXPECT_EQ(back.transient, stats.transient);
  EXPECT_EQ(back.retries, stats.retries);
  EXPECT_EQ(back.recovered, stats.recovered);
  EXPECT_EQ(back.quarantined_settings, stats.quarantined_settings);
  EXPECT_EQ(back.quarantine_hits, stats.quarantine_hits);
  EXPECT_EQ(back.replayed, stats.replayed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.fault_overhead_s),
            std::bit_cast<std::uint64_t>(stats.fault_overhead_s));

  EXPECT_NE(stats.to_string().find("13 failed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Evaluator under injected faults.
// ---------------------------------------------------------------------------

class FaultEvalFixture : public ::testing::Test {
 protected:
  FaultEvalFixture()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()) {}

  stencil::StencilSpec spec_;
  space::SearchSpace space_;
  gpusim::Simulator sim_;
};

TEST_F(FaultEvalFixture, PermanentFailureIsCachedAndQuarantined) {
  gpusim::FaultConfig config;
  config.compile_fail_rate = 1.0;  // every new setting is rejected by nvcc
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");

  Rng rng(13);
  const auto setting = space_.random_valid(rng);
  const auto first = evaluator.evaluate_result(setting);
  EXPECT_EQ(first.status, tuner::EvalStatus::kCompileFail);
  EXPECT_EQ(first.attempts, 1);
  EXPECT_TRUE(std::isinf(first.time_or_inf()));
  EXPECT_TRUE(evaluator.is_quarantined(setting.hash()));

  auto stats = evaluator.fault_stats();
  EXPECT_EQ(stats.compile_fail, 1u);
  EXPECT_EQ(stats.retries, 0u);  // permanent verdicts are never retried
  EXPECT_EQ(stats.quarantined_settings, 1u);
  // The failed compile still burned its compile time on the virtual clock.
  tuner::EvalCosts costs;
  EXPECT_NEAR(stats.fault_overhead_s, costs.compile_s, 1e-9);
  EXPECT_NEAR(evaluator.virtual_time_s(), costs.compile_s, 1e-9);
  EXPECT_EQ(evaluator.unique_evaluations(), 0u);

  // Re-evaluating serves the cached failure: same outcome, no new charges.
  const auto second = evaluator.evaluate_result(setting);
  EXPECT_EQ(second.status, tuner::EvalStatus::kCompileFail);
  stats = evaluator.fault_stats();
  EXPECT_EQ(stats.compile_fail, 1u);
  EXPECT_EQ(stats.quarantine_hits, 0u);
  EXPECT_NEAR(evaluator.virtual_time_s(), costs.compile_s, 1e-9);
}

TEST_F(FaultEvalFixture, TransientExhaustionQuarantinesAtThreshold) {
  gpusim::FaultConfig config;
  config.transient_rate = 1.0;  // every attempt misreads; retries never help
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  const tuner::RetryPolicy policy;  // max_attempts 3, threshold 2

  Rng rng(14);
  const auto setting = space_.random_valid(rng);
  const auto first = evaluator.evaluate_result(setting);
  EXPECT_EQ(first.status, tuner::EvalStatus::kTransient);
  EXPECT_EQ(first.attempts, 3);
  EXPECT_FALSE(evaluator.is_quarantined(setting.hash()));
  EXPECT_EQ(evaluator.fault_stats().retries, 2u);

  // Transient failures are not cached: the second evaluation retries the
  // full ladder, and the second committed failure trips the quarantine.
  const auto second = evaluator.evaluate_result(setting);
  EXPECT_EQ(second.status, tuner::EvalStatus::kTransient);
  EXPECT_TRUE(evaluator.is_quarantined(setting.hash()));
  auto stats = evaluator.fault_stats();
  EXPECT_EQ(stats.transient, 2u);
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_EQ(stats.quarantined_settings, 1u);

  // From now on the quarantine list answers without burning measurements.
  const double time_before = evaluator.virtual_time_s();
  const auto third = evaluator.evaluate_result(setting);
  EXPECT_EQ(third.status, tuner::EvalStatus::kQuarantined);
  EXPECT_EQ(third.attempts, 0);
  stats = evaluator.fault_stats();
  EXPECT_EQ(stats.quarantine_hits, 1u);
  EXPECT_EQ(stats.transient, 2u);
  EXPECT_DOUBLE_EQ(evaluator.virtual_time_s(), time_before);

  // Overhead ledger: per failed evaluation, two backoffs (0.05 + 0.10),
  // three wasted launch rounds, and the one compile that preceded them.
  tuner::EvalCosts costs;
  const double per_eval =
      policy.backoff_initial_s * (1.0 + policy.backoff_multiplier) +
      3.0 * costs.runs_per_eval * costs.launch_overhead_s + costs.compile_s;
  EXPECT_NEAR(stats.fault_overhead_s, 2.0 * per_eval, 1e-9);
  EXPECT_NEAR(evaluator.virtual_time_s(), 2.0 * per_eval, 1e-9);
  EXPECT_EQ(evaluator.unique_evaluations(), 0u);
  EXPECT_EQ(evaluator.quarantined_keys(),
            std::vector<std::uint64_t>{setting.hash()});
}

TEST_F(FaultEvalFixture, RetryRecoversAndChargesBackoff) {
  gpusim::FaultConfig config;
  config.timeout_rate = 0.4;
  const tuner::FaultInjector oracle(config, "test");

  // Find a setting that hangs once and then measures cleanly on the retry.
  Rng rng(15);
  std::optional<space::Setting> pick;
  for (int i = 0; i < 400 && !pick.has_value(); ++i) {
    const auto s = space_.random_valid(rng);
    if (oracle.decide(s.hash(), 1) == gpusim::FaultKind::kTimeout &&
        oracle.decide(s.hash(), 2) == gpusim::FaultKind::kNone) {
      pick = s;
    }
  }
  ASSERT_TRUE(pick.has_value());

  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  const auto result = evaluator.evaluate_result(*pick);
  EXPECT_EQ(result.status, tuner::EvalStatus::kOk);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_TRUE(std::isfinite(result.time_ms));
  EXPECT_EQ(evaluator.unique_evaluations(), 1u);

  const auto stats = evaluator.fault_stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.recovered, 1u);
  // The final status is ok, so no failure class is charged...
  EXPECT_EQ(stats.failed_evaluations(), 0u);
  // ...but the hung attempt cost the full watchdog deadline plus one backoff.
  const tuner::RetryPolicy policy;
  EXPECT_NEAR(stats.fault_overhead_s,
              policy.eval_deadline_s + policy.backoff_initial_s, 1e-9);
}

TEST_F(FaultEvalFixture, SpentFaultBudgetFailsFast) {
  gpusim::FaultConfig config;
  config.transient_rate = 1.0;
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  tuner::RetryPolicy policy;
  policy.fault_budget_s = 0.0;  // budget already spent: no retries at all
  evaluator.set_retry_policy(policy);

  Rng rng(16);
  const auto result = evaluator.evaluate_result(space_.random_valid(rng));
  EXPECT_EQ(result.status, tuner::EvalStatus::kTransient);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(evaluator.fault_stats().retries, 0u);
}

TEST_F(FaultEvalFixture, BackoffChargedThroughTheFinalAttempt) {
  // Boundary guard for the attempt == max_attempts case: an exhausted
  // ladder with N attempts charges exactly N-1 backoffs (attempts 2..N),
  // never one more or fewer.
  gpusim::FaultConfig config;
  config.transient_rate = 1.0;
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  tuner::RetryPolicy policy;
  policy.max_attempts = 4;
  evaluator.set_retry_policy(policy);

  Rng rng(17);
  const auto result = evaluator.evaluate_result(space_.random_valid(rng));
  EXPECT_EQ(result.status, tuner::EvalStatus::kTransient);
  EXPECT_EQ(result.attempts, 4);
  const auto stats = evaluator.fault_stats();
  EXPECT_EQ(stats.retries, 3u);
  // Backoffs 0.05 + 0.10 + 0.20, four wasted launch rounds, one compile.
  tuner::EvalCosts costs;
  const double backoffs =
      policy.backoff_initial_s *
      (1.0 + policy.backoff_multiplier +
       policy.backoff_multiplier * policy.backoff_multiplier);
  EXPECT_NEAR(stats.fault_overhead_s,
              backoffs + 4.0 * costs.runs_per_eval * costs.launch_overhead_s +
                  costs.compile_s,
              1e-9);
}

TEST_F(FaultEvalFixture, SuccessOnTheFinalAttemptChargesAllBackoffs) {
  // The other side of the attempt == max_attempts boundary: a measurement
  // that succeeds exactly on the last allowed attempt keeps its result and
  // still pays every backoff and deadline it burned getting there.
  gpusim::FaultConfig config;
  config.timeout_rate = 0.4;
  const tuner::FaultInjector oracle(config, "test");

  Rng rng(18);
  std::optional<space::Setting> pick;
  for (int i = 0; i < 2000 && !pick.has_value(); ++i) {
    const auto s = space_.random_valid(rng);
    if (oracle.decide(s.hash(), 1) == gpusim::FaultKind::kTimeout &&
        oracle.decide(s.hash(), 2) == gpusim::FaultKind::kTimeout &&
        oracle.decide(s.hash(), 3) == gpusim::FaultKind::kNone) {
      pick = s;
    }
  }
  ASSERT_TRUE(pick.has_value());

  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  const tuner::RetryPolicy policy;  // max_attempts 3
  const auto result = evaluator.evaluate_result(*pick);
  EXPECT_EQ(result.status, tuner::EvalStatus::kOk);
  EXPECT_EQ(result.attempts, policy.max_attempts);
  const auto stats = evaluator.fault_stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_NEAR(stats.fault_overhead_s,
              2.0 * policy.eval_deadline_s +
                  policy.backoff_initial_s *
                      (1.0 + policy.backoff_multiplier),
              1e-9);
}

TEST_F(FaultEvalFixture, QuarantineTripsExactlyAtThreshold) {
  // Off-by-one guard: with threshold N, the setting stays usable through
  // its first N-1 committed failures and quarantines on the Nth.
  gpusim::FaultConfig config;
  config.transient_rate = 1.0;
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  tuner::RetryPolicy policy;
  policy.quarantine_threshold = 3;
  evaluator.set_retry_policy(policy);

  Rng rng(19);
  const auto setting = space_.random_valid(rng);
  for (int failures = 1; failures <= 2; ++failures) {
    EXPECT_EQ(evaluator.evaluate_result(setting).status,
              tuner::EvalStatus::kTransient);
    EXPECT_FALSE(evaluator.is_quarantined(setting.hash()))
        << "quarantined after " << failures << " of 3 failures";
  }
  EXPECT_EQ(evaluator.evaluate_result(setting).status,
            tuner::EvalStatus::kTransient);
  EXPECT_TRUE(evaluator.is_quarantined(setting.hash()));
  EXPECT_EQ(evaluator.fault_stats().quarantined_settings, 1u);
}

TEST_F(FaultEvalFixture, QuarantineThresholdOneQuarantinesImmediately) {
  gpusim::FaultConfig config;
  config.transient_rate = 1.0;
  tuner::Evaluator evaluator(sim_, space_, {}, 3, nullptr);
  evaluator.set_fault_injection(config, "test");
  tuner::RetryPolicy policy;
  policy.quarantine_threshold = 1;
  evaluator.set_retry_policy(policy);

  Rng rng(20);
  const auto setting = space_.random_valid(rng);
  EXPECT_EQ(evaluator.evaluate_result(setting).status,
            tuner::EvalStatus::kTransient);
  EXPECT_TRUE(evaluator.is_quarantined(setting.hash()));
}

// ---------------------------------------------------------------------------
// Rank-kill plans: the whole-island analogue of the per-eval fault oracle.
// ---------------------------------------------------------------------------

TEST(FaultInjector, KillPlanFiresEachEntryExactlyOnce) {
  tuner::FaultInjector injector(gpusim::FaultConfig{}, "test");
  EXPECT_FALSE(injector.has_kill_plan());
  EXPECT_FALSE(injector.should_kill(0, 1));

  injector.set_kill_plan({{1, 3}, {2, 5}});
  EXPECT_TRUE(injector.has_kill_plan());
  EXPECT_FALSE(injector.should_kill(1, 2));  // wrong generation
  EXPECT_FALSE(injector.should_kill(0, 3));  // wrong rank
  EXPECT_TRUE(injector.should_kill(1, 3));
  EXPECT_FALSE(injector.should_kill(1, 3));  // one-shot
  EXPECT_EQ(injector.kills_fired(), 1u);
  EXPECT_TRUE(injector.should_kill(2, 5));
  EXPECT_EQ(injector.kills_fired(), 2u);
}

TEST(FaultInjector, KillPlanIsDeduplicatedAndOrderNormalized) {
  tuner::FaultInjector injector(gpusim::FaultConfig{}, "test");
  injector.set_kill_plan({{2, 5}, {1, 3}, {2, 5}, {1, 3}});
  ASSERT_EQ(injector.kill_plan().size(), 2u);
  EXPECT_EQ(injector.kill_plan()[0], (tuner::RankKill{1, 3}));
  EXPECT_EQ(injector.kill_plan()[1], (tuner::RankKill{2, 5}));
}

TEST(FaultInjector, KillPlanFromEventsExtractsDeathsOnly) {
  const std::vector<tuner::IslandEvent> events = {
      {tuner::IslandEvent::Kind::kRankDeath, 1, 3, -1},
      {tuner::IslandEvent::Kind::kRingHeal, 2, 3, 1},
      {tuner::IslandEvent::Kind::kEliteAdoption, 2, 3, 1},
      {tuner::IslandEvent::Kind::kRankDeath, 1, 3, -1},  // duplicate
      {tuner::IslandEvent::Kind::kRankDeath, 0, 7, -1},
  };
  const auto plan = tuner::kill_plan_from_events(events);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (tuner::RankKill{1, 3}));
  EXPECT_EQ(plan[1], (tuner::RankKill{0, 7}));
}

TEST(FaultInjector, IslandEventKindNamesRoundTrip) {
  using Kind = tuner::IslandEvent::Kind;
  for (Kind kind : {Kind::kRankDeath, Kind::kRingHeal, Kind::kEliteAdoption}) {
    EXPECT_EQ(tuner::island_event_kind_from_name(
                  tuner::island_event_kind_name(kind)),
              kind);
  }
  EXPECT_THROW(tuner::island_event_kind_from_name("nope"), Error);
}

TEST_F(FaultEvalFixture, BatchMatchesSerialEvaluationUnderFaults) {
  const auto config = gpusim::FaultConfig::uniform(0.3, 9);
  Rng rng(17);
  const auto settings = space_.sample_universe(rng, 300);

  tuner::Evaluator serial(sim_, space_, {}, 7, nullptr);
  serial.set_fault_injection(config, "j3d7pt");
  std::vector<tuner::EvalResult> serial_results;
  serial_results.reserve(settings.size());
  for (const auto& s : settings) {
    serial_results.push_back(serial.evaluate_result(s));
  }

  ThreadPool pool(4);
  tuner::Evaluator batched(sim_, space_, {}, 7, &pool);
  batched.set_fault_injection(config, "j3d7pt");
  const auto batch_results = batched.evaluate_batch(settings);

  ASSERT_EQ(batch_results.size(), serial_results.size());
  for (std::size_t i = 0; i < settings.size(); ++i) {
    EXPECT_EQ(batch_results[i].status, serial_results[i].status)
        << "index " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batch_results[i].time_ms),
              std::bit_cast<std::uint64_t>(serial_results[i].time_ms))
        << "index " << i;
    EXPECT_EQ(batch_results[i].attempts, serial_results[i].attempts)
        << "index " << i;
  }
  EXPECT_EQ(batched.unique_evaluations(), serial.unique_evaluations());
  EXPECT_DOUBLE_EQ(batched.virtual_time_s(), serial.virtual_time_s());
  EXPECT_DOUBLE_EQ(batched.best_time_ms(), serial.best_time_ms());

  const auto a = serial.fault_stats();
  const auto b = batched.fault_stats();
  EXPECT_EQ(a.compile_fail, b.compile_fail);
  EXPECT_EQ(a.crash, b.crash);
  EXPECT_EQ(a.timeout, b.timeout);
  EXPECT_EQ(a.transient, b.transient);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.quarantined_settings, b.quarantined_settings);
  EXPECT_EQ(a.quarantine_hits, b.quarantine_hits);
  EXPECT_DOUBLE_EQ(a.fault_overhead_s, b.fault_overhead_s);
  EXPECT_GT(b.failed_evaluations(), 0u);  // the storm actually hit
}

TEST_F(FaultEvalFixture, FaultEventsLandInTrace) {
  const auto config = gpusim::FaultConfig::uniform(0.3, 9);
  tuner::Evaluator evaluator(sim_, space_, {}, 7, nullptr);
  evaluator.set_fault_injection(config, "j3d7pt");
  Rng rng(17);
  for (const auto& s : space_.sample_universe(rng, 300)) {
    evaluator.evaluate_result(s);
  }
  const auto stats = evaluator.fault_stats();
  const auto& trace = evaluator.trace();
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kCompileFail),
            stats.compile_fail);
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kCrash), stats.crash);
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kTimeout), stats.timeout);
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kTransient),
            stats.transient);
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kQuarantined),
            stats.quarantine_hits);
  EXPECT_EQ(trace.event_count(tuner::EvalStatus::kOk), stats.recovered);
  EXPECT_GT(stats.failed_evaluations(), 0u);
}

// ---------------------------------------------------------------------------
// Acceptance: a full tune at 20% fault rate converges near the clean run and
// stays bit-identical across worker counts.
// ---------------------------------------------------------------------------

struct TuneOutcome {
  space::Setting best_setting;
  double best_time_ms = 0.0;
  double virtual_time_s = 0.0;
  std::size_t unique_evals = 0;
  tuner::FaultStats stats;
};

TuneOutcome run_faulty_tune(const space::SearchSpace& space,
                            const gpusim::Simulator& sim, std::size_t workers,
                            double fault_rate) {
  ThreadPool pool(workers);
  tuner::Evaluator evaluator(sim, space, {}, 42, &pool);
  if (fault_rate > 0.0) {
    evaluator.set_fault_injection(
        gpusim::FaultConfig::uniform(fault_rate, 42), "j3d7pt");
  }
  core::CsTunerOptions options;
  options.universe_size = 1200;
  options.dataset_size = 64;
  options.seed = 42;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = 10.0});
  TuneOutcome out;
  out.best_setting = *evaluator.best_setting();
  out.best_time_ms = evaluator.best_time_ms();
  out.virtual_time_s = evaluator.virtual_time_s();
  out.unique_evals = evaluator.unique_evaluations();
  out.stats = evaluator.fault_stats();
  return out;
}

TEST_F(FaultEvalFixture, TuningAtTwentyPercentFaultsStaysDeterministic) {
  const auto serial = run_faulty_tune(space_, sim_, 0, 0.2);
  const auto four = run_faulty_tune(space_, sim_, 4, 0.2);
  const auto eight = run_faulty_tune(space_, sim_, 8, 0.2);

  EXPECT_GT(serial.stats.failed_evaluations(), 0u);

  // The determinism fingerprint under faults: best setting/time, unique
  // evaluations, the virtual clock, and the committed failure ledger.
  // (quarantine_hits is excluded: a concurrent island may see a key's
  // quarantine either at probe or at commit; both are free and produce the
  // same result, but only committed ladders feed the counters below.)
  for (const auto* run : {&four, &eight}) {
    EXPECT_TRUE(serial.best_setting == run->best_setting);
    EXPECT_DOUBLE_EQ(serial.best_time_ms, run->best_time_ms);
    EXPECT_DOUBLE_EQ(serial.virtual_time_s, run->virtual_time_s);
    EXPECT_EQ(serial.unique_evals, run->unique_evals);
    EXPECT_EQ(serial.stats.compile_fail, run->stats.compile_fail);
    EXPECT_EQ(serial.stats.crash, run->stats.crash);
    EXPECT_EQ(serial.stats.timeout, run->stats.timeout);
    EXPECT_EQ(serial.stats.transient, run->stats.transient);
    EXPECT_EQ(serial.stats.quarantined_settings,
              run->stats.quarantined_settings);
    EXPECT_DOUBLE_EQ(serial.stats.fault_overhead_s,
                     run->stats.fault_overhead_s);
  }
}

TEST_F(FaultEvalFixture, FaultyTuneQualityNearFaultFreeRun) {
  const auto clean = run_faulty_tune(space_, sim_, 4, 0.0);
  const auto faulty = run_faulty_tune(space_, sim_, 4, 0.2);
  ASSERT_TRUE(std::isfinite(clean.best_time_ms));
  ASSERT_TRUE(std::isfinite(faulty.best_time_ms));
  // A 20% fault storm costs budget, not correctness: the surviving search
  // must land within the penalty tolerance of the clean optimum.
  EXPECT_LE(faulty.best_time_ms, clean.best_time_ms * 2.0);
}

}  // namespace
}  // namespace cstuner
