#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/json.hpp"

namespace cstuner {
namespace {

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "j3d7pt");
  w.field("time", 2.5);
  w.field("evals", 42);
  w.field("ok", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"j3d7pt","time":2.5,"evals":42,"ok":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("trace").begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.field("i", i);
    w.end_object();
  }
  w.end_array();
  w.field("done", true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"trace":[{"i":0},{"i":1}],"done":true})");
}

TEST(Json, ArrayOfScalars) {
  JsonWriter w;
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.value("x");
  w.end_array();
  EXPECT_EQ(w.str(), R"([1,2.5,"x"])");
}

TEST(Json, EscapesSpecialCharacters) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharactersEscapedAsUnicode) {
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a").begin_array();
  w.end_array();
  w.key("o").begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(Json, UnbalancedEndThrows) {
  JsonWriter w;
  EXPECT_THROW(w.end_object(), Error);
}

}  // namespace
}  // namespace cstuner
