#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::gpusim {
namespace {

using namespace space;

Setting decent_setting() {
  Setting s;
  s.set(kTBx, 32);
  s.set(kTBy, 8);
  return s;
}

TEST(GpuArch, PresetsMatchWhitepapers) {
  EXPECT_EQ(a100().num_sms, 108);
  EXPECT_EQ(v100().num_sms, 80);
  EXPECT_GT(a100().dram_gbps, v100().dram_gbps);
  EXPECT_GT(a100().fp64_gflops, v100().fp64_gflops);
  EXPECT_GT(a100().l2_bytes, v100().l2_bytes);
}

TEST(GpuArch, LookupByName) {
  EXPECT_EQ(arch_by_name("a100").name, "a100");
  EXPECT_EQ(arch_by_name("v100").name, "v100");
  EXPECT_THROW(arch_by_name("h100"), UsageError);
}

TEST(Occupancy, ThreadsLimitedKernel) {
  const auto r = compute_occupancy(a100(), 256, 32, 0);
  // 2048 threads/SM / 256 = 8 blocks; registers: 65536/(32*256)=8 too.
  EXPECT_EQ(r.blocks_per_sm, 8);
  EXPECT_NEAR(r.occupancy, 1.0, 1e-12);
}

TEST(Occupancy, RegisterLimitedKernel) {
  const auto r = compute_occupancy(a100(), 256, 128, 0);
  // regs/warp = 4096; per block = 32768; file holds 2 blocks.
  EXPECT_EQ(r.blocks_per_sm, 2);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kRegisters);
  EXPECT_NEAR(r.occupancy, 0.25, 1e-12);
}

TEST(Occupancy, SharedMemoryLimitedKernel) {
  const auto r = compute_occupancy(a100(), 128, 32, 40 * 1024);
  EXPECT_EQ(r.blocks_per_sm, 4);  // 164KB / 40KB
  EXPECT_EQ(r.limiter, OccupancyLimiter::kSharedMem);
}

TEST(Occupancy, BlockCapForTinyBlocks) {
  const auto r = compute_occupancy(a100(), 32, 16, 0);
  EXPECT_EQ(r.blocks_per_sm, 32);  // hardware block cap
  EXPECT_EQ(r.limiter, OccupancyLimiter::kBlocks);
  EXPECT_NEAR(r.occupancy, 0.5, 1e-12);
}

TEST(Occupancy, SubWarpBlocksAllocateWholeWarp) {
  const auto r = compute_occupancy(a100(), 8, 16, 0);
  EXPECT_EQ(r.active_warps_per_sm, r.blocks_per_sm);  // 1 warp per block
}

TEST(Occupancy, LimiterNamesResolve) {
  EXPECT_STREQ(limiter_name(OccupancyLimiter::kThreads), "threads");
  EXPECT_STREQ(limiter_name(OccupancyLimiter::kSharedMem), "shared_mem");
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(a100()) {}

  stencil::StencilSpec spec_;
  SearchSpace space_;
  Simulator sim_;
};

TEST_F(SimulatorTest, ProfileIsDeterministic) {
  const auto s = decent_setting();
  EXPECT_DOUBLE_EQ(sim_.profile(spec_, s).time_ms,
                   sim_.profile(spec_, s).time_ms);
}

TEST_F(SimulatorTest, TimePositiveAndFinite) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto s = space_.random_valid(rng);
    const auto p = sim_.profile(spec_, s);
    EXPECT_GT(p.time_ms, 0.0);
    EXPECT_TRUE(std::isfinite(p.time_ms));
  }
}

TEST_F(SimulatorTest, MetricsWithinPhysicalBounds) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto p = sim_.profile(spec_, space_.random_valid(rng));
    EXPECT_GE(p.metric(kAchievedOccupancy), 0.0);
    EXPECT_LE(p.metric(kAchievedOccupancy), 1.0);
    EXPECT_GE(p.metric(kL1HitRate), 0.0);
    EXPECT_LE(p.metric(kL1HitRate), 1.0);
    EXPECT_GE(p.metric(kL2HitRate), 0.0);
    EXPECT_LE(p.metric(kL2HitRate), 1.0);
    EXPECT_GE(p.metric(kGldEfficiency), 0.0);
    EXPECT_LE(p.metric(kGldEfficiency), 1.0);
    EXPECT_LE(p.metric(kDramThroughputGbps), a100().dram_gbps * 1.01);
    EXPECT_LE(p.metric(kFp64Efficiency), 1.0);
    EXPECT_GE(p.metric(kWavesPerGrid), 1.0);
  }
}

TEST_F(SimulatorTest, DramTrafficAtLeastCompulsory) {
  const auto p = sim_.profile(spec_, decent_setting());
  const double compulsory_gb = spec_.min_bytes() / 1e9;
  EXPECT_GE(p.metric(kDramReadGb) + p.metric(kDramWriteGb),
            compulsory_gb * 0.5);
}

TEST_F(SimulatorTest, TinyThreadBlocksAreSlow) {
  Setting tiny;  // 1 thread per block
  const Setting good = decent_setting();
  EXPECT_GT(sim_.profile(spec_, tiny).time_ms,
            5.0 * sim_.profile(spec_, good).time_ms);
}

TEST_F(SimulatorTest, BlockMergeInXDegradesCoalescing) {
  Setting base = decent_setting();
  Setting merged = base;
  merged.set(kBMx, 8);
  const auto p_base = sim_.profile(spec_, base);
  const auto p_merged = sim_.profile(spec_, merged);
  EXPECT_LT(p_merged.metric(kGldEfficiency),
            p_base.metric(kGldEfficiency));
}

TEST_F(SimulatorTest, SmallTbxDegradesCoalescing) {
  Setting wide = decent_setting();  // TBx=32
  Setting narrow;
  narrow.set(kTBx, 4);
  narrow.set(kTBy, 64);
  EXPECT_LT(sim_.profile(spec_, narrow).metric(kGldEfficiency),
            sim_.profile(spec_, wide).metric(kGldEfficiency));
}

TEST_F(SimulatorTest, SharedMemoryReducesDramReads) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting base = decent_setting();
  Setting shared = base;
  shared.set(kUseShared, kOn);
  EXPECT_LT(sim_.profile(spec, shared).metric(kDramReadGb),
            sim_.profile(spec, base).metric(kDramReadGb));
}

TEST_F(SimulatorTest, MemoryBoundStencilStallsOnMemory) {
  // j3d7pt: ~0.6 flops/byte — firmly memory bound.
  const auto p = sim_.profile(spec_, decent_setting());
  EXPECT_GT(p.metric(kStallMemoryRatio), 0.5);
}

TEST_F(SimulatorTest, ComputeHeavyStencilLessMemoryBound) {
  const auto heavy = stencil::make_stencil("rhs4center");  // 666 flops
  Setting s = decent_setting();
  const auto p_light = sim_.profile(spec_, s);
  const auto p_heavy = sim_.profile(heavy, s);
  EXPECT_LT(p_heavy.metric(kStallMemoryRatio),
            p_light.metric(kStallMemoryRatio));
}

TEST_F(SimulatorTest, V100SlowerThanA100) {
  Simulator v(v100());
  const auto s = decent_setting();
  EXPECT_GT(v.profile(spec_, s).time_ms, sim_.profile(spec_, s).time_ms);
}

TEST_F(SimulatorTest, MeasurementNoiseSmallAndDeterministic) {
  const auto s = decent_setting();
  const double base = sim_.profile(spec_, s).time_ms;
  const double m1 = sim_.measure_ms(spec_, s, 1);
  const double m1_again = sim_.measure_ms(spec_, s, 1);
  const double m2 = sim_.measure_ms(spec_, s, 2);
  EXPECT_DOUBLE_EQ(m1, m1_again);
  EXPECT_NE(m1, m2);
  EXPECT_NEAR(m1, base, base * 0.06);
  EXPECT_NEAR(m2, base, base * 0.06);
}

TEST_F(SimulatorTest, MeasuredMetricsCloseToProfile) {
  const auto s = decent_setting();
  const auto clean = sim_.profile(spec_, s);
  const auto noisy = sim_.measure_metrics(spec_, s, 0);
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    EXPECT_NEAR(noisy[m], clean.metrics[m],
                std::fabs(clean.metrics[m]) * 0.08 + 1e-9);
  }
}

TEST_F(SimulatorTest, SpilledSettingRejected) {
  Setting s = decent_setting();
  s.set(kCMx, 64);
  s.set(kCMy, 64);  // far past the register budget
  EXPECT_THROW(sim_.profile(spec_, s), Error);
}

class CrossArchTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossArchTest, V100NeverFasterThanA100) {
  const auto spec = stencil::make_stencil(GetParam());
  SearchSpace space(spec);
  Simulator a(a100()), v(v100());
  Rng rng(fnv1a(GetParam().data(), GetParam().size()));
  for (int i = 0; i < 20; ++i) {
    const auto s = space.random_valid(rng);
    // Same kernel, strictly weaker machine: V100 must not win.
    EXPECT_GE(v.profile(spec, s).time_ms, a.profile(spec, s).time_ms * 0.999)
        << s.to_string();
  }
}

TEST_P(CrossArchTest, L2HitRateReflectsCacheSize) {
  const auto spec = stencil::make_stencil(GetParam());
  SearchSpace space(spec);
  Simulator a(a100()), v(v100());
  Rng rng(7);
  const auto s = space.random_valid(rng);
  EXPECT_GE(a.profile(spec, s).metric(kL2HitRate),
            v.profile(spec, s).metric(kL2HitRate));
}

INSTANTIATE_TEST_SUITE_P(AllStencils, CrossArchTest,
                         ::testing::ValuesIn(stencil::stencil_names()),
                         [](const auto& info) { return info.param; });

TEST(Occupancy, RegisterGranularityRounding) {
  // 33 registers round to 2 granules (2048) per warp, not 33*32=1056.
  const auto r = compute_occupancy(a100(), 32, 33, 0);
  // 65536 / 2048 = 32 warps, but the block cap (32) binds first.
  EXPECT_EQ(r.blocks_per_sm, 32);
}

TEST(Occupancy, ZeroBlocksWhenRegistersExhaustFile) {
  // 255 regs x 1024 threads cannot fit the 64K register file.
  const auto r = compute_occupancy(a100(), 1024, 255, 0);
  EXPECT_EQ(r.blocks_per_sm, 0);
}

TEST(Occupancy, MaxThreadsRejected) {
  EXPECT_THROW(compute_occupancy(a100(), 2048, 32, 0), Error);
}

TEST(Metrics, RegistryComplete) {
  EXPECT_EQ(metric_names().size(), kMetricCount);
  EXPECT_STREQ(metric_name(kAchievedOccupancy), "achieved_occupancy");
  EXPECT_STREQ(metric_name(kWavesPerGrid), "waves_per_grid");
}

}  // namespace
}  // namespace cstuner::gpusim
