#include <gtest/gtest.h>

#include "codegen/cuda_codegen.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::codegen {
namespace {

using namespace space;

Setting base_setting() {
  Setting s;
  s.set(kTBx, 32);
  s.set(kTBy, 4);
  return s;
}

TEST(LaunchGeometry, CoversGridExactly) {
  const auto spec = stencil::make_stencil("j3d7pt");
  Setting s = base_setting();
  s.set(kCMy, 2);
  const auto g = compute_launch_geometry(spec, s);
  EXPECT_EQ(g.grid[0], 512 / 32);
  EXPECT_EQ(g.grid[1], 512 / (4 * 2));
  EXPECT_EQ(g.grid[2], 512);
  EXPECT_EQ(g.threads_per_block(), 128);
}

TEST(LaunchGeometry, StreamingDimensionUsesSbTiles) {
  const auto spec = stencil::make_stencil("j3d7pt");
  Setting s = base_setting();
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 64);
  const auto g = compute_launch_geometry(spec, s);
  EXPECT_EQ(g.grid[2], 512 / 64);
}

TEST(Codegen, EmitsWellFormedKernelSkeleton) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const auto kernel = generate_kernel(spec, base_setting());
  EXPECT_EQ(kernel.name, "j3d7pt_kernel");
  for (const char* needle :
       {"__global__", "__launch_bounds__(128)", "blockIdx", "threadIdx",
        "out0[idx(gx, gy, gz)]", "const double* __restrict__ in0"}) {
    EXPECT_NE(kernel.source.find(needle), std::string::npos) << needle;
  }
  // Braces balance.
  int depth = 0;
  for (char c : kernel.source) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Codegen, SharedMemoryTileEmittedWhenEnabled) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting s = base_setting();
  const auto without = generate_kernel(spec, s);
  EXPECT_EQ(without.source.find("__shared__"), std::string::npos);
  s.set(kUseShared, kOn);
  const auto with = generate_kernel(spec, s);
  EXPECT_NE(with.source.find("__shared__ double tile0"), std::string::npos);
  EXPECT_NE(with.source.find("__syncthreads()"), std::string::npos);
}

TEST(Codegen, ConstantMemoryCoefficients) {
  const auto spec = stencil::make_stencil("j3d27pt");
  Setting s = base_setting();
  s.set(kUseConstant, kOn);
  const auto kernel = generate_kernel(spec, s);
  EXPECT_NE(kernel.source.find("__constant__ double c_weights[27]"),
            std::string::npos);
  EXPECT_NE(kernel.source.find("c_weights[0]"), std::string::npos);
}

TEST(Codegen, StreamingLoopAndPrefetchBuffer) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting s = base_setting();
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 32);
  s.set(kUsePrefetching, kOn);
  const auto kernel = generate_kernel(spec, s);
  EXPECT_NE(kernel.source.find("for (int s = 0; s < 32; ++s)"),
            std::string::npos);
  EXPECT_NE(kernel.source.find("pf_next"), std::string::npos);
}

TEST(Codegen, MergeLoopsWithUnrollPragmas) {
  const auto spec = stencil::make_stencil("j3d7pt");
  Setting s = base_setting();
  s.set(kCMy, 4);
  s.set(kBMy, 2);
  s.set(kUFy, 2);
  const auto kernel = generate_kernel(spec, s);
  EXPECT_NE(kernel.source.find("cyclic merge"), std::string::npos);
  EXPECT_NE(kernel.source.find("block merge"), std::string::npos);
  EXPECT_NE(kernel.source.find("#pragma unroll 2"), std::string::npos);
}

TEST(Codegen, RetimingSplitsAccumulators) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting s = base_setting();
  s.set(kUseRetiming, kOn);
  const auto kernel = generate_kernel(spec, s);
  EXPECT_NE(kernel.source.find("acc0_x"), std::string::npos);
  EXPECT_NE(kernel.source.find("acc0_y"), std::string::npos);
  EXPECT_NE(kernel.source.find("acc0_z"), std::string::npos);
}

TEST(Codegen, MultiArrayStencilDeclaresAllPointers) {
  const auto spec = stencil::make_stencil("hypterm");  // 9 in / 4 out
  const auto kernel = generate_kernel(spec, base_setting());
  EXPECT_NE(kernel.source.find("in8"), std::string::npos);
  EXPECT_NE(kernel.source.find("out3"), std::string::npos);
}

TEST(Codegen, LaunchSnippetMatchesGeometry) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const auto kernel = generate_kernel(spec, base_setting());
  EXPECT_NE(kernel.launch.find("dim3 grid(16, 128, 512)"),
            std::string::npos);
  EXPECT_NE(kernel.launch.find("dim3 block(32, 4, 1)"), std::string::npos);
}

TEST(Codegen, ResourcesForwardedFromModel) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const auto s = base_setting();
  const auto kernel = generate_kernel(spec, s);
  EXPECT_EQ(kernel.resources.registers_per_thread,
            space::estimate_resources(spec, s).registers_per_thread);
}

TEST(Codegen, DeterministicOutput) {
  const auto spec = stencil::make_stencil("cheby");
  const auto a = generate_kernel(spec, base_setting());
  const auto b = generate_kernel(spec, base_setting());
  EXPECT_EQ(a.source, b.source);
}

TEST(Codegen, EveryValidSettingGeneratesNonTrivialSource) {
  const auto spec = stencil::make_stencil("addsgd4");
  space::SearchSpace space(spec);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto s = space.random_valid(rng);
    const auto kernel = generate_kernel(spec, s);
    EXPECT_GT(kernel.source.size(), 500u);
    EXPECT_NE(kernel.source.find(s.to_string()), std::string::npos)
        << "setting banner missing";
  }
}

}  // namespace
}  // namespace cstuner::codegen
