// Tests for the static analyzer (ISSUE 2): clean bills of health on every
// seed stencil, seeded mutation tests proving each pass catches the defect
// class it exists for, search-space lint, and the tuner-side pruner.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/kernel_model.hpp"
#include "analysis/pruner.hpp"
#include "analysis/space_lint.hpp"
#include "codegen/cuda_codegen.hpp"
#include "common/error.hpp"
#include "gpusim/simulator.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::analysis {
namespace {

using space::kOn;
using space::Setting;

/// Replaces the first occurrence of `from` in `text`; asserts it was there
/// (a mutation that does not apply would silently test nothing).
std::string mutated(std::string text, const std::string& from,
                    const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation anchor missing: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

AnalyzerOptions default_options() {
  AnalyzerOptions options;
  options.arch = &gpusim::a100();
  return options;
}

/// A setting exercising every structure the analyzer reasons about: shared
/// tiling, constant coefficients, 2.5-D streaming with prefetch, merging
/// and unrolling. Emits (for j3d7pt) tile0[4][10][18] and one staging sync.
Setting full_feature_setting() {
  Setting s;
  s.set(space::kTBx, 8);
  s.set(space::kTBy, 8);
  s.set(space::kUseShared, kOn);
  s.set(space::kUseConstant, kOn);
  s.set(space::kUseStreaming, kOn);
  s.set(space::kSD, 3);
  s.set(space::kSB, 8);
  s.set(space::kUsePrefetching, kOn);
  s.set(space::kCMx, 2);
  s.set(space::kUFx, 2);
  return s;
}

TEST(Analyzer, CleanOnEverySeedStencil) {
  const AnalyzerOptions options = default_options();
  for (const auto& spec : stencil::all_stencils()) {
    space::SearchSpace space(spec);
    Rng rng(17);
    for (int i = 0; i < 16; ++i) {
      const Setting setting = space.random_valid(rng);
      const Report report = analyze_setting(spec, setting, options);
      EXPECT_TRUE(report.empty())
          << spec.name << " " << setting.to_string() << "\n"
          << report.to_string();
    }
  }
}

TEST(Analyzer, CleanOnFullFeatureSetting) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  const Setting s = full_feature_setting();
  ASSERT_TRUE(space.is_valid(s))
      << space.checker().violation(s).value_or("");
  const Report report = analyze_setting(spec, s, default_options());
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(KernelModel, ParsesEmittedStructure) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const auto kernel = codegen::generate_kernel(spec, full_feature_setting());
  Report report;
  const KernelModel model = KernelModel::parse(kernel.source, &report);
  EXPECT_TRUE(report.empty()) << report.to_string();
  EXPECT_TRUE(model.has_guard);
  EXPECT_TRUE(model.uses_shared());
  ASSERT_EQ(model.tiles.size(), 1u);
  // Streaming along z with prefetch: (2*order+1+1) planes, [z][y][x] order.
  EXPECT_EQ(model.tiles[0].dims[0], 4);
  EXPECT_EQ(model.tiles[0].dims[1], 10);
  EXPECT_EQ(model.tiles[0].dims[2], 18);
  EXPECT_EQ(model.launch_bounds, 64);
  EXPECT_EQ(model.constant_count,
            static_cast<std::int64_t>(spec.taps.size()));
  EXPECT_EQ(model.define("M1"), spec.grid[0]);
  EXPECT_EQ(model.define("HALO"), spec.order);
}

// --- Seeded mutation tests: each pass must catch its corruption. ----------

TEST(MutationRace, DroppedStagingSyncIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  kernel.source = mutated(
      kernel.source,
      "__syncthreads();  // tile staged before any thread reads it", ";");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("race.rw-no-sync")) << report.to_string();
}

TEST(MutationRace, SyncInDivergentControlFlowIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  // A barrier inside the bounds-guarded else-branch deadlocks overhanging
  // blocks on real hardware.
  kernel.source = mutated(kernel.source, "double val0 = 0.0;",
                          "__syncthreads();\n        double val0 = 0.0;");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("race.divergent-sync")) << report.to_string();
}

TEST(MutationRace, DroppedRestagingBarrierIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  // The streaming loop restages the tile every iteration; without the
  // trailing barrier the next staging write races prior reads (WAR).
  kernel.source = mutated(
      kernel.source,
      "__syncthreads();  // tile restaged next iteration (WAR)", ";");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("race.war-loop-carry") ||
              report.has_rule("race.rw-no-sync"))
      << report.to_string();
}

TEST(MutationBounds, ShrunkenTileExtentIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  // x extent 18 = TBx*CMx*BMx + 2*order; 8 is too small for lx+2 with
  // an 8-thread block (reaches index 9).
  kernel.source = mutated(kernel.source, "tile0[4][10][18]", "tile0[4][10][8]");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("bounds.tile-overflow")) << report.to_string();
}

TEST(MutationBounds, DroppedHaloShiftIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  // The -x tap without its halo shift indexes tile0[...][lx-1] = -1 for
  // thread 0 — the original codegen bug class this pass exists for.
  kernel.source = mutated(kernel.source, "[lz+1][ly+1][lx]",
                          "[lz+1][ly+1][lx-1]");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("bounds.negative-index")) << report.to_string();
}

TEST(MutationBounds, WrongHaloDefineIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  kernel.source = mutated(kernel.source, "#define HALO 1", "#define HALO 0");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("bounds.domain-mismatch")) << report.to_string();
}

TEST(MutationResource, MisreportedSharedBytesIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  kernel.resources.shared_mem_per_block += 1024;
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("resource.smem-drift")) << report.to_string();
}

TEST(MutationResource, WrongLaunchBoundsIsCaught) {
  const auto spec = stencil::make_stencil("j3d7pt");
  const Setting s = full_feature_setting();
  codegen::KernelSource kernel = codegen::generate_kernel(spec, s);
  kernel.source = mutated(kernel.source, "__launch_bounds__(64)",
                          "__launch_bounds__(128)");
  const Report report = analyze_kernel(spec, s, kernel, default_options());
  EXPECT_TRUE(report.has_rule("resource.launch-drift")) << report.to_string();
}

// --- Pass 4: search-space lint. -------------------------------------------

TEST(SpaceLint, SeedSpaceHasNoDeadValuesOnLightStencil) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  const SpaceLintResult result = lint_space(space);
  EXPECT_EQ(result.dead_values, 0u) << result.report.to_string();
  EXPECT_TRUE(result.report.clean());
  // The canonical streaming encoding makes (streaming=off, SD>1) jointly
  // infeasible — the lint must surface it as a prunable subspace.
  EXPECT_TRUE(result.report.has_rule("space.dead-subspace"))
      << result.report.to_string();
  EXPECT_GT(result.sampled_valid_fraction, 0.0);
  EXPECT_LT(result.sampled_valid_fraction, 1.0);
}

TEST(SpaceLint, RegisterBoundStencilHasDeadMergeFactors) {
  // hypterm's per-point register pressure makes the largest merge factors
  // infeasible under every support configuration (verified by sweep).
  const auto spec = stencil::make_stencil("hypterm");
  space::SearchSpace space(spec);
  const SpaceLintResult result = lint_space(space);
  EXPECT_GT(result.dead_values, 0u);
  EXPECT_TRUE(result.report.has_rule("space.dead-value"))
      << result.report.to_string();
  EXPECT_FALSE(result.value_is_live(space::kCMx, 64, space));
  EXPECT_TRUE(result.value_is_live(space::kCMx, 1, space));
}

// --- Tuner-side static pruning. -------------------------------------------

TEST(StaticPruner, MemoizesByCanonicalHash) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  StaticPruner pruner(space);
  Setting valid;  // all ones
  EXPECT_TRUE(pruner.is_valid(valid));
  EXPECT_TRUE(pruner.is_valid(valid));
  // Streaming-off aliases collapse to the same canonical encoding, so the
  // second query must be a memo hit even though the raw settings differ.
  Setting alias = valid;
  alias.set(space::kSD, 3);
  EXPECT_TRUE(pruner.is_valid(alias));
  const auto stats = pruner.stats();
  EXPECT_EQ(stats.checked, 3u);
  EXPECT_EQ(stats.memo_hits, 2u);
  EXPECT_EQ(stats.pruned, 0u);
}

TEST(StaticPruner, FilterAndPruneDropInvalidSettings) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  StaticPruner pruner(space);
  Setting invalid;
  invalid.set(space::kUFx, 8);  // exceeds merged trip count 1
  std::vector<Setting> batch{Setting{}, invalid, Setting{}};
  const auto keep = pruner.filter(batch);
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_TRUE(keep[0]);
  EXPECT_FALSE(keep[1]);
  EXPECT_TRUE(keep[2]);
  EXPECT_EQ(pruner.prune(batch), 1u);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_GT(pruner.stats().pruned, 0u);
}

// --- Evaluator debug precheck. --------------------------------------------

TEST(DebugPrecheck, ValidSettingsEvaluateIdentically) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  tuner::Evaluator plain(sim, space, {}, 3, nullptr);
  tuner::Evaluator checked(sim, space, {}, 3, nullptr);
  checked.set_debug_precheck(true);
  Rng rng(29);
  std::vector<Setting> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(space.random_valid(rng));
  const auto a = plain.evaluate_batch(batch);
  const auto b = checked.evaluate_batch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].time_ms, b[i].time_ms);
  }
  EXPECT_EQ(plain.virtual_time_s(), checked.virtual_time_s());
}

TEST(DebugPrecheck, InvalidSettingsStayUncharged) {
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  tuner::Evaluator evaluator(sim, space, {}, 3, nullptr);
  evaluator.set_debug_precheck(true);
  Setting invalid;
  invalid.set(space::kUFx, 8);
  // Invalid settings are filtered before the precheck: infinity, no throw.
  EXPECT_TRUE(std::isinf(evaluator.evaluate(invalid)));
  EXPECT_EQ(evaluator.unique_evaluations(), 0u);
}

}  // namespace
}  // namespace cstuner::analysis
