// Deterministic protocol fuzzer for the serve daemon (docs/durability.md):
// ten thousand seeded mutated frames — truncations, splices, byte flips,
// binary garbage, oversized lines, JSON bombs, mid-frame disconnects —
// thrown at a live in-process Server. The daemon must never crash, never
// leak a session, answer the hostile-limit cases with typed rejections, and
// still serve a well-formed submit/result round trip after the storm.
//
// Every mutation derives from a fixed Rng seed, so a failure replays
// exactly. The corpus deliberately contains no valid stencil and no
// "shutdown"/"stream" ops, so the storm cannot stop the server out from
// under the test; a mutated frame may still parse as a valid request
// (tight RequestLimits keep any such session cheap) and the storm test
// accounts for every accepted id afterwards.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "serve/session_manager.hpp"

namespace cstuner::serve {
namespace {

namespace fs = std::filesystem;

constexpr int kFrames = 10'000;
constexpr std::uint64_t kSeed = 20260808;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_fuzz_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Well-formed protocol lines the mutator starts from. None commit work:
/// the submit uses an unknown stencil (typed bad_request, no session).
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      R"({"op":"submit","kind":"tune","stencil":"nosuch","budget_s":1})",
      R"({"op":"submit","kind":"analyze","stencil":"nosuch","samples":4})",
      R"({"op":"status","id":1})",
      R"({"op":"result","id":999,"timeout_s":0})",
      R"({"op":"cancel","id":7})",
      R"({"op":"stats"})",
      R"({"op":"frobnicate"})",
      R"({"not_op":true,"id":[1,2,3]})",
      R"([1,2,3])",
      R"("just a string")",
  };
  return kCorpus;
}

std::string mutate(Rng& rng, std::string frame) {
  const std::uint64_t kind = rng.bounded(6);
  switch (kind) {
    case 0: {  // truncate
      if (!frame.empty()) frame.resize(rng.bounded(frame.size()));
      return frame;
    }
    case 1: {  // flip 1-4 bytes
      const std::uint64_t flips = 1 + rng.bounded(4);
      for (std::uint64_t i = 0; i < flips && !frame.empty(); ++i) {
        frame[rng.bounded(frame.size())] =
            static_cast<char>(rng.bounded(256));
      }
      return frame;
    }
    case 2: {  // splice with another corpus frame
      const std::string& other = corpus()[rng.bounded(corpus().size())];
      return frame.substr(0, rng.bounded(frame.size() + 1)) +
             other.substr(rng.bounded(other.size()));
    }
    case 3: {  // insert binary garbage
      std::string garbage;
      const std::uint64_t n = 1 + rng.bounded(32);
      for (std::uint64_t i = 0; i < n; ++i) {
        garbage.push_back(static_cast<char>(rng.bounded(256)));
      }
      frame.insert(rng.bounded(frame.size() + 1), garbage);
      return frame;
    }
    case 4: {  // nested-array JSON bomb (depth beyond the parse limit)
      const std::uint64_t depth = 24 + rng.bounded(64);
      return std::string(depth, '[') + "1" + std::string(depth, ']');
    }
    default:
      return frame;  // pristine corpus line
  }
}

/// Newlines inside a mutated frame would smuggle extra (possibly
/// well-formed) lines into the stream; keep one frame == one line.
void strip_newlines(std::string& frame) {
  for (char& c : frame) {
    if (c == '\n' || c == '\r') c = ' ';
  }
}

/// Drains whatever responses are ready without blocking the storm.
void drain(LineReader& reader, std::string& line, int timeout_ms = 0) {
  while (reader.read_line(line, timeout_ms) == LineReader::Status::kLine) {
  }
}

class ServeFuzzFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions serve_options;
    serve_options.state_dir = fresh_dir("state");
    serve_options.warm_start = false;
    // Tight request limits: a mutated frame that survives parsing as a
    // valid request (e.g. a flipped "stencil" key falling back to the
    // default stencil) may legitimately be accepted — these bounds keep
    // any such session cheap, and push everything bigger onto the typed
    // bad_request path.
    serve_options.limits.max_budget_s = 2.0;
    serve_options.limits.max_universe = 1000;
    serve_options.limits.max_samples = 64;
    manager_ = std::make_unique<SessionManager>(serve_options);

    ServerOptions server_options;
    server_options.max_line_bytes = 4096;   // cheap to overflow on purpose
    server_options.max_json_depth = 16;
    server_options.partial_line_deadline_s = 1.0;
    server_ = std::make_unique<Server>(*manager_, server_options);
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->stop();
    thread_.join();
    server_.reset();
    manager_.reset();
  }

  int connect() const {
    return connect_to("127.0.0.1", server_->port(), 2000);
  }

  /// Sends one line and reads the single response the server owes for it.
  std::string request(int fd, const std::string& line) const {
    send_all(fd, line + "\n");
    LineReader reader(fd);
    std::string response;
    EXPECT_EQ(reader.read_line(response, 10'000), LineReader::Status::kLine);
    return response;
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServeFuzzFixture, TenThousandMutatedFramesNeverKillTheDaemon) {
  Rng rng(kSeed);
  constexpr int kConnections = 8;
  struct Conn {
    int fd;
    LineReader reader;
    explicit Conn(int f) : fd(f), reader(f) {}
  };
  std::vector<Conn> conns;
  conns.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) conns.emplace_back(connect());

  std::string line;
  for (int i = 0; i < kFrames; ++i) {
    std::string frame = mutate(rng, corpus()[rng.bounded(corpus().size())]);
    strip_newlines(frame);
    Conn& conn = conns[rng.bounded(conns.size())];
    if (rng.bounded(64) == 0) {
      // Mid-frame disconnect: a fresh connection hangs up with the line
      // unterminated. The serving thread must just reap it.
      const int fd = connect();
      send_all(fd, frame);
      ::close(fd);
      continue;
    }
    send_all(conn.fd, frame + "\n");
    // Opportunistic drain keeps the server's send buffers from filling;
    // correctness of individual responses is asserted elsewhere.
    drain(conn.reader, line);
  }
  // Let in-flight responses land, then drain everything.
  for (Conn& conn : conns) {
    drain(conn.reader, line, 200);
    ::close(conn.fd);
  }

  // A mutated frame that still parses as a valid request may have been
  // accepted (ids are sequential from 1). Cancel them all: once the dust
  // settles every accepted session must be accounted for as resting —
  // zero leaked (stuck queued/running) sessions.
  const ServeStats storm = manager_->stats();
  for (std::uint64_t id = 1; id <= storm.accepted_total; ++id) {
    manager_->cancel(id);
  }
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  ServeStats settled = manager_->stats();
  while ((settled.queued + settled.running) > 0 &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    settled = manager_->stats();
  }
  EXPECT_EQ(settled.queued, 0u);
  EXPECT_EQ(settled.running, 0u);
  EXPECT_EQ(settled.resting, settled.accepted_total);

  // The daemon still speaks the protocol: a well-formed tune round-trips.
  const int fd = connect();
  const std::string accepted = request(
      fd,
      R"({"op":"submit","kind":"tune","stencil":"j3d7pt","budget_s":1,)"
      R"("universe":400,"seed":11})");
  ASSERT_NE(accepted.find("\"accepted\""), std::string::npos) << accepted;
  const std::uint64_t id = json_parse(accepted).at("id").as_u64();
  const std::string result = request(
      fd, R"({"op":"result","id":)" + std::to_string(id) +
              R"(,"timeout_s":60})");
  EXPECT_NE(result.find("\"result\""), std::string::npos) << result;
  EXPECT_NE(result.find("\"done\""), std::string::npos) << result;
  ::close(fd);

  const ServeStats after = manager_->stats();
  EXPECT_EQ(after.accepted_total, settled.accepted_total + 1);
  EXPECT_EQ(after.resting, after.accepted_total);
  EXPECT_EQ(after.queued + after.running, 0u);
}

TEST_F(ServeFuzzFixture, OversizedLineGetsTypedRejectionAndConnectionLives) {
  const int fd = connect();
  const std::string huge(8192, 'a');  // 2x max_line_bytes
  const std::string rejected = request(fd, huge);
  EXPECT_NE(rejected.find("\"rejected\""), std::string::npos) << rejected;
  EXPECT_NE(rejected.find("\"oversized\""), std::string::npos) << rejected;
  // Same connection keeps working.
  const std::string stats = request(fd, R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"stats\""), std::string::npos) << stats;
  ::close(fd);
}

TEST_F(ServeFuzzFixture, JsonBombGetsTypedRejectionAndConnectionLives) {
  const int fd = connect();
  const std::string bomb = std::string(64, '[') + "1" + std::string(64, ']');
  const std::string rejected = request(fd, bomb);
  EXPECT_NE(rejected.find("\"rejected\""), std::string::npos) << rejected;
  EXPECT_NE(rejected.find("\"oversized\""), std::string::npos) << rejected;
  const std::string stats = request(fd, R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"stats\""), std::string::npos) << stats;
  ::close(fd);
}

TEST_F(ServeFuzzFixture, SlowLorisConnectionIsClosedAtThePartialDeadline) {
  const int fd = connect();
  send_all(fd, R"({"op":"st)");  // half a line, then silence
  // partial_line_deadline_s is 1.0 in this fixture; the server must hang
  // up rather than hold the half line forever.
  LineReader reader(fd);
  std::string line;
  LineReader::Status status = LineReader::Status::kTimeout;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (status == LineReader::Status::kTimeout &&
         std::chrono::steady_clock::now() < deadline) {
    status = reader.read_line(line, 250);
  }
  EXPECT_EQ(status, LineReader::Status::kEof);
  ::close(fd);
}

TEST_F(ServeFuzzFixture, HostileRequestParametersAreRejectedTyped) {
  const int fd = connect();
  // A parameter bomb: syntactically fine, semantically unbounded work.
  const std::string response = request(
      fd,
      R"({"op":"submit","kind":"tune","stencil":"j3d7pt",)"
      R"("budget_s":1e18,"universe":400})");
  EXPECT_NE(response.find("\"bad_request\""), std::string::npos) << response;
  EXPECT_EQ(manager_->stats().accepted_total, 0u);
  ::close(fd);
}

}  // namespace
}  // namespace cstuner::serve
