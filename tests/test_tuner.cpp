#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gpusim/simulator.hpp"
#include "stencil/stencils.hpp"
#include "tuner/dataset.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::tuner {
namespace {

using namespace space;

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()),
        evaluator_(sim_, space_, {}, 5) {}

  Setting valid_setting() {
    Setting s;
    s.set(kTBx, 32);
    s.set(kTBy, 4);
    return s;
  }

  stencil::StencilSpec spec_;
  SearchSpace space_;
  gpusim::Simulator sim_;
  Evaluator evaluator_;
};

TEST_F(EvaluatorTest, EvaluationChargesVirtualClock) {
  EXPECT_DOUBLE_EQ(evaluator_.virtual_time_s(), 0.0);
  const double t = evaluator_.evaluate(valid_setting());
  EXPECT_GT(t, 0.0);
  // compile 0.25s + 3 runs x (time + launch overhead)
  const double expected =
      0.25 + 3.0 * (t / 1e3 + 2e-3);
  EXPECT_NEAR(evaluator_.virtual_time_s(), expected, 1e-9);
  EXPECT_EQ(evaluator_.unique_evaluations(), 1u);
}

TEST_F(EvaluatorTest, CacheHitsAreFree) {
  const auto s = valid_setting();
  const double t1 = evaluator_.evaluate(s);
  const double clock = evaluator_.virtual_time_s();
  const double t2 = evaluator_.evaluate(s);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(evaluator_.virtual_time_s(), clock);
  EXPECT_EQ(evaluator_.unique_evaluations(), 1u);
}

TEST_F(EvaluatorTest, InvalidSettingIsInfiniteAndUncharged) {
  Setting bad = valid_setting();
  bad.set(kSD, 2);  // streaming fields without streaming
  EXPECT_TRUE(std::isinf(evaluator_.evaluate(bad)));
  EXPECT_DOUBLE_EQ(evaluator_.virtual_time_s(), 0.0);
  EXPECT_EQ(evaluator_.unique_evaluations(), 0u);
}

TEST_F(EvaluatorTest, BestTracksMinimum) {
  Rng rng(1);
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 20; ++i) {
    best = std::min(best, evaluator_.evaluate(space_.random_valid(rng)));
  }
  EXPECT_DOUBLE_EQ(evaluator_.best_time_ms(), best);
  ASSERT_TRUE(evaluator_.best_setting().has_value());
  EXPECT_DOUBLE_EQ(evaluator_.evaluate(*evaluator_.best_setting()), best);
}

TEST_F(EvaluatorTest, TraceRecordsImprovementsMonotonically) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    evaluator_.evaluate(space_.random_valid(rng));
    if (i % 5 == 4) evaluator_.mark_iteration();
  }
  const auto& trace = evaluator_.trace();
  ASSERT_FALSE(trace.points.empty());
  double last = std::numeric_limits<double>::infinity();
  double last_time = -1.0;
  for (const auto& p : trace.points) {
    EXPECT_LE(p.best_time_ms, last + 1e-12);
    EXPECT_GE(p.virtual_time_s, last_time);
    last = p.best_time_ms;
    last_time = p.virtual_time_s;
  }
}

TEST_F(EvaluatorTest, ResetClearsEverything) {
  evaluator_.evaluate(valid_setting());
  evaluator_.mark_iteration();
  evaluator_.reset();
  EXPECT_DOUBLE_EQ(evaluator_.virtual_time_s(), 0.0);
  EXPECT_EQ(evaluator_.unique_evaluations(), 0u);
  EXPECT_EQ(evaluator_.iterations(), 0u);
  EXPECT_FALSE(evaluator_.best_setting().has_value());
  EXPECT_TRUE(evaluator_.trace().points.empty());
}

TEST_F(EvaluatorTest, StopCriteriaByIterationAndTime) {
  StopCriteria by_iter;
  by_iter.max_iterations = 2;
  EXPECT_FALSE(by_iter.reached(evaluator_));
  evaluator_.mark_iteration();
  evaluator_.mark_iteration();
  EXPECT_TRUE(by_iter.reached(evaluator_));

  StopCriteria by_time;
  by_time.max_virtual_seconds = 0.1;
  evaluator_.evaluate(valid_setting());  // charges > 0.25 s
  EXPECT_TRUE(by_time.reached(evaluator_));
}

TEST(Trace, BestAtIterationAndTime) {
  ConvergenceTrace trace;
  trace.record(1, 10, 1.0, 5.0);
  trace.record(2, 20, 2.0, 3.0);
  trace.record(4, 40, 4.0, 2.0);
  EXPECT_TRUE(std::isinf(trace.best_at_iteration(0)));
  EXPECT_DOUBLE_EQ(trace.best_at_iteration(1), 5.0);
  EXPECT_DOUBLE_EQ(trace.best_at_iteration(3), 3.0);
  EXPECT_DOUBLE_EQ(trace.best_at_iteration(10), 2.0);
  EXPECT_DOUBLE_EQ(trace.best_at_time(2.5), 3.0);
  EXPECT_DOUBLE_EQ(trace.final_best(), 2.0);
}

TEST(Trace, TimeToReachFindsFirstCrossing) {
  ConvergenceTrace trace;
  trace.record(1, 10, 1.0, 5.0);
  trace.record(2, 20, 2.0, 3.0);
  trace.record(4, 40, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(trace.time_to_reach(5.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.time_to_reach(3.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.time_to_reach(2.5), 4.0);
  EXPECT_TRUE(std::isinf(trace.time_to_reach(1.0)));
  EXPECT_EQ(trace.iterations_to_reach(3.5), 2u);
  EXPECT_EQ(trace.iterations_to_reach(0.5), static_cast<std::size_t>(-1));
}

TEST(Trace, MeanFiniteSkipsInf) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(mean_finite({1.0, 3.0, inf}), 2.0);
  EXPECT_TRUE(std::isinf(mean_finite({inf, inf})));
}

TEST(Dataset, CollectProfilesDistinctValidSettings) {
  const auto spec = stencil::make_stencil("helmholtz");
  SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(3);
  const auto ds = collect_dataset(space, sim, 64, rng);
  EXPECT_GE(ds.size(), 60u);
  EXPECT_EQ(ds.times_ms.size(), ds.size());
  EXPECT_EQ(ds.metrics.rows(), ds.size());
  EXPECT_EQ(ds.metrics.cols(), gpusim::kMetricCount);
  for (double t : ds.times_ms) EXPECT_GT(t, 0.0);
}

TEST(Dataset, BestIndexIsMinimum) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(4);
  const auto ds = collect_dataset(space, sim, 32, rng);
  const auto best = ds.best_index();
  for (double t : ds.times_ms) EXPECT_LE(ds.times_ms[best], t);
}

TEST(Dataset, FeatureMatrixMatchesSettings) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(5);
  const auto ds = collect_dataset(space, sim, 16, rng);
  const auto x = ds.feature_matrix();
  EXPECT_EQ(x.rows(), ds.size());
  EXPECT_EQ(x.cols(), kParamCount);
  for (std::size_t r = 0; r < ds.size(); ++r) {
    EXPECT_DOUBLE_EQ(x(r, kTBx),
                     static_cast<double>(ds.settings[r].get(kTBx)));
  }
}

TEST(Dataset, MetricColumnRoundTrip) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Rng rng(6);
  const auto ds = collect_dataset(space, sim, 8, rng);
  const auto col = ds.metric_column(gpusim::kL2HitRate);
  for (std::size_t r = 0; r < ds.size(); ++r) {
    EXPECT_DOUBLE_EQ(col[r], ds.metrics(r, gpusim::kL2HitRate));
  }
}

TEST(Dataset, ProfileSettingsRejectsInvalid) {
  const auto spec = stencil::make_stencil("j3d7pt");
  SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  Setting bad;
  bad.set(kSD, 2);
  EXPECT_THROW(profile_settings(space, sim, {bad}), Error);
}

}  // namespace
}  // namespace cstuner::tuner
