#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/cpu_executor.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::exec {
namespace {

using namespace space;

/// The core semantics property: for ANY valid setting, the tiled executor
/// must reproduce the naive reference bit-for-bit.
class ExecutorPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecutorPropertyTest, RandomValidDecompositionsMatchReference) {
  auto spec = stencil::scaled_stencil(GetParam(), 20);
  SearchSpace space(spec);
  Rng rng(fnv1a(GetParam().data(), GetParam().size()));
  for (int i = 0; i < 6; ++i) {
    const auto setting = space.random_valid(rng);
    EXPECT_EQ(max_divergence_from_reference(spec, setting), 0.0)
        << GetParam() << " diverged for " << setting.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStencils, ExecutorPropertyTest,
                         ::testing::ValuesIn(stencil::stencil_names()),
                         [](const auto& info) { return info.param; });

stencil::StencilSpec small_spec() {
  return stencil::scaled_stencil("j3d7pt", 16);
}

TEST(Executor, NaiveMappingMatchesReference) {
  Setting s;  // one thread, one point
  EXPECT_EQ(max_divergence_from_reference(small_spec(), s), 0.0);
}

TEST(Executor, BlockMergingCoversEveryPointOnce) {
  Setting s;
  s.set(kTBx, 4);
  s.set(kBMx, 4);
  s.set(kBMy, 2);
  EXPECT_EQ(max_divergence_from_reference(small_spec(), s), 0.0);
}

TEST(Executor, CyclicMergingCoversEveryPointOnce) {
  Setting s;
  s.set(kTBx, 4);
  s.set(kCMx, 4);
  s.set(kCMy, 2);
  EXPECT_EQ(max_divergence_from_reference(small_spec(), s), 0.0);
}

TEST(Executor, MixedCyclicAndBlockMerge) {
  Setting s;
  s.set(kTBx, 2);
  s.set(kCMx, 2);
  s.set(kBMx, 4);
  s.set(kUFx, 2);
  EXPECT_EQ(max_divergence_from_reference(small_spec(), s), 0.0);
}

TEST(Executor, StreamingOverEachDimension) {
  for (int sd = 1; sd <= 3; ++sd) {
    Setting s;
    s.set(kTBx, sd == 1 ? 1 : 4);
    s.set(kTBy, sd == 2 ? 1 : 2);
    s.set(kTBz, 1);
    s.set(kUseStreaming, kOn);
    s.set(kSD, sd);
    s.set(kSB, 8);
    const auto spec = small_spec();
    SearchSpace space(spec);
    ASSERT_TRUE(space.is_valid(s)) << "sd=" << sd << ": "
                                   << *space.checker().violation(s);
    EXPECT_EQ(max_divergence_from_reference(spec, s), 0.0) << "sd=" << sd;
  }
}

TEST(Executor, PartialTilesAtGridBoundary) {
  // 20^3 grid with coverage 16 in x leaves a partial block.
  auto spec = stencil::scaled_stencil("j3d7pt", 20);
  Setting s;
  s.set(kTBx, 16);
  s.set(kTBy, 8);
  EXPECT_EQ(max_divergence_from_reference(spec, s), 0.0);
}

TEST(Executor, SbNotDividingExtent) {
  auto spec = stencil::scaled_stencil("j3d7pt", 20);
  Setting s;
  s.set(kTBx, 8);
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 16);  // 20 = 16 + 4 tail
  EXPECT_EQ(max_divergence_from_reference(spec, s), 0.0);
}

TEST(Executor, MultiArrayCompoundStencil) {
  auto spec = stencil::scaled_stencil("cheby", 12);
  Setting s;
  s.set(kTBx, 4);
  s.set(kTBy, 2);
  s.set(kCMy, 2);
  EXPECT_EQ(max_divergence_from_reference(spec, s), 0.0);
}

TEST(Executor, HighOrderStencilWithHalo) {
  auto spec = stencil::scaled_stencil("hypterm", 12);  // order 4
  Setting s;
  s.set(kTBx, 4);
  EXPECT_EQ(max_divergence_from_reference(spec, s), 0.0);
}

TEST(Executor, MultiThreadedHostExecutionMatches) {
  auto spec = stencil::scaled_stencil("helmholtz", 16);
  Setting s;
  s.set(kTBx, 4);
  s.set(kTBy, 4);
  auto grids = stencil::make_grids(spec);
  std::vector<stencil::Grid3> serial_out;
  for (int o = 0; o < spec.n_outputs; ++o) {
    serial_out.emplace_back(spec.grid[0], spec.grid[1], spec.grid[2], 0);
  }
  run_tiled(spec, s, grids.inputs, serial_out, {.n_threads = 1});
  run_tiled(spec, s, grids.inputs, grids.outputs, {.n_threads = 4});
  for (int o = 0; o < spec.n_outputs; ++o) {
    EXPECT_EQ(stencil::Grid3::max_abs_diff(
                  serial_out[static_cast<std::size_t>(o)],
                  grids.outputs[static_cast<std::size_t>(o)]),
              0.0);
  }
}

TEST(Executor, WrongGridCountRejected) {
  auto spec = small_spec();
  auto grids = stencil::make_grids(spec);
  grids.inputs.clear();
  EXPECT_THROW(run_tiled(spec, Setting{}, grids.inputs, grids.outputs),
               Error);
}

}  // namespace
}  // namespace cstuner::exec
