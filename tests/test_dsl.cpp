#include <gtest/gtest.h>

#include "common/error.hpp"
#include "exec/cpu_executor.hpp"
#include "space/search_space.hpp"
#include "stencil/dsl.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::stencil {
namespace {

const char* kWaveDsl = R"(
# 3-D order-2 wave-equation style stencil
stencil wave
grid 128 128 128
arrays 2 1
star 0 2 1.0
tap 1 0 0 0 -1.0
flops 40
)";

TEST(Dsl, ParsesCompleteDocument) {
  const auto spec = parse_stencil(kWaveDsl);
  EXPECT_EQ(spec.name, "wave");
  EXPECT_EQ(spec.grid[0], 128);
  EXPECT_EQ(spec.n_inputs, 2);
  EXPECT_EQ(spec.n_outputs, 1);
  EXPECT_EQ(spec.io_arrays, 3);
  EXPECT_EQ(spec.order, 2);                // derived from the star taps
  EXPECT_EQ(spec.taps.size(), 13u + 1u);   // order-2 star + leapfrog tap
  EXPECT_EQ(spec.flops, 40);
}

TEST(Dsl, CommentsAndBlankLinesIgnored) {
  const auto spec = parse_stencil(
      "stencil s\n\n# full line comment\ngrid 32 32 32  # trailing\n"
      "star 0 1 1.0\n");
  EXPECT_EQ(spec.name, "s");
  EXPECT_EQ(spec.taps.size(), 7u);
}

TEST(Dsl, FlopsDefaultsToTapBudget) {
  const auto spec =
      parse_stencil("stencil s\ngrid 32 32 32\nstar 0 1 1.0\n");
  EXPECT_EQ(spec.flops, 7 * 2);  // 7 taps, mul+add, one output
  EXPECT_EQ(spec.pointwise_ops, 0);
}

TEST(Dsl, BoxDirective) {
  const auto spec =
      parse_stencil("stencil s\ngrid 32 32 32\nbox 0 0.5\n");
  EXPECT_EQ(spec.taps.size(), 27u);
  EXPECT_EQ(spec.order, 1);
}

struct DslError {
  const char* name;
  const char* text;
  const char* needle;
};

class DslErrorTest : public ::testing::TestWithParam<DslError> {};

TEST_P(DslErrorTest, RejectsWithDiagnostic) {
  try {
    parse_stencil(GetParam().text);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().needle),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DslErrorTest,
    ::testing::Values(
        DslError{"missing_name", "grid 32 32 32\nstar 0 1 1.0\n",
                 "missing 'stencil"},
        DslError{"missing_grid", "stencil s\nstar 0 1 1.0\n",
                 "missing 'grid"},
        DslError{"no_taps", "stencil s\ngrid 32 32 32\n", "no taps"},
        DslError{"bad_directive",
                 "stencil s\ngrid 32 32 32\nfrobnicate 1\n",
                 "unknown directive"},
        DslError{"bad_arity", "stencil s\ngrid 32 32\n", "expects 3"},
        DslError{"bad_integer", "stencil s\ngrid 32 32 zz\n",
                 "expected integer"},
        DslError{"bad_array_ref",
                 "stencil s\ngrid 32 32 32\ntap 3 0 0 0 1.0\n",
                 "references array"},
        DslError{"grid_too_small",
                 "stencil s\ngrid 6 32 32\nstar 0 3 1.0\n", "too small"},
        DslError{"tiny_grid", "stencil s\ngrid 2 32 32\nstar 0 1 1.0\n",
                 ">= 4"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Dsl, RoundTripsThroughToDsl) {
  const auto original = parse_stencil(kWaveDsl);
  const auto reparsed = parse_stencil(to_dsl(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.grid, original.grid);
  EXPECT_EQ(reparsed.order, original.order);
  EXPECT_EQ(reparsed.flops, original.flops);
  ASSERT_EQ(reparsed.taps.size(), original.taps.size());
  for (std::size_t i = 0; i < original.taps.size(); ++i) {
    EXPECT_EQ(reparsed.taps[i].array, original.taps[i].array);
    EXPECT_EQ(reparsed.taps[i].dx, original.taps[i].dx);
    EXPECT_DOUBLE_EQ(reparsed.taps[i].weight, original.taps[i].weight);
  }
}

TEST(Dsl, BuiltInSuiteRoundTrips) {
  for (const auto& name : stencil_names()) {
    const auto original = make_stencil(name);
    const auto reparsed = parse_stencil(to_dsl(original));
    EXPECT_EQ(reparsed.order, original.order) << name;
    EXPECT_EQ(reparsed.flops, original.flops) << name;
    EXPECT_EQ(reparsed.taps.size(), original.taps.size()) << name;
    EXPECT_EQ(reparsed.io_arrays, original.io_arrays) << name;
  }
}

TEST(Dsl, ParsedStencilWorksEndToEnd) {
  // A DSL-defined stencil must flow through the space/executor unchanged.
  auto spec = parse_stencil(kWaveDsl);
  spec.grid = {16, 16, 16};
  space::SearchSpace search_space(spec);
  Rng rng(4);
  const auto setting = search_space.random_valid(rng);
  EXPECT_EQ(exec::max_divergence_from_reference(spec, setting), 0.0);
}

TEST(Dsl, MissingFileThrows) {
  EXPECT_THROW(load_stencil_file("/nonexistent/path.stencil"), UsageError);
}

}  // namespace
}  // namespace cstuner::stencil
