#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "minimpi/comm.hpp"

namespace cstuner::minimpi {
namespace {

TEST(MiniMpi, SingleRankRuns) {
  int observed_size = 0;
  Context::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    observed_size = comm.size();
  });
  EXPECT_EQ(observed_size, 1);
}

TEST(MiniMpi, RanksAreDistinct) {
  std::atomic<int> mask{0};
  Context::run(4, [&](Comm& comm) { mask |= (1 << comm.rank()); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(MiniMpi, PointToPointRoundTrip) {
  Context::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_values<int>(1, 7, {1, 2, 3});
      const auto reply = comm.recv_values<int>(1, 8);
      EXPECT_EQ(reply, (std::vector<int>{6}));
    } else {
      const auto data = comm.recv_values<int>(0, 7);
      const int sum = std::accumulate(data.begin(), data.end(), 0);
      comm.send_values<int>(0, 8, {sum});
    }
  });
}

TEST(MiniMpi, TagsAreMatchedIndependently) {
  Context::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_values<int>(1, /*tag=*/1, {10});
      comm.send_values<int>(1, /*tag=*/2, {20});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.recv_values<int>(0, 2), (std::vector<int>{20}));
      EXPECT_EQ(comm.recv_values<int>(0, 1), (std::vector<int>{10}));
    }
  });
}

TEST(MiniMpi, FifoPerSourceAndTag) {
  Context::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_values<int>(1, 3, {i});
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv_values<int>(0, 3), (std::vector<int>{i}));
      }
    }
  });
}

TEST(MiniMpi, EmptyPayloadSupported) {
  Context::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 4, {});
    } else {
      const Message m = comm.recv(0, 4);
      EXPECT_TRUE(m.payload.empty());
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 4);
    }
  });
}

TEST(MiniMpi, ProbeSeesPendingMessage) {
  Context::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_values<int>(1, 9, {1});
      comm.barrier();
    } else {
      comm.barrier();  // after barrier the message must be queued
      EXPECT_TRUE(comm.probe(0, 9));
      EXPECT_FALSE(comm.probe(0, 10));
      (void)comm.recv_values<int>(0, 9);
      EXPECT_FALSE(comm.probe(0, 9));
    }
  });
}

TEST(MiniMpi, BarrierSynchronizesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  Context::run(4, [&](Comm& comm) {
    (void)comm;
    ++phase1;
    comm.barrier();
    if (phase1.load() != 4) violated = true;
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, BarrierReusableManyTimes) {
  std::atomic<int> counter{0};
  Context::run(3, [&](Comm& comm) {
    for (int i = 0; i < 20; ++i) {
      comm.barrier();
      ++counter;
    }
  });
  EXPECT_EQ(counter.load(), 60);
}

TEST(MiniMpi, RingNeighborsFormSingleRing) {
  Context::run(5, [](Comm& comm) {
    EXPECT_EQ((comm.rank() + 1) % 5, comm.right_neighbor());
    EXPECT_EQ((comm.rank() + 4) % 5, comm.left_neighbor());
  });
}

TEST(MiniMpi, RingPassAroundAccumulates) {
  Context::run(4, [](Comm& comm) {
    // Token starts at 0, each rank adds its rank, one full circle.
    if (comm.rank() == 0) {
      comm.send_values<int>(comm.right_neighbor(), 5, {0});
      const auto token = comm.recv_values<int>(comm.left_neighbor(), 5);
      EXPECT_EQ(token[0], 0 + 1 + 2 + 3);
    } else {
      auto token = comm.recv_values<int>(comm.left_neighbor(), 5);
      token[0] += comm.rank();
      comm.send_values<int>(comm.right_neighbor(), 5, token);
    }
  });
}

TEST(MiniMpi, AllgatherCollectsEveryRank) {
  Context::run(4, [](Comm& comm) {
    const auto all = comm.allgather(static_cast<double>(comm.rank() * 10));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], r * 10.0);
  });
}

TEST(MiniMpi, ExceptionInRankPropagates) {
  EXPECT_THROW(Context::run(2,
                            [](Comm& comm) {
                              comm.barrier();
                              if (comm.rank() == 1) {
                                throw UsageError("rank 1 failed");
                              }
                            }),
               UsageError);
}

TEST(MiniMpi, ManyRanksAllToAllStress) {
  const int n = 6;
  Context::run(n, [&](Comm& comm) {
    // Every rank sends a distinct payload to every other rank.
    for (int dest = 0; dest < n; ++dest) {
      if (dest == comm.rank()) continue;
      comm.send_values<int>(dest, 11, {comm.rank() * 100 + dest});
    }
    for (int src = 0; src < n; ++src) {
      if (src == comm.rank()) continue;
      const auto got = comm.recv_values<int>(src, 11);
      EXPECT_EQ(got[0], src * 100 + comm.rank());
    }
  });
}

TEST(MiniMpi, InterleavedTagsAcrossGenerations) {
  Context::run(2, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      if (comm.rank() == 0) {
        comm.send_values<int>(1, round % 3, {round});
      } else {
        EXPECT_EQ(comm.recv_values<int>(0, round % 3)[0], round);
      }
    }
  });
}

TEST(MiniMpi, LargePayloadRoundTrip) {
  Context::run(2, [](Comm& comm) {
    std::vector<double> big(100000);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<double>(i) * 0.5;
    }
    if (comm.rank() == 0) {
      comm.send_values<double>(1, 21, big);
    } else {
      EXPECT_EQ(comm.recv_values<double>(0, 21), big);
    }
  });
}

TEST(MiniMpi, TypedRoundTripPreservesDoubles) {
  Context::run(2, [](Comm& comm) {
    const std::vector<double> payload = {1.5, -2.25, 1e300, 0.0};
    if (comm.rank() == 0) {
      comm.send_values<double>(1, 6, payload);
    } else {
      EXPECT_EQ(comm.recv_values<double>(0, 6), payload);
    }
  });
}

TEST(MiniMpi, RecvFromDeadRankThrowsInsteadOfHanging) {
  // Rank 1 dies without ever sending; rank 0's blocking recv must turn into
  // a hard error, not a hang.  Rank 0 swallows the induced error so the
  // original UsageError from rank 1 is what propagates out of run().
  std::atomic<bool> recv_failed{false};
  EXPECT_THROW(Context::run(2,
                            [&](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw UsageError("rank 1 dies");
                              }
                              try {
                                comm.recv_values<int>(1, 3);
                              } catch (const Error&) {
                                recv_failed = true;
                              }
                            }),
               UsageError);
  EXPECT_TRUE(recv_failed.load());
}

TEST(MiniMpi, SendToDeadRankThrows) {
  std::atomic<bool> send_failed{false};
  EXPECT_THROW(Context::run(2,
                            [&](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw UsageError("rank 1 dies");
                              }
                              // Learn of the death via the failing recv, then
                              // verify a subsequent send also fails fast.
                              try {
                                comm.recv_values<int>(1, 3);
                              } catch (const Error&) {
                              }
                              try {
                                comm.send_values<int>(1, 4, {42});
                              } catch (const Error&) {
                                send_failed = true;
                              }
                            }),
               UsageError);
  EXPECT_TRUE(send_failed.load());
}

TEST(MiniMpi, BarrierWithDeadRankThrows) {
  std::atomic<int> barrier_failures{0};
  EXPECT_THROW(Context::run(3,
                            [&](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw UsageError("rank 1 dies");
                              }
                              try {
                                comm.barrier();
                              } catch (const Error&) {
                                barrier_failures.fetch_add(1);
                              }
                            }),
               UsageError);
  // Both survivors must have been released with an error, not left blocked.
  EXPECT_EQ(barrier_failures.load(), 2);
}

TEST(MiniMpi, MessagesSentBeforeDeathStillDelivered) {
  // A dead rank's queued messages are drained before recv reports the death.
  std::atomic<bool> got_payload{false};
  std::atomic<bool> second_recv_failed{false};
  EXPECT_THROW(Context::run(2,
                            [&](Comm& comm) {
                              if (comm.rank() == 1) {
                                comm.send_values<int>(0, 5, {99});
                                throw UsageError("rank 1 dies after send");
                              }
                              try {
                                const auto got = comm.recv_values<int>(1, 5);
                                got_payload = (got == std::vector<int>{99});
                                comm.recv_values<int>(1, 5);
                              } catch (const Error&) {
                                second_recv_failed = true;
                              }
                            }),
               UsageError);
  EXPECT_TRUE(got_payload.load());
  EXPECT_TRUE(second_recv_failed.load());
}

// --- Recoverable mode: typed outcomes, membership views, live barriers.

RunOptions recoverable() {
  RunOptions options;
  options.recover_killed_ranks = true;
  return options;
}

TEST(MiniMpiRecoverable, TryRecvDeadlineTimesOut) {
  // Nobody ever sends: the deadline variant must report kTimedOut instead
  // of blocking forever.
  Context::run(2, recoverable(), [](Comm& comm) {
    if (comm.rank() != 0) return;
    const RecvOutcome out =
        comm.try_recv(1, 3, std::chrono::milliseconds(50));
    EXPECT_EQ(out.status, CommStatus::kTimedOut);
    EXPECT_FALSE(out.ok());
  });
}

TEST(MiniMpiRecoverable, TryRecvWakesPromptlyOnPeerDeath) {
  // The receiver probes (sees nothing), releases the sender to die, then
  // blocks in try_recv with a deadline far beyond the test timeout. The
  // death must wake it promptly — kPeerDead long before the deadline — not
  // leave it hanging until the clock runs out.
  std::atomic<bool> woke_with_peer_dead{false};
  std::atomic<long> wait_ms{-1};
  Context::run(2, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 1) {
      // Die only after rank 0 has peeked and is about to block.
      comm.recv_values<int>(0, 1);
      throw RankKilled("rank 1 killed");
    }
    EXPECT_FALSE(comm.probe(1, 3));  // peek: nothing queued yet
    comm.send_values<int>(1, 1, {0});  // release the sender to die
    const auto t0 = std::chrono::steady_clock::now();
    const RecvOutcome out =
        comm.try_recv(1, 3, std::chrono::milliseconds(60000));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    woke_with_peer_dead = (out.status == CommStatus::kPeerDead);
    wait_ms = elapsed.count();
  });
  EXPECT_TRUE(woke_with_peer_dead.load());
  // Generous bound: promptness means "the death woke us", not "we sat out
  // the 60 s deadline".
  EXPECT_LT(wait_ms.load(), 10000);
}

TEST(MiniMpiRecoverable, TrySendToDeadPeerReturnsPeerDead) {
  std::atomic<bool> saw_peer_dead{false};
  Context::run(2, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 1) throw RankKilled("rank 1 killed");
    // Learn of the death via try_recv, then verify try_send agrees.
    EXPECT_EQ(comm.try_recv(1, 3).status, CommStatus::kPeerDead);
    saw_peer_dead =
        comm.try_send_values<int>(1, 4, {42}) == CommStatus::kPeerDead;
  });
  EXPECT_TRUE(saw_peer_dead.load());
}

TEST(MiniMpiRecoverable, TryRecvDrainsQueuedMessagesBeforeReportingDeath) {
  std::atomic<bool> got_payload{false};
  std::atomic<bool> then_peer_dead{false};
  Context::run(2, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send_values<int>(0, 5, {99});
      throw RankKilled("rank 1 killed after send");
    }
    const auto got = comm.try_recv_values<int>(1, 5);
    got_payload = got.has_value() && *got == std::vector<int>{99};
    then_peer_dead = !comm.try_recv_values<int>(1, 5).has_value();
  });
  EXPECT_TRUE(got_payload.load());
  EXPECT_TRUE(then_peer_dead.load());
}

TEST(MiniMpiRecoverable, RunAbsorbsKilledRanksButPropagatesRealErrors) {
  // RankKilled is absorbed (survivors finish, run returns normally)...
  std::atomic<int> survivors{0};
  Context::run(3, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 1) throw RankKilled("injected");
    survivors.fetch_add(1);
  });
  EXPECT_EQ(survivors.load(), 2);
  // ...while a genuine error still aborts the run, and in hard-error mode
  // even RankKilled propagates.
  EXPECT_THROW(Context::run(2, recoverable(),
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw UsageError("real bug");
                              }
                            }),
               UsageError);
  EXPECT_THROW(Context::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw RankKilled("killed");
                              }
                              try {
                                comm.recv_values<int>(1, 1);
                              } catch (const Error&) {
                              }
                            }),
               RankKilled);
}

TEST(MiniMpiRecoverable, SyncMembershipAgreesAcrossSurvivors) {
  // Rank 2 dies before ever syncing; every survivor's first agreed view
  // must be identical: epoch 1, live = {0, 1, 3}.
  std::mutex mu;
  std::vector<MembershipView> views;
  Context::run(4, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 2) throw RankKilled("rank 2 killed");
    const MembershipView view = comm.sync_membership();
    std::lock_guard<std::mutex> lock(mu);
    views.push_back(view);
  });
  ASSERT_EQ(views.size(), 3u);
  for (const MembershipView& v : views) {
    EXPECT_EQ(v.epoch, 1u);
    EXPECT_EQ(v.live, (std::vector<int>{0, 1, 3}));
  }
}

TEST(MiniMpiRecoverable, SyncMembershipIsReusableAndStable) {
  std::atomic<bool> all_stable{true};
  Context::run(3, recoverable(), [&](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const MembershipView view = comm.sync_membership();
      if (view.epoch != 0 || view.live != std::vector<int>{0, 1, 2}) {
        all_stable = false;
      }
    }
  });
  EXPECT_TRUE(all_stable.load());
}

TEST(MiniMpiRecoverable, BarrierCompletesOverLiveSetAfterDeath) {
  // In recoverable mode barrier() is the live-set membership barrier:
  // survivors pass it after a death instead of throwing.
  std::atomic<int> passed{0};
  Context::run(3, recoverable(), [&](Comm& comm) {
    if (comm.rank() == 1) throw RankKilled("rank 1 killed");
    comm.barrier();
    comm.barrier();
    passed.fetch_add(1);
  });
  EXPECT_EQ(passed.load(), 2);
}

TEST(MiniMpiRecoverable, MembershipViewRingNeighbors) {
  MembershipView view;
  view.live = {0, 1, 3};
  EXPECT_TRUE(view.contains(3));
  EXPECT_FALSE(view.contains(2));
  // The live ring after rank 2 died: 0 -> 1 -> 3 -> 0.
  EXPECT_EQ(view.right_neighbor_of(0), 1);
  EXPECT_EQ(view.right_neighbor_of(1), 3);
  EXPECT_EQ(view.right_neighbor_of(3), 0);
  EXPECT_EQ(view.left_neighbor_of(0), 3);
  EXPECT_EQ(view.left_neighbor_of(1), 0);
  EXPECT_EQ(view.left_neighbor_of(3), 1);
  EXPECT_THROW(view.left_neighbor_of(2), Error);
}

}  // namespace
}  // namespace cstuner::minimpi
