// io::Vfs layer: RealVfs passthrough, FaultVfs crash model (volatile data
// and namespace entries, torn prefixes, deterministic fault draws), the
// write_file_atomic old-or-new invariant at every power-cut point, and the
// Checkpoint's typed-error + torn-tail behavior when its storage misbehaves.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "io/fault_vfs.hpp"
#include "io/vfs.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::io {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_io_" + name;
  fs::remove_all(dir);
  return dir;
}

// --- parent_dir ------------------------------------------------------------

TEST(ParentDir, CoversRootRelativeAndNested) {
  EXPECT_EQ(parent_dir("a/b/c.json"), "a/b");
  EXPECT_EQ(parent_dir("c.json"), ".");
  EXPECT_EQ(parent_dir("/c.json"), "/");
  EXPECT_EQ(parent_dir("/a/c.json"), "/a");
}

// --- RealVfs ---------------------------------------------------------------

TEST(RealVfs, RoundTripsThroughHelpers) {
  Vfs& vfs = Vfs::real();
  const std::string dir = fresh_dir("real");
  vfs.mkdirs(dir + "/nested");
  EXPECT_TRUE(vfs.exists(dir + "/nested"));

  vfs.write_file_synced(dir + "/nested/a.txt", "hello");
  EXPECT_EQ(vfs.read_file(dir + "/nested/a.txt"), "hello");

  const Vfs::Handle h = vfs.open(dir + "/nested/a.txt", Vfs::OpenMode::kAppend);
  vfs.write_all(h, " world");
  vfs.fsync(h);
  vfs.close(h);
  EXPECT_EQ(vfs.read_file(dir + "/nested/a.txt"), "hello world");

  vfs.rename(dir + "/nested/a.txt", dir + "/nested/b.txt");
  EXPECT_FALSE(vfs.exists(dir + "/nested/a.txt"));
  const std::vector<std::string> names = vfs.list_dir(dir + "/nested");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "b.txt");

  vfs.truncate(dir + "/nested/b.txt", 5);
  EXPECT_EQ(vfs.read_file(dir + "/nested/b.txt"), "hello");
  vfs.unlink(dir + "/nested/b.txt");
  vfs.unlink(dir + "/nested/b.txt");  // remove-if-present: no throw
  EXPECT_FALSE(vfs.exists(dir + "/nested/b.txt"));
}

TEST(RealVfs, MissingFileReadIsTypedNotFound) {
  try {
    Vfs::real().read_file(fresh_dir("missing") + "/nope");
    FAIL() << "expected VfsError";
  } catch (const VfsError& e) {
    EXPECT_EQ(e.code(), VfsErrc::kNotFound);
  }
}

TEST(RealVfs, WriteFileAtomicReplacesAndLeavesNoTmp) {
  Vfs& vfs = Vfs::real();
  const std::string dir = fresh_dir("atomic");
  vfs.mkdirs(dir);
  write_file_atomic(vfs, dir + "/f.json", "old");
  write_file_atomic(vfs, dir + "/f.json", "new");
  EXPECT_EQ(vfs.read_file(dir + "/f.json"), "new");
  for (const std::string& name : vfs.list_dir(dir)) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

// --- FaultVfs crash model --------------------------------------------------

/// Creates `path` with `data` fully durable: data fsync'd, entry fsync'd.
void put_durable(FaultVfs& vfs, const std::string& path,
                 const std::string& data) {
  vfs.write_file_synced(path, data);
  vfs.fsync_dir(parent_dir(path));
}

TEST(FaultVfs, LiveNamespaceBehavesLikeAFilesystem) {
  FaultVfs vfs;
  vfs.mkdirs("d/e");
  vfs.write_file_synced("d/e/x", "1");
  vfs.write_file_synced("d/y", "2");
  EXPECT_TRUE(vfs.exists("d/e/x"));
  EXPECT_EQ(vfs.read_file("d/y"), "2");
  const std::vector<std::string> names = vfs.list_dir("d");
  ASSERT_EQ(names.size(), 2u);  // sorted: the subdir and the file
  EXPECT_EQ(names[0], "e");
  EXPECT_EQ(names[1], "y");
  EXPECT_THROW(vfs.list_dir("nosuch"), VfsError);
  EXPECT_THROW(vfs.open("nosuch/f", Vfs::OpenMode::kTruncate), VfsError);
}

TEST(FaultVfs, UnsyncedEntryVanishesAtPowerCut) {
  FaultVfs vfs;
  vfs.mkdirs("d");
  // Data fsync'd, but the directory entry never was: the file must vanish.
  vfs.write_file_synced("d/f", "payload");
  vfs.arm_power_cut(vfs.op_count());
  EXPECT_THROW(vfs.exists("d/f"), PowerCutError);
  EXPECT_TRUE(vfs.cut());
  vfs.restart();
  EXPECT_FALSE(vfs.exists("d/f"));
  EXPECT_EQ(vfs.stats().files_dropped, 1u);
}

TEST(FaultVfs, DurableEntryWithUnsyncedDataSurvivesTorn) {
  FaultSchedule schedule;
  schedule.seed = 42;
  FaultVfs vfs(schedule);
  vfs.mkdirs("d");
  // Entry made durable while the file is empty; the payload is written
  // afterwards and never fsync'd — a cut keeps the name with a torn prefix.
  const Vfs::Handle h = vfs.open("d/f", Vfs::OpenMode::kTruncate);
  vfs.fsync(h);
  vfs.fsync_dir("d");
  const std::string payload = "0123456789abcdef";
  vfs.write_all(h, payload);
  vfs.close(h);
  vfs.arm_power_cut(vfs.op_count());
  vfs.restart();
  ASSERT_TRUE(vfs.exists("d/f"));
  const std::string torn = vfs.read_file("d/f");
  EXPECT_LT(torn.size(), payload.size());
  EXPECT_EQ(torn, payload.substr(0, torn.size()));  // a prefix, not garbage

  // Same seed, same ops => identical torn prefix (sweeps replay exactly).
  FaultVfs replay(schedule);
  replay.mkdirs("d");
  const Vfs::Handle h2 = replay.open("d/f", Vfs::OpenMode::kTruncate);
  replay.fsync(h2);
  replay.fsync_dir("d");
  replay.write_all(h2, payload);
  replay.close(h2);
  replay.arm_power_cut(replay.op_count());
  replay.restart();
  EXPECT_EQ(replay.read_file("d/f"), torn);
}

TEST(FaultVfs, FsyncedDataSurvivesPowerCutIntact) {
  FaultVfs vfs;
  vfs.mkdirs("d");
  put_durable(vfs, "d/f", "all sixteen bytes");
  vfs.arm_power_cut(vfs.op_count());
  vfs.restart();
  EXPECT_EQ(vfs.read_file("d/f"), "all sixteen bytes");
  EXPECT_EQ(vfs.stats().torn_files, 0u);
}

TEST(FaultVfs, RenameIsVolatileUntilDirFsync) {
  FaultVfs vfs;
  vfs.mkdirs("d");
  put_durable(vfs, "d/old", "x");
  vfs.rename("d/old", "d/new");
  EXPECT_TRUE(vfs.exists("d/new"));
  EXPECT_FALSE(vfs.exists("d/old"));
  // No fsync_dir: the cut rolls the namespace back to the durable image.
  vfs.arm_power_cut(vfs.op_count());
  vfs.restart();
  EXPECT_TRUE(vfs.exists("d/old"));
  EXPECT_FALSE(vfs.exists("d/new"));
  EXPECT_GE(vfs.stats().renames_dropped, 1u);

  // With the fsync the rename is durable.
  vfs.rename("d/old", "d/new");
  vfs.fsync_dir("d");
  vfs.arm_power_cut(vfs.op_count());
  vfs.restart();
  EXPECT_TRUE(vfs.exists("d/new"));
  EXPECT_FALSE(vfs.exists("d/old"));
}

TEST(FaultVfs, ShortWritesAreResumedByWriteAll) {
  FaultSchedule schedule;
  schedule.short_write_rate = 1.0;  // every write() consumes a strict prefix
  FaultVfs vfs(schedule);
  vfs.mkdirs("d");
  const Vfs::Handle h = vfs.open("d/f", Vfs::OpenMode::kTruncate);
  const std::string payload(257, 'z');
  vfs.write_all(h, payload);
  vfs.fsync(h);
  vfs.close(h);
  EXPECT_EQ(vfs.read_file("d/f"), payload);
  EXPECT_GT(vfs.stats().short_writes, 0u);
}

TEST(FaultVfs, InjectedErrorsAreTyped) {
  {
    FaultSchedule schedule;
    schedule.write_error_rate = 1.0;
    FaultVfs vfs(schedule);
    vfs.mkdirs("d");
    const Vfs::Handle h = vfs.open("d/f", Vfs::OpenMode::kTruncate);
    try {
      vfs.write(h, "x", 1);
      FAIL() << "expected injected ENOSPC";
    } catch (const VfsError& e) {
      EXPECT_EQ(e.code(), VfsErrc::kNoSpace);
    }
  }
  {
    FaultSchedule schedule;
    schedule.read_error_rate = 1.0;
    FaultVfs vfs(schedule);
    vfs.mkdirs("d");
    // Bypass the read fault by writing through a zero-rate sibling? No:
    // creation goes through write paths, which have no read faults.
    put_durable(vfs, "d/f", "x");
    try {
      vfs.read_file("d/f");
      FAIL() << "expected injected EIO";
    } catch (const VfsError& e) {
      EXPECT_EQ(e.code(), VfsErrc::kIoError);
    }
    EXPECT_GE(vfs.stats().faults_injected, 1u);
  }
}

TEST(FaultVfs, ArmedCutFiresExactlyAfterTheArmedOpCount) {
  FaultVfs vfs;
  vfs.mkdirs("d");
  put_durable(vfs, "d/f", "x");
  const std::uint64_t base = vfs.op_count();
  vfs.arm_power_cut(static_cast<std::int64_t>(base) + 2);
  EXPECT_TRUE(vfs.exists("d/f"));   // op base+1: allowed
  EXPECT_EQ(vfs.read_file("d/f"), "x");  // op base+2: allowed
  EXPECT_THROW(vfs.exists("d/f"), PowerCutError);  // op base+3: the cut
  EXPECT_THROW(vfs.read_file("d/f"), PowerCutError);  // machine stays off
  vfs.restart();
  EXPECT_EQ(vfs.read_file("d/f"), "x");
  EXPECT_EQ(vfs.stats().power_cuts, 1u);
}

TEST(FaultVfs, TruncateOpenDiscardsLiveButKeepsDurableImageUntilFsync) {
  FaultVfs vfs;
  vfs.mkdirs("d");
  put_durable(vfs, "d/f", "original");
  // O_TRUNC reuses the inode: live is empty now, but the durable image
  // still holds the old bytes until the new data is fsync'd.
  const Vfs::Handle h = vfs.open("d/f", Vfs::OpenMode::kTruncate);
  vfs.write_all(h, "re");
  vfs.close(h);
  vfs.arm_power_cut(vfs.op_count());
  vfs.restart();
  EXPECT_EQ(vfs.read_file("d/f"), "original");
}

// The tentpole invariant in miniature: write_file_atomic interrupted by a
// power cut at EVERY possible operation must leave the old content or the
// new content — never a torn file, never a missing entry.
TEST(FaultVfs, WriteFileAtomicIsOldOrNewAtEveryCutPoint) {
  const std::string old_data = "old contents, fully durable";
  const std::string new_data = "replacement contents, longer than the old";

  // Reference run: count the ops one atomic publish costs.
  std::uint64_t publish_ops = 0;
  {
    FaultVfs vfs;
    vfs.mkdirs("d");
    put_durable(vfs, "d/f", old_data);
    const std::uint64_t before = vfs.op_count();
    write_file_atomic(vfs, "d/f", new_data);
    publish_ops = vfs.op_count() - before;
  }
  ASSERT_GT(publish_ops, 3u);

  for (std::uint64_t cut = 0; cut < publish_ops; ++cut) {
    FaultVfs vfs;
    vfs.mkdirs("d");
    put_durable(vfs, "d/f", old_data);
    vfs.arm_power_cut(static_cast<std::int64_t>(vfs.op_count() + cut));
    EXPECT_THROW(write_file_atomic(vfs, "d/f", new_data), PowerCutError);
    vfs.restart();
    ASSERT_TRUE(vfs.exists("d/f")) << "entry lost at cut " << cut;
    const std::string got = vfs.read_file("d/f");
    EXPECT_TRUE(got == old_data || got == new_data)
        << "torn state at cut " << cut << ": \"" << got << "\"";
  }

  // And once the publish ran to completion, a cut immediately after must
  // preserve the NEW content — the parent-dir fsync made the rename stick.
  FaultVfs vfs;
  vfs.mkdirs("d");
  put_durable(vfs, "d/f", old_data);
  vfs.arm_power_cut(static_cast<std::int64_t>(vfs.op_count() + publish_ops));
  write_file_atomic(vfs, "d/f", new_data);  // exactly fills the allowance
  vfs.restart();
  EXPECT_EQ(vfs.read_file("d/f"), new_data);
}

// --- Checkpoint on a FaultVfs ----------------------------------------------

tuner::JournalEntry entry_for(std::uint64_t key, double time_ms) {
  tuner::JournalEntry e;
  e.key = key;
  e.status = tuner::EvalStatus::kOk;
  e.time_bits = std::bit_cast<std::uint64_t>(time_ms);
  e.attempts = 1;
  return e;
}

TEST(CheckpointOnFaultVfs, StorageFailuresSurfaceAsCheckpointError) {
  FaultSchedule schedule;
  schedule.write_error_rate = 1.0;
  FaultVfs vfs(schedule);
  tuner::Checkpoint cp("ckpt", &vfs);
  cp.set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
  EXPECT_THROW(cp.append(entry_for(1, 2.0)), tuner::CheckpointError);
}

TEST(CheckpointOnFaultVfs, SyncedEntriesSurviveAPowerCutMidAppend) {
  FaultVfs vfs;
  {
    tuner::Checkpoint cp("ckpt", &vfs);
    cp.set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
    cp.append(entry_for(1, 2.0));
    cp.append(entry_for(2, 3.0));
    // The cut lands somewhere inside the third append; entries 1 and 2 are
    // already on the platter (kEvery fsyncs each one).
    vfs.arm_power_cut(vfs.op_count() + 1);
    EXPECT_THROW(cp.append(entry_for(3, 4.0)), tuner::CheckpointError);
  }
  vfs.restart();
  tuner::Checkpoint resumed("ckpt", &vfs);
  const std::size_t recovered = resumed.load();
  EXPECT_GE(recovered, 2u);
  EXPECT_TRUE(resumed.replay().contains(1));
  EXPECT_TRUE(resumed.replay().contains(2));
  EXPECT_EQ(resumed.replay().at(1).time_ms(), 2.0);
  EXPECT_EQ(resumed.replay().at(2).time_ms(), 3.0);
}

TEST(CheckpointOnFaultVfs, TornJournalTailIsTruncatedNotFatal) {
  FaultVfs vfs;
  {
    tuner::Checkpoint cp("ckpt", &vfs);
    cp.set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
    cp.append(entry_for(1, 2.0));
    cp.append(entry_for(2, 3.0));
  }
  // Simulate the torn tail a crash leaves: half a JSON line, no newline.
  const Vfs::Handle h = vfs.open("ckpt/journal.jsonl", Vfs::OpenMode::kAppend);
  vfs.write_all(h, "{\"key\":3,\"st");
  vfs.fsync(h);
  vfs.close(h);

  tuner::Checkpoint resumed("ckpt", &vfs);
  EXPECT_EQ(resumed.load(), 2u);
  EXPECT_FALSE(resumed.replay().contains(3));
  // And the file was truncated back, so the next append produces a valid
  // journal rather than splicing onto the torn fragment.
  resumed.set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
  resumed.append(entry_for(3, 4.0));
  tuner::Checkpoint again("ckpt", &vfs);
  EXPECT_EQ(again.load(), 3u);
  EXPECT_TRUE(again.replay().contains(3));
}

}  // namespace
}  // namespace cstuner::io
