#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/deque_group.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace cstuner::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Descriptive, CoefficientOfVariationMatchesEq1) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 2.0 / 5.0);
}

TEST(Descriptive, CvOfConstantSampleIsZero) {
  const std::vector<double> xs = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(Descriptive, CvZeroMeanThrows) {
  const std::vector<double> xs = {-1, 1};
  EXPECT_THROW(coefficient_of_variation(xs), Error);
}

TEST(Descriptive, MinMaxMedian) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Descriptive, MedianEvenCountInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, QuantileEndpoints) {
  const std::vector<double> xs = {10, 20, 30};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
}

TEST(Descriptive, EmptySampleThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), Error);
  EXPECT_THROW(min(xs), Error);
}

TEST(Descriptive, SummaryConsistent) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y_pos = {2, 4, 6, 8};
  const std::vector<double> y_neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_neg), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Correlation, IndependentSamplesNearZero) {
  Rng rng(1);
  std::vector<double> x(4000), y(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.06);
}

TEST(Correlation, SpearmanCapturesMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but very non-linear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.9);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.1);    // bin 0
  h.add(0.39);   // bin 1
  h.add(1.0);    // clamps into last bin
  h.add(-0.5);   // clamps into first bin
  h.add(2.0);    // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, LabelsDescribeBins) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_EQ(h.bin_label(0), "[0,0.5)");
  EXPECT_EQ(h.bin_label(1), "[0.5,1]");
}

TEST(DequeGroup, BuildDequeSortsAscending) {
  auto dq = build_deque({{0, 1, 3.0}, {1, 2, 1.0}, {0, 2, 2.0}});
  EXPECT_DOUBLE_EQ(dq.front().score, 1.0);
  EXPECT_DOUBLE_EQ(dq.back().score, 3.0);
}

TEST(DequeGroup, StronglyCorrelatedPairMerges) {
  // (0,1) strongly correlated; (2,3) weak.
  auto dq = build_deque({{0, 1, 0.01}, {2, 3, 10.0}});
  const auto groups = group_parameters(std::move(dq), 4);
  const auto g01 = find_group(groups, 0);
  EXPECT_EQ(g01, find_group(groups, 1));
  // Weak pair: separated singletons.
  EXPECT_NE(find_group(groups, 2), find_group(groups, 3));
}

TEST(DequeGroup, TransitiveMergeThroughSharedParameter) {
  // 0-1 strong, 1-2 strong: all three end in one group.
  auto dq = build_deque({{0, 1, 0.01},
                         {1, 2, 0.02},
                         {0, 2, 0.03},
                         {3, 4, 50.0},
                         {2, 3, 40.0},
                         {0, 4, 45.0}});
  const auto groups = group_parameters(std::move(dq), 5);
  EXPECT_EQ(find_group(groups, 0), find_group(groups, 1));
  EXPECT_EQ(find_group(groups, 1), find_group(groups, 2));
}

TEST(DequeGroup, EveryItemAppearsExactlyOnce) {
  std::vector<ScoredPair> pairs;
  Rng rng(3);
  const std::size_t n = 8;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      pairs.push_back({a, b, rng.uniform()});
    }
  }
  const auto groups = group_parameters(build_deque(pairs), n);
  std::vector<int> seen(n, 0);
  for (const auto& g : groups) {
    for (std::size_t item : g) ++seen[item];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1) << "item " << i;
}

TEST(DequeGroup, ItemsWithoutPairsBecomeSingletons) {
  const auto groups = group_parameters(build_deque({{0, 1, 0.5}}), 4);
  EXPECT_NE(find_group(groups, 2), kNoGroup);
  EXPECT_NE(find_group(groups, 3), kNoGroup);
}

TEST(DequeGroup, MetricCombinationRespectsCap) {
  std::vector<ScoredPair> pairs;
  Rng rng(5);
  const std::size_t n = 10;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      pairs.push_back({a, b, rng.uniform()});
    }
  }
  const auto collections = combine_metrics(build_deque(pairs), n, 3);
  // All metrics present exactly once.
  std::vector<int> seen(n, 0);
  for (const auto& c : collections) {
    for (std::size_t item : c) ++seen[item];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1);
  // With a dense pair set, no leftover singletons are needed: exactly 3.
  EXPECT_EQ(collections.size(), 3u);
}

TEST(DequeGroup, MetricCombinationGroupsStrongestPairFirst) {
  // Pair (4,5) is by far the strongest; it must share a collection.
  std::vector<ScoredPair> pairs;
  const std::size_t n = 6;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      pairs.push_back({a, b, (a == 4 && b == 5) ? 0.99 : 0.1});
    }
  }
  const auto collections = combine_metrics(build_deque(pairs), n, 2);
  EXPECT_EQ(find_group(collections, 4), find_group(collections, 5));
}

TEST(DequeGroup, FindGroupMissingReturnsSentinel) {
  EXPECT_EQ(find_group({{0, 1}}, 7), kNoGroup);
}

}  // namespace
}  // namespace cstuner::stats
