// The optimizer zoo's contract tests (docs/optimizers.md):
//   - every registered optimizer is bit-identical across 0/4/8 workers,
//   - virtual budgets are respected at step boundaries,
//   - the ported searchers reproduce their pre-refactor originals on fixed
//     seeds (the regression pins),
//   - resume is bit-identical: journal replay for the ports, native
//     serialize_state/restore_state for the rest,
//   - the tournament leaderboard JSON is byte-stable and ranks the whole
//     roster, and the MetaTuner always picks a registered optimizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "baselines/opentuner.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/simulator.hpp"
#include "search/meta_tuner.hpp"
#include "search/optimizer.hpp"
#include "search/registry.hpp"
#include "search/tournament.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::search {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "cstuner_zoo_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Everything a run must reproduce bit-for-bit. Doubles are compared as
/// IEEE-754 bit patterns: "deterministic" here means identical arithmetic,
/// not merely close results.
struct Outcome {
  std::uint64_t best_bits = 0;
  std::uint64_t virtual_bits = 0;
  std::size_t evals = 0;
  std::size_t iterations = 0;
  std::string best_setting;

  bool operator==(const Outcome&) const = default;
};

Outcome outcome_of(const tuner::Evaluator& evaluator) {
  Outcome out;
  out.best_bits = std::bit_cast<std::uint64_t>(evaluator.best_time_ms());
  out.virtual_bits = std::bit_cast<std::uint64_t>(evaluator.virtual_time_s());
  out.evals = evaluator.unique_evaluations();
  out.iterations = evaluator.iterations();
  if (evaluator.best_setting().has_value()) {
    out.best_setting = evaluator.best_setting()->to_string();
  }
  return out;
}

class ZooFixture : public ::testing::Test {
 protected:
  ZooFixture()
      : spec_(stencil::make_stencil("j3d7pt")),
        space_(spec_),
        sim_(gpusim::a100()) {}

  /// Drives a registry optimizer to the stop criteria; `workers` sizes the
  /// evaluator's batch pool (0 = inline).
  Outcome run_zoo(const std::string& name, std::uint64_t seed,
                  const tuner::StopCriteria& stop, std::size_t workers = 0) {
    ThreadPool pool(workers);
    tuner::Evaluator evaluator(sim_, space_, {}, seed, &pool);
    const auto optimizer = optimizer_registry().make(name, {.seed = seed});
    run_optimizer(*optimizer, evaluator, stop);
    return outcome_of(evaluator);
  }

  /// Drives a pre-refactor tuner::Tuner (the pin's ground truth).
  Outcome run_original(tuner::Tuner& tuner, std::uint64_t seed,
                       const tuner::StopCriteria& stop) {
    tuner::Evaluator evaluator(sim_, space_, {}, seed);
    tuner.tune(evaluator, stop);
    return outcome_of(evaluator);
  }

  /// Interrupts a run after `interrupt_iterations` journaled iterations,
  /// then resumes a fresh instance against the replayed journal — the
  /// ports' resume contract (docs/fault-tolerance.md).
  Outcome run_journal_resumed(const std::string& name, std::uint64_t seed,
                              const tuner::StopCriteria& stop,
                              std::size_t interrupt_iterations) {
    const std::string dir = fresh_dir(name);
    {
      tuner::Checkpoint checkpoint(dir);
      tuner::Evaluator evaluator(sim_, space_, {}, seed);
      evaluator.set_checkpoint(&checkpoint);
      const auto optimizer = optimizer_registry().make(name, {.seed = seed});
      run_optimizer(*optimizer, evaluator,
                    {.max_iterations = interrupt_iterations});
      checkpoint.flush();
    }
    tuner::Checkpoint checkpoint(dir);
    checkpoint.load();
    tuner::Evaluator evaluator(sim_, space_, {}, seed);
    evaluator.set_checkpoint(&checkpoint);
    const auto optimizer = optimizer_registry().make(name, {.seed = seed});
    run_optimizer(*optimizer, evaluator, stop);
    return outcome_of(evaluator);
  }

  stencil::StencilSpec spec_;
  space::SearchSpace space_;
  gpusim::Simulator sim_;
};

// --- Registry -------------------------------------------------------------

TEST(Registry, RosterCoversPortsAndNatives) {
  const auto names = optimizer_registry().names();
  EXPECT_GE(names.size(), 12u);
  for (const char* expected :
       {"anneal", "artemis", "de", "garvey", "hill", "island-ga",
        "opentuner-de", "opentuner-ga", "pso", "random", "spread",
        "surrogate"}) {
    EXPECT_TRUE(optimizer_registry().contains(expected)) << expected;
  }
}

TEST(Registry, UnknownNameListsEveryAvailableOptimizer) {
  try {
    optimizer_registry().make("nosuch");
    FAIL() << "make() accepted an unknown optimizer";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nosuch"), std::string::npos);
    EXPECT_NE(what.find("available:"), std::string::npos);
    for (const auto& name : optimizer_registry().names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

// --- Worker-count determinism --------------------------------------------

TEST_F(ZooFixture, EveryOptimizerIsBitIdenticalAcrossWorkerCounts) {
  const tuner::StopCriteria stop{.max_virtual_seconds = 3.0};
  for (const auto& name : optimizer_registry().names()) {
    SCOPED_TRACE(name);
    const Outcome inline_run = run_zoo(name, 77, stop, 0);
    EXPECT_EQ(run_zoo(name, 77, stop, 4), inline_run);
    EXPECT_EQ(run_zoo(name, 77, stop, 8), inline_run);
  }
}

// --- Budget ---------------------------------------------------------------

TEST_F(ZooFixture, VirtualBudgetStopsEveryOptimizerAtAStepBoundary) {
  const double budget = 4.0;
  for (const auto& name : optimizer_registry().names()) {
    SCOPED_TRACE(name);
    ThreadPool pool(0);
    tuner::Evaluator evaluator(sim_, space_, {}, 5, &pool);
    const auto optimizer = optimizer_registry().make(name, {.seed = 5});
    const DriveResult r = run_optimizer(*optimizer, evaluator,
                                        {.max_virtual_seconds = budget});
    // The driver stops at the first boundary the optimizer allows at or
    // past the budget — or when the optimizer runs dry.
    EXPECT_TRUE(r.exhausted || evaluator.virtual_time_s() >= budget)
        << evaluator.virtual_time_s();
    EXPECT_GT(evaluator.unique_evaluations(), 0u);
  }
}

TEST_F(ZooFixture, ZeroBudgetMeansZeroEvaluationsForNativeOptimizers) {
  // The natives allow a stop check before their first proposal; a zero
  // budget is already expired, so nothing may be measured.
  for (const char* name :
       {"anneal", "pso", "de", "surrogate", "random", "spread"}) {
    SCOPED_TRACE(name);
    const Outcome run = run_zoo(name, 5, {.max_virtual_seconds = 0.0});
    EXPECT_EQ(run.evals, 0u);
  }
}

// --- Regression pins against the pre-refactor searchers -------------------
//
// The GA ports evaluate each generation as ONE merged batch where the
// originals issued one batch per island concurrently. Results are pure per
// setting and clock charges commute, so best time / virtual time / eval
// counts are bit-identical — but a fitness tie can resolve to a different
// (equally fast) winner, so the pins do not compare the winning setting.
// The serial ports replay the exact original loop and pin the setting too.

TEST_F(ZooFixture, OpenTunerGaPortMatchesOriginal) {
  baselines::OpenTuner original({.seed = 99});
  const Outcome expected = run_original(original, 99,
                                        {.max_virtual_seconds = 8.0});
  const Outcome ported = run_zoo("opentuner-ga", 99,
                                 {.max_virtual_seconds = 8.0});
  EXPECT_EQ(ported.best_bits, expected.best_bits);
  EXPECT_EQ(ported.virtual_bits, expected.virtual_bits);
  EXPECT_EQ(ported.evals, expected.evals);
  EXPECT_EQ(ported.iterations, expected.iterations);
}

TEST_F(ZooFixture, IslandGaPortMatchesFourIslandOriginal) {
  baselines::OpenTunerOptions options;
  options.seed = 99;
  options.ga.sub_populations = 4;  // the zoo's island-ga archipelago
  baselines::OpenTuner original(options);
  const Outcome expected = run_original(original, 99,
                                        {.max_virtual_seconds = 8.0});
  const Outcome ported = run_zoo("island-ga", 99,
                                 {.max_virtual_seconds = 8.0});
  EXPECT_EQ(ported.best_bits, expected.best_bits);
  EXPECT_EQ(ported.virtual_bits, expected.virtual_bits);
  EXPECT_EQ(ported.evals, expected.evals);
  EXPECT_EQ(ported.iterations, expected.iterations);
}

TEST_F(ZooFixture, HillClimberPortMatchesOriginalExactly) {
  baselines::OpenTuner original(
      {.technique = baselines::OpenTunerTechnique::kHillClimber, .seed = 99});
  EXPECT_EQ(run_zoo("hill", 99, {.max_virtual_seconds = 8.0}),
            run_original(original, 99, {.max_virtual_seconds = 8.0}));
}

TEST_F(ZooFixture, DifferentialEvolutionPortMatchesOriginalExactly) {
  baselines::OpenTuner original(
      {.technique = baselines::OpenTunerTechnique::kDifferentialEvolution,
       .seed = 99});
  EXPECT_EQ(run_zoo("opentuner-de", 99, {.max_virtual_seconds = 8.0}),
            run_original(original, 99, {.max_virtual_seconds = 8.0}));
}

TEST_F(ZooFixture, GarveyPortMatchesOriginalExactly) {
  baselines::GarveyOptions options;
  options.seed = 99;
  baselines::Garvey original(options);
  EXPECT_EQ(run_zoo("garvey", 99, {.max_virtual_seconds = 8.0}),
            run_original(original, 99, {.max_virtual_seconds = 8.0}));
}

TEST_F(ZooFixture, ArtemisPortMatchesOriginalExactly) {
  baselines::ArtemisOptions options;
  options.seed = 99;
  baselines::Artemis original(options);
  EXPECT_EQ(run_zoo("artemis", 99, {.max_virtual_seconds = 8.0}),
            run_original(original, 99, {.max_virtual_seconds = 8.0}));
}

// --- Resume: journal replay (ports) ---------------------------------------

class JournalResumeTest : public ZooFixture,
                          public ::testing::WithParamInterface<const char*> {};

TEST_P(JournalResumeTest, ResumesBitIdenticallyFromMidRunJournal) {
  const std::string name = GetParam();
  const tuner::StopCriteria stop{.max_virtual_seconds = 20.0};
  const Outcome uninterrupted = run_zoo(name, 55, stop);
  EXPECT_EQ(run_journal_resumed(name, 55, stop, 2), uninterrupted);
}

INSTANTIATE_TEST_SUITE_P(Ports, JournalResumeTest,
                         ::testing::Values("island-ga", "opentuner-ga",
                                           "opentuner-de", "hill", "garvey",
                                           "artemis"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST_F(ZooFixture, PortsDeclineNativeStateRestore) {
  // The ports resume by journal replay: restore_state must return false so
  // the driver re-runs them from the top against the replayed journal.
  for (const char* name : {"island-ga", "opentuner-ga", "opentuner-de",
                           "hill", "garvey", "artemis"}) {
    SCOPED_TRACE(name);
    const auto optimizer = optimizer_registry().make(name, {.seed = 5});
    JsonWriter state;
    optimizer->serialize_state(state);
    EXPECT_FALSE(optimizer->restore_state(json_parse(state.str())));
  }
}

// --- Resume: native serialize/restore -------------------------------------

class NativeResumeTest : public ZooFixture,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(NativeResumeTest, RestoredInstanceContinuesBitIdentically) {
  const std::string name = GetParam();
  const tuner::StopCriteria stop{.max_virtual_seconds = 20.0};
  const Outcome uninterrupted = run_zoo(name, 55, stop);

  // Interrupt after two steps, snapshot the optimizer, and hand the state
  // to a FRESH instance that finishes the run against the same evaluator
  // (in production the evaluator side is reconstructed by journal replay).
  ThreadPool pool(0);
  tuner::Evaluator evaluator(sim_, space_, {}, 55, &pool);
  const auto first = optimizer_registry().make(name, {.seed = 55});
  run_optimizer(*first, evaluator, {.max_iterations = 2});
  JsonWriter state;
  first->serialize_state(state);

  const auto resumed = optimizer_registry().make(name, {.seed = 55});
  ASSERT_TRUE(resumed->restore_state(json_parse(state.str())));
  EXPECT_EQ(resumed->completed_steps(), first->completed_steps());
  run_optimizer(*resumed, evaluator, stop);
  EXPECT_EQ(outcome_of(evaluator), uninterrupted);
}

INSTANTIATE_TEST_SUITE_P(Natives, NativeResumeTest,
                         ::testing::Values("anneal", "pso", "de", "surrogate",
                                           "random", "spread"));

// --- Driver ---------------------------------------------------------------

/// An optimizer that proposes nothing: the driver must report exhaustion
/// and still call finish().
class EmptyOptimizer : public Optimizer {
 public:
  std::string name() const override { return "empty"; }
  void bind(tuner::Evaluator&) override {}
  std::vector<space::Setting> propose() override { return {}; }
  void observe(const std::vector<space::Setting>&,
               const std::vector<tuner::EvalResult>&) override {}
  void finish(tuner::Evaluator&) override { finished = true; }
  bool finished = false;
};

TEST_F(ZooFixture, DriverReportsExhaustionAndFinishes) {
  tuner::Evaluator evaluator(sim_, space_, {}, 5);
  EmptyOptimizer optimizer;
  const DriveResult r =
      run_optimizer(optimizer, evaluator, {.max_virtual_seconds = 10.0});
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_TRUE(optimizer.finished);
}

// --- Tournament -----------------------------------------------------------

TEST(Tournament, LeaderboardJsonIsByteStable) {
  TournamentOptions options;
  options.stencils = {"j3d7pt"};
  options.optimizers = {"random", "anneal", "pso"};
  options.budget_s = 3.0;
  auto first = run_tournament(options);
  auto second = run_tournament(options);
  // Wall clocks are the only nondeterministic readings; everything gated
  // must serialize to the same bytes.
  first.wall_s = 0.0;
  second.wall_s = 0.0;
  EXPECT_EQ(tournament_json(first), tournament_json(second));
}

TEST(Tournament, RanksEveryRegisteredOptimizer) {
  TournamentOptions options;
  options.stencils = {"j3d7pt"};
  options.budget_s = 2.0;
  const auto result = run_tournament(options);
  const auto names = optimizer_registry().names();
  ASSERT_EQ(result.cells.size(), names.size());
  std::set<std::string> ranked;
  std::set<std::size_t> ranks;
  for (const auto& cell : result.cells) {
    ranked.insert(cell.optimizer);
    ranks.insert(cell.rank);
    EXPECT_TRUE(std::isfinite(cell.best_ms)) << cell.optimizer;
  }
  EXPECT_EQ(ranked.size(), names.size());
  // Ranks are a permutation of 1..N within the single stencil.
  EXPECT_EQ(*ranks.begin(), 1u);
  EXPECT_EQ(*ranks.rbegin(), names.size());
}

TEST(Tournament, UnknownOptimizerIsRejectedUpFront) {
  TournamentOptions options;
  options.stencils = {"j3d7pt"};
  options.optimizers = {"nosuch"};
  EXPECT_THROW(run_tournament(options), UsageError);
}

// --- MetaTuner ------------------------------------------------------------

TEST(MetaTuner, AlwaysPicksARegisteredOptimizerDeterministically) {
  const MetaTuner first;
  const MetaTuner second;
  for (const auto& name : stencil::stencil_names()) {
    SCOPED_TRACE(name);
    const auto spec = stencil::make_stencil(name);
    const std::string pick = first.pick(spec);
    EXPECT_TRUE(optimizer_registry().contains(pick)) << pick;
    EXPECT_EQ(second.pick(spec), pick);
  }
}

TEST(MetaTuner, FeaturesSeparateStencilClasses) {
  const auto star = MetaTuner::features_of(stencil::make_stencil("j3d7pt"));
  const auto box = MetaTuner::features_of(stencil::make_stencil("j3d27pt"));
  ASSERT_EQ(star.size(), box.size());
  EXPECT_NE(star, box);
}

}  // namespace
}  // namespace cstuner::search
