#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

namespace cstuner::ml {
namespace {

/// Builds a row-major table from a vector of rows.
struct Table {
  std::vector<double> flat;
  std::size_t n = 0, d = 0;
  TableView view() const { return {flat, n, d}; }
};

Table make_table(const std::vector<std::vector<double>>& rows) {
  Table t;
  t.n = rows.size();
  t.d = rows[0].size();
  for (const auto& r : rows) t.flat.insert(t.flat.end(), r.begin(), r.end());
  return t;
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  // Label = 1 iff x0 > 0.5.
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<double> labels;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    rows.push_back({x0, x1});
    labels.push_back(x0 > 0.5 ? 1.0 : 0.0);
  }
  const auto table = make_table(rows);
  DecisionTree tree(TreeTask::kClassification, {});
  tree.fit(table.view(), labels, rng);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform();
    const double pred = tree.predict(std::vector<double>{x0, rng.uniform()});
    correct += (pred == (x0 > 0.5 ? 1.0 : 0.0));
  }
  EXPECT_GE(correct, 190);
}

TEST(DecisionTree, RegressionFitsStepFunction) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 4);
    rows.push_back({x});
    targets.push_back(x < 2.0 ? 10.0 : -5.0);
  }
  const auto table = make_table(rows);
  DecisionTree tree(TreeTask::kRegression, {});
  tree.fit(table.view(), targets, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{3.5}), -5.0, 1e-9);
}

TEST(DecisionTree, PureLeafStopsSplitting) {
  Rng rng(3);
  const auto table = make_table({{1.0}, {2.0}, {3.0}, {4.0}});
  const std::vector<double> targets = {7.0, 7.0, 7.0, 7.0};
  DecisionTree tree(TreeTask::kRegression, {});
  tree.fit(table.view(), targets, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{2.5}), 7.0);
}

TEST(DecisionTree, MaxDepthRespected) {
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 256; ++i) {
    rows.push_back({static_cast<double>(i)});
    targets.push_back(static_cast<double>(i % 7));
  }
  const auto table = make_table(rows);
  TreeConfig config;
  config.max_depth = 3;
  DecisionTree tree(TreeTask::kRegression, config);
  tree.fit(table.view(), targets, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({static_cast<double>(i)});
    targets.push_back(i < 20 ? 0.0 : 1.0);
  }
  const auto table = make_table(rows);
  TreeConfig config;
  config.min_samples_leaf = 10;
  DecisionTree tree(TreeTask::kClassification, config);
  tree.fit(table.view(), targets, rng);
  // Perfect split is still allowed (20/20), so it should classify well.
  EXPECT_EQ(tree.predict(std::vector<double>{5.0}), 0.0);
  EXPECT_EQ(tree.predict(std::vector<double>{35.0}), 1.0);
}

TEST(RandomForest, ClassifiesXorWhereStumpsFail) {
  // XOR of two binary features: needs depth >= 2 interactions.
  Rng rng(6);
  std::vector<std::vector<double>> rows;
  std::vector<double> labels;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : 0.0;
    rows.push_back({a, b});
    labels.push_back((a != b) ? 1.0 : 0.0);
  }
  const auto table = make_table(rows);
  ForestConfig config;
  config.n_trees = 16;
  RandomForest forest(TreeTask::kClassification, config);
  forest.fit(table.view(), labels, rng);
  EXPECT_EQ(forest.predict(std::vector<double>{0.0, 1.0}), 1.0);
  EXPECT_EQ(forest.predict(std::vector<double>{1.0, 1.0}), 0.0);
}

TEST(RandomForest, RegressionAveragesTrees) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    rows.push_back({x});
    targets.push_back(2.0 * x + rng.normal(0.0, 0.5));
  }
  const auto table = make_table(rows);
  RandomForest forest(TreeTask::kRegression, {});
  forest.fit(table.view(), targets, rng);
  EXPECT_NEAR(forest.predict(std::vector<double>{5.0}), 10.0, 1.0);
}

TEST(RandomForest, VoteFractionsSumToOne) {
  Rng rng(8);
  const auto table = make_table({{0.0}, {1.0}, {2.0}, {3.0}});
  const std::vector<double> labels = {0.0, 0.0, 1.0, 1.0};
  ForestConfig config;
  config.n_trees = 9;
  RandomForest forest(TreeTask::kClassification, config);
  forest.fit(table.view(), labels, rng);
  const auto votes = forest.vote_fractions(std::vector<double>{0.5});
  double total = 0.0;
  for (const auto& [label, fraction] : votes) {
    (void)label;
    total += fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RandomForest, TreeCountMatchesConfig) {
  Rng rng(9);
  const auto table = make_table({{0.0}, {1.0}});
  const std::vector<double> labels = {0.0, 1.0};
  ForestConfig config;
  config.n_trees = 5;
  RandomForest forest(TreeTask::kRegression, config);
  forest.fit(table.view(), labels, rng);
  EXPECT_EQ(forest.tree_count(), 5u);
}

TEST(RandomForest, InvalidConfigRejected) {
  ForestConfig config;
  config.n_trees = 0;
  EXPECT_THROW(RandomForest(TreeTask::kRegression, config), Error);
}

}  // namespace
}  // namespace cstuner::ml
