#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "stencil/stencils.hpp"
#include "core/approx.hpp"
#include "core/cs_tuner.hpp"
#include "core/grouping.hpp"
#include "core/metric_combine.hpp"
#include "core/reindex.hpp"
#include "core/sampling.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::core {
namespace {

using namespace space;

/// Shared fixture: one space + simulator + modest dataset/universe.
class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture()
      : spec_(stencil::make_stencil("helmholtz")),
        space_(spec_),
        sim_(gpusim::a100()) {
    Rng rng(101);
    universe_ = space_.sample_universe(rng, 2000);
    dataset_ = tuner::collect_dataset(space_, sim_, 128, rng);
  }

  stencil::StencilSpec spec_;
  SearchSpace space_;
  gpusim::Simulator sim_;
  std::vector<Setting> universe_;
  tuner::PerfDataset dataset_;
};

TEST_F(CoreFixture, PairCvsCoverAllUnorderedPairs) {
  const auto pairs = compute_pair_cvs(space_, dataset_);
  EXPECT_EQ(pairs.size(), kParamCount * (kParamCount - 1) / 2);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& p : pairs) {
    EXPECT_LT(p.a, p.b);
    EXPECT_GE(p.score, 0.0);
    seen.insert({p.a, p.b});
  }
  EXPECT_EQ(seen.size(), pairs.size());
}

TEST_F(CoreFixture, GroupingPartitionsAllParameters) {
  const auto groups = group_parameters(space_, dataset_);
  std::vector<int> seen(kParamCount, 0);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.empty());
    for (std::size_t p : g) ++seen[p];
  }
  for (std::size_t p = 0; p < kParamCount; ++p) {
    EXPECT_EQ(seen[p], 1) << param_name(static_cast<ParamId>(p));
  }
  // Grouping must actually reduce dimensionality below the parameter count.
  EXPECT_LT(groups.size(), kParamCount);
  EXPECT_GE(groups.size(), 2u);
}

TEST_F(CoreFixture, MetricPccsAreBounded) {
  const auto pccs = compute_metric_pccs(dataset_);
  EXPECT_EQ(pccs.size(),
            gpusim::kMetricCount * (gpusim::kMetricCount - 1) / 2);
  for (const auto& p : pccs) {
    EXPECT_GE(p.score, 0.0);
    EXPECT_LE(p.score, 1.0 + 1e-12);
  }
}

TEST_F(CoreFixture, MetricCombinationSelectsRepresentatives) {
  const auto selection = combine_metrics(dataset_, 4);
  EXPECT_EQ(selection.selected.size(), selection.collections.size());
  // Every metric belongs to exactly one collection.
  std::vector<int> seen(gpusim::kMetricCount, 0);
  for (const auto& c : selection.collections) {
    for (std::size_t m : c) ++seen[m];
  }
  for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
    EXPECT_EQ(seen[m], 1);
  }
  // Each representative is a member of its collection.
  for (std::size_t i = 0; i < selection.selected.size(); ++i) {
    const auto& coll = selection.collections[i];
    EXPECT_NE(std::find(coll.begin(), coll.end(), selection.selected[i]),
              coll.end());
  }
}

TEST_F(CoreFixture, SamplingKeepsRequestedFraction) {
  const auto groups = group_parameters(space_, dataset_);
  SamplingConfig config;
  config.ratio = 0.10;
  const auto sampled =
      sample_search_space(space_, dataset_, groups, universe_, config);
  EXPECT_EQ(sampled.settings.size(), universe_.size() / 10);
  EXPECT_FALSE(sampled.models.empty());
}

TEST_F(CoreFixture, SampledSettingsAreBetterThanAverage) {
  // The PMNF filter should enrich the kept fraction with fast settings:
  // mean time of the sample must beat the universe mean clearly.
  const auto groups = group_parameters(space_, dataset_);
  SamplingConfig config;
  config.ratio = 0.10;
  const auto sampled =
      sample_search_space(space_, dataset_, groups, universe_, config);
  auto times_of = [&](const std::vector<Setting>& settings) {
    std::vector<double> times;
    for (std::size_t i = 0; i < settings.size(); ++i) {
      times.push_back(sim_.measure_ms(spec_, settings[i], i));
    }
    return times;
  };
  const auto sampled_times = times_of(sampled.settings);
  const auto universe_times = times_of(universe_);
  // The filter must enrich the kept fraction: better mean, and the kept
  // set still reaches into the universe's fastest decile.
  EXPECT_LT(stats::mean(sampled_times), 0.95 * stats::mean(universe_times));
  EXPECT_LE(stats::min(sampled_times),
            stats::quantile(universe_times, 0.10));
}

TEST_F(CoreFixture, PredictedBadnessOrdersByModelDirection) {
  const auto groups = group_parameters(space_, dataset_);
  const auto selection = combine_metrics(dataset_, 4);
  const auto models = fit_metric_models(dataset_, selection, groups);
  // Badness must be finite for any valid setting.
  for (int i = 0; i < 20; ++i) {
    const double b =
        predicted_badness(models, dataset_, universe_[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::isfinite(b));
  }
}

TEST_F(CoreFixture, ReindexBuildsDenseSortedTuples) {
  const auto groups = group_parameters(space_, dataset_);
  const auto indices = build_group_indices(groups, universe_);
  ASSERT_EQ(indices.size(), groups.size());
  for (const auto& gi : indices) {
    EXPECT_GE(gi.cardinality(), 1u);
    for (std::size_t t = 1; t < gi.tuples.size(); ++t) {
      EXPECT_LT(gi.tuples[t - 1], gi.tuples[t]);  // strictly ascending
    }
    // apply/index_of round-trip.
    Setting s = universe_.front();
    for (std::size_t t = 0; t < std::min<std::size_t>(gi.cardinality(), 5);
         ++t) {
      gi.apply(t, s);
      EXPECT_EQ(gi.index_of(s), t);
    }
  }
}

TEST(Reindex, Fig7Example) {
  // Group (P0, P1) with sampled tuples {(1,2),(4,2),(2,4)} -> ascending
  // lexicographic re-index.
  GroupIndex gi;
  gi.params = {kTBx, kTBy};
  std::vector<Setting> sampled(3);
  sampled[0].set(kTBx, 1);
  sampled[0].set(kTBy, 2);
  sampled[1].set(kTBx, 4);
  sampled[1].set(kTBy, 2);
  sampled[2].set(kTBx, 2);
  sampled[2].set(kTBy, 4);
  const auto indices = build_group_indices({{kTBx, kTBy}}, sampled);
  ASSERT_EQ(indices.size(), 1u);
  ASSERT_EQ(indices[0].cardinality(), 3u);
  EXPECT_EQ(indices[0].tuples[0], (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(indices[0].tuples[1], (std::vector<std::int64_t>{2, 4}));
  EXPECT_EQ(indices[0].tuples[2], (std::vector<std::int64_t>{4, 2}));
}

TEST(Approx, TightTopNStops) {
  // Top-n almost identical -> CV below threshold -> stop.
  const std::vector<double> fitnesses = {100.0, 99.9, 99.8, 99.7, 99.6,
                                         99.5, 99.4, 99.3, 50.0, 10.0};
  ApproxConfig config;
  config.top_n = 8;
  config.cv_threshold = 0.02;
  EXPECT_TRUE(approximation_reached(fitnesses, config));
}

TEST(Approx, SpreadTopNContinues) {
  const std::vector<double> fitnesses = {100.0, 80.0, 60.0, 40.0,
                                         20.0,  10.0, 5.0,  1.0};
  ApproxConfig config;
  config.top_n = 8;
  config.cv_threshold = 0.02;
  EXPECT_FALSE(approximation_reached(fitnesses, config));
}

TEST(Approx, IgnoresNonPositiveAndNeedsTwo) {
  ApproxConfig config;
  EXPECT_FALSE(approximation_reached({5.0}, config));
  EXPECT_FALSE(approximation_reached({-1.0, 0.0}, config));
  EXPECT_TRUE(approximation_reached({5.0, 5.0, -3.0}, config));
}

TEST_F(CoreFixture, CsTunerFindsGoodSettingQuickly) {
  core::CsTunerOptions options;
  options.seed = 5;
  CsTuner tuner(options);
  tuner.set_dataset(dataset_);
  tuner.set_universe(universe_);
  tuner::Evaluator evaluator(sim_, space_, {}, 5);
  tuner::StopCriteria stop;
  stop.max_virtual_seconds = 30.0;
  tuner.tune(evaluator, stop);

  ASSERT_TRUE(evaluator.best_setting().has_value());
  // Must at least match the dataset optimum (its base point).
  EXPECT_LE(evaluator.best_time_ms(),
            dataset_.times_ms[dataset_.best_index()] * 1.05);
  // And clearly beat the universe median.
  std::vector<double> times;
  for (std::size_t i = 0; i < universe_.size(); ++i) {
    times.push_back(sim_.measure_ms(spec_, universe_[i], i));
  }
  std::sort(times.begin(), times.end());
  EXPECT_LT(evaluator.best_time_ms(), times[times.size() / 2] * 0.5);

  const auto& report = tuner.report();
  EXPECT_EQ(report.universe_count, universe_.size());
  EXPECT_EQ(report.sampled_count, universe_.size() / 10);
  EXPECT_GT(report.grouping_s, 0.0);
  EXPECT_FALSE(report.groups.empty());
}

TEST_F(CoreFixture, CsTunerRespectsIterationBudget) {
  CsTuner tuner;
  tuner.set_dataset(dataset_);
  tuner.set_universe(universe_);
  tuner::Evaluator evaluator(sim_, space_, {}, 6);
  tuner::StopCriteria stop;
  stop.max_iterations = 3;
  tuner.tune(evaluator, stop);
  EXPECT_GE(evaluator.iterations(), 3u);
  EXPECT_LE(evaluator.iterations(), 5u);  // finishes the group in flight
}

TEST_F(CoreFixture, CsTunerCodegenOnlyWhenRequested) {
  core::CsTunerOptions options;
  options.generate_kernels = false;
  CsTuner off(options);
  off.set_dataset(dataset_);
  off.set_universe(universe_);
  tuner::Evaluator e1(sim_, space_, {}, 7);
  off.tune(e1, {.max_iterations = 1});
  EXPECT_EQ(off.report().generated_kernel_bytes, 0u);

  options.generate_kernels = true;
  CsTuner on(options);
  on.set_dataset(dataset_);
  on.set_universe(universe_);
  tuner::Evaluator e2(sim_, space_, {}, 7);
  on.tune(e2, {.max_iterations = 1});
  EXPECT_GT(on.report().generated_kernel_bytes, 0u);
  EXPECT_GT(on.report().codegen_s, 0.0);
}

}  // namespace
}  // namespace cstuner::core
