// Observability layer: metrics registry, span tracer (nesting,
// thread-safety, ring wraparound, Chrome-trace export), virtual-clock span
// determinism across worker counts, and the report comparator behind the CI
// bench gate.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/cs_tuner.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  obs::Histogram h;
  // Bucket b holds samples of bit width b: 0 -> 0, 1 -> 1, {2,3} -> 2, ...
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(7);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 13u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.used_buckets(), 4u);
}

TEST(Metrics, RegistryReferencesAreStableAndShared) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("test.same");
  // Force rebalancing pressure: many more instruments after the first.
  for (int i = 0; i < 100; ++i) {
    registry.counter("test.filler." + std::to_string(i));
  }
  obs::Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("test.same").value(), 3u);
}

TEST(Metrics, CountersSurviveConcurrentIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.concurrent");
  ThreadPool pool(4);
  pool.parallel_for(10000, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), 10000u);
}

TEST(Metrics, JsonExportRoundTripsAndIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("g.level").set(2.5);
  registry.histogram("h.sizes").observe(4);

  JsonWriter json;
  registry.write_json(json);
  const JsonValue v = json_parse(json.str());
  EXPECT_EQ(v.at("counters").at("a.first").as_u64(), 1u);
  EXPECT_EQ(v.at("counters").at("b.second").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("g.level").as_double(), 2.5);
  EXPECT_EQ(v.at("histograms").at("h.sizes").at("count").as_u64(), 1u);
  EXPECT_EQ(v.at("histograms").at("h.sizes").at("max").as_u64(), 4u);
  // Name-sorted export: "a.first" serializes before "b.second".
  EXPECT_LT(json.str().find("a.first"), json.str().find("b.second"));

  registry.reset();
  JsonWriter after;
  registry.write_json(after);
  const JsonValue r = json_parse(after.str());
  // Reset zeroes values but keeps the registered names visible.
  EXPECT_EQ(r.at("counters").at("b.second").as_u64(), 0u);
}

// ---------------------------------------------------------------------------
// Span tracer.
// ---------------------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().clear();
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
  obs::Tracer& tracer() { return obs::Tracer::global(); }
};

TEST_F(TracerTest, RecordsNestedSpansWithDepth) {
  {
    obs::Span outer("test", "outer");
    {
      obs::Span inner("test", "inner");
    }
  }
  const auto spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans close inner-first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[0].thread, spans[1].thread);
  EXPECT_GE(spans[1].wall_dur_ns, spans[0].wall_dur_ns);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  tracer().set_enabled(false);
  {
    obs::Span span("test", "ignored");
  }
  EXPECT_EQ(tracer().recorded(), 0u);
}

TEST_F(TracerTest, AggregatesStayExactAfterRingWraparound) {
  tracer().set_capacity(8);
  tracer().set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    obs::Span span("test", "wrapped");
  }
  EXPECT_EQ(tracer().snapshot().size(), 8u);
  EXPECT_EQ(tracer().recorded(), 100u);
  EXPECT_EQ(tracer().dropped(), 92u);
  const auto aggregates = tracer().aggregates();
  ASSERT_TRUE(aggregates.count("wrapped"));
  EXPECT_EQ(aggregates.at("wrapped").count, 100u);
  tracer().set_capacity(65536);
}

TEST_F(TracerTest, ThreadSafeUnderThreadPool) {
  constexpr std::size_t kSpans = 2000;
  ThreadPool pool(4);
  pool.parallel_for(kSpans, [](std::size_t) {
    obs::Span outer("test", "pooled");
    obs::Span inner("test", "pooled.inner");
  });
  EXPECT_EQ(tracer().recorded(), 2 * kSpans);
  const auto aggregates = tracer().aggregates();
  EXPECT_EQ(aggregates.at("pooled").count, kSpans);
  EXPECT_EQ(aggregates.at("pooled.inner").count, kSpans);
  // Dense thread indices: every span came from the caller or a pool worker.
  std::map<std::uint32_t, std::size_t> by_thread;
  for (const auto& span : tracer().snapshot()) ++by_thread[span.thread];
  EXPECT_LE(by_thread.size(), 5u);
}

TEST_F(TracerTest, ChromeTraceJsonRoundTrips) {
  {
    obs::Span outer("phase", "round.trip");
    obs::Span inner("eval", "round.trip.inner");
  }
  JsonWriter json;
  tracer().write_chrome_json(json);
  const JsonValue v = json_parse(json.str());
  const auto& events = v.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_TRUE(e.find("args") != nullptr);
  }
  EXPECT_EQ(events[0].at("name").as_string(), "round.trip.inner");
  EXPECT_EQ(events[0].at("cat").as_string(), "eval");
  EXPECT_EQ(events[0].at("args").at("depth").as_u64(), 1u);
  EXPECT_EQ(v.at("otherData").at("recorded").as_u64(), 2u);
  EXPECT_EQ(v.at("otherData").at("dropped").as_u64(), 0u);
}

TEST_F(TracerTest, SummaryTableListsEverySpanName) {
  {
    obs::Span a("test", "summary.alpha");
    obs::Span b("test", "summary.beta");
  }
  std::ostringstream os;
  tracer().write_summary(os);
  EXPECT_NE(os.str().find("summary.alpha"), std::string::npos);
  EXPECT_NE(os.str().find("summary.beta"), std::string::npos);
}

TEST_F(TracerTest, VirtualClockSampledOnlyByTrackingSpans) {
  std::atomic<std::int64_t> clock{0};
  tracer().set_virtual_clock(&clock);
  {
    obs::Span phase("phase", "virt.tracking", /*track_virtual=*/true);
    obs::Span hot("eval", "virt.hot", /*track_virtual=*/false);
    clock.store(500);
  }
  tracer().set_virtual_clock(nullptr);
  const auto aggregates = tracer().aggregates();
  EXPECT_EQ(aggregates.at("virt.tracking").virt_ticks, 500);
  EXPECT_EQ(aggregates.at("virt.hot").virt_ticks, 0);
}

// ---------------------------------------------------------------------------
// Virtual-clock span determinism across worker counts: the acceptance
// criterion of the observability issue. Phase spans sample the evaluator's
// virtual clock only at quiescent points, so their per-name totals must be
// bit-identical no matter how many pool workers measured the batches.
// ---------------------------------------------------------------------------

TEST(TracerDeterminism, VirtualSpanTotalsIdenticalAcross048Workers) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "instrumentation compiled out (CSTUNER_OBS=OFF)";
  }
  const auto spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());

  auto run = [&](std::size_t workers) {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
    ThreadPool pool(workers);
    tuner::Evaluator evaluator(sim, space, {}, 42, &pool);
    core::CsTunerOptions options;
    options.universe_size = 1200;
    options.dataset_size = 64;
    options.seed = 42;
    core::CsTuner tuner(options);
    tuner.tune(evaluator, {.max_virtual_seconds = 10.0});
    obs::Tracer::global().set_enabled(false);

    std::map<std::string, std::int64_t> totals;
    for (const auto& [name, agg] : obs::Tracer::global().aggregates()) {
      if (agg.virt_ticks != 0) totals[name] = agg.virt_ticks;
    }
    obs::Tracer::global().clear();
    return totals;
  };

  const auto serial = run(0);
  const auto four = run(4);
  const auto eight = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, eight);
}

// ---------------------------------------------------------------------------
// Report comparator (the CI bench gate).
// ---------------------------------------------------------------------------

TEST(Report, ParseTolerance) {
  EXPECT_DOUBLE_EQ(obs::parse_tolerance("10%"), 0.10);
  EXPECT_DOUBLE_EQ(obs::parse_tolerance("0.1"), 0.1);
  EXPECT_DOUBLE_EQ(obs::parse_tolerance("2 %"), 0.02);
  EXPECT_THROW(obs::parse_tolerance("snails"), UsageError);
  EXPECT_THROW(obs::parse_tolerance("-5%"), UsageError);
}

TEST(Report, WithinToleranceIsOk) {
  const JsonValue base = json_parse(R"({"a": {"best_ms": 1.0}, "n": 100})");
  const JsonValue cur = json_parse(R"({"a": {"best_ms": 1.05}, "n": 100})");
  const auto report = obs::compare_reports(base, cur, {.tolerance = 0.10});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.entries.size(), 2u);
  for (const auto& e : report.entries) EXPECT_TRUE(e.within);
}

TEST(Report, OutOfToleranceIsViolation) {
  const JsonValue base = json_parse(R"({"best_ms": 1.0})");
  const JsonValue cur = json_parse(R"({"best_ms": 1.5})");
  const auto tight = obs::compare_reports(base, cur, {.tolerance = 0.10});
  EXPECT_FALSE(tight.ok());
  EXPECT_EQ(tight.violations(), 1u);
  // The same delta passes a loose gate: |1.5-1.0|/1.5 = 1/3 < 0.40.
  const auto loose = obs::compare_reports(base, cur, {.tolerance = 0.40});
  EXPECT_TRUE(loose.ok());
}

TEST(Report, MissingPathFailsUnlessAllowed) {
  const JsonValue base = json_parse(R"({"kept": 1.0, "gone": 2.0})");
  const JsonValue cur = json_parse(R"({"kept": 1.0, "fresh": 3.0})");
  const auto strict = obs::compare_reports(base, cur);
  EXPECT_FALSE(strict.ok());
  ASSERT_EQ(strict.missing.size(), 1u);
  EXPECT_EQ(strict.missing[0], "gone");
  // Added paths are informational in both modes.
  ASSERT_EQ(strict.added.size(), 1u);
  EXPECT_EQ(strict.added[0], "fresh");
  const auto lax =
      obs::compare_reports(base, cur, {.fail_on_missing = false});
  EXPECT_TRUE(lax.ok());
}

TEST(Report, IgnoredPathsAndLabelDriftDoNotGate) {
  const JsonValue base = json_parse(
      R"({"wall_s": 10.0, "best": 1.0, "label": "a", "flag": true})");
  const JsonValue cur = json_parse(
      R"({"wall_s": 99.0, "best": 1.0, "label": "b", "flag": false})");
  const auto report = obs::compare_reports(base, cur);
  EXPECT_TRUE(report.ok());
  // wall_s was skipped entirely, not compared-and-passed.
  for (const auto& e : report.entries) EXPECT_NE(e.path, "wall_s");
  EXPECT_EQ(report.drifted_labels.size(), 2u);
}

TEST(Report, ArraysFlattenToIndexedPaths) {
  const JsonValue base = json_parse(R"({"r": [{"ms": 1.0}, {"ms": 2.0}]})");
  const JsonValue cur = json_parse(R"({"r": [{"ms": 1.0}, {"ms": 9.0}]})");
  const auto report = obs::compare_reports(base, cur);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violations(), 1u);
  bool found = false;
  for (const auto& e : report.entries) {
    if (e.path == "r[1].ms") found = !e.within;
  }
  EXPECT_TRUE(found);
}

TEST(Report, QuietCountersCompareEqualUnderAbsFloor) {
  const JsonValue base = json_parse(R"({"retries": 0})");
  const JsonValue cur = json_parse(R"({"retries": 0})");
  const auto report = obs::compare_reports(base, cur);
  EXPECT_TRUE(report.ok());
}

TEST(Report, JsonOutputRoundTrips) {
  const JsonValue base = json_parse(R"({"a": 1.0, "b": 5.0})");
  const JsonValue cur = json_parse(R"({"a": 1.0, "b": 9.0})");
  const auto report = obs::compare_reports(base, cur);
  JsonWriter json;
  report.write_json(json);
  const JsonValue v = json_parse(json.str());
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("violations").as_u64(), 1u);
  EXPECT_EQ(v.at("regressions").as_array().size(), 1u);
}

}  // namespace
}  // namespace cstuner
