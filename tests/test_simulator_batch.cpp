#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/fault_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/model_kernels.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "space/setting.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Valid settings of a sampled universe (the batch oracle's input domain).
std::vector<space::Setting> valid_universe(const space::SearchSpace& space,
                                           std::size_t n,
                                           std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<space::Setting> out;
  for (const auto& s : space.sample_universe(rng, n)) {
    if (space.is_valid(s)) out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Simulator batch oracle: bit-identity against the scalar entry points.
// ---------------------------------------------------------------------------

class SimulatorBatchIdentity
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(SimulatorBatchIdentity, ProfileBatchBitIdenticalToScalarProfile) {
  const auto& [stencil_name, arch_name] = GetParam();
  const stencil::StencilSpec spec = stencil::make_stencil(stencil_name);
  space::SearchSpace space(spec);
  const auto universe = valid_universe(space, 400);
  ASSERT_FALSE(universe.empty());
  gpusim::Simulator sim(gpusim::arch_by_name(arch_name));

  std::vector<gpusim::KernelProfile> batch(universe.size());
  sim.profile_batch(spec, universe, batch);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const gpusim::KernelProfile scalar = sim.profile(spec, universe[i]);
    ASSERT_EQ(bits(scalar.time_ms), bits(batch[i].time_ms)) << i;
    for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
      ASSERT_EQ(bits(scalar.metrics[m]), bits(batch[i].metrics[m]))
          << "metric " << m << " of setting " << i;
    }
    ASSERT_EQ(scalar.occupancy.blocks_per_sm, batch[i].occupancy.blocks_per_sm);
    ASSERT_EQ(bits(scalar.occupancy.occupancy), bits(batch[i].occupancy.occupancy));
  }
}

TEST_P(SimulatorBatchIdentity, ProfileTimesBothOverloadsMatchScalarProfile) {
  const auto& [stencil_name, arch_name] = GetParam();
  const stencil::StencilSpec spec = stencil::make_stencil(stencil_name);
  space::SearchSpace space(spec);
  Rng rng(42);
  std::vector<space::Setting> universe;
  std::vector<space::ResourceUsage> usages;
  for (const auto& s : space.sample_universe(rng, 400)) {
    if (space::ResourceUsage u; space.is_valid(s, &u)) {
      universe.push_back(s);
      usages.push_back(u);
    }
  }
  ASSERT_FALSE(universe.empty());
  gpusim::Simulator sim(gpusim::arch_by_name(arch_name));
  const auto& inv = sim.invariants(spec);

  std::vector<double> times(universe.size());
  std::vector<double> times_with_usages(universe.size());
  sim.profile_times(inv, universe, times);
  sim.profile_times(inv, universe, usages, times_with_usages);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const double scalar_ms = sim.profile(spec, universe[i]).time_ms;
    ASSERT_EQ(bits(scalar_ms), bits(times[i])) << i;
    ASSERT_EQ(bits(scalar_ms), bits(times_with_usages[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StencilsAndArchs, SimulatorBatchIdentity,
    ::testing::Combine(::testing::Values("j3d7pt", "helmholtz"),
                       ::testing::Values("a100", "v100")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(SimulatorBatch, NoisyTimeEntryPointsAgreeWithMeasureMs) {
  const stencil::StencilSpec spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  const auto universe = valid_universe(space, 64);
  gpusim::Simulator sim(gpusim::a100());
  const auto& inv = sim.invariants(spec);
  for (const auto& setting : universe) {
    const double noise_free = sim.profile(spec, setting).time_ms;
    const std::uint64_t premixed =
        hash_combine(inv.noise_seed_prefix, setting.hash());
    for (std::uint64_t run = 0; run < 4; ++run) {
      const double scalar = sim.measure_ms(spec, setting, run);
      ASSERT_EQ(bits(scalar),
                bits(sim.noisy_time_ms(inv, setting.hash(), noise_free, run)));
      ASSERT_EQ(bits(scalar),
                bits(gpusim::Simulator::noisy_time_from(premixed, noise_free,
                                                        run)));
    }
  }
}

TEST(SimulatorBatch, MemoOccupancyMatchesComputeOccupancy) {
  // Interleave two archs over one universe so memo entries are repeatedly
  // evicted and re-filled; every call must still equal the direct model.
  const stencil::StencilSpec spec = stencil::make_stencil("helmholtz");
  space::SearchSpace space(spec);
  Rng rng(7);
  std::vector<space::Setting> universe;
  std::vector<space::ResourceUsage> usages;
  for (const auto& s : space.sample_universe(rng, 500)) {
    if (space::ResourceUsage u; space.is_valid(s, &u)) {
      universe.push_back(s);
      usages.push_back(u);
    }
  }
  ASSERT_FALSE(universe.empty());
  for (const auto* arch : {&gpusim::a100(), &gpusim::v100()}) {
    for (std::size_t i = 0; i < universe.size(); ++i) {
      const auto geom = codegen::compute_launch_geometry(spec, universe[i]);
      const auto direct = gpusim::compute_occupancy(
          *arch, geom.threads_per_block(), usages[i].registers_per_thread,
          usages[i].shared_mem_per_block);
      const auto memo = gpusim::detail::memo_occupancy(
          *arch, geom.threads_per_block(), usages[i].registers_per_thread,
          usages[i].shared_mem_per_block);
      ASSERT_EQ(direct.blocks_per_sm, memo.blocks_per_sm) << i;
      ASSERT_EQ(bits(direct.occupancy), bits(memo.occupancy)) << i;
      ASSERT_EQ(direct.limiter, memo.limiter) << i;
    }
  }
}

TEST(SimulatorBatch, RngNormalLazySecondDrawMatchesBoxMuller) {
  // Regression for the lazy-sin change: consecutive normal() draws must
  // still be the cos/sin halves of one Box-Muller transform.
  for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    Rng reference(seed);
    double u1 = reference.uniform();
    while (u1 <= 1e-300) u1 = reference.uniform();
    const double u2 = reference.uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;

    Rng rng(seed);
    EXPECT_EQ(bits(r * std::cos(theta)), bits(rng.normal()));
    EXPECT_EQ(bits(r * std::sin(theta)), bits(rng.normal()));
    // Third draw starts a fresh transform from the advanced stream.
    double v1 = reference.uniform();
    while (v1 <= 1e-300) v1 = reference.uniform();
    const double v2 = reference.uniform();
    EXPECT_EQ(bits(std::sqrt(-2.0 * std::log(v1)) *
                   std::cos(2.0 * M_PI * v2)),
              bits(rng.normal()));
  }
}

TEST(SimulatorBatch, SettingHashCacheInvalidatesOnMutation) {
  space::Setting s;
  s.set(space::kTBx, 32);
  const std::uint64_t h1 = s.hash();
  EXPECT_EQ(h1, s.hash());  // memoized, stable
  s.set(space::kTBy, 4);
  const std::uint64_t h2 = s.hash();
  EXPECT_NE(h1, h2);
  space::Setting fresh;
  fresh.set(space::kTBx, 32);
  fresh.set(space::kTBy, 4);
  EXPECT_EQ(h2, fresh.hash());
  s[space::kTBy] = 8;  // mutable-reference path must also invalidate
  EXPECT_NE(h2, s.hash());
}

// ---------------------------------------------------------------------------
// Evaluator batch pipeline: worker-count independence and cache semantics.
// ---------------------------------------------------------------------------

struct BatchOutcome {
  std::vector<std::uint64_t> time_bits;
  std::vector<tuner::EvalStatus> statuses;
  std::uint64_t virtual_time_bits = 0;
  std::size_t unique_evals = 0;
  std::vector<std::uint64_t> quarantined;

  bool operator==(const BatchOutcome&) const = default;
};

BatchOutcome run_batch(const gpusim::Simulator& sim,
                       const space::SearchSpace& space,
                       const std::vector<space::Setting>& settings,
                       ThreadPool* pool, const gpusim::FaultConfig* faults) {
  tuner::Evaluator eval(sim, space, {}, 1, pool);
  if (faults != nullptr) eval.set_fault_injection(*faults, "test");
  const auto results = eval.evaluate_batch(settings);
  BatchOutcome out;
  out.time_bits.reserve(results.size());
  for (const auto& r : results) {
    out.time_bits.push_back(bits(r.time_ms));
    out.statuses.push_back(r.status);
  }
  out.virtual_time_bits = bits(eval.virtual_time_s());
  out.unique_evals = eval.unique_evaluations();
  out.quarantined = eval.quarantined_keys();
  return out;
}

TEST(EvaluatorBatch, BitIdenticalAcrossWorkerCountsCleanAndFaulted) {
  const stencil::StencilSpec spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  Rng rng(42);
  const auto universe = space.sample_universe(rng, 1200);
  gpusim::Simulator sim(gpusim::a100());
  const gpusim::FaultConfig storm = gpusim::FaultConfig::uniform(0.20);

  const BatchOutcome serial = run_batch(sim, space, universe, nullptr, nullptr);
  const BatchOutcome serial_faulted =
      run_batch(sim, space, universe, nullptr, &storm);
  EXPECT_FALSE(serial_faulted.quarantined.empty());
  for (const std::size_t workers : {std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(workers);
    EXPECT_EQ(serial, run_batch(sim, space, universe, &pool, nullptr))
        << workers << " workers, clean";
    EXPECT_EQ(serial_faulted, run_batch(sim, space, universe, &pool, &storm))
        << workers << " workers, 20% faults";
  }
}

TEST(EvaluatorBatch, BatchMatchesSerialEvaluateResultBitForBit) {
  // Covers the batch commit fast path: a fresh engine fed one setting at a
  // time through the scalar entry point must agree with the batch engine on
  // every field, including the virtual clock.
  const stencil::StencilSpec spec = stencil::make_stencil("helmholtz");
  space::SearchSpace space(spec);
  Rng rng(11);
  const auto universe = space.sample_universe(rng, 600);
  gpusim::Simulator sim(gpusim::a100());

  tuner::Evaluator scalar(sim, space, {}, 1, nullptr);
  std::vector<tuner::EvalResult> expected;
  expected.reserve(universe.size());
  for (const auto& s : universe) expected.push_back(scalar.evaluate_result(s));

  tuner::Evaluator batch(sim, space, {}, 1, nullptr);
  const auto results = batch.evaluate_batch(universe);
  ASSERT_EQ(expected.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(expected[i].status, results[i].status) << i;
    EXPECT_EQ(bits(expected[i].time_ms), bits(results[i].time_ms)) << i;
    EXPECT_EQ(expected[i].attempts, results[i].attempts) << i;
  }
  EXPECT_EQ(bits(scalar.virtual_time_s()), bits(batch.virtual_time_s()));
  EXPECT_EQ(scalar.unique_evaluations(), batch.unique_evaluations());
}

TEST(EvaluatorBatch, DuplicatesWithinOneBatchChargeTheClockOnce) {
  // Duplicate slots later in the batch must come back as cache hits with
  // the first slot's bits (the commit pre-pass converts losing duplicates),
  // and the clock must only be charged for unique settings.
  const stencil::StencilSpec spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  Rng rng(5);
  const auto base = space.sample_universe(rng, 300);
  std::vector<space::Setting> doubled = base;
  doubled.insert(doubled.end(), base.begin(), base.end());

  gpusim::Simulator sim(gpusim::a100());
  const BatchOutcome once = run_batch(sim, space, base, nullptr, nullptr);
  const BatchOutcome twice = run_batch(sim, space, doubled, nullptr, nullptr);
  ASSERT_EQ(twice.time_bits.size(), 2 * once.time_bits.size());
  for (std::size_t i = 0; i < once.time_bits.size(); ++i) {
    EXPECT_EQ(once.time_bits[i], twice.time_bits[i]) << i;
    EXPECT_EQ(once.time_bits[i], twice.time_bits[once.time_bits.size() + i])
        << i << " (duplicate slot)";
  }
  EXPECT_EQ(once.virtual_time_bits, twice.virtual_time_bits);
  EXPECT_EQ(once.unique_evals, twice.unique_evals);
}

TEST(EvaluatorBatch, QuarantinedSettingsStayQuarantinedInLaterBatches) {
  const stencil::StencilSpec spec = stencil::make_stencil("j3d7pt");
  space::SearchSpace space(spec);
  Rng rng(42);
  const auto universe = space.sample_universe(rng, 1000);
  gpusim::Simulator sim(gpusim::a100());

  tuner::Evaluator eval(sim, space, {}, 1, nullptr);
  eval.set_fault_injection(gpusim::FaultConfig::uniform(0.25), "test");
  const auto first = eval.evaluate_batch(universe);
  const auto quarantined = eval.quarantined_keys();
  ASSERT_FALSE(quarantined.empty());
  const auto second = eval.evaluate_batch(universe);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const std::uint64_t key = universe[i].hash();
    const bool in_quarantine =
        std::find(quarantined.begin(), quarantined.end(), key) !=
        quarantined.end();
    if (in_quarantine) {
      // Cacheable permanent failures (compile fail, crash) are served from
      // the result cache even when quarantined; everything else hits the
      // quarantine list.
      const bool cached_permanent =
          second[i].status == tuner::EvalStatus::kCompileFail ||
          second[i].status == tuner::EvalStatus::kCrash;
      if (cached_permanent) {
        EXPECT_EQ(first[i].status, second[i].status) << i;
      } else {
        EXPECT_EQ(tuner::EvalStatus::kQuarantined, second[i].status) << i;
      }
      EXPECT_TRUE(second[i].failed()) << i;
    } else {
      // Everything else is served from the result cache, bit for bit.
      EXPECT_EQ(first[i].status, second[i].status) << i;
      EXPECT_EQ(bits(first[i].time_ms), bits(second[i].time_ms)) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// FlatHashMap unit tests.
// ---------------------------------------------------------------------------

TEST(FlatHashMap, InsertFindGrowAndForEach) {
  FlatHashMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(nullptr, map.find(123));
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    const auto [value, inserted] = map.try_emplace(k, static_cast<int>(k));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(static_cast<int>(k), *value);
  }
  EXPECT_EQ(1000u, map.size());
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    const int* value = map.find(k);
    ASSERT_NE(nullptr, value) << k;
    EXPECT_EQ(static_cast<int>(k), *value);
  }
  EXPECT_EQ(nullptr, map.find(1001));
  std::uint64_t sum = 0;
  map.for_each([&](std::uint64_t k, int) { sum += k; });
  EXPECT_EQ(1000u * 1001u / 2u, sum);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(nullptr, map.find(1));
}

TEST(FlatHashMap, FirstWriterWins) {
  FlatHashMap<int> map;
  EXPECT_TRUE(map.try_emplace(7, 100).second);
  const auto [value, inserted] = map.try_emplace(7, 200);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(100, *value);  // losing writer sees the winner's value
  EXPECT_EQ(1u, map.size());
}

TEST(FlatHashMap, CollidingKeysProbeLinearlyAcrossWraparound) {
  // Keys congruent modulo the capacity all hash to the same slot; with the
  // highest congruence class the probe chain must wrap past the end of the
  // table and still find every entry.
  FlatHashMap<std::uint64_t> map;
  map.reserve(8);  // capacity 16 (power of two, 7/8 load)
  const std::uint64_t cap = map.capacity();
  ASSERT_EQ(16u, cap);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t j = 1; j <= 8; ++j) keys.push_back(cap - 1 + j * cap);
  for (const std::uint64_t k : keys) {
    EXPECT_TRUE(map.try_emplace(k, k * 3).second);
  }
  for (const std::uint64_t k : keys) {
    const std::uint64_t* value = map.find(k);
    ASSERT_NE(nullptr, value) << k;
    EXPECT_EQ(k * 3, *value);
  }
  // A same-slot key that was never inserted terminates the probe chain.
  EXPECT_EQ(nullptr, map.find(cap - 1 + 100 * cap));
}

TEST(FlatHashMap, ZeroKeyUsesSideSlot) {
  FlatHashMap<int> map;
  EXPECT_EQ(nullptr, map.find(0));
  EXPECT_TRUE(map.try_emplace(0, 41).second);
  EXPECT_FALSE(map.try_emplace(0, 99).second);
  ASSERT_NE(nullptr, map.find(0));
  EXPECT_EQ(41, *map.find(0));
  EXPECT_EQ(1u, map.size());
  bool saw_zero = false;
  map.for_each([&](std::uint64_t k, int v) {
    if (k == 0) {
      saw_zero = true;
      EXPECT_EQ(41, v);
    }
  });
  EXPECT_TRUE(saw_zero);
  map.clear();
  EXPECT_EQ(nullptr, map.find(0));
}

TEST(FlatHashMap, ReserveKeepsEntriesAndPreventsRehash) {
  FlatHashMap<int> map;
  for (std::uint64_t k = 1; k <= 10; ++k) map.try_emplace(k, static_cast<int>(k));
  map.reserve(4096);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap * 7 / 8, 4096u);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    ASSERT_NE(nullptr, map.find(k));
    EXPECT_EQ(static_cast<int>(k), *map.find(k));
  }
  for (std::uint64_t k = 11; k <= 4096; ++k) map.try_emplace(k, 0);
  EXPECT_EQ(cap, map.capacity());  // no growth below the reserved population
}

}  // namespace
}  // namespace cstuner
