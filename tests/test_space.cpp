#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::space {
namespace {

stencil::StencilSpec test_spec() { return stencil::make_stencil("j3d7pt"); }

TEST(Parameters, TableIShape) {
  const auto params = make_parameters(test_spec());
  ASSERT_EQ(params.size(), kParamCount);
  // Table I allows TB dims up to 1024, but values beyond the grid extent
  // can never satisfy the coverage rule, so the space prunes them upfront.
  EXPECT_EQ(params[kTBx].values.back(), 512);
  EXPECT_EQ(params[kTBy].values.back(), 512);
  EXPECT_EQ(params[kTBz].values.back(), 64);
  EXPECT_EQ(params[kUseShared].values, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(params[kSD].values, (std::vector<std::int64_t>{1, 2, 3}));
  // SB admits up to the largest grid dimension.
  EXPECT_EQ(params[kSB].values.back(), 512);
}

TEST(Parameters, NumericValuesArePowersOfTwoFromOne) {
  for (const auto& p : make_parameters(test_spec())) {
    EXPECT_EQ(p.values.front(), 1) << p.name;
    if (p.kind == ParamKind::kPow2) {
      for (auto v : p.values) EXPECT_TRUE(is_pow2(v)) << p.name;
    }
  }
}

TEST(Parameters, MergeUnrollCapApplied) {
  SpaceLimits limits;
  limits.max_unroll = 8;
  limits.max_merge = 16;
  const auto params = make_parameters(test_spec(), limits);
  EXPECT_EQ(params[kUFx].values.back(), 8);
  EXPECT_EQ(params[kBMy].values.back(), 16);
  EXPECT_EQ(params[kCMz].values.back(), 16);
}

TEST(Parameters, ValueIndexLookup) {
  const auto params = make_parameters(test_spec());
  EXPECT_EQ(params[kTBx].value_index(1), 0u);
  EXPECT_EQ(params[kTBx].value_index(32), 5u);
  EXPECT_THROW(params[kTBx].value_index(3), Error);
  EXPECT_TRUE(params[kTBx].contains(64));
  EXPECT_FALSE(params[kTBx].contains(3));
}

TEST(Parameters, DimensionTagging) {
  EXPECT_EQ(param_dimension(kTBx), 0);
  EXPECT_EQ(param_dimension(kUFy), 1);
  EXPECT_EQ(param_dimension(kBMz), 2);
  EXPECT_EQ(param_dimension(kUseShared), -1);
  EXPECT_TRUE(is_numeric(kSB));
  EXPECT_FALSE(is_numeric(kSD));
}

TEST(Setting, DefaultAllOnes) {
  Setting s;
  for (std::size_t i = 0; i < kParamCount; ++i) {
    EXPECT_EQ(s.get(static_cast<ParamId>(i)), 1);
  }
  EXPECT_EQ(s.threads_per_block(), 1);
  EXPECT_EQ(s.points_per_thread(), 1);
}

TEST(Setting, HashChangesWithAnyField) {
  Setting a;
  const auto base_hash = a.hash();
  for (std::size_t i = 0; i < kParamCount; ++i) {
    Setting b;
    b.set(static_cast<ParamId>(i), 2);
    EXPECT_NE(b.hash(), base_hash) << param_name(static_cast<ParamId>(i));
  }
}

TEST(Setting, ToStringShowsFlagsSymbolically) {
  Setting s;
  s.set(kUseShared, kOn);
  const auto str = s.to_string();
  EXPECT_NE(str.find("useShared=on"), std::string::npos);
  EXPECT_NE(str.find("usePrefetching=off"), std::string::npos);
  EXPECT_NE(str.find("TBx=1"), std::string::npos);
}

class ConstraintTest : public ::testing::Test {
 protected:
  ConstraintTest() : spec_(test_spec()), space_(spec_) {}

  Setting valid_base() {
    Setting s;
    s.set(kTBx, 32);
    s.set(kTBy, 4);
    return s;
  }

  stencil::StencilSpec spec_;
  SearchSpace space_;
};

TEST_F(ConstraintTest, ValidBaseAccepted) {
  EXPECT_TRUE(space_.is_valid(valid_base()));
}

TEST_F(ConstraintTest, InadmissibleValueRejected) {
  Setting s = valid_base();
  s.set(kTBx, 3);
  const auto why = space_.checker().violation(s);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("admissible"), std::string::npos);
}

TEST_F(ConstraintTest, ThreadBlockSizeLimit) {
  Setting s = valid_base();
  s.set(kTBx, 1024);
  s.set(kTBy, 2);  // 2048 threads
  const auto why = space_.checker().violation(s);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("1024"), std::string::npos);
}

TEST_F(ConstraintTest, StreamingFieldsRequireStreaming) {
  Setting s = valid_base();
  s.set(kSD, 2);
  EXPECT_FALSE(space_.is_valid(s));
  s = valid_base();
  s.set(kSB, 4);
  EXPECT_FALSE(space_.is_valid(s));
  s = valid_base();
  s.set(kUsePrefetching, kOn);
  EXPECT_FALSE(space_.is_valid(s));
}

TEST_F(ConstraintTest, CanonicalizationFixesStreamingFields) {
  Setting s = valid_base();
  s.set(kSD, 3);
  s.set(kSB, 16);
  s.set(kUsePrefetching, kOn);
  const Setting canonical = space_.checker().canonicalized(s);
  EXPECT_EQ(canonical.get(kSD), 1);
  EXPECT_EQ(canonical.get(kSB), 1);
  EXPECT_EQ(canonical.get(kUsePrefetching), kOff);
  EXPECT_TRUE(space_.is_valid(canonical));
}

TEST_F(ConstraintTest, StreamingDimensionMustCollapse) {
  Setting s = valid_base();
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 64);
  s.set(kTBz, 2);  // violates TB=1 along SD
  EXPECT_FALSE(space_.is_valid(s));
  s.set(kTBz, 1);
  EXPECT_TRUE(space_.is_valid(s));
}

TEST_F(ConstraintTest, UnrollBoundedBySbInStreamingDimension) {
  Setting s = valid_base();
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 4);
  s.set(kUFz, 8);  // UF_SD > SB
  EXPECT_FALSE(space_.is_valid(s));
  s.set(kUFz, 4);
  EXPECT_TRUE(space_.is_valid(s));
}

TEST_F(ConstraintTest, UnrollBoundedByMergedTripCount) {
  Setting s = valid_base();
  s.set(kUFy, 4);  // CMy*BMy == 1
  EXPECT_FALSE(space_.is_valid(s));
  s.set(kCMy, 2);
  s.set(kBMy, 2);
  EXPECT_TRUE(space_.is_valid(s));
}

TEST_F(ConstraintTest, CoverageCannotExceedGrid) {
  Setting s = valid_base();
  s.set(kTBz, 64);
  s.set(kCMz, 64);
  s.set(kBMz, 64);  // 64*64*64 = 262144 > 512 — but register limit hits
  EXPECT_FALSE(space_.is_valid(s));
}

TEST_F(ConstraintTest, RegisterSpillRejected) {
  Setting s = valid_base();
  // Huge merge products blow the register estimate.
  s.set(kCMx, 16);
  s.set(kBMx, 8);
  s.set(kCMy, 16);
  s.set(kBMy, 8);
  const auto why = space_.checker().violation(s);
  ASSERT_TRUE(why.has_value());
}

TEST_F(ConstraintTest, SharedMemoryCapacityEnforced) {
  ResourceLimits tight;
  tight.max_smem_per_block = 1024;  // 1 KiB
  SearchSpace tiny(test_spec(), SpaceLimits{}, tight);
  Setting s = valid_base();
  s.set(kUseShared, kOn);
  s.set(kTBy, 16);
  const auto why = tiny.checker().violation(s);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("shared memory"), std::string::npos);
}

TEST_F(ConstraintTest, RegisterFileLaunchabilityEnforced) {
  // 1024 threads with a register-hungry body cannot launch.
  Setting s;
  s.set(kTBx, 512);
  s.set(kTBy, 2);
  s.set(kCMz, 8);
  s.set(kBMz, 8);
  if (auto why = space_.checker().violation(s); why.has_value()) {
    // Either the per-thread or the per-block register rule must name
    // registers.
    EXPECT_NE(why->find("register"), std::string::npos);
  }
}

TEST_F(ConstraintTest, RepairShedsSharedMemoryPressure) {
  // Oversized shared tile: repair should shrink merges or drop useShared.
  ResourceLimits tight;
  tight.max_smem_per_block = 2048;
  SearchSpace tiny(test_spec(), SpaceLimits{}, tight);
  Setting s = valid_base();
  s.set(kUseShared, kOn);
  s.set(kTBy, 16);
  s.set(kCMy, 4);
  ASSERT_TRUE(tiny.checker().violation(s).has_value());
  const Setting repaired = tiny.checker().repaired(s);
  EXPECT_TRUE(tiny.is_valid(repaired))
      << tiny.checker().violation(repaired).value_or("");
}

TEST_F(ConstraintTest, RepairShedsRegisterPressure) {
  Setting s = valid_base();
  s.set(kCMx, 16);
  s.set(kBMx, 8);
  s.set(kCMy, 16);
  s.set(kBMy, 8);
  ASSERT_TRUE(space_.checker().violation(s).has_value());
  const Setting repaired = space_.checker().repaired(s);
  EXPECT_TRUE(space_.is_valid(repaired));
  // Repair only ever lowers values.
  for (std::size_t p = 0; p < kParamCount; ++p) {
    EXPECT_LE(repaired.get(static_cast<ParamId>(p)),
              s.get(static_cast<ParamId>(p)))
        << param_name(static_cast<ParamId>(p));
  }
}

TEST_F(ConstraintTest, RepairShrinksOversizedThreadBlock) {
  Setting s;
  s.set(kTBx, 1024);
  s.set(kTBy, 64);
  s.set(kTBz, 16);  // way past 1024 threads
  const Setting repaired = space_.checker().repaired(s);
  EXPECT_LE(repaired.threads_per_block(), 1024);
  EXPECT_TRUE(space_.is_valid(repaired));
}

TEST_F(ConstraintTest, RepairPreservesStreamingChoice) {
  Setting s = valid_base();
  s.set(kUseStreaming, kOn);
  s.set(kSD, 3);
  s.set(kSB, 64);
  s.set(kTBz, 4);   // violates 2.5-D blocking; repair must fix, not disable
  s.set(kUFz, 128); // violates UF <= SB
  const Setting repaired = space_.checker().repaired(s);
  EXPECT_TRUE(space_.is_valid(repaired));
  EXPECT_TRUE(repaired.flag(kUseStreaming));
  EXPECT_EQ(repaired.get(kTBz), 1);
  EXPECT_LE(repaired.get(kUFz), repaired.get(kSB));
}

TEST(ResourceModel, MergingIncreasesRegisters) {
  const auto spec = test_spec();
  Setting lean;
  lean.set(kTBx, 32);
  Setting merged = lean;
  merged.set(kCMx, 4);
  merged.set(kBMy, 4);
  EXPECT_GT(estimate_resources(spec, merged).registers_per_thread,
            estimate_resources(spec, lean).registers_per_thread);
}

TEST(ResourceModel, RetimingRelievesHighOrderPressure) {
  const auto spec = stencil::make_stencil("addsgd6");  // order 3
  Setting s;
  s.set(kTBx, 32);
  s.set(kCMx, 4);
  Setting retimed = s;
  retimed.set(kUseRetiming, kOn);
  EXPECT_LT(estimate_resources(spec, retimed).registers_per_thread,
            estimate_resources(spec, s).registers_per_thread);
}

TEST(ResourceModel, SharedMemoryOnlyWhenEnabled) {
  const auto spec = test_spec();
  Setting s;
  s.set(kTBx, 32);
  EXPECT_EQ(estimate_resources(spec, s).shared_mem_per_block, 0);
  s.set(kUseShared, kOn);
  EXPECT_GT(estimate_resources(spec, s).shared_mem_per_block, 0);
}

TEST(ResourceModel, StreamingWindowSmallerThanFullTile) {
  const auto spec = stencil::make_stencil("helmholtz");
  Setting full;
  full.set(kTBx, 32);
  full.set(kTBy, 8);
  full.set(kTBz, 8);
  full.set(kUseShared, kOn);
  Setting streamed = full;
  streamed.set(kUseStreaming, kOn);
  streamed.set(kSD, 3);
  streamed.set(kSB, 64);
  streamed.set(kTBz, 1);
  EXPECT_LT(estimate_resources(spec, streamed).shared_mem_per_block,
            estimate_resources(spec, full).shared_mem_per_block);
}

class SearchSpaceTest : public ::testing::Test {
 protected:
  SearchSpaceTest() : space_(test_spec()) {}
  SearchSpace space_;
};

TEST_F(SearchSpaceTest, RandomValidSettingsAreValid) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(space_.is_valid(space_.random_valid(rng)));
  }
}

TEST_F(SearchSpaceTest, UniverseIsDistinctAndValid) {
  Rng rng(2);
  const auto universe = space_.sample_universe(rng, 500);
  EXPECT_GE(universe.size(), 400u);  // rejection sampling may fall short
  std::set<std::uint64_t> hashes;
  for (const auto& s : universe) {
    EXPECT_TRUE(space_.is_valid(s));
    EXPECT_TRUE(hashes.insert(s.hash()).second) << "duplicate setting";
  }
}

TEST_F(SearchSpaceTest, CartesianSizeIsLarge) {
  // Paper: >100M configurations before implicit constraints.
  EXPECT_GT(space_.log10_cartesian_size(), 8.0);
}

TEST_F(SearchSpaceTest, FeatureRowUsesRawValues) {
  Setting s;
  s.set(kTBx, 64);
  const auto row = SearchSpace::to_feature_row(s);
  ASSERT_EQ(row.size(), kParamCount);
  EXPECT_DOUBLE_EQ(row[kTBx], 64.0);
  EXPECT_DOUBLE_EQ(row[kUseShared], 1.0);
}

TEST_F(SearchSpaceTest, CvEncodingLogsNumericOnly) {
  EXPECT_DOUBLE_EQ(SearchSpace::cv_encoded(kTBx, 8), 4.0);   // log2+1
  EXPECT_DOUBLE_EQ(SearchSpace::cv_encoded(kUseShared, 2), 2.0);
  EXPECT_DOUBLE_EQ(SearchSpace::cv_encoded(kSD, 3), 3.0);
}

TEST_F(SearchSpaceTest, DeterministicSamplingForSameSeed) {
  Rng a(42), b(42);
  const auto ua = space_.sample_universe(a, 100);
  const auto ub = space_.sample_universe(b, 100);
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) EXPECT_EQ(ua[i], ub[i]);
}

// --- canonicalized() / repaired() edge cases ------------------------------

TEST_F(ConstraintTest, StreamingDisabledSettingsAliasToOneEncoding) {
  // With streaming off, SD/SB/prefetching are inert; any assignment of them
  // must canonicalize (and hash) to the same encoding, or caches and dedup
  // would treat behaviorally identical kernels as distinct.
  Setting a = valid_base();
  a.set(kSD, 2);
  a.set(kSB, 64);
  a.set(kUsePrefetching, kOn);
  Setting b = valid_base();
  b.set(kSD, 3);
  b.set(kSB, 8);
  const Setting ca = space_.checker().canonicalized(a);
  const Setting cb = space_.checker().canonicalized(b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca.hash(), cb.hash());
  EXPECT_EQ(ca.get(kSD), 1);
  EXPECT_EQ(ca.get(kSB), 1);
  EXPECT_EQ(ca.get(kUsePrefetching), kOff);
}

TEST_F(ConstraintTest, CanonicalizationIsIdempotent) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const Setting s = space_.random_setting(rng);
    const Setting once = space_.checker().canonicalized(s);
    EXPECT_EQ(once, space_.checker().canonicalized(once));
  }
}

TEST_F(ConstraintTest, RepairIsFixedPointAtAllOnes) {
  // The all-ones setting is valid in every space, so repair must return it
  // untouched — it is the sink every repair chain can terminate in.
  const Setting ones;
  ASSERT_TRUE(space_.is_valid(ones));
  EXPECT_EQ(space_.checker().repaired(ones), ones);
}

TEST_F(ConstraintTest, RepairTerminatesFromMaximalPressure) {
  // Every factor at its largest admissible value: repair has to walk the
  // longest possible shedding chain and still land on a valid setting.
  Setting s;
  for (std::size_t p = 0; p < kParamCount; ++p) {
    const auto id = static_cast<ParamId>(p);
    s.set(id, space_.parameter(id).values.back());
  }
  const Setting repaired = space_.checker().repaired(s);
  EXPECT_TRUE(space_.is_valid(repaired))
      << space_.checker().violation(repaired).value_or("");
}

TEST_F(ConstraintTest, RepairedIsAlwaysValidOnRandomInputs) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const Setting s = space_.random_setting(rng);
    const Setting repaired = space_.checker().repaired(s);
    EXPECT_TRUE(space_.is_valid(repaired))
        << "from " << s.to_string() << "\nto " << repaired.to_string()
        << "\nwhy " << space_.checker().violation(repaired).value_or("");
  }
}

TEST(ConstraintEdge, RepairedValidOnTinyGrid) {
  // A tiny grid makes the coverage rule bite on nearly every factor.
  const auto spec = stencil::scaled_stencil("j3d7pt", 8);
  SearchSpace tiny(spec);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const Setting repaired = tiny.checker().repaired(tiny.random_setting(rng));
    EXPECT_TRUE(tiny.is_valid(repaired))
        << tiny.checker().violation(repaired).value_or("");
  }
}

TEST(ConstraintEdge, RepairedValidWithStreamingAndTemporal) {
  SpaceLimits limits;
  limits.max_temporal = 4;
  SearchSpace space(test_spec(), limits);
  Rng rng(9);
  int streaming_temporal_seen = 0;
  for (int i = 0; i < 500; ++i) {
    Setting s = space.random_setting(rng);
    s.set(kUseStreaming, kOn);
    s.set(kTemporal, 4);
    const Setting repaired = space.checker().repaired(s);
    EXPECT_TRUE(space.is_valid(repaired))
        << space.checker().violation(repaired).value_or("");
    if (repaired.flag(kUseStreaming) && repaired.get(kTemporal) > 1) {
      ++streaming_temporal_seen;
    }
  }
  // Repair sheds pressure but must not systematically strip the
  // streaming+temporal combination the extension exists for.
  EXPECT_GT(streaming_temporal_seen, 0);
}

}  // namespace
}  // namespace cstuner::space
