file(REMOVE_RECURSE
  "CMakeFiles/cstuner_cli.dir/cstuner_cli.cpp.o"
  "CMakeFiles/cstuner_cli.dir/cstuner_cli.cpp.o.d"
  "cstuner"
  "cstuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
