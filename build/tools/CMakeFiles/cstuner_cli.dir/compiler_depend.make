# Empty compiler generated dependencies file for cstuner_cli.
# This may be replaced when dependencies are built.
