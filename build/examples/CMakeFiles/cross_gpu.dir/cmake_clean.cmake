file(REMOVE_RECURSE
  "CMakeFiles/cross_gpu.dir/cross_gpu.cpp.o"
  "CMakeFiles/cross_gpu.dir/cross_gpu.cpp.o.d"
  "cross_gpu"
  "cross_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
