# Empty dependencies file for cross_gpu.
# This may be replaced when dependencies are built.
