file(REMOVE_RECURSE
  "CMakeFiles/custom_stencil.dir/custom_stencil.cpp.o"
  "CMakeFiles/custom_stencil.dir/custom_stencil.cpp.o.d"
  "custom_stencil"
  "custom_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
