# Empty compiler generated dependencies file for custom_stencil.
# This may be replaced when dependencies are built.
