# Empty dependencies file for cpu_target.
# This may be replaced when dependencies are built.
