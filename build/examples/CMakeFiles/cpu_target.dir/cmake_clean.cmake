file(REMOVE_RECURSE
  "CMakeFiles/cpu_target.dir/cpu_target.cpp.o"
  "CMakeFiles/cpu_target.dir/cpu_target.cpp.o.d"
  "cpu_target"
  "cpu_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
