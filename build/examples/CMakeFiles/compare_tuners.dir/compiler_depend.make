# Empty compiler generated dependencies file for compare_tuners.
# This may be replaced when dependencies are built.
