file(REMOVE_RECURSE
  "CMakeFiles/compare_tuners.dir/compare_tuners.cpp.o"
  "CMakeFiles/compare_tuners.dir/compare_tuners.cpp.o.d"
  "compare_tuners"
  "compare_tuners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_tuners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
