# Empty dependencies file for bench_fig9_iso_time.
# This may be replaced when dependencies are built.
