file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_iso_time.dir/bench_fig9_iso_time.cpp.o"
  "CMakeFiles/bench_fig9_iso_time.dir/bench_fig9_iso_time.cpp.o.d"
  "CMakeFiles/bench_fig9_iso_time.dir/harness.cpp.o"
  "CMakeFiles/bench_fig9_iso_time.dir/harness.cpp.o.d"
  "bench_fig9_iso_time"
  "bench_fig9_iso_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_iso_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
