# Empty dependencies file for bench_table1_space.
# This may be replaced when dependencies are built.
