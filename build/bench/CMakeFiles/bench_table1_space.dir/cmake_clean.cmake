file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_space.dir/bench_table1_space.cpp.o"
  "CMakeFiles/bench_table1_space.dir/bench_table1_space.cpp.o.d"
  "CMakeFiles/bench_table1_space.dir/harness.cpp.o"
  "CMakeFiles/bench_table1_space.dir/harness.cpp.o.d"
  "bench_table1_space"
  "bench_table1_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
