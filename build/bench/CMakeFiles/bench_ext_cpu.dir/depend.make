# Empty dependencies file for bench_ext_cpu.
# This may be replaced when dependencies are built.
