file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cpu.dir/bench_ext_cpu.cpp.o"
  "CMakeFiles/bench_ext_cpu.dir/bench_ext_cpu.cpp.o.d"
  "CMakeFiles/bench_ext_cpu.dir/harness.cpp.o"
  "CMakeFiles/bench_ext_cpu.dir/harness.cpp.o.d"
  "bench_ext_cpu"
  "bench_ext_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
