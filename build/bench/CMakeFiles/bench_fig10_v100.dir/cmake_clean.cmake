file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_v100.dir/bench_fig10_v100.cpp.o"
  "CMakeFiles/bench_fig10_v100.dir/bench_fig10_v100.cpp.o.d"
  "CMakeFiles/bench_fig10_v100.dir/harness.cpp.o"
  "CMakeFiles/bench_fig10_v100.dir/harness.cpp.o.d"
  "bench_fig10_v100"
  "bench_fig10_v100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
