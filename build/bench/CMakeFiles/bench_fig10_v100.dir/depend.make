# Empty dependencies file for bench_fig10_v100.
# This may be replaced when dependencies are built.
