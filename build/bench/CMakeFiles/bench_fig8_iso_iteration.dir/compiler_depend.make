# Empty compiler generated dependencies file for bench_fig8_iso_iteration.
# This may be replaced when dependencies are built.
