file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_iso_iteration.dir/bench_fig8_iso_iteration.cpp.o"
  "CMakeFiles/bench_fig8_iso_iteration.dir/bench_fig8_iso_iteration.cpp.o.d"
  "CMakeFiles/bench_fig8_iso_iteration.dir/harness.cpp.o"
  "CMakeFiles/bench_fig8_iso_iteration.dir/harness.cpp.o.d"
  "bench_fig8_iso_iteration"
  "bench_fig8_iso_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_iso_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
