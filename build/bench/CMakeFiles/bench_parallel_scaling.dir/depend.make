# Empty dependencies file for bench_parallel_scaling.
# This may be replaced when dependencies are built.
