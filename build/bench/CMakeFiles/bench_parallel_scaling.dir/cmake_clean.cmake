file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cpp.o"
  "CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cpp.o.d"
  "CMakeFiles/bench_parallel_scaling.dir/harness.cpp.o"
  "CMakeFiles/bench_parallel_scaling.dir/harness.cpp.o.d"
  "bench_parallel_scaling"
  "bench_parallel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
