file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_distribution.dir/bench_fig2_distribution.cpp.o"
  "CMakeFiles/bench_fig2_distribution.dir/bench_fig2_distribution.cpp.o.d"
  "CMakeFiles/bench_fig2_distribution.dir/harness.cpp.o"
  "CMakeFiles/bench_fig2_distribution.dir/harness.cpp.o.d"
  "bench_fig2_distribution"
  "bench_fig2_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
