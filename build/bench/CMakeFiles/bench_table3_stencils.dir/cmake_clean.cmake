file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_stencils.dir/bench_table3_stencils.cpp.o"
  "CMakeFiles/bench_table3_stencils.dir/bench_table3_stencils.cpp.o.d"
  "CMakeFiles/bench_table3_stencils.dir/harness.cpp.o"
  "CMakeFiles/bench_table3_stencils.dir/harness.cpp.o.d"
  "bench_table3_stencils"
  "bench_table3_stencils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
