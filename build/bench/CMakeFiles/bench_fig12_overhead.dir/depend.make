# Empty dependencies file for bench_fig12_overhead.
# This may be replaced when dependencies are built.
