file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_overhead.dir/bench_fig12_overhead.cpp.o"
  "CMakeFiles/bench_fig12_overhead.dir/bench_fig12_overhead.cpp.o.d"
  "CMakeFiles/bench_fig12_overhead.dir/harness.cpp.o"
  "CMakeFiles/bench_fig12_overhead.dir/harness.cpp.o.d"
  "bench_fig12_overhead"
  "bench_fig12_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
