file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_topn.dir/bench_fig4_topn.cpp.o"
  "CMakeFiles/bench_fig4_topn.dir/bench_fig4_topn.cpp.o.d"
  "CMakeFiles/bench_fig4_topn.dir/harness.cpp.o"
  "CMakeFiles/bench_fig4_topn.dir/harness.cpp.o.d"
  "bench_fig4_topn"
  "bench_fig4_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
