file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_correlation.dir/bench_fig3_correlation.cpp.o"
  "CMakeFiles/bench_fig3_correlation.dir/bench_fig3_correlation.cpp.o.d"
  "CMakeFiles/bench_fig3_correlation.dir/harness.cpp.o"
  "CMakeFiles/bench_fig3_correlation.dir/harness.cpp.o.d"
  "bench_fig3_correlation"
  "bench_fig3_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
