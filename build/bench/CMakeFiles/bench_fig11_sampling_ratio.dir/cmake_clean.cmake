file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sampling_ratio.dir/bench_fig11_sampling_ratio.cpp.o"
  "CMakeFiles/bench_fig11_sampling_ratio.dir/bench_fig11_sampling_ratio.cpp.o.d"
  "CMakeFiles/bench_fig11_sampling_ratio.dir/harness.cpp.o"
  "CMakeFiles/bench_fig11_sampling_ratio.dir/harness.cpp.o.d"
  "bench_fig11_sampling_ratio"
  "bench_fig11_sampling_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sampling_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
