# Empty compiler generated dependencies file for bench_fig11_sampling_ratio.
# This may be replaced when dependencies are built.
