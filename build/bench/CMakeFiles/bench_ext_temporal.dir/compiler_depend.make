# Empty compiler generated dependencies file for bench_ext_temporal.
# This may be replaced when dependencies are built.
