file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_temporal.dir/bench_ext_temporal.cpp.o"
  "CMakeFiles/bench_ext_temporal.dir/bench_ext_temporal.cpp.o.d"
  "CMakeFiles/bench_ext_temporal.dir/harness.cpp.o"
  "CMakeFiles/bench_ext_temporal.dir/harness.cpp.o.d"
  "bench_ext_temporal"
  "bench_ext_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
