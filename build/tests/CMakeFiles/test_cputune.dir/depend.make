# Empty dependencies file for test_cputune.
# This may be replaced when dependencies are built.
