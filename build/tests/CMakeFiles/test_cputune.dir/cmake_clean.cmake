file(REMOVE_RECURSE
  "CMakeFiles/test_cputune.dir/test_cputune.cpp.o"
  "CMakeFiles/test_cputune.dir/test_cputune.cpp.o.d"
  "test_cputune"
  "test_cputune.pdb"
  "test_cputune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cputune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
