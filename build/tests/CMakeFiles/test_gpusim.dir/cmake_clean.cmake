file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim.dir/test_gpusim.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_gpusim.cpp.o.d"
  "test_gpusim"
  "test_gpusim.pdb"
  "test_gpusim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
