file(REMOVE_RECURSE
  "CMakeFiles/test_temporal.dir/test_temporal.cpp.o"
  "CMakeFiles/test_temporal.dir/test_temporal.cpp.o.d"
  "test_temporal"
  "test_temporal.pdb"
  "test_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
