file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/test_ml.cpp.o"
  "CMakeFiles/test_ml.dir/test_ml.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
  "test_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
