# Empty dependencies file for test_stencil.
# This may be replaced when dependencies are built.
