# Empty dependencies file for test_evaluator_parallel.
# This may be replaced when dependencies are built.
