file(REMOVE_RECURSE
  "CMakeFiles/test_evaluator_parallel.dir/test_evaluator_parallel.cpp.o"
  "CMakeFiles/test_evaluator_parallel.dir/test_evaluator_parallel.cpp.o.d"
  "test_evaluator_parallel"
  "test_evaluator_parallel.pdb"
  "test_evaluator_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluator_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
