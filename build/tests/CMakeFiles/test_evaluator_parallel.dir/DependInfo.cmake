
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_evaluator_parallel.cpp" "tests/CMakeFiles/test_evaluator_parallel.dir/test_evaluator_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_evaluator_parallel.dir/test_evaluator_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_cputune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
