file(REMOVE_RECURSE
  "CMakeFiles/test_tuner.dir/test_tuner.cpp.o"
  "CMakeFiles/test_tuner.dir/test_tuner.cpp.o.d"
  "test_tuner"
  "test_tuner.pdb"
  "test_tuner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
