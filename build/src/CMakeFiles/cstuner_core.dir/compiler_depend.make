# Empty compiler generated dependencies file for cstuner_core.
# This may be replaced when dependencies are built.
