file(REMOVE_RECURSE
  "libcstuner_core.a"
)
