file(REMOVE_RECURSE
  "CMakeFiles/cstuner_core.dir/core/approx.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/approx.cpp.o.d"
  "CMakeFiles/cstuner_core.dir/core/cs_tuner.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/cs_tuner.cpp.o.d"
  "CMakeFiles/cstuner_core.dir/core/grouping.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/grouping.cpp.o.d"
  "CMakeFiles/cstuner_core.dir/core/metric_combine.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/metric_combine.cpp.o.d"
  "CMakeFiles/cstuner_core.dir/core/reindex.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/reindex.cpp.o.d"
  "CMakeFiles/cstuner_core.dir/core/sampling.cpp.o"
  "CMakeFiles/cstuner_core.dir/core/sampling.cpp.o.d"
  "libcstuner_core.a"
  "libcstuner_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
