
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx.cpp" "src/CMakeFiles/cstuner_core.dir/core/approx.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/approx.cpp.o.d"
  "/root/repo/src/core/cs_tuner.cpp" "src/CMakeFiles/cstuner_core.dir/core/cs_tuner.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/cs_tuner.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/CMakeFiles/cstuner_core.dir/core/grouping.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/grouping.cpp.o.d"
  "/root/repo/src/core/metric_combine.cpp" "src/CMakeFiles/cstuner_core.dir/core/metric_combine.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/metric_combine.cpp.o.d"
  "/root/repo/src/core/reindex.cpp" "src/CMakeFiles/cstuner_core.dir/core/reindex.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/reindex.cpp.o.d"
  "/root/repo/src/core/sampling.cpp" "src/CMakeFiles/cstuner_core.dir/core/sampling.cpp.o" "gcc" "src/CMakeFiles/cstuner_core.dir/core/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
