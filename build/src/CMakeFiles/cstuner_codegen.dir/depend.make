# Empty dependencies file for cstuner_codegen.
# This may be replaced when dependencies are built.
