file(REMOVE_RECURSE
  "libcstuner_codegen.a"
)
