file(REMOVE_RECURSE
  "CMakeFiles/cstuner_codegen.dir/codegen/cuda_codegen.cpp.o"
  "CMakeFiles/cstuner_codegen.dir/codegen/cuda_codegen.cpp.o.d"
  "libcstuner_codegen.a"
  "libcstuner_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
