file(REMOVE_RECURSE
  "libcstuner_exec.a"
)
