file(REMOVE_RECURSE
  "CMakeFiles/cstuner_exec.dir/exec/cpu_executor.cpp.o"
  "CMakeFiles/cstuner_exec.dir/exec/cpu_executor.cpp.o.d"
  "libcstuner_exec.a"
  "libcstuner_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
