# Empty compiler generated dependencies file for cstuner_exec.
# This may be replaced when dependencies are built.
