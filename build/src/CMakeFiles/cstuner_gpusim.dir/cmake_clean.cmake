file(REMOVE_RECURSE
  "CMakeFiles/cstuner_gpusim.dir/gpusim/compute_model.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/compute_model.cpp.o.d"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/gpu_arch.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/gpu_arch.cpp.o.d"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/memory_model.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/memory_model.cpp.o.d"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/metrics.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/metrics.cpp.o.d"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/occupancy.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/occupancy.cpp.o.d"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/simulator.cpp.o"
  "CMakeFiles/cstuner_gpusim.dir/gpusim/simulator.cpp.o.d"
  "libcstuner_gpusim.a"
  "libcstuner_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
