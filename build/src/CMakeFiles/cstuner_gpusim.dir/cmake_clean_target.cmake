file(REMOVE_RECURSE
  "libcstuner_gpusim.a"
)
