# Empty compiler generated dependencies file for cstuner_gpusim.
# This may be replaced when dependencies are built.
