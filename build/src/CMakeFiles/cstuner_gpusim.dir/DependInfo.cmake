
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/compute_model.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/compute_model.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/compute_model.cpp.o.d"
  "/root/repo/src/gpusim/gpu_arch.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/gpu_arch.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/gpu_arch.cpp.o.d"
  "/root/repo/src/gpusim/memory_model.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/memory_model.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/memory_model.cpp.o.d"
  "/root/repo/src/gpusim/metrics.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/metrics.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/metrics.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/simulator.cpp" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/simulator.cpp.o" "gcc" "src/CMakeFiles/cstuner_gpusim.dir/gpusim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
