file(REMOVE_RECURSE
  "CMakeFiles/cstuner_stats.dir/stats/correlation.cpp.o"
  "CMakeFiles/cstuner_stats.dir/stats/correlation.cpp.o.d"
  "CMakeFiles/cstuner_stats.dir/stats/deque_group.cpp.o"
  "CMakeFiles/cstuner_stats.dir/stats/deque_group.cpp.o.d"
  "CMakeFiles/cstuner_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/cstuner_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/cstuner_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/cstuner_stats.dir/stats/histogram.cpp.o.d"
  "libcstuner_stats.a"
  "libcstuner_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
