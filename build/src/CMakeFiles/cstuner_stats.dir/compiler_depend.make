# Empty compiler generated dependencies file for cstuner_stats.
# This may be replaced when dependencies are built.
