
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/CMakeFiles/cstuner_stats.dir/stats/correlation.cpp.o" "gcc" "src/CMakeFiles/cstuner_stats.dir/stats/correlation.cpp.o.d"
  "/root/repo/src/stats/deque_group.cpp" "src/CMakeFiles/cstuner_stats.dir/stats/deque_group.cpp.o" "gcc" "src/CMakeFiles/cstuner_stats.dir/stats/deque_group.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/cstuner_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/cstuner_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/cstuner_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/cstuner_stats.dir/stats/histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
