file(REMOVE_RECURSE
  "libcstuner_stats.a"
)
