
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regress/least_squares.cpp" "src/CMakeFiles/cstuner_regress.dir/regress/least_squares.cpp.o" "gcc" "src/CMakeFiles/cstuner_regress.dir/regress/least_squares.cpp.o.d"
  "/root/repo/src/regress/matrix.cpp" "src/CMakeFiles/cstuner_regress.dir/regress/matrix.cpp.o" "gcc" "src/CMakeFiles/cstuner_regress.dir/regress/matrix.cpp.o.d"
  "/root/repo/src/regress/pmnf.cpp" "src/CMakeFiles/cstuner_regress.dir/regress/pmnf.cpp.o" "gcc" "src/CMakeFiles/cstuner_regress.dir/regress/pmnf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
