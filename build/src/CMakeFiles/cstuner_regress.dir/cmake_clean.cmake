file(REMOVE_RECURSE
  "CMakeFiles/cstuner_regress.dir/regress/least_squares.cpp.o"
  "CMakeFiles/cstuner_regress.dir/regress/least_squares.cpp.o.d"
  "CMakeFiles/cstuner_regress.dir/regress/matrix.cpp.o"
  "CMakeFiles/cstuner_regress.dir/regress/matrix.cpp.o.d"
  "CMakeFiles/cstuner_regress.dir/regress/pmnf.cpp.o"
  "CMakeFiles/cstuner_regress.dir/regress/pmnf.cpp.o.d"
  "libcstuner_regress.a"
  "libcstuner_regress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
