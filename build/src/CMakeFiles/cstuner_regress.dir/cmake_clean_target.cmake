file(REMOVE_RECURSE
  "libcstuner_regress.a"
)
