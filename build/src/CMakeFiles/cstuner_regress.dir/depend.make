# Empty dependencies file for cstuner_regress.
# This may be replaced when dependencies are built.
