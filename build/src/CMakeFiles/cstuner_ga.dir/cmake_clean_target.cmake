file(REMOVE_RECURSE
  "libcstuner_ga.a"
)
