file(REMOVE_RECURSE
  "CMakeFiles/cstuner_ga.dir/ga/gene.cpp.o"
  "CMakeFiles/cstuner_ga.dir/ga/gene.cpp.o.d"
  "CMakeFiles/cstuner_ga.dir/ga/island_ga.cpp.o"
  "CMakeFiles/cstuner_ga.dir/ga/island_ga.cpp.o.d"
  "libcstuner_ga.a"
  "libcstuner_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
