# Empty dependencies file for cstuner_ga.
# This may be replaced when dependencies are built.
