# Empty compiler generated dependencies file for cstuner_stencil.
# This may be replaced when dependencies are built.
