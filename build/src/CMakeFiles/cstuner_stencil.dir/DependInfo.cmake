
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/dsl.cpp" "src/CMakeFiles/cstuner_stencil.dir/stencil/dsl.cpp.o" "gcc" "src/CMakeFiles/cstuner_stencil.dir/stencil/dsl.cpp.o.d"
  "/root/repo/src/stencil/reference_kernel.cpp" "src/CMakeFiles/cstuner_stencil.dir/stencil/reference_kernel.cpp.o" "gcc" "src/CMakeFiles/cstuner_stencil.dir/stencil/reference_kernel.cpp.o.d"
  "/root/repo/src/stencil/stencil_spec.cpp" "src/CMakeFiles/cstuner_stencil.dir/stencil/stencil_spec.cpp.o" "gcc" "src/CMakeFiles/cstuner_stencil.dir/stencil/stencil_spec.cpp.o.d"
  "/root/repo/src/stencil/stencils.cpp" "src/CMakeFiles/cstuner_stencil.dir/stencil/stencils.cpp.o" "gcc" "src/CMakeFiles/cstuner_stencil.dir/stencil/stencils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cstuner_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
