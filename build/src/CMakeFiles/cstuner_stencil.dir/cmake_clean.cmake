file(REMOVE_RECURSE
  "CMakeFiles/cstuner_stencil.dir/stencil/dsl.cpp.o"
  "CMakeFiles/cstuner_stencil.dir/stencil/dsl.cpp.o.d"
  "CMakeFiles/cstuner_stencil.dir/stencil/reference_kernel.cpp.o"
  "CMakeFiles/cstuner_stencil.dir/stencil/reference_kernel.cpp.o.d"
  "CMakeFiles/cstuner_stencil.dir/stencil/stencil_spec.cpp.o"
  "CMakeFiles/cstuner_stencil.dir/stencil/stencil_spec.cpp.o.d"
  "CMakeFiles/cstuner_stencil.dir/stencil/stencils.cpp.o"
  "CMakeFiles/cstuner_stencil.dir/stencil/stencils.cpp.o.d"
  "libcstuner_stencil.a"
  "libcstuner_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
