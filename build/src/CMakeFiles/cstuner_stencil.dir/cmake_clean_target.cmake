file(REMOVE_RECURSE
  "libcstuner_stencil.a"
)
