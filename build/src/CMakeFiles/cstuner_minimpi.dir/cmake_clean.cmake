file(REMOVE_RECURSE
  "CMakeFiles/cstuner_minimpi.dir/minimpi/comm.cpp.o"
  "CMakeFiles/cstuner_minimpi.dir/minimpi/comm.cpp.o.d"
  "libcstuner_minimpi.a"
  "libcstuner_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
