# Empty compiler generated dependencies file for cstuner_minimpi.
# This may be replaced when dependencies are built.
