# Empty dependencies file for cstuner_minimpi.
# This may be replaced when dependencies are built.
