file(REMOVE_RECURSE
  "libcstuner_minimpi.a"
)
