# Empty compiler generated dependencies file for cstuner_ml.
# This may be replaced when dependencies are built.
