# Empty dependencies file for cstuner_ml.
# This may be replaced when dependencies are built.
