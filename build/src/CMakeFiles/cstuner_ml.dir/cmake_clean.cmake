file(REMOVE_RECURSE
  "CMakeFiles/cstuner_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/cstuner_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/cstuner_ml.dir/ml/random_forest.cpp.o"
  "CMakeFiles/cstuner_ml.dir/ml/random_forest.cpp.o.d"
  "libcstuner_ml.a"
  "libcstuner_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
