file(REMOVE_RECURSE
  "libcstuner_ml.a"
)
