file(REMOVE_RECURSE
  "CMakeFiles/cstuner_space.dir/space/constraints.cpp.o"
  "CMakeFiles/cstuner_space.dir/space/constraints.cpp.o.d"
  "CMakeFiles/cstuner_space.dir/space/parameter.cpp.o"
  "CMakeFiles/cstuner_space.dir/space/parameter.cpp.o.d"
  "CMakeFiles/cstuner_space.dir/space/resource_model.cpp.o"
  "CMakeFiles/cstuner_space.dir/space/resource_model.cpp.o.d"
  "CMakeFiles/cstuner_space.dir/space/search_space.cpp.o"
  "CMakeFiles/cstuner_space.dir/space/search_space.cpp.o.d"
  "CMakeFiles/cstuner_space.dir/space/setting.cpp.o"
  "CMakeFiles/cstuner_space.dir/space/setting.cpp.o.d"
  "libcstuner_space.a"
  "libcstuner_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
