file(REMOVE_RECURSE
  "libcstuner_space.a"
)
