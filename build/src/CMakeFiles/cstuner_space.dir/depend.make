# Empty dependencies file for cstuner_space.
# This may be replaced when dependencies are built.
