# Empty dependencies file for cstuner_tuner.
# This may be replaced when dependencies are built.
