file(REMOVE_RECURSE
  "libcstuner_tuner.a"
)
