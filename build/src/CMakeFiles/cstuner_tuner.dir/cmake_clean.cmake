file(REMOVE_RECURSE
  "CMakeFiles/cstuner_tuner.dir/tuner/dataset.cpp.o"
  "CMakeFiles/cstuner_tuner.dir/tuner/dataset.cpp.o.d"
  "CMakeFiles/cstuner_tuner.dir/tuner/evaluator.cpp.o"
  "CMakeFiles/cstuner_tuner.dir/tuner/evaluator.cpp.o.d"
  "CMakeFiles/cstuner_tuner.dir/tuner/trace.cpp.o"
  "CMakeFiles/cstuner_tuner.dir/tuner/trace.cpp.o.d"
  "libcstuner_tuner.a"
  "libcstuner_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
