
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/cstuner_common.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/error.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/cstuner_common.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/cstuner_common.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/cstuner_common.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/cstuner_common.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/cstuner_common.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cstuner_common.dir/common/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
