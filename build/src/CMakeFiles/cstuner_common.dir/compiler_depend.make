# Empty compiler generated dependencies file for cstuner_common.
# This may be replaced when dependencies are built.
