file(REMOVE_RECURSE
  "CMakeFiles/cstuner_common.dir/common/error.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/error.cpp.o.d"
  "CMakeFiles/cstuner_common.dir/common/json.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/json.cpp.o.d"
  "CMakeFiles/cstuner_common.dir/common/logging.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/cstuner_common.dir/common/rng.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/cstuner_common.dir/common/table.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/table.cpp.o.d"
  "CMakeFiles/cstuner_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/cstuner_common.dir/common/thread_pool.cpp.o.d"
  "libcstuner_common.a"
  "libcstuner_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
