file(REMOVE_RECURSE
  "libcstuner_common.a"
)
