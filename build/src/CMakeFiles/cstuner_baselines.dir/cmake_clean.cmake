file(REMOVE_RECURSE
  "CMakeFiles/cstuner_baselines.dir/baselines/artemis.cpp.o"
  "CMakeFiles/cstuner_baselines.dir/baselines/artemis.cpp.o.d"
  "CMakeFiles/cstuner_baselines.dir/baselines/garvey.cpp.o"
  "CMakeFiles/cstuner_baselines.dir/baselines/garvey.cpp.o.d"
  "CMakeFiles/cstuner_baselines.dir/baselines/opentuner.cpp.o"
  "CMakeFiles/cstuner_baselines.dir/baselines/opentuner.cpp.o.d"
  "CMakeFiles/cstuner_baselines.dir/baselines/subspace.cpp.o"
  "CMakeFiles/cstuner_baselines.dir/baselines/subspace.cpp.o.d"
  "libcstuner_baselines.a"
  "libcstuner_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
