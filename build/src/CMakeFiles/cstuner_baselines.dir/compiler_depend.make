# Empty compiler generated dependencies file for cstuner_baselines.
# This may be replaced when dependencies are built.
