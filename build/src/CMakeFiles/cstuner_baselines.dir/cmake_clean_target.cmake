file(REMOVE_RECURSE
  "libcstuner_baselines.a"
)
