file(REMOVE_RECURSE
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_arch.cpp.o"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_arch.cpp.o.d"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_model.cpp.o"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_model.cpp.o.d"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_space.cpp.o"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_space.cpp.o.d"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_tuner.cpp.o"
  "CMakeFiles/cstuner_cputune.dir/cputune/cpu_tuner.cpp.o.d"
  "libcstuner_cputune.a"
  "libcstuner_cputune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstuner_cputune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
