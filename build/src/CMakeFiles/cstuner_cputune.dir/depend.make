# Empty dependencies file for cstuner_cputune.
# This may be replaced when dependencies are built.
