file(REMOVE_RECURSE
  "libcstuner_cputune.a"
)
