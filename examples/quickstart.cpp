// Quickstart: auto-tune one stencil with csTuner and inspect the result.
//
//   $ ./quickstart [stencil] [budget_seconds]
//
// Walks the full public API: stencil spec -> search space -> simulator ->
// evaluator -> csTuner -> best setting + generated CUDA kernel.

#include <iostream>

#include "cstuner.hpp"

using namespace cstuner;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "j3d7pt";
  const double budget_s = argc > 2 ? std::stod(argv[2]) : 60.0;

  // 1. Pick a stencil (Table III) and build its constrained search space.
  const auto spec = stencil::make_stencil(name);
  space::SearchSpace space(spec);
  std::cout << "stencil " << spec.name << ": grid " << spec.grid[0] << "^3, "
            << "order " << spec.order << ", " << spec.flops
            << " FLOPs/point, " << spec.io_arrays << " arrays\n"
            << "unconstrained space: 10^"
            << static_cast<int>(space.log10_cartesian_size())
            << " settings\n\n";

  // 2. The execution oracle: the A100 performance-model simulator.
  gpusim::Simulator simulator(gpusim::a100());
  tuner::Evaluator evaluator(simulator, space, /*costs=*/{}, /*seed=*/1);

  // 3. Run csTuner with the paper's configuration.
  core::CsTunerOptions options;
  options.universe_size = 8000;  // quickstart-sized candidate universe
  core::CsTuner tuner(options);
  tuner::StopCriteria stop;
  stop.max_virtual_seconds = budget_s;
  tuner.tune(evaluator, stop);

  // 4. Results.
  const auto& report = tuner.report();
  std::cout << "tuning done: " << evaluator.unique_evaluations()
            << " settings evaluated in " << evaluator.virtual_time_s()
            << " virtual s (" << evaluator.iterations() << " iterations)\n";
  std::cout << "parameter groups found: " << report.groups.size()
            << ", sampled settings: " << report.sampled_count << "\n\n";
  std::cout << "best kernel time: " << evaluator.best_time_ms() << " ms\n"
            << "best setting:     " << evaluator.best_setting()->to_string()
            << "\n\n";

  // 5. Emit the CUDA kernel csTuner would hand to nvcc for this setting.
  const auto kernel = codegen::generate_kernel(spec, *evaluator.best_setting());
  std::cout << "generated kernel (" << kernel.source.size()
            << " bytes), launch: " << kernel.launch << '\n';
  std::cout << kernel.source.substr(0, 600) << "...\n";
  return 0;
}
