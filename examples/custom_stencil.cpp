// Defining and tuning a stencil that is not part of the paper's suite:
// a 3-D order-2 "wave equation" style kernel with two input grids.
// Demonstrates that the pipeline is generic over StencilSpec — the property
// csTuner's scalability claim rests on.

#include <iostream>

#include "cstuner.hpp"

using namespace cstuner;

int main() {
  // 1. Describe the stencil: access pattern (taps), FLOPs, arrays, grid.
  stencil::StencilSpec spec;
  spec.name = "wave2";
  spec.grid = {256, 256, 256};
  spec.order = 2;
  spec.n_inputs = 2;   // u(t), u(t-1)
  spec.n_outputs = 1;  // u(t+1)
  spec.io_arrays = 3;
  spec.shape = stencil::Shape::kStar;
  spec.taps = stencil::make_star_taps(2, /*array=*/0, 1.0);
  spec.taps.push_back({0, 0, 0, /*array=*/1, -1.0});  // leapfrog term
  spec.flops = static_cast<int>(spec.taps.size()) * 2 + 6;
  spec.pointwise_ops = 6;

  // 2. Correctness first: the tiled executor must match the reference for
  // any candidate decomposition (here: a hand-picked one on a small grid).
  auto small = spec;
  small.grid = {32, 32, 32};
  space::SearchSpace small_space(small);
  Rng rng(5);
  const auto probe = small_space.random_valid(rng);
  const double divergence = exec::max_divergence_from_reference(small, probe);
  std::cout << "executor vs reference divergence for a random valid "
               "decomposition: "
            << divergence << " (must be 0)\n\n";

  // 3. Tune on the A100 model.
  space::SearchSpace space(spec);
  gpusim::Simulator simulator(gpusim::a100());
  tuner::Evaluator evaluator(simulator, space, {}, 3);
  core::CsTunerOptions options;
  options.universe_size = 6000;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = 45.0});

  std::cout << "custom stencil tuned: best " << evaluator.best_time_ms()
            << " ms after " << evaluator.unique_evaluations()
            << " evaluations\n"
            << "setting: " << evaluator.best_setting()->to_string() << '\n';

  // 4. Compare against the naive one-thread-per-point mapping.
  space::Setting naive;
  naive.set(space::kTBx, 32);
  naive = space.checker().canonicalized(naive);
  const double naive_ms = simulator.measure_ms(spec, naive, 0);
  std::cout << "naive mapping: " << naive_ms << " ms  ->  tuned speedup "
            << naive_ms / evaluator.best_time_ms() << "x\n";
  return 0;
}
