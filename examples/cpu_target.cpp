// The §VII extension in action: re-targeting the csTuner pipeline at
// multicore CPUs. The optimization space swaps thread blocks and shared
// memory for OpenMP-style threads, tiling, SIMD width and scheduling; the
// statistics (CV grouping), PMNF sampling and approximate evolutionary
// search are the same components the GPU pipeline uses.

#include <algorithm>
#include <iostream>

#include "cputune/cpu_tuner.hpp"
#include "cstuner.hpp"

using namespace cstuner;
using namespace cstuner::cputune;

namespace {

void tune_on(const CpuArch& arch, const stencil::StencilSpec& spec) {
  CpuSpace space(spec, arch);
  CpuSimulator simulator(arch);
  CpuTuner tuner;
  const auto result = tuner.tune(space, simulator);

  // Compare against random search at the same evaluation budget.
  Rng rng(41);
  double random_best = 1e300;
  for (std::size_t i = 0; i < result.evaluations; ++i) {
    random_best = std::min(
        random_best, simulator.measure_ms(spec, space.random_valid(rng), i));
  }

  std::cout << arch.name << " (" << arch.cores << " cores, "
            << arch.vector_doubles << "-wide SIMD):\n"
            << "  best " << result.best_time_ms << " ms after "
            << result.evaluations << " evaluations ("
            << result.groups.size() << " parameter groups, "
            << result.sampled_count << " sampled settings)\n"
            << "  " << result.best.to_string() << '\n'
            << "  random search at the same budget: " << random_best
            << " ms  (csTuner pipeline "
            << random_best / result.best_time_ms << "x better)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "helmholtz";
  const auto spec = stencil::make_stencil(name);
  std::cout << "CPU auto-tuning of stencil " << name << " (grid "
            << spec.grid[0] << "^3, " << spec.flops << " FLOPs/point)\n\n";
  tune_on(xeon_8380(), spec);
  tune_on(epyc_7742(), spec);
  std::cout << "The same pipeline adapts to either microarchitecture purely "
               "through the\nparameterized space, as §VII anticipates.\n";
  return 0;
}
