// Head-to-head of the four §V methods (plus the extra OpenTuner techniques)
// on one stencil under the same virtual-time budget.
//
//   $ ./compare_tuners [stencil] [budget_seconds]

#include <iomanip>
#include <iostream>
#include <memory>

#include "cstuner.hpp"

using namespace cstuner;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "helmholtz";
  const double budget_s = argc > 2 ? std::stod(argv[2]) : 40.0;

  const auto spec = stencil::make_stencil(name);
  space::SearchSpace space(spec);
  gpusim::Simulator simulator(gpusim::a100());

  // Shared offline artifacts so every dataset-consuming method sees the
  // same evidence.
  Rng rng(17);
  const auto universe = space.sample_universe(rng, 8000);
  const auto dataset = tuner::collect_dataset(space, simulator, 128, rng);

  struct Row {
    std::string name;
    std::unique_ptr<tuner::Tuner> tuner;
  };
  std::vector<Row> rows;
  {
    core::CsTunerOptions o;
    auto t = std::make_unique<core::CsTuner>(o);
    t->set_dataset(dataset);
    t->set_universe(universe);
    rows.push_back({"csTuner", std::move(t)});
  }
  {
    baselines::GarveyOptions o;
    auto t = std::make_unique<baselines::Garvey>(o);
    t->set_dataset(dataset);
    rows.push_back({"Garvey", std::move(t)});
  }
  rows.push_back({"OpenTuner (global GA)",
                  std::make_unique<baselines::OpenTuner>()});
  {
    baselines::OpenTunerOptions o;
    o.technique = baselines::OpenTunerTechnique::kHillClimber;
    rows.push_back({"OpenTuner (hill climber)",
                    std::make_unique<baselines::OpenTuner>(o)});
  }
  {
    baselines::OpenTunerOptions o;
    o.technique = baselines::OpenTunerTechnique::kDifferentialEvolution;
    rows.push_back({"OpenTuner (diff. evolution)",
                    std::make_unique<baselines::OpenTuner>(o)});
  }
  rows.push_back({"Artemis", std::make_unique<baselines::Artemis>()});

  std::cout << "stencil " << name << ", budget " << budget_s
            << " virtual s\n\n"
            << std::left << std::setw(30) << "method" << std::setw(12)
            << "best_ms" << std::setw(10) << "evals" << std::setw(8)
            << "iters" << "used_s\n";
  for (auto& row : rows) {
    tuner::Evaluator evaluator(simulator, space, {}, 23);
    row.tuner->tune(evaluator, {.max_virtual_seconds = budget_s});
    std::cout << std::left << std::setw(30) << row.name << std::setw(12)
              << std::setprecision(4) << evaluator.best_time_ms()
              << std::setw(10) << evaluator.unique_evaluations()
              << std::setw(8) << evaluator.iterations()
              << std::setprecision(3) << evaluator.virtual_time_s() << '\n';
  }
  return 0;
}
