// Cross-GPU tuning (§V-D): the optimal setting is architecture-dependent, so
// the dataset must be re-collected per platform. Tunes the same stencil on
// the A100 and V100 models and shows how the chosen settings diverge and
// what misapplying one architecture's setting to the other costs.

#include <iostream>

#include "cstuner.hpp"

using namespace cstuner;

namespace {

space::Setting tune_on(const gpusim::GpuArch& arch,
                       const stencil::StencilSpec& spec, double budget_s) {
  space::SearchSpace space(spec);
  gpusim::Simulator simulator(arch);
  tuner::Evaluator evaluator(simulator, space, {}, 29);
  core::CsTunerOptions options;
  options.universe_size = 6000;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = budget_s});
  std::cout << arch.name << ": best " << evaluator.best_time_ms()
            << " ms\n  " << evaluator.best_setting()->to_string() << "\n";
  return *evaluator.best_setting();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "addsgd4";
  const auto spec = stencil::make_stencil(name);
  std::cout << "stencil " << name << "\n\n";

  const auto best_a100 = tune_on(gpusim::a100(), spec, 40.0);
  const auto best_v100 = tune_on(gpusim::v100(), spec, 40.0);

  // Portability check: run each winner on the other GPU.
  gpusim::Simulator sim_a(gpusim::a100());
  gpusim::Simulator sim_v(gpusim::v100());
  space::SearchSpace space_a(spec);
  space::SearchSpace space_v(spec);
  std::cout << "\nportability (time in ms):\n";
  std::cout << "  A100 winner on A100: " << sim_a.measure_ms(spec, best_a100, 1)
            << ",  V100 winner on A100: "
            << (space_a.is_valid(best_v100)
                    ? sim_a.measure_ms(spec, best_v100, 1)
                    : -1.0)
            << '\n';
  std::cout << "  V100 winner on V100: " << sim_v.measure_ms(spec, best_v100, 1)
            << ",  A100 winner on V100: "
            << (space_v.is_valid(best_a100)
                    ? sim_v.measure_ms(spec, best_a100, 1)
                    : -1.0)
            << '\n';
  std::cout << "\n(settings transplanted across GPUs lose performance — the"
               "\n reason §V-D re-collects the dataset per platform)\n";
  return 0;
}
