#pragma once
// minimpi: an in-process message-passing substrate.
//
// The paper runs the island genetic algorithm's sub-populations as MPI
// processes with ring migration (Fig. 6).  This module reproduces the MPI
// surface the GA needs — ranks, blocking point-to-point send/recv with tags,
// barrier, and ring-topology helpers — with ranks mapped to threads so the
// whole framework stays a single dependency-free process.  The API is shaped
// so a real MPI backend could replace it without touching the GA.
//
// Two failure disciplines coexist (docs/fault-tolerance.md, "Distributed
// failures"):
//
//   hard-error (default)  Any operation touching a dead peer throws
//                         cstuner::Error; Context::run rethrows. One crash
//                         aborts the whole job — the right behaviour for
//                         code that has no recovery story.
//
//   recoverable           Opted into per operation (try_send / try_recv /
//                         sync_membership) and per run (RunOptions::
//                         recover_killed_ranks). Dead peers yield a typed
//                         CommStatus::kPeerDead outcome instead of an
//                         exception, barriers complete over the *live*
//                         membership set, and survivors agree on who is
//                         alive through epoch-stamped MembershipViews.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace cstuner::minimpi {

/// A single message in flight: raw bytes plus envelope.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Outcome of a recoverable communication attempt.
enum class CommStatus : std::uint8_t {
  kOk = 0,
  kPeerDead,  ///< the peer's body exited; the operation can never complete
  kTimedOut,  ///< deadline elapsed with no matching message (try_recv only)
};

const char* comm_status_name(CommStatus status);

/// Result of a recoverable receive: `message` is meaningful only for kOk.
struct RecvOutcome {
  CommStatus status = CommStatus::kPeerDead;
  Message message;

  bool ok() const { return status == CommStatus::kOk; }
};

/// An agreed snapshot of which ranks are alive, produced by
/// Comm::sync_membership(). Every rank completing the same sync round
/// receives an identical copy (same epoch, same live set), so survivors can
/// make matching topology decisions without further communication.
struct MembershipView {
  /// Number of deaths observed when the view was published; strictly
  /// increases whenever membership shrinks, identical across one round.
  std::uint64_t epoch = 0;
  /// Live ranks, sorted ascending. Never empty for a view returned to a
  /// live rank (the caller itself is in it).
  std::vector<int> live;

  bool contains(int rank) const;
  /// Ring neighbours over the live set (wrap-around). `rank` must be live
  /// and the view must contain at least two ranks.
  int left_neighbor_of(int rank) const;
  int right_neighbor_of(int rank) const;
};

/// Thrown by a rank body to simulate that rank crashing. In a recoverable
/// run (RunOptions::recover_killed_ranks) the context records the death and
/// absorbs the exception — survivors keep running; in a hard-error run it
/// propagates like any other error.
class RankKilled : public Error {
 public:
  using Error::Error;
};

/// Per-run behaviour switches for Context::run.
struct RunOptions {
  /// When true, a rank exiting via RankKilled is marked dead and absorbed
  /// instead of rethrown, and Comm::barrier() degrades to the live-set
  /// membership barrier. Any other exception still aborts the run.
  bool recover_killed_ranks = false;
};

class Context;

/// Per-rank communicator handle. Valid only inside Context::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Blocking tagged send of raw bytes to `dest`. Throws cstuner::Error if
  /// `dest` has died (its body exited by exception) — a dead peer is a hard
  /// error, never a silent drop.
  void send(int dest, int tag, std::vector<std::uint8_t> payload);

  /// Blocking receive of the next message from `source` with `tag`.
  /// Messages `source` sent before dying are still delivered; once its
  /// mailbox contribution is drained, receiving from a dead rank throws
  /// cstuner::Error instead of blocking forever.
  Message recv(int source, int tag);

  /// Recoverable send: like send(), but a dead `dest` yields kPeerDead
  /// instead of throwing.
  CommStatus try_send(int dest, int tag, std::vector<std::uint8_t> payload);

  /// Recoverable receive: blocks like recv(), but a dead `source` (with its
  /// pre-death messages drained) yields kPeerDead instead of throwing. A
  /// receiver already blocked when the peer dies wakes promptly.
  RecvOutcome try_recv(int source, int tag);

  /// Deadline-bounded recoverable receive: additionally yields kTimedOut if
  /// no matching message arrives within `deadline`. Peer death still wakes
  /// the caller immediately — it never sits out the full deadline on a
  /// rank that can no longer send.
  RecvOutcome try_recv(int source, int tag,
                       std::chrono::milliseconds deadline);

  /// True if a matching message is already queued (non-blocking probe).
  bool probe(int source, int tag);

  /// All ranks must call. Hard-error runs: returns when every rank has
  /// arrived, throws cstuner::Error when a rank dies instead of leaving the
  /// survivors blocked on an arrival that can never happen. Recoverable
  /// runs: completes over the live membership set (sync_membership), so
  /// survivors pass the barrier even after deaths.
  void barrier();

  /// Generation-stamped barrier over the live membership set: returns once
  /// every currently-live rank has entered the same sync round, and hands
  /// every participant an identical MembershipView. A rank dying while
  /// others wait is dropped from the round's requirement, so survivors are
  /// never stuck. Valid in both run modes; never throws on peer death.
  MembershipView sync_membership();

  /// Unagreed convenience snapshot of the live set (no synchronization —
  /// use sync_membership when survivors must agree).
  MembershipView membership() const;

  bool is_alive(int rank) const;

  /// Ring topology helpers (single-ring migration, as in the paper). These
  /// are the *static* full-ring neighbours; recoverable code should derive
  /// neighbours from an agreed MembershipView instead.
  int left_neighbor() const { return (rank_ + size_ - 1) % size_; }
  int right_neighbor() const { return (rank_ + 1) % size_; }

  /// Typed convenience wrappers for trivially copyable element types.
  template <typename T>
  void send_values(int dest, int tag, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, pack_values(values));
  }

  template <typename T>
  std::vector<T> recv_values(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv(source, tag);
    return unpack_values<T>(m);
  }

  template <typename T>
  CommStatus try_send_values(int dest, int tag, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    return try_send(dest, tag, pack_values(values));
  }

  /// Recoverable typed receive: nullopt means the peer died.
  template <typename T>
  std::optional<std::vector<T>> try_recv_values(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    RecvOutcome out = try_recv(source, tag);
    if (!out.ok()) return std::nullopt;
    return unpack_values<T>(out.message);
  }

  /// Gather one double from every rank to every rank (allgather).
  std::vector<double> allgather(double value);

 private:
  friend class Context;
  Comm(Context* ctx, int rank, int size)
      : ctx_(ctx), rank_(rank), size_(size) {}

  template <typename T>
  static std::vector<std::uint8_t> pack_values(const std::vector<T>& values) {
    std::vector<std::uint8_t> bytes(values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(bytes.data(), values.data(), bytes.size());
    }
    return bytes;
  }

  template <typename T>
  static std::vector<T> unpack_values(const Message& m) {
    CSTUNER_CHECK(m.payload.size() % sizeof(T) == 0);
    std::vector<T> values(m.payload.size() / sizeof(T));
    if (!values.empty()) {
      std::memcpy(values.data(), m.payload.data(), m.payload.size());
    }
    return values;
  }

  Context* ctx_;
  int rank_;
  int size_;
};

/// Owns the mailboxes and the rank threads.
class Context {
 public:
  /// Run `body` on `nranks` ranks (threads); joins all before returning.
  /// Exceptions thrown by any rank are captured and the first is rethrown.
  static void run(int nranks, const std::function<void(Comm&)>& body);

  /// As above with explicit behaviour switches. With
  /// options.recover_killed_ranks, RankKilled exceptions mark the rank dead
  /// and are absorbed; survivors run to completion and run() returns
  /// normally unless a rank failed with a genuine error.
  static void run(int nranks, const RunOptions& options,
                  const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  Context(int nranks, RunOptions options);

  void post(int dest, Message message);
  Message take(int dest, int source, int tag);
  /// Recoverable take: fills `out` on kOk. A null `deadline` blocks until a
  /// message arrives or the source dies.
  CommStatus try_take(int dest, int source, int tag,
                      const std::chrono::steady_clock::time_point* deadline,
                      Message& out);
  bool peek(int dest, int source, int tag);
  void barrier_wait();
  /// Live-set barrier round for `rank`; returns the agreed view.
  MembershipView membership_sync(int rank);
  MembershipView membership_snapshot() const;
  /// Declares a rank dead (its body threw) and wakes every blocked peer so
  /// sends, receives, barriers and membership syncs involving it resolve
  /// promptly instead of hanging.
  void mark_dead(int rank);
  bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  const RunOptions& options() const { return options_; }

  /// With sync_mutex_ held: if every live rank has arrived, publish the
  /// view, reset arrivals and advance the round. Returns true on completion.
  bool sync_try_complete_locked();

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  int nranks_;
  RunOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::atomic<bool>> dead_;
  std::atomic<int> dead_count_{0};

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Membership-sync state: a generation-stamped barrier over the live set.
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  std::vector<char> sync_arrived_;  // per-rank arrival flag, current round
  std::uint64_t sync_generation_ = 0;
  MembershipView sync_view_;  // view published by the last completed round
};

}  // namespace cstuner::minimpi
