#pragma once
// minimpi: an in-process message-passing substrate.
//
// The paper runs the island genetic algorithm's sub-populations as MPI
// processes with ring migration (Fig. 6).  This module reproduces the MPI
// surface the GA needs — ranks, blocking point-to-point send/recv with tags,
// barrier, and ring-topology helpers — with ranks mapped to threads so the
// whole framework stays a single dependency-free process.  The API is shaped
// so a real MPI backend could replace it without touching the GA.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace cstuner::minimpi {

/// A single message in flight: raw bytes plus envelope.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

class Context;

/// Per-rank communicator handle. Valid only inside Context::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Blocking tagged send of raw bytes to `dest`. Throws cstuner::Error if
  /// `dest` has died (its body exited by exception) — a dead peer is a hard
  /// error, never a silent drop.
  void send(int dest, int tag, std::vector<std::uint8_t> payload);

  /// Blocking receive of the next message from `source` with `tag`.
  /// Messages `source` sent before dying are still delivered; once its
  /// mailbox contribution is drained, receiving from a dead rank throws
  /// cstuner::Error instead of blocking forever.
  Message recv(int source, int tag);

  /// True if a matching message is already queued (non-blocking probe).
  bool probe(int source, int tag);

  /// All ranks must call; returns when every rank has arrived. Throws
  /// cstuner::Error when a rank dies instead of leaving the survivors
  /// blocked on an arrival that can never happen.
  void barrier();

  /// Ring topology helpers (single-ring migration, as in the paper).
  int left_neighbor() const { return (rank_ + size_ - 1) % size_; }
  int right_neighbor() const { return (rank_ + 1) % size_; }

  /// Typed convenience wrappers for trivially copyable element types.
  template <typename T>
  void send_values(int dest, int tag, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes(values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(bytes.data(), values.data(), bytes.size());
    }
    send(dest, tag, std::move(bytes));
  }

  template <typename T>
  std::vector<T> recv_values(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv(source, tag);
    CSTUNER_CHECK(m.payload.size() % sizeof(T) == 0);
    std::vector<T> values(m.payload.size() / sizeof(T));
    if (!values.empty()) {
      std::memcpy(values.data(), m.payload.data(), m.payload.size());
    }
    return values;
  }

  /// Gather one double from every rank to every rank (allgather).
  std::vector<double> allgather(double value);

 private:
  friend class Context;
  Comm(Context* ctx, int rank, int size)
      : ctx_(ctx), rank_(rank), size_(size) {}

  Context* ctx_;
  int rank_;
  int size_;
};

/// Owns the mailboxes and the rank threads.
class Context {
 public:
  /// Run `body` on `nranks` ranks (threads); joins all before returning.
  /// Exceptions thrown by any rank are captured and the first is rethrown.
  static void run(int nranks, const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  explicit Context(int nranks);

  void post(int dest, Message message);
  Message take(int dest, int source, int tag);
  bool peek(int dest, int source, int tag);
  void barrier_wait();
  /// Declares a rank dead (its body threw) and wakes every blocked peer so
  /// sends, receives and barriers involving it fail fast.
  void mark_dead(int rank);
  bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::atomic<bool>> dead_;
  std::atomic<int> dead_count_{0};

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace cstuner::minimpi
