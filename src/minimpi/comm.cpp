#include "minimpi/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/obs.hpp"

namespace cstuner::minimpi {

const char* comm_status_name(CommStatus status) {
  switch (status) {
    case CommStatus::kOk:
      return "ok";
    case CommStatus::kPeerDead:
      return "peer_dead";
    case CommStatus::kTimedOut:
      return "timed_out";
  }
  return "?";
}

bool MembershipView::contains(int rank) const {
  return std::binary_search(live.begin(), live.end(), rank);
}

namespace {

std::size_t live_index_of(const std::vector<int>& live, int rank) {
  const auto it = std::lower_bound(live.begin(), live.end(), rank);
  CSTUNER_CHECK_MSG(it != live.end() && *it == rank,
                    "rank is not in the live membership set");
  return static_cast<std::size_t>(it - live.begin());
}

}  // namespace

int MembershipView::left_neighbor_of(int rank) const {
  CSTUNER_CHECK(live.size() >= 2);
  const std::size_t i = live_index_of(live, rank);
  return live[(i + live.size() - 1) % live.size()];
}

int MembershipView::right_neighbor_of(int rank) const {
  CSTUNER_CHECK(live.size() >= 2);
  const std::size_t i = live_index_of(live, rank);
  return live[(i + 1) % live.size()];
}

void Comm::send(int dest, int tag, std::vector<std::uint8_t> payload) {
  if (try_send(dest, tag, std::move(payload)) == CommStatus::kPeerDead) {
    throw Error("minimpi: send to dead rank " + std::to_string(dest));
  }
}

CommStatus Comm::try_send(int dest, int tag,
                          std::vector<std::uint8_t> payload) {
  CSTUNER_CHECK(dest >= 0 && dest < size_);
  if (ctx_->is_dead(dest)) {
    CSTUNER_OBS_COUNT("minimpi.peer_dead", 1);
    return CommStatus::kPeerDead;
  }
  CSTUNER_OBS_COUNT("minimpi.sends", 1);
  CSTUNER_OBS_COUNT("minimpi.bytes_sent", payload.size());
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload = std::move(payload);
  ctx_->post(dest, std::move(m));
  return CommStatus::kOk;
}

Message Comm::recv(int source, int tag) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  // The span shows how long this rank sat blocked on its peer — the
  // island-imbalance signal in a trace.
  CSTUNER_TRACE_SPAN("comm", "minimpi.recv_wait");
  CSTUNER_OBS_COUNT("minimpi.recvs", 1);
  return ctx_->take(rank_, source, tag);
}

RecvOutcome Comm::try_recv(int source, int tag) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  CSTUNER_TRACE_SPAN("comm", "minimpi.recv_wait");
  CSTUNER_OBS_COUNT("minimpi.recvs", 1);
  RecvOutcome out;
  out.status = ctx_->try_take(rank_, source, tag, nullptr, out.message);
  if (out.status == CommStatus::kPeerDead) {
    CSTUNER_OBS_COUNT("minimpi.peer_dead", 1);
  }
  return out;
}

RecvOutcome Comm::try_recv(int source, int tag,
                           std::chrono::milliseconds deadline) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  CSTUNER_TRACE_SPAN("comm", "minimpi.recv_wait");
  CSTUNER_OBS_COUNT("minimpi.recvs", 1);
  const auto until = std::chrono::steady_clock::now() + deadline;
  RecvOutcome out;
  out.status = ctx_->try_take(rank_, source, tag, &until, out.message);
  if (out.status == CommStatus::kPeerDead) {
    CSTUNER_OBS_COUNT("minimpi.peer_dead", 1);
  }
  return out;
}

bool Comm::probe(int source, int tag) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  return ctx_->peek(rank_, source, tag);
}

void Comm::barrier() {
  CSTUNER_TRACE_SPAN("comm", "minimpi.barrier");
  CSTUNER_OBS_COUNT("minimpi.barriers", 1);
  if (ctx_->options().recover_killed_ranks) {
    (void)ctx_->membership_sync(rank_);
    return;
  }
  ctx_->barrier_wait();
}

MembershipView Comm::sync_membership() {
  CSTUNER_TRACE_SPAN("comm", "minimpi.sync_membership");
  CSTUNER_OBS_COUNT("minimpi.membership_syncs", 1);
  return ctx_->membership_sync(rank_);
}

MembershipView Comm::membership() const {
  return ctx_->membership_snapshot();
}

bool Comm::is_alive(int rank) const {
  CSTUNER_CHECK(rank >= 0 && rank < size_);
  return !ctx_->is_dead(rank);
}

std::vector<double> Comm::allgather(double value) {
  // Simple ring allgather: everyone sends to everyone (size is small — the
  // GA uses a handful of sub-populations).
  constexpr int kTag = 0x7fffff00;
  for (int dest = 0; dest < size_; ++dest) {
    if (dest == rank_) continue;
    send_values<double>(dest, kTag, {value});
  }
  std::vector<double> out(static_cast<std::size_t>(size_), value);
  for (int src = 0; src < size_; ++src) {
    if (src == rank_) continue;
    auto v = recv_values<double>(src, kTag);
    CSTUNER_CHECK(v.size() == 1);
    out[static_cast<std::size_t>(src)] = v[0];
  }
  return out;
}

Context::Context(int nranks, RunOptions options)
    : nranks_(nranks),
      options_(options),
      dead_(static_cast<std::size_t>(nranks)),
      sync_arrived_(static_cast<std::size_t>(nranks), 0) {
  CSTUNER_CHECK(nranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Context::mark_dead(int rank) {
  dead_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
  dead_count_.fetch_add(1, std::memory_order_acq_rel);
  // Lock-then-notify so a peer that checked the flag just before it was set
  // cannot go to sleep and miss the wakeup.
  for (auto& box : mailboxes_) {
    { std::lock_guard<std::mutex> lock(box->mutex); }
    box->cv.notify_all();
  }
  { std::lock_guard<std::mutex> lock(barrier_mutex_); }
  barrier_cv_.notify_all();
  // A membership-sync round waiting on this rank can now complete without
  // it; drop any stale arrival and re-evaluate the round.
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    sync_arrived_[static_cast<std::size_t>(rank)] = 0;
    (void)sync_try_complete_locked();
  }
  sync_cv_.notify_all();
}

void Context::post(int dest, Message message) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

Message Context::take(int dest, int source, int tag) {
  Message out;
  if (try_take(dest, source, tag, nullptr, out) == CommStatus::kPeerDead) {
    throw Error("minimpi: recv from dead rank " + std::to_string(source));
  }
  return out;
}

CommStatus Context::try_take(
    int dest, int source, int tag,
    const std::chrono::steady_clock::time_point* deadline, Message& out) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mutex);
  auto scan = [&]() -> bool {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        out = std::move(*it);
        box.messages.erase(it);
        return true;
      }
    }
    return false;
  };
  for (;;) {
    if (scan()) return CommStatus::kOk;
    // Nothing queued from `source`: if it died, nothing ever will be.
    // (Checked after the scan so messages sent before death still arrive.)
    if (is_dead(source)) return CommStatus::kPeerDead;
    if (deadline == nullptr) {
      box.cv.wait(lock);
      continue;
    }
    if (box.cv.wait_until(lock, *deadline) == std::cv_status::timeout) {
      // Final rescan: a message (or a death) that raced the deadline wins.
      if (scan()) return CommStatus::kOk;
      if (is_dead(source)) return CommStatus::kPeerDead;
      return CommStatus::kTimedOut;
    }
  }
}

bool Context::peek(int dest, int source, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (const auto& m : box.messages) {
    if (m.source == source && m.tag == tag) return true;
  }
  return false;
}

void Context::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (dead_count_.load(std::memory_order_acquire) > 0) {
    throw Error("minimpi: barrier with dead rank");
  }
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != generation ||
           dead_count_.load(std::memory_order_acquire) > 0;
  });
  if (barrier_generation_ == generation) {
    // Woken by a death, not by completion: a missing rank can never arrive.
    --barrier_arrived_;
    throw Error("minimpi: barrier with dead rank");
  }
}

bool Context::sync_try_complete_locked() {
  int live = 0;
  bool all_arrived = true;
  for (int r = 0; r < nranks_; ++r) {
    if (is_dead(r)) continue;
    ++live;
    if (!sync_arrived_[static_cast<std::size_t>(r)]) all_arrived = false;
  }
  if (live == 0 || !all_arrived) return false;
  MembershipView view;
  view.epoch = static_cast<std::uint64_t>(
      dead_count_.load(std::memory_order_acquire));
  view.live.reserve(static_cast<std::size_t>(live));
  for (int r = 0; r < nranks_; ++r) {
    if (!is_dead(r)) view.live.push_back(r);
  }
  sync_view_ = std::move(view);
  std::fill(sync_arrived_.begin(), sync_arrived_.end(), 0);
  ++sync_generation_;
  return true;
}

MembershipView Context::membership_sync(int rank) {
  std::unique_lock<std::mutex> lock(sync_mutex_);
  CSTUNER_CHECK(!is_dead(rank));
  sync_arrived_[static_cast<std::size_t>(rank)] = 1;
  const std::uint64_t round = sync_generation_;
  if (sync_try_complete_locked()) {
    sync_cv_.notify_all();
    return sync_view_;
  }
  // Wait for this round to complete (by the last live arrival, or by a
  // death that makes the remaining arrivals sufficient). The next round
  // cannot complete before this rank re-enters, so on wakeup sync_view_
  // is exactly this round's published view.
  sync_cv_.wait(lock, [&] { return sync_generation_ != round; });
  return sync_view_;
}

MembershipView Context::membership_snapshot() const {
  MembershipView view;
  view.epoch = static_cast<std::uint64_t>(
      dead_count_.load(std::memory_order_acquire));
  for (int r = 0; r < nranks_; ++r) {
    if (!is_dead(r)) view.live.push_back(r);
  }
  return view;
}

void Context::run(int nranks, const std::function<void(Comm&)>& body) {
  run(nranks, RunOptions{}, body);
}

void Context::run(int nranks, const RunOptions& options,
                  const std::function<void(Comm&)>& body) {
  Context ctx(nranks, options);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&ctx, r, nranks);
      try {
        body(comm);
      } catch (const RankKilled&) {
        // An injected crash: in recoverable runs the death is the whole
        // point — record it and let the survivors carry on.
        if (!options.recover_killed_ranks) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
        ctx.mark_dead(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Fail loudly: peers blocked on this rank get an error, not a hang.
        ctx.mark_dead(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace cstuner::minimpi
