#include "minimpi/comm.hpp"

#include <exception>
#include <thread>

#include "obs/obs.hpp"

namespace cstuner::minimpi {

void Comm::send(int dest, int tag, std::vector<std::uint8_t> payload) {
  CSTUNER_CHECK(dest >= 0 && dest < size_);
  if (ctx_->is_dead(dest)) {
    throw Error("minimpi: send to dead rank " + std::to_string(dest));
  }
  CSTUNER_OBS_COUNT("minimpi.sends", 1);
  CSTUNER_OBS_COUNT("minimpi.bytes_sent", payload.size());
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.payload = std::move(payload);
  ctx_->post(dest, std::move(m));
}

Message Comm::recv(int source, int tag) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  // The span shows how long this rank sat blocked on its peer — the
  // island-imbalance signal in a trace.
  CSTUNER_TRACE_SPAN("comm", "minimpi.recv_wait");
  CSTUNER_OBS_COUNT("minimpi.recvs", 1);
  return ctx_->take(rank_, source, tag);
}

bool Comm::probe(int source, int tag) {
  CSTUNER_CHECK(source >= 0 && source < size_);
  return ctx_->peek(rank_, source, tag);
}

void Comm::barrier() {
  CSTUNER_TRACE_SPAN("comm", "minimpi.barrier");
  CSTUNER_OBS_COUNT("minimpi.barriers", 1);
  ctx_->barrier_wait();
}

std::vector<double> Comm::allgather(double value) {
  // Simple ring allgather: everyone sends to everyone (size is small — the
  // GA uses a handful of sub-populations).
  constexpr int kTag = 0x7fffff00;
  for (int dest = 0; dest < size_; ++dest) {
    if (dest == rank_) continue;
    send_values<double>(dest, kTag, {value});
  }
  std::vector<double> out(static_cast<std::size_t>(size_), value);
  for (int src = 0; src < size_; ++src) {
    if (src == rank_) continue;
    auto v = recv_values<double>(src, kTag);
    CSTUNER_CHECK(v.size() == 1);
    out[static_cast<std::size_t>(src)] = v[0];
  }
  return out;
}

Context::Context(int nranks)
    : nranks_(nranks), dead_(static_cast<std::size_t>(nranks)) {
  CSTUNER_CHECK(nranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Context::mark_dead(int rank) {
  dead_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
  dead_count_.fetch_add(1, std::memory_order_acq_rel);
  // Lock-then-notify so a peer that checked the flag just before it was set
  // cannot go to sleep and miss the wakeup.
  for (auto& box : mailboxes_) {
    { std::lock_guard<std::mutex> lock(box->mutex); }
    box->cv.notify_all();
  }
  { std::lock_guard<std::mutex> lock(barrier_mutex_); }
  barrier_cv_.notify_all();
}

void Context::post(int dest, Message message) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.notify_all();
}

Message Context::take(int dest, int source, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message m = std::move(*it);
        box.messages.erase(it);
        return m;
      }
    }
    // Nothing queued from `source`: if it died, nothing ever will be.
    // (Checked after the scan so messages sent before death still arrive.)
    if (is_dead(source)) {
      throw Error("minimpi: recv from dead rank " + std::to_string(source));
    }
    box.cv.wait(lock);
  }
}

bool Context::peek(int dest, int source, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (const auto& m : box.messages) {
    if (m.source == source && m.tag == tag) return true;
  }
  return false;
}

void Context::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (dead_count_.load(std::memory_order_acquire) > 0) {
    throw Error("minimpi: barrier with dead rank");
  }
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != generation ||
           dead_count_.load(std::memory_order_acquire) > 0;
  });
  if (barrier_generation_ == generation) {
    // Woken by a death, not by completion: a missing rank can never arrive.
    --barrier_arrived_;
    throw Error("minimpi: barrier with dead rank");
  }
}

void Context::run(int nranks, const std::function<void(Comm&)>& body) {
  Context ctx(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&ctx, r, nranks);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Fail loudly: peers blocked on this rank get an error, not a hang.
        ctx.mark_dead(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace cstuner::minimpi
