#pragma once
// A small textual stencil-description language, so downstream users can tune
// kernels that are not part of the built-in suite without writing C++. The
// paper positions csTuner as a backend for stencil DSLs (§VI); this is the
// minimal front door for that integration.
//
// Grammar (line oriented, '#' starts a comment):
//
//   stencil <name>
//   grid <nx> <ny> <nz>
//   arrays <inputs> <outputs>
//   flops <per-point-flops>          # optional; defaults to the tap budget
//   star <array> <order> <weight>    # star taps (2*order*3+1 in 3-D)
//   box <array> <weight>             # 27-point order-1 box taps
//   tap <array> <dx> <dy> <dz> <weight>   # one explicit tap
//
// At least one tap-producing directive is required; the stencil order is
// the maximum tap offset. Unknown directives and malformed lines raise
// UsageError with the offending line number.

#include <string>

#include "stencil/stencil_spec.hpp"

namespace cstuner::stencil {

/// Parses a DSL document into a StencilSpec; throws UsageError on any
/// syntactic or semantic problem.
StencilSpec parse_stencil(const std::string& text);

/// Reads and parses a DSL file.
StencilSpec load_stencil_file(const std::string& path);

/// Renders a spec back into DSL text (round-trips through parse_stencil).
std::string to_dsl(const StencilSpec& spec);

}  // namespace cstuner::stencil
