#include "stencil/reference_kernel.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace cstuner::stencil {

Grid3::Grid3(int nx, int ny, int nz, int halo)
    : nx_(nx), ny_(ny), nz_(nz), halo_(halo) {
  CSTUNER_CHECK(nx >= 1 && ny >= 1 && nz >= 1 && halo >= 0);
  const auto total = static_cast<std::size_t>(nx + 2 * halo) *
                     static_cast<std::size_t>(ny + 2 * halo) *
                     static_cast<std::size_t>(nz + 2 * halo);
  data_.assign(total, 0.0);
}

void Grid3::fill_pattern(std::uint64_t salt) {
  for (int z = -halo_; z < nz_ + halo_; ++z) {
    for (int y = -halo_; y < ny_ + halo_; ++y) {
      for (int x = -halo_; x < nx_ + halo_; ++x) {
        // Cheap coordinate hash mapped into [0.5, 1.5): smooth enough to be
        // numerically benign, varied enough to catch indexing bugs.
        std::uint64_t h = hash_combine(
            salt, static_cast<std::uint64_t>(x + 7) * 73856093ULL);
        h = hash_combine(h, static_cast<std::uint64_t>(y + 7) * 19349663ULL);
        h = hash_combine(h, static_cast<std::uint64_t>(z + 7) * 83492791ULL);
        at(x, y, z) = 0.5 + static_cast<double>(h % 1024) / 1024.0;
      }
    }
  }
}

void Grid3::fill(double value) {
  for (auto& v : data_) v = value;
}

double Grid3::max_abs_diff(const Grid3& a, const Grid3& b) {
  CSTUNER_CHECK(a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_);
  double worst = 0.0;
  for (int z = 0; z < a.nz_; ++z) {
    for (int y = 0; y < a.ny_; ++y) {
      for (int x = 0; x < a.nx_; ++x) {
        worst = std::max(worst, std::fabs(a.at(x, y, z) - b.at(x, y, z)));
      }
    }
  }
  return worst;
}

GridSet make_grids(const StencilSpec& spec) {
  GridSet grids;
  for (int a = 0; a < spec.n_inputs; ++a) {
    Grid3 g(spec.grid[0], spec.grid[1], spec.grid[2], spec.order);
    g.fill_pattern(0x5eed0000ULL + static_cast<std::uint64_t>(a));
    grids.inputs.push_back(std::move(g));
  }
  for (int a = 0; a < spec.n_outputs; ++a) {
    grids.outputs.emplace_back(spec.grid[0], spec.grid[1], spec.grid[2], 0);
  }
  return grids;
}

int pointwise_rounds(const StencilSpec& spec) {
  // Each round is one multiply + one add per output array.
  return spec.pointwise_ops / (2 * spec.n_outputs);
}

double stencil_point(const StencilSpec& spec,
                     const std::vector<Grid3>& inputs, int output_index,
                     int x, int y, int z) {
  const double scale = 1.0 / static_cast<double>(output_index + 1);
  double acc = 0.0;
  for (const Tap& t : spec.taps) {
    acc += t.weight * inputs[static_cast<std::size_t>(t.array)].at(
                          x + t.dx, y + t.dy, z + t.dz);
  }
  acc *= scale;
  const int rounds = pointwise_rounds(spec);
  for (int r = 0; r < rounds; ++r) {
    acc = acc * 1.0000001 + 1e-12;  // fused multiply-add round
  }
  return acc;
}

void run_reference(const StencilSpec& spec, const std::vector<Grid3>& inputs,
                   std::vector<Grid3>& outputs) {
  CSTUNER_CHECK(static_cast<int>(inputs.size()) == spec.n_inputs);
  CSTUNER_CHECK(static_cast<int>(outputs.size()) == spec.n_outputs);
  const int nx = outputs[0].nx();
  const int ny = outputs[0].ny();
  const int nz = outputs[0].nz();
  for (int o = 0; o < spec.n_outputs; ++o) {
    auto& out = outputs[static_cast<std::size_t>(o)];
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          out.at(x, y, z) = stencil_point(spec, inputs, o, x, y, z);
        }
      }
    }
  }
}

void copy_interior(const Grid3& from, Grid3& to) {
  CSTUNER_CHECK(from.nx() == to.nx() && from.ny() == to.ny() &&
                from.nz() == to.nz());
  for (int z = 0; z < from.nz(); ++z) {
    for (int y = 0; y < from.ny(); ++y) {
      for (int x = 0; x < from.nx(); ++x) {
        to.at(x, y, z) = from.at(x, y, z);
      }
    }
  }
}

void run_reference_steps(const StencilSpec& spec, GridSet& grids,
                         int steps) {
  CSTUNER_CHECK_MSG(spec.n_inputs == 1 && spec.n_outputs == 1,
                    "temporal stepping needs a single in/out grid pair");
  CSTUNER_CHECK(steps >= 1);
  // Ping-pong: `current` carries the evolving state (halo = fixed initial
  // boundary); the output grid receives each step's interior.
  std::vector<Grid3> current = {grids.inputs[0]};
  for (int t = 0; t < steps; ++t) {
    run_reference(spec, current, grids.outputs);
    if (t + 1 < steps) copy_interior(grids.outputs[0], current[0]);
  }
}

}  // namespace cstuner::stencil
