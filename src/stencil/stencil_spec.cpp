#include "stencil/stencil_spec.hpp"

#include "common/error.hpp"

namespace cstuner::stencil {

std::vector<Tap> make_star_taps(int order, int array, double base_weight) {
  CSTUNER_CHECK(order >= 1);
  std::vector<Tap> taps;
  taps.push_back({0, 0, 0, array, base_weight});
  for (int r = 1; r <= order; ++r) {
    const double w = base_weight / (2.0 * r);
    taps.push_back({r, 0, 0, array, w});
    taps.push_back({-r, 0, 0, array, w});
    taps.push_back({0, r, 0, array, w});
    taps.push_back({0, -r, 0, array, w});
    taps.push_back({0, 0, r, array, w});
    taps.push_back({0, 0, -r, array, w});
  }
  return taps;
}

std::vector<Tap> make_box_taps(int array, double base_weight) {
  std::vector<Tap> taps;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int manhattan = (dx != 0) + (dy != 0) + (dz != 0);
        const double w = base_weight / (1 << manhattan);
        taps.push_back({dx, dy, dz, array, w});
      }
    }
  }
  return taps;
}

}  // namespace cstuner::stencil
