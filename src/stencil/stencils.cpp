#include "stencil/stencils.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cstuner::stencil {

namespace {

/// Distributes taps across several input arrays: compound stencils (hypterm,
/// addsgd*, rhs4center) read many grids with star patterns of the stencil's
/// order.
std::vector<Tap> make_compound_taps(int order, int n_inputs) {
  std::vector<Tap> taps;
  for (int a = 0; a < n_inputs; ++a) {
    // Alternate full star / axis-only pattern so arrays differ in weight.
    auto part = make_star_taps(order, a, 1.0 / (a + 1.0));
    taps.insert(taps.end(), part.begin(), part.end());
  }
  return taps;
}

/// Per-point FLOPs implied by the taps: one multiply + one add per tap
/// per output array, minus the final add, plus pointwise ops.
int tap_flops(const StencilSpec& s) {
  return static_cast<int>(s.taps.size()) * 2 * s.n_outputs + s.pointwise_ops;
}

StencilSpec finalize(StencilSpec s) {
  // The Table III FLOP number is authoritative; whatever the taps do not
  // account for becomes pointwise work so total per-point FLOPs match.
  const int from_taps = static_cast<int>(s.taps.size()) * 2 * s.n_outputs;
  s.pointwise_ops = std::max(0, s.flops - from_taps);
  CSTUNER_CHECK(tap_flops(s) >= s.flops);
  CSTUNER_CHECK(s.n_inputs + s.n_outputs == s.io_arrays);
  return s;
}

}  // namespace

const std::vector<std::string>& stencil_names() {
  static const std::vector<std::string> names = {
      "j3d7pt",  "j3d27pt", "helmholtz", "cheby",
      "hypterm", "addsgd4", "addsgd6",   "rhs4center"};
  return names;
}

StencilSpec make_stencil(const std::string& name) {
  StencilSpec s;
  s.name = name;
  if (name == "j3d7pt") {
    // 7-point Jacobi, order 1, 10 FLOPs, in/out pair.
    s.grid = {512, 512, 512};
    s.order = 1;
    s.flops = 10;
    s.io_arrays = 2;
    s.n_inputs = 1;
    s.n_outputs = 1;
    s.shape = Shape::kStar;
    s.taps = make_star_taps(1, 0, 1.0);
  } else if (name == "j3d27pt") {
    // 27-point Jacobi, order-1 box, 32 FLOPs.
    s.grid = {512, 512, 512};
    s.order = 1;
    s.flops = 32;
    s.io_arrays = 2;
    s.n_inputs = 1;
    s.n_outputs = 1;
    s.shape = Shape::kBox;
    s.taps = make_box_taps(0, 1.0);
    // 27 taps would imply 54 FLOPs with mul+add each; the real kernel folds
    // shared coefficients. Keep the 27-point access pattern but the Table
    // III FLOP count (the model uses s.flops, the executor uses the taps).
  } else if (name == "helmholtz") {
    // Order-2 star (13-point), 17 FLOPs.
    s.grid = {512, 512, 512};
    s.order = 2;
    s.flops = 17;
    s.io_arrays = 2;
    s.n_inputs = 1;
    s.n_outputs = 1;
    s.shape = Shape::kStar;
    s.taps = make_star_taps(2, 0, 0.5);
  } else if (name == "cheby") {
    // Chebyshev smoother: order 1, 5 arrays (3 in / 2 out), 38 FLOPs.
    s.grid = {512, 512, 512};
    s.order = 1;
    s.flops = 38;
    s.io_arrays = 5;
    s.n_inputs = 3;
    s.n_outputs = 2;
    s.shape = Shape::kCompound;
    s.taps = make_compound_taps(1, 3);
  } else if (name == "hypterm") {
    // Compressible-flow flux term: order 4, 13 arrays (9 in / 4 out).
    s.grid = {320, 320, 320};
    s.order = 4;
    s.flops = 358;
    s.io_arrays = 13;
    s.n_inputs = 9;
    s.n_outputs = 4;
    s.shape = Shape::kCompound;
    s.taps = make_compound_taps(4, 9);
  } else if (name == "addsgd4") {
    // SW4 4th-order artificial dissipation: order 2, 10 arrays (6/4).
    s.grid = {320, 320, 320};
    s.order = 2;
    s.flops = 373;
    s.io_arrays = 10;
    s.n_inputs = 6;
    s.n_outputs = 4;
    s.shape = Shape::kCompound;
    s.taps = make_compound_taps(2, 6);
  } else if (name == "addsgd6") {
    // SW4 6th-order dissipation: order 3, 10 arrays (6/4).
    s.grid = {320, 320, 320};
    s.order = 3;
    s.flops = 626;
    s.io_arrays = 10;
    s.n_inputs = 6;
    s.n_outputs = 4;
    s.shape = Shape::kCompound;
    s.taps = make_compound_taps(3, 6);
  } else if (name == "rhs4center") {
    // SW4 RHS interior: order 2, 8 arrays (5 in / 3 out), 666 FLOPs.
    s.grid = {320, 320, 320};
    s.order = 2;
    s.flops = 666;
    s.io_arrays = 8;
    s.n_inputs = 5;
    s.n_outputs = 3;
    s.shape = Shape::kCompound;
    s.taps = make_compound_taps(2, 5);
  } else {
    throw UsageError("unknown stencil: " + name);
  }
  return finalize(std::move(s));
}

std::vector<StencilSpec> all_stencils() {
  std::vector<StencilSpec> out;
  for (const auto& name : stencil_names()) out.push_back(make_stencil(name));
  return out;
}

StencilSpec make_random_stencil(Rng& rng,
                                const RandomStencilConfig& config) {
  CSTUNER_CHECK(config.min_order >= 1 && config.max_order >= config.min_order);
  CSTUNER_CHECK(config.grid > 2 * config.max_order);
  StencilSpec s;
  const auto order = static_cast<int>(
      rng.uniform_int(config.min_order, config.max_order));
  const auto n_inputs = static_cast<int>(
      rng.uniform_int(config.min_inputs, config.max_inputs));
  const auto n_outputs = static_cast<int>(
      rng.uniform_int(config.min_outputs, config.max_outputs));
  s.name = "rand_o" + std::to_string(order) + "_i" +
           std::to_string(n_inputs) + "_o" + std::to_string(n_outputs) +
           "_" + std::to_string(rng.bounded(1 << 20));
  s.grid = {config.grid, config.grid, config.grid};
  s.order = order;
  s.n_inputs = n_inputs;
  s.n_outputs = n_outputs;
  s.io_arrays = n_inputs + n_outputs;
  s.shape = n_inputs > 1 ? Shape::kCompound
                         : (rng.bernoulli(0.3) && order == 1 ? Shape::kBox
                                                             : Shape::kStar);
  if (s.shape == Shape::kBox) {
    s.taps = make_box_taps(0, 1.0);
  } else {
    for (int a = 0; a < n_inputs; ++a) {
      // Vary the per-array order so arrays genuinely differ.
      const auto array_order =
          static_cast<int>(rng.uniform_int(1, order));
      auto part = make_star_taps(a == 0 ? order : array_order, a,
                                 1.0 / (a + 1.0));
      s.taps.insert(s.taps.end(), part.begin(), part.end());
    }
  }
  const int tap_flops = static_cast<int>(s.taps.size()) * 2 * n_outputs;
  s.flops = tap_flops + static_cast<int>(rng.bounded(256)) * 2 * n_outputs;
  return finalize(std::move(s));
}

StencilSpec scaled_stencil(const std::string& name, int scale) {
  CSTUNER_CHECK(scale >= 4);
  StencilSpec s = make_stencil(name);
  CSTUNER_CHECK_MSG(scale > 2 * s.order, "grid too small for stencil order");
  s.grid = {scale, scale, scale};
  return s;
}

}  // namespace cstuner::stencil
