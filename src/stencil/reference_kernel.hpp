#pragma once
// Naive CPU reference execution of a StencilSpec. This is the correctness
// oracle: the tiled executor (src/exec) must reproduce these results
// bit-for-bit for every parameter setting the tuner may select, mirroring
// the paper's assumption that its code generator is semantics-preserving.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::stencil {

/// 3-D double grid with a halo of ghost cells on every face.
/// Interior indices run [0, n*) per dimension; halo indices extend to
/// [-halo, n + halo). x is the unit-stride dimension.
class Grid3 {
 public:
  Grid3(int nx, int ny, int nz, int halo);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int halo() const { return halo_; }

  double& at(int x, int y, int z) { return data_[offset(x, y, z)]; }
  double at(int x, int y, int z) const { return data_[offset(x, y, z)]; }

  /// Fills interior + halo with a deterministic function of the coordinates
  /// (distinct per `salt`, so every input array differs).
  void fill_pattern(std::uint64_t salt);

  void fill(double value);

  /// Max absolute difference over the interior.
  static double max_abs_diff(const Grid3& a, const Grid3& b);

  std::size_t size() const { return data_.size(); }

 private:
  std::size_t offset(int x, int y, int z) const {
    CSTUNER_CHECK(x >= -halo_ && x < nx_ + halo_);
    CSTUNER_CHECK(y >= -halo_ && y < ny_ + halo_);
    CSTUNER_CHECK(z >= -halo_ && z < nz_ + halo_);
    const std::size_t sx = static_cast<std::size_t>(x + halo_);
    const std::size_t sy = static_cast<std::size_t>(y + halo_);
    const std::size_t sz = static_cast<std::size_t>(z + halo_);
    const auto ldx = static_cast<std::size_t>(nx_ + 2 * halo_);
    const auto ldy = static_cast<std::size_t>(ny_ + 2 * halo_);
    return (sz * ldy + sy) * ldx + sx;
  }

  int nx_, ny_, nz_, halo_;
  std::vector<double> data_;
};

/// Input/output grid sets sized for a spec (possibly with overridden grid
/// dims for small-scale testing).
struct GridSet {
  std::vector<Grid3> inputs;
  std::vector<Grid3> outputs;
};

/// Allocates and deterministically initializes grids for `spec`.
GridSet make_grids(const StencilSpec& spec);

/// The exact per-point update rule shared by the reference kernel and the
/// tiled executor: weighted taps accumulated per output array, then
/// `pointwise_rounds(spec)` fused multiply-add rounds.
double stencil_point(const StencilSpec& spec,
                     const std::vector<Grid3>& inputs, int output_index,
                     int x, int y, int z);

/// Number of pointwise FMA rounds per output point implied by the FLOP
/// budget left over after the taps.
int pointwise_rounds(const StencilSpec& spec);

/// One full naive sweep: every interior point of every output array.
void run_reference(const StencilSpec& spec, const std::vector<Grid3>& inputs,
                   std::vector<Grid3>& outputs);

/// `steps` sequential sweeps with ping-pong semantics for single-grid
/// stencils (n_inputs == n_outputs == 1): each step reads the previous
/// step's interior while the halo keeps the initial boundary values
/// (Dirichlet-style fixed ghost cells). This is the correctness oracle for
/// the temporal-blocking extension. Result lands in grids.outputs[0].
void run_reference_steps(const StencilSpec& spec, GridSet& grids, int steps);

/// Copies `from`'s interior into `to`'s interior (halo untouched).
void copy_interior(const Grid3& from, Grid3& to);

}  // namespace cstuner::stencil
