#include "stencil/dsl.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cstuner::stencil {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw UsageError("stencil DSL, line " + std::to_string(line_no) + ": " +
                   message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

long to_int(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    fail(line_no, "expected integer, got '" + token + "'");
  }
  return v;
}

double to_double(const std::string& token, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    fail(line_no, "expected number, got '" + token + "'");
  }
  return v;
}

}  // namespace

StencilSpec parse_stencil(const std::string& text) {
  StencilSpec spec;
  spec.grid = {0, 0, 0};
  spec.n_inputs = 1;
  spec.n_outputs = 1;
  bool saw_name = false, saw_grid = false;
  int declared_flops = -1;

  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    auto expect_args = [&](std::size_t n) {
      if (tokens.size() != n + 1) {
        fail(line_no, directive + " expects " + std::to_string(n) +
                          " argument(s), got " +
                          std::to_string(tokens.size() - 1));
      }
    };
    if (directive == "stencil") {
      expect_args(1);
      spec.name = tokens[1];
      saw_name = true;
    } else if (directive == "grid") {
      expect_args(3);
      for (int d = 0; d < 3; ++d) {
        const long extent = to_int(tokens[static_cast<std::size_t>(d) + 1],
                                   line_no);
        if (extent < 4) fail(line_no, "grid extents must be >= 4");
        spec.grid[static_cast<std::size_t>(d)] = static_cast<int>(extent);
      }
      saw_grid = true;
    } else if (directive == "arrays") {
      expect_args(2);
      const long in = to_int(tokens[1], line_no);
      const long out = to_int(tokens[2], line_no);
      if (in < 1 || out < 1) fail(line_no, "need >= 1 input and output");
      spec.n_inputs = static_cast<int>(in);
      spec.n_outputs = static_cast<int>(out);
    } else if (directive == "flops") {
      expect_args(1);
      declared_flops = static_cast<int>(to_int(tokens[1], line_no));
      if (declared_flops < 1) fail(line_no, "flops must be positive");
    } else if (directive == "star") {
      expect_args(3);
      const long array = to_int(tokens[1], line_no);
      const long order = to_int(tokens[2], line_no);
      const double weight = to_double(tokens[3], line_no);
      if (order < 1) fail(line_no, "star order must be >= 1");
      const auto taps = make_star_taps(static_cast<int>(order),
                                       static_cast<int>(array), weight);
      spec.taps.insert(spec.taps.end(), taps.begin(), taps.end());
    } else if (directive == "box") {
      expect_args(2);
      const long array = to_int(tokens[1], line_no);
      const double weight = to_double(tokens[2], line_no);
      const auto taps = make_box_taps(static_cast<int>(array), weight);
      spec.taps.insert(spec.taps.end(), taps.begin(), taps.end());
    } else if (directive == "tap") {
      expect_args(5);
      Tap tap;
      tap.array = static_cast<int>(to_int(tokens[1], line_no));
      tap.dx = static_cast<int>(to_int(tokens[2], line_no));
      tap.dy = static_cast<int>(to_int(tokens[3], line_no));
      tap.dz = static_cast<int>(to_int(tokens[4], line_no));
      tap.weight = to_double(tokens[5], line_no);
      spec.taps.push_back(tap);
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  if (!saw_name) throw UsageError("stencil DSL: missing 'stencil <name>'");
  if (!saw_grid) throw UsageError("stencil DSL: missing 'grid nx ny nz'");
  if (spec.taps.empty()) {
    throw UsageError("stencil DSL: no taps (use star/box/tap)");
  }

  // Semantic checks + derived fields.
  spec.io_arrays = spec.n_inputs + spec.n_outputs;
  int order = 0;
  for (const auto& t : spec.taps) {
    if (t.array < 0 || t.array >= spec.n_inputs) {
      throw UsageError("stencil DSL: tap references array " +
                       std::to_string(t.array) + " but there are only " +
                       std::to_string(spec.n_inputs) + " inputs");
    }
    order = std::max({order, std::abs(t.dx), std::abs(t.dy), std::abs(t.dz)});
  }
  spec.order = std::max(order, 1);
  for (int d = 0; d < 3; ++d) {
    if (spec.grid[static_cast<std::size_t>(d)] <= 2 * spec.order) {
      throw UsageError("stencil DSL: grid too small for the stencil order");
    }
  }
  spec.shape = spec.n_inputs > 1 ? Shape::kCompound : Shape::kStar;
  const int tap_flops =
      static_cast<int>(spec.taps.size()) * 2 * spec.n_outputs;
  spec.flops = declared_flops > 0 ? declared_flops : tap_flops;
  spec.pointwise_ops = std::max(0, spec.flops - tap_flops);
  return spec;
}

StencilSpec load_stencil_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot open stencil file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_stencil(buffer.str());
}

std::string to_dsl(const StencilSpec& spec) {
  std::ostringstream os;
  os << "stencil " << spec.name << '\n';
  os << "grid " << spec.grid[0] << ' ' << spec.grid[1] << ' ' << spec.grid[2]
     << '\n';
  os << "arrays " << spec.n_inputs << ' ' << spec.n_outputs << '\n';
  os << "flops " << spec.flops << '\n';
  for (const auto& t : spec.taps) {
    os << "tap " << t.array << ' ' << t.dx << ' ' << t.dy << ' ' << t.dz
       << ' ' << t.weight << '\n';
  }
  return os.str();
}

}  // namespace cstuner::stencil
