#pragma once
// Stencil specifications. A StencilSpec carries both the evaluation-relevant
// shape information of Table III (grid size, order, FLOPs per point, number
// of I/O arrays) and an executable tap description used by the CPU reference
// kernels and the tiled executor.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cstuner::stencil {

/// One neighbour access: offset into input array `array` with a weight.
struct Tap {
  int dx = 0;
  int dy = 0;
  int dz = 0;
  int array = 0;      ///< which input array is read
  double weight = 1.0;
};

/// Shape classes the paper's stencil suite mixes.
enum class Shape { kStar, kBox, kCompound };

struct StencilSpec {
  std::string name;
  std::array<int, 3> grid{};  ///< {M1 (x, unit stride), M2 (y), M3 (z)}
  int order = 1;              ///< neighbour extent per dimension
  int flops = 0;              ///< double-precision FLOPs per grid point
  int io_arrays = 2;          ///< total arrays touched (Table III column)
  int n_inputs = 1;           ///< input grids read
  int n_outputs = 1;          ///< output grids written
  Shape shape = Shape::kStar;
  std::vector<Tap> taps;      ///< executable access pattern (per output)
  int pointwise_ops = 0;      ///< extra per-point FLOPs beyond the taps

  /// Total grid points.
  std::int64_t points() const {
    return static_cast<std::int64_t>(grid[0]) * grid[1] * grid[2];
  }

  /// Total double-precision FLOPs for one sweep.
  double total_flops() const {
    return static_cast<double>(flops) * static_cast<double>(points());
  }

  /// Minimum bytes moved for one sweep assuming perfect reuse:
  /// each input array read once + each output array written once.
  double min_bytes() const {
    return static_cast<double>(io_arrays) * 8.0 *
           static_cast<double>(points());
  }

  /// FLOPs per byte at perfect reuse — used to classify compute- vs
  /// memory-bound behaviour in the GPU model.
  double arithmetic_intensity() const { return total_flops() / min_bytes(); }

  /// Distinct neighbour accesses per output point.
  std::size_t taps_per_point() const { return taps.size(); }
};

/// Builds star-shaped taps of the given order reading from `array`
/// (2*order*3 + 1 taps in 3-D).
std::vector<Tap> make_star_taps(int order, int array, double base_weight);

/// Builds order-1 box taps (27 in 3-D) reading from `array`.
std::vector<Tap> make_box_taps(int array, double base_weight);

}  // namespace cstuner::stencil
