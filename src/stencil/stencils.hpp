#pragma once
// The eight 3-D double-precision stencils of Table III (originally from
// Rawat et al. [36]). The paper uses them as opaque kernels with known grid
// size, order, FLOP count and array count; we reproduce those observable
// characteristics exactly and give each stencil an executable tap pattern of
// the right shape/order so the reference kernels and tiled executor compute
// real numerics. (The original kernels come from SW4/ExaSGD-style codes that
// are not redistributable; DESIGN.md records this substitution.)

#include <vector>

#include "common/rng.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::stencil {

/// Names, in the order the paper's figures list them.
const std::vector<std::string>& stencil_names();

/// Spec for one of the eight stencils; throws UsageError on unknown name.
StencilSpec make_stencil(const std::string& name);

/// All eight specs in paper order.
std::vector<StencilSpec> all_stencils();

/// A spec with the same pattern but a smaller grid (for tests/examples);
/// `scale` replaces each grid dimension.
StencilSpec scaled_stencil(const std::string& name, int scale);

/// Bounds for randomly generated stencils (generality fuzzing: the tuner
/// and executor must handle arbitrary patterns, not just the Table III
/// suite).
struct RandomStencilConfig {
  int min_order = 1;
  int max_order = 4;
  int min_inputs = 1;
  int max_inputs = 6;
  int min_outputs = 1;
  int max_outputs = 3;
  int grid = 64;  ///< cubic grid extent
};

/// Deterministic (seeded) random stencil: star taps of a random order over
/// a random number of input arrays, random pointwise FLOP budget.
StencilSpec make_random_stencil(Rng& rng,
                                const RandomStencilConfig& config = {});

}  // namespace cstuner::stencil
