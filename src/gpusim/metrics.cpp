#include "gpusim/metrics.hpp"

namespace cstuner::gpusim {

const char* metric_name(MetricId id) {
  static const char* kNames[kMetricCount] = {
      "achieved_occupancy", "sm_efficiency",       "ipc",
      "l1_hit_rate",        "l2_hit_rate",         "dram_read_gb",
      "dram_write_gb",      "dram_throughput_gbps", "gld_efficiency",
      "smem_bytes_per_block", "registers_per_thread", "warp_exec_efficiency",
      "stall_memory_ratio", "stall_sync_ratio",    "fp64_efficiency",
      "waves_per_grid"};
  return kNames[static_cast<std::size_t>(id)];
}

const std::vector<std::string>& metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      v.emplace_back(metric_name(static_cast<MetricId>(i)));
    }
    return v;
  }();
  return names;
}

}  // namespace cstuner::gpusim
