#include "gpusim/compute_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace cstuner::gpusim {

using namespace space;

ComputeAnalysis analyze_compute(const GpuArch& arch,
                                const stencil::StencilSpec& spec,
                                const space::Setting& setting,
                                const codegen::LaunchGeometry& geometry,
                                const OccupancyResult& occ) {
  ComputeAnalysis c;
  const bool streaming = setting.flag(kUseStreaming);
  const bool prefetch = setting.flag(kUsePrefetching);
  const bool shared = setting.flag(kUseShared);
  const bool constant = setting.flag(kUseConstant);
  const bool retiming = setting.flag(kUseRetiming);

  // --- ILP: unrolling exposes independent FMA chains; merging adds
  // independent output accumulators (register-level reuse, §II-B1/B2).
  const double unroll = static_cast<double>(
      setting.get(kUFx) * setting.get(kUFy) * setting.get(kUFz));
  const double merged = static_cast<double>(setting.points_per_thread());
  c.ilp = 1.0 + 0.22 * std::log2(unroll) + 0.08 * std::log2(merged);
  c.ilp = clamp(c.ilp, 1.0, 1.9);

  // --- Loop/index overhead shrinks with unrolling.
  c.instr_overhead = 1.0 + 0.22 / std::sqrt(unroll);

  // --- Divergence: warp lanes idle in partial tiles at the grid boundary.
  double lane_eff = 1.0;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  for (int d = 0; d < 3; ++d) {
    std::int64_t coverage;
    if (streaming && d == sd) {
      coverage = setting.get(kSB);
    } else {
      coverage = setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]);
    }
    const std::int64_t extent = spec.grid[static_cast<std::size_t>(d)];
    const std::int64_t covered =
        ceil_div<std::int64_t>(extent, coverage) * coverage;
    lane_eff *= static_cast<double>(extent) / static_cast<double>(covered);
  }
  c.divergence_eff = clamp(lane_eff, 0.3, 1.0);

  // --- Latency hiding of the FP64 pipeline: both occupancy (TLP) and ILP
  // feed the issue slots; fully hidden around occ*ilp ~ 0.5.
  const double hiding = clamp(
      0.12 + 1.6 * std::pow(occ.occupancy * c.ilp, 0.65), 0.05, 1.0);

  double eff = hiding * c.divergence_eff / c.instr_overhead;

  // Constant memory serves the (broadcast) stencil coefficients from the
  // constant cache: a win for coefficient-heavy kernels, a slight latency
  // cost for trivial ones (§II-A).
  if (constant) {
    eff *= (spec.taps.size() >= 20) ? 1.06 : 0.97;
  }
  // Retiming shortens dependent accumulation chains for high-order
  // stencils; for order-1 it only adds bookkeeping.
  if (retiming) {
    eff *= (spec.order >= 2) ? 1.07 : 0.95;
  }
  // Shared-memory pipelines insert LD/ST-unit work per tap.
  if (shared) eff *= 0.94;

  // Tail quantization: the last wave of blocks underfills the machine.
  const double slots = static_cast<double>(arch.num_sms) *
                       std::max(occ.blocks_per_sm, 1);
  const double blocks = static_cast<double>(geometry.total_blocks());
  const double waves = std::ceil(blocks / slots);
  const double fill = blocks / (waves * slots);
  eff *= clamp(fill, 0.05, 1.0);

  c.fp64_eff = clamp(eff, 1e-4, 1.0);
  c.flop_time_ms = spec.total_flops() / (arch.fp64_gflops * c.fp64_eff) / 1e6;

  // --- Barrier cost: shared-memory tiles need __syncthreads per stage;
  // streaming adds one rotation barrier per plane of the SB tile.
  if (shared) {
    double syncs_per_block = 2.0;
    if (streaming) {
      syncs_per_block = static_cast<double>(setting.get(kSB)) + 1.0;
    }
    // Barrier latency is hidden when other resident blocks can issue.
    double sync_us = 0.9 * syncs_per_block * waves /
                     std::sqrt(static_cast<double>(
                         std::max(occ.blocks_per_sm, 1)));
    if (prefetch) sync_us *= 0.45;  // overlap load with compute (§II-B3)
    c.sync_time_ms = sync_us / 1e3;
  } else if (streaming && prefetch) {
    // Prefetch still overlaps the plane-shift dependency chain.
    c.sync_time_ms = 0.0;
  }
  return c;
}

}  // namespace cstuner::gpusim
