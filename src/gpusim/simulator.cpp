#include "gpusim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace cstuner::gpusim {

KernelProfile Simulator::profile(const stencil::StencilSpec& spec,
                                 const space::Setting& setting) const {
  KernelProfile p;
  p.geometry = codegen::compute_launch_geometry(spec, setting);
  p.resources = space::estimate_resources(spec, setting);
  CSTUNER_CHECK_MSG(!p.resources.spilled,
                    "profile() requires a non-spilled setting");

  p.occupancy = compute_occupancy(arch_, p.geometry.threads_per_block(),
                                  p.resources.registers_per_thread,
                                  p.resources.shared_mem_per_block);
  if (p.occupancy.blocks_per_sm < 1) {
    throw ConstraintError(
        "kernel unlaunchable: zero blocks per SM for setting " +
        setting.to_string());
  }

  p.memory = analyze_memory(arch_, spec, setting, p.geometry, p.occupancy,
                            p.resources);
  p.compute =
      analyze_compute(arch_, spec, setting, p.geometry, p.occupancy);

  // Temporal blocking (extension): one kernel advances TF time steps.
  // Global traffic is paid once for the fused steps, compute is paid per
  // step plus redundant overlapped-halo work; report time PER TIME STEP so
  // TF variants compare directly against TF=1.
  const double tf = static_cast<double>(setting.get(space::kTemporal));
  double flop_time = p.compute.flop_time_ms;
  double sync_time = p.compute.sync_time_ms;
  double mem_time = p.memory.mem_time_ms;
  if (tf > 1.0) {
    // Overlapped tiles recompute halo wavefronts per fused step...
    const double redundancy = 1.0 + 0.15 * spec.order * (tf - 1.0);
    flop_time *= tf * redundancy;
    sync_time *= tf;
    // ...and the halo planes of deeper wavefronts are re-fetched.
    mem_time *= 1.0 + 0.10 * spec.order * (tf - 1.0);
  }

  // Compute and memory pipelines overlap; the longer one dominates and a
  // fraction of the shorter one leaks past the overlap.
  const double longest = std::max(flop_time, mem_time);
  const double shortest = std::min(flop_time, mem_time);
  double time = longest + 0.18 * shortest;
  time += sync_time;
  time += arch_.kernel_launch_us / 1e3;
  p.time_ms = time / tf;

  // --- Metric vector -------------------------------------------------------
  auto& m = p.metrics;
  m[kAchievedOccupancy] = p.occupancy.occupancy;
  {
    const double slots = static_cast<double>(arch_.num_sms) *
                         std::max(p.occupancy.blocks_per_sm, 1);
    const double blocks = static_cast<double>(p.geometry.total_blocks());
    const double waves = std::ceil(blocks / slots);
    m[kWavesPerGrid] = waves;
    m[kSmEfficiency] =
        clamp(blocks / (waves * slots), 0.0, 1.0) *
        clamp(static_cast<double>(p.geometry.total_blocks()) /
                  static_cast<double>(arch_.num_sms),
              0.0, 1.0);
  }
  m[kIpc] = p.compute.fp64_eff * p.compute.ilp;
  m[kL1HitRate] = p.memory.l1_hit_rate;
  m[kL2HitRate] = p.memory.l2_hit_rate;
  m[kDramReadGb] = p.memory.dram_read_bytes / 1e9;
  m[kDramWriteGb] = p.memory.dram_write_bytes / 1e9;
  m[kDramThroughputGbps] =
      (p.memory.dram_read_bytes + p.memory.dram_write_bytes) / 1e6 /
      std::max(p.time_ms, 1e-9);
  m[kGldEfficiency] = p.memory.coalescing_eff;
  m[kSmemBytesPerBlock] =
      static_cast<double>(p.resources.shared_mem_per_block);
  m[kRegistersPerThread] =
      static_cast<double>(p.resources.registers_per_thread);
  m[kWarpExecEfficiency] = p.compute.divergence_eff;
  {
    const double total = p.compute.flop_time_ms + p.memory.mem_time_ms +
                         p.compute.sync_time_ms + 1e-12;
    m[kStallMemoryRatio] = p.memory.mem_time_ms / total;
    m[kStallSyncRatio] = p.compute.sync_time_ms / total;
  }
  m[kFp64Efficiency] =
      spec.total_flops() / 1e6 / std::max(p.time_ms, 1e-9) /
      arch_.fp64_gflops;
  return p;
}

std::uint64_t Simulator::noise_seed(const stencil::StencilSpec& spec,
                                    const space::Setting& setting,
                                    std::uint64_t run_index) const {
  std::uint64_t h = fnv1a(arch_.name.data(), arch_.name.size());
  h = hash_combine(h, fnv1a(spec.name.data(), spec.name.size()));
  h = hash_combine(h, setting.hash());
  h = hash_combine(h, run_index);
  return h;
}

double Simulator::measure_ms(const stencil::StencilSpec& spec,
                             const space::Setting& setting,
                             std::uint64_t run_index) const {
  const KernelProfile p = profile(spec, setting);
  Rng rng(noise_seed(spec, setting, run_index));
  // Multiplicative lognormal-ish noise, ~1.5% sigma, clipped at 3 sigma.
  const double z = clamp(rng.normal(), -3.0, 3.0);
  return p.time_ms * (1.0 + 0.015 * z);
}

std::array<double, kMetricCount> Simulator::measure_metrics(
    const stencil::StencilSpec& spec, const space::Setting& setting,
    std::uint64_t run_index) const {
  KernelProfile p = profile(spec, setting);
  Rng rng(noise_seed(spec, setting, run_index ^ 0xabcdef12345ULL));
  for (auto& v : p.metrics) {
    const double z = clamp(rng.normal(), -3.0, 3.0);
    v *= (1.0 + 0.01 * z);
  }
  return p.metrics;
}

}  // namespace cstuner::gpusim
