#include "gpusim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "gpusim/model_kernels.hpp"

namespace cstuner::gpusim {

namespace {

/// Metric-vector assembly from the completed profile fields. Shared by the
/// scalar and batch paths (same TU), so they agree bit for bit.
inline void assemble_metrics(const GpuArch& arch, const StencilInvariants& inv,
                             KernelProfile& p) {
  auto& m = p.metrics;
  m[kAchievedOccupancy] = p.occupancy.occupancy;
  {
    const double slots = static_cast<double>(arch.num_sms) *
                         std::max(p.occupancy.blocks_per_sm, 1);
    const double blocks = static_cast<double>(p.geometry.total_blocks());
    const double waves = std::ceil(blocks / slots);
    m[kWavesPerGrid] = waves;
    m[kSmEfficiency] =
        clamp(blocks / (waves * slots), 0.0, 1.0) *
        clamp(static_cast<double>(p.geometry.total_blocks()) /
                  static_cast<double>(arch.num_sms),
              0.0, 1.0);
  }
  m[kIpc] = p.compute.fp64_eff * p.compute.ilp;
  m[kL1HitRate] = p.memory.l1_hit_rate;
  m[kL2HitRate] = p.memory.l2_hit_rate;
  m[kDramReadGb] = p.memory.dram_read_bytes / 1e9;
  m[kDramWriteGb] = p.memory.dram_write_bytes / 1e9;
  m[kDramThroughputGbps] =
      (p.memory.dram_read_bytes + p.memory.dram_write_bytes) / 1e6 /
      std::max(p.time_ms, 1e-9);
  m[kGldEfficiency] = p.memory.coalescing_eff;
  m[kSmemBytesPerBlock] =
      static_cast<double>(p.resources.shared_mem_per_block);
  m[kRegistersPerThread] =
      static_cast<double>(p.resources.registers_per_thread);
  m[kWarpExecEfficiency] = p.compute.divergence_eff;
  {
    const double total = p.compute.flop_time_ms + p.memory.mem_time_ms +
                         p.compute.sync_time_ms + 1e-12;
    m[kStallMemoryRatio] = p.memory.mem_time_ms / total;
    m[kStallSyncRatio] = p.compute.sync_time_ms / total;
  }
  m[kFp64Efficiency] =
      inv.total_flops / 1e6 / std::max(p.time_ms, 1e-9) / arch.fp64_gflops;
}

[[noreturn]] void throw_unlaunchable(const space::Setting& setting) {
  throw ConstraintError(
      "kernel unlaunchable: zero blocks per SM for setting " +
      setting.to_string());
}

}  // namespace

const StencilInvariants& Simulator::invariants(
    const stencil::StencilSpec& spec) const {
  const std::uint64_t fp = stencil_fingerprint(arch_, spec);
  if (const StencilInvariants* last =
          inv_last_.load(std::memory_order_acquire);
      last != nullptr && last->fingerprint == fp) {
    return *last;
  }
  std::lock_guard<std::mutex> lock(inv_mutex_);
  for (const auto& entry : inv_cache_) {
    if (entry->fingerprint == fp) {
      inv_last_.store(entry.get(), std::memory_order_release);
      return *entry;
    }
  }
  inv_cache_.push_back(std::make_unique<StencilInvariants>(
      make_stencil_invariants(arch_, spec)));
  const StencilInvariants* created = inv_cache_.back().get();
  inv_last_.store(created, std::memory_order_release);
  return *created;
}

KernelProfile Simulator::profile(const stencil::StencilSpec& spec,
                                 const space::Setting& setting) const {
  const StencilInvariants& inv = invariants(spec);
  KernelProfile p;
  p.geometry = codegen::compute_launch_geometry(inv.geometry, setting);
  p.resources = space::estimate_resources_core(
      inv.order, inv.n_inputs, inv.n_outputs, setting,
      space::ResourceLimits{});
  CSTUNER_CHECK_MSG(!p.resources.spilled,
                    "profile() requires a non-spilled setting");

  p.occupancy = detail::memo_occupancy(arch_, p.geometry.threads_per_block(),
                                  p.resources.registers_per_thread,
                                  p.resources.shared_mem_per_block);
  if (p.occupancy.blocks_per_sm < 1) throw_unlaunchable(setting);

  p.memory = detail::memory_stage(arch_, inv, setting,
                                  p.geometry.total_blocks(), p.occupancy);
  p.compute = detail::compute_stage(arch_, inv, setting,
                                    p.geometry.total_blocks(), p.occupancy);
  p.time_ms = detail::combine_time_stage(inv, setting, p.memory, p.compute);
  assemble_metrics(arch_, inv, p);
  return p;
}

void Simulator::profile_batch(const stencil::StencilSpec& spec,
                              std::span<const space::Setting> settings,
                              std::span<KernelProfile> out) const {
  CSTUNER_CHECK_MSG(settings.size() == out.size(),
                    "profile_batch: output span size mismatch");
  const StencilInvariants& inv = invariants(spec);
  const std::size_t n = settings.size();
  const space::ResourceLimits limits{};

  // Stage loops over the whole batch; each stage reads the previous one's
  // results straight out of the output array. When several settings are
  // unlaunchable, which one's exception surfaces is unspecified (a scalar
  // loop would throw at the first).
  for (std::size_t i = 0; i < n; ++i) {
    out[i].geometry = codegen::compute_launch_geometry(inv.geometry,
                                                       settings[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].resources = space::estimate_resources_core(
        inv.order, inv.n_inputs, inv.n_outputs, settings[i], limits);
    CSTUNER_CHECK_MSG(!out[i].resources.spilled,
                      "profile() requires a non-spilled setting");
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].occupancy = detail::memo_occupancy(
        arch_, out[i].geometry.threads_per_block(),
        out[i].resources.registers_per_thread,
        out[i].resources.shared_mem_per_block);
    if (out[i].occupancy.blocks_per_sm < 1) throw_unlaunchable(settings[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].memory = detail::memory_stage(arch_, inv, settings[i],
                                         out[i].geometry.total_blocks(),
                                         out[i].occupancy);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].compute = detail::compute_stage(arch_, inv, settings[i],
                                           out[i].geometry.total_blocks(),
                                           out[i].occupancy);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].time_ms = detail::combine_time_stage(inv, settings[i],
                                                out[i].memory,
                                                out[i].compute);
    assemble_metrics(arch_, inv, out[i]);
  }
}

void Simulator::profile_times_impl(
    const StencilInvariants& inv, std::span<const space::Setting> settings,
    const space::ResourceUsage* precomputed_usages,
    std::span<double> out_ms) const {
  CSTUNER_CHECK_MSG(settings.size() == out_ms.size(),
                    "profile_times: output span size mismatch");
  const std::size_t n = settings.size();

  // Per-worker SoA scratch: one arena per thread, grown once to the
  // high-water mark, then alloc is a pointer bump — zero heap traffic per
  // setting in steady state. Reserve up front: alloc invalidates earlier
  // spans when it has to grow.
  thread_local Arena arena;
  arena.reset();
  arena.reserve(n * (2 * sizeof(std::int64_t) + sizeof(space::ResourceUsage) +
                     sizeof(OccupancyResult) + 64));
  auto tpb = arena.alloc<std::int64_t>(n);
  auto blocks = arena.alloc<std::int64_t>(n);
  auto occs = arena.alloc<OccupancyResult>(n);
  std::span<const space::ResourceUsage> resources;
  if (precomputed_usages != nullptr) {
    resources = {precomputed_usages, n};
  }

  for (std::size_t i = 0; i < n; ++i) {
    const codegen::LaunchGeometry g =
        codegen::compute_launch_geometry(inv.geometry, settings[i]);
    tpb[i] = g.threads_per_block();
    blocks[i] = g.total_blocks();
  }
  if (precomputed_usages == nullptr) {
    const space::ResourceLimits limits{};
    auto computed = arena.alloc<space::ResourceUsage>(n);
    for (std::size_t i = 0; i < n; ++i) {
      computed[i] = space::estimate_resources_core(
          inv.order, inv.n_inputs, inv.n_outputs, settings[i], limits);
    }
    resources = computed;
  }
  for (std::size_t i = 0; i < n; ++i) {
    CSTUNER_CHECK_MSG(!resources[i].spilled,
                      "profile() requires a non-spilled setting");
    occs[i] = detail::memo_occupancy(arch_, tpb[i],
                                resources[i].registers_per_thread,
                                resources[i].shared_mem_per_block);
    if (occs[i].blocks_per_sm < 1) throw_unlaunchable(settings[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryAnalysis memory =
        detail::memory_stage(arch_, inv, settings[i], blocks[i], occs[i]);
    const ComputeAnalysis compute =
        detail::compute_stage(arch_, inv, settings[i], blocks[i], occs[i]);
    out_ms[i] = detail::combine_time_stage(inv, settings[i], memory, compute);
  }
}

void Simulator::profile_times(const StencilInvariants& inv,
                              std::span<const space::Setting> settings,
                              std::span<double> out_ms) const {
  profile_times_impl(inv, settings, nullptr, out_ms);
}

void Simulator::profile_times(const StencilInvariants& inv,
                              std::span<const space::Setting> settings,
                              std::span<const space::ResourceUsage> usages,
                              std::span<double> out_ms) const {
  CSTUNER_CHECK_MSG(usages.size() == settings.size(),
                    "profile_times: usage span size mismatch");
  profile_times_impl(inv, settings, usages.data(), out_ms);
}

double Simulator::noisy_time_from(std::uint64_t premixed_seed,
                                  double noise_free_ms,
                                  std::uint64_t run_index) {
  Rng rng(hash_combine(premixed_seed, run_index));
  // Multiplicative lognormal-ish noise, ~1.5% sigma, clipped at 3 sigma.
  const double z = clamp(rng.normal(), -3.0, 3.0);
  return noise_free_ms * (1.0 + 0.015 * z);
}

double Simulator::noisy_time_ms(const StencilInvariants& inv,
                                std::uint64_t setting_hash,
                                double noise_free_ms,
                                std::uint64_t run_index) const {
  // Seed chain identical to the historical noise_seed(spec, setting, run):
  // hc(hc(hc(fnv(arch), fnv(spec)), setting.hash()), run) with the first
  // two links hoisted into inv.noise_seed_prefix.
  return noisy_time_from(hash_combine(inv.noise_seed_prefix, setting_hash),
                         noise_free_ms, run_index);
}

double Simulator::measure_ms(const stencil::StencilSpec& spec,
                             const space::Setting& setting,
                             std::uint64_t run_index) const {
  const StencilInvariants& inv = invariants(spec);
  const KernelProfile p = profile(spec, setting);
  return noisy_time_ms(inv, setting.hash(), p.time_ms, run_index);
}

std::array<double, kMetricCount> Simulator::measure_metrics(
    const stencil::StencilSpec& spec, const space::Setting& setting,
    std::uint64_t run_index) const {
  const StencilInvariants& inv = invariants(spec);
  KernelProfile p = profile(spec, setting);
  std::uint64_t h = hash_combine(inv.noise_seed_prefix, setting.hash());
  h = hash_combine(h, run_index ^ 0xabcdef12345ULL);
  Rng rng(h);
  for (auto& v : p.metrics) {
    const double z = clamp(rng.normal(), -3.0, 3.0);
    v *= (1.0 + 0.01 * z);
  }
  return p.metrics;
}

}  // namespace cstuner::gpusim
