#pragma once
// GPU architecture descriptors. Numbers follow the public NVIDIA whitepapers
// for the two platforms of the paper's evaluation (Tesla A100, §V-A;
// Tesla V100, §V-D).

#include <cstdint>
#include <string>

namespace cstuner::gpusim {

struct GpuArch {
  std::string name;

  int num_sms = 0;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int warp_size = 32;

  std::int64_t registers_per_sm = 65536;
  int register_alloc_granularity = 256;  ///< register file allocation unit

  std::int64_t smem_per_sm = 0;          ///< bytes usable by resident blocks
  std::int64_t smem_per_block_limit = 0; ///< bytes per block (opt-in max)

  double fp64_gflops = 0.0;   ///< peak double-precision throughput
  double dram_gbps = 0.0;     ///< peak DRAM bandwidth (GB/s)
  double l2_gbps = 0.0;       ///< aggregate L2 bandwidth (GB/s)
  std::int64_t l2_bytes = 0;
  std::int64_t l1_bytes_per_sm = 0;

  double kernel_launch_us = 4.0;  ///< host-side launch + driver overhead
  /// Latency (us) for draining one wave of blocks at full occupancy; scales
  /// the latency floor of tiny kernels.
  double wave_latency_us = 3.0;

  std::int64_t max_threads_per_block = 1024;
};

/// NVIDIA Tesla A100 (Ampere, GA100) — the paper's primary platform.
const GpuArch& a100();

/// NVIDIA Tesla V100 (Volta, GV100) — the §V-D generality platform.
const GpuArch& v100();

/// Lookup by name ("a100" / "v100"); throws UsageError otherwise.
const GpuArch& arch_by_name(const std::string& name);

}  // namespace cstuner::gpusim
