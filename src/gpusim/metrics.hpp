#pragma once
// Registry of the hardware-style metrics the simulator emits per kernel
// profile. These stand in for the Nsight Compute metrics the paper collects
// for its performance dataset (§IV-A): partially redundant views of the same
// execution, correlated with time, exactly what metric combination (Alg. 2)
// and PMNF modeling consume.

#include <cstddef>
#include <string>
#include <vector>

namespace cstuner::gpusim {

enum MetricId : std::size_t {
  kAchievedOccupancy = 0,   ///< active warps / max warps
  kSmEfficiency,            ///< SM busy fraction incl. tail waves
  kIpc,                     ///< issued-instruction throughput proxy
  kL1HitRate,
  kL2HitRate,
  kDramReadGb,              ///< per-sweep DRAM read volume
  kDramWriteGb,
  kDramThroughputGbps,      ///< achieved DRAM bandwidth
  kGldEfficiency,           ///< global-load coalescing efficiency
  kSmemBytesPerBlock,
  kRegistersPerThread,
  kWarpExecEfficiency,      ///< divergence-adjusted lane utilization
  kStallMemoryRatio,        ///< fraction of cycles stalled on memory
  kStallSyncRatio,          ///< fraction stalled on barriers
  kFp64Efficiency,          ///< achieved / peak FP64 throughput
  kWavesPerGrid,            ///< block waves needed to drain the grid
  kNumMetrics
};

constexpr std::size_t kMetricCount = static_cast<std::size_t>(kNumMetrics);

const char* metric_name(MetricId id);
const std::vector<std::string>& metric_names();

}  // namespace cstuner::gpusim
