#pragma once
// Deterministic fault oracle for the simulated evaluation pipeline.
//
// Real tuning runs lose a large fraction of candidate kernels to nvcc
// rejections, register-spill aborts, kernel hangs and flaky profiler
// readings (Cummins et al. report double-digit runtime-failure rates for
// legal workgroup configurations). This model reproduces those failure
// modes on top of the analytical simulator so the fault-tolerance layer in
// src/tuner/ can be exercised — and tested bit-for-bit — without real
// hardware misbehaving on cue.
//
// Determinism contract (the whole point): every decision is a pure function
// of (seed, setting key, attempt).
//   - *Permanent* classes (compile failure, kernel crash) draw from the
//     setting key alone: retrying a kernel nvcc rejects will never help,
//     exactly like the real tool chain.
//   - *Transient* classes (hang/timeout, profiler error) draw from
//     (setting key, attempt): a retry rolls a fresh number and can succeed,
//     like re-running a flaky profile.
//   - Extra measurement noise draws from (setting key, run index).
// Because no decision depends on evaluation order or wall-clock time, fault
// injection preserves the evaluator's bit-identical-across-worker-counts
// guarantee (docs/threading.md).

#include <cstdint>

namespace cstuner::gpusim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCompileFail,  ///< nvcc rejected the variant (permanent)
  kCrash,        ///< kernel aborted at launch/runtime (permanent)
  kTimeout,      ///< kernel hung; the watchdog killed it (transient)
  kTransient,    ///< profiler hiccup / spurious measurement error (transient)
};

const char* fault_kind_name(FaultKind kind);

struct FaultConfig {
  double compile_fail_rate = 0.0;  ///< P(permanent nvcc rejection)
  double crash_rate = 0.0;         ///< P(permanent runtime abort)
  double timeout_rate = 0.0;       ///< P(hang) per attempt
  double transient_rate = 0.0;     ///< P(profiler error) per attempt
  /// P(a timing run reads with `noise_multiplier` extra noise) per run.
  double noisy_run_rate = 0.0;
  double noise_multiplier = 1.5;
  std::uint64_t seed = 0xFA017;

  bool any() const {
    return compile_fail_rate > 0.0 || crash_rate > 0.0 || timeout_rate > 0.0 ||
           transient_rate > 0.0 || noisy_run_rate > 0.0;
  }

  /// Splits one overall fault rate across the classes in the proportions a
  /// real tune sees most: compile failures and hangs dominate, crashes and
  /// profiler errors trail. `total_rate` is clamped to [0, 0.95].
  static FaultConfig uniform(double total_rate, std::uint64_t seed = 0xFA017);

  /// CSTUNER_FAULT_RATE=<r> environment knob (the CI fault-storm gate);
  /// returns 0 when unset or unparsable.
  static double rate_from_env();
};

/// The seedable decision kernel. Stateless and thread-safe by construction.
class FaultModel {
 public:
  explicit FaultModel(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Fault class for attempt number `attempt` (1-based) of the setting
  /// identified by `key`. kNone means the attempt measures normally.
  FaultKind decide(std::uint64_t key, int attempt) const;

  /// Multiplicative noise factor for one timing run (usually 1.0; the
  /// configured multiplier when the noisy-run draw fires).
  double noise_factor(std::uint64_t key, std::uint64_t run_index) const;

 private:
  /// Uniform double in [0, 1) derived from the mixed hash of the inputs.
  double draw(std::uint64_t a, std::uint64_t b) const;

  FaultConfig config_;
};

}  // namespace cstuner::gpusim
