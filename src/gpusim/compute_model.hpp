#pragma once
// Compute-side model: FP64 pipeline throughput under latency hiding, ILP
// from unrolling/merging, loop overhead, divergence on partial tiles, and
// barrier-synchronization cost (which prefetching overlaps, §II-B3).

#include "codegen/cuda_codegen.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/occupancy.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::gpusim {

struct ComputeAnalysis {
  double flop_time_ms = 0.0;     ///< FP64-pipeline-bound time
  double sync_time_ms = 0.0;     ///< exposed barrier cost
  double ilp = 1.0;              ///< instruction-level-parallelism factor
  double instr_overhead = 1.0;   ///< loop/index overhead multiplier
  double divergence_eff = 1.0;   ///< warp lane utilization
  double fp64_eff = 0.0;         ///< achieved / peak FP64
};

ComputeAnalysis analyze_compute(const GpuArch& arch,
                                const stencil::StencilSpec& spec,
                                const space::Setting& setting,
                                const codegen::LaunchGeometry& geometry,
                                const OccupancyResult& occ);

}  // namespace cstuner::gpusim
