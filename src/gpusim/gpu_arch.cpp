#include "gpusim/gpu_arch.hpp"

#include "common/error.hpp"

namespace cstuner::gpusim {

const GpuArch& a100() {
  static const GpuArch arch = [] {
    GpuArch a;
    a.name = "a100";
    a.num_sms = 108;
    a.max_threads_per_sm = 2048;
    a.max_blocks_per_sm = 32;
    a.registers_per_sm = 65536;
    a.smem_per_sm = 164 * 1024;
    a.smem_per_block_limit = 164 * 1024;
    a.fp64_gflops = 9700.0;   // FP64 non-tensor peak
    a.dram_gbps = 1555.0;     // HBM2e
    a.l2_gbps = 4500.0;
    a.l2_bytes = 40 * 1024 * 1024;
    a.l1_bytes_per_sm = 192 * 1024;
    return a;
  }();
  return arch;
}

const GpuArch& v100() {
  static const GpuArch arch = [] {
    GpuArch a;
    a.name = "v100";
    a.num_sms = 80;
    a.max_threads_per_sm = 2048;
    a.max_blocks_per_sm = 32;
    a.registers_per_sm = 65536;
    a.smem_per_sm = 96 * 1024;
    a.smem_per_block_limit = 96 * 1024;
    a.fp64_gflops = 7000.0;
    a.dram_gbps = 900.0;
    a.l2_gbps = 2100.0;
    a.l2_bytes = 6 * 1024 * 1024;
    a.l1_bytes_per_sm = 128 * 1024;
    return a;
  }();
  return arch;
}

const GpuArch& arch_by_name(const std::string& name) {
  if (name == "a100") return a100();
  if (name == "v100") return v100();
  throw UsageError("unknown GPU architecture: " + name);
}

}  // namespace cstuner::gpusim
