#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::gpusim {

OccupancyResult compute_occupancy(const GpuArch& arch,
                                  std::int64_t threads_per_block,
                                  int registers_per_thread,
                                  std::int64_t smem_per_block) {
  CSTUNER_CHECK(threads_per_block >= 1);
  CSTUNER_CHECK(threads_per_block <= arch.max_threads_per_block);
  OccupancyResult r;

  // Warps are allocated whole.
  const std::int64_t warps_per_block =
      ceil_div<std::int64_t>(threads_per_block, arch.warp_size);
  const std::int64_t alloc_threads = warps_per_block * arch.warp_size;

  const std::int64_t by_threads = arch.max_threads_per_sm / alloc_threads;
  const std::int64_t by_blocks = arch.max_blocks_per_sm;

  // Registers are allocated in granules per warp.
  const std::int64_t regs_per_warp =
      round_up<std::int64_t>(static_cast<std::int64_t>(registers_per_thread) *
                                 arch.warp_size,
                             arch.register_alloc_granularity);
  const std::int64_t regs_per_block = regs_per_warp * warps_per_block;
  const std::int64_t by_regs =
      regs_per_block > 0 ? arch.registers_per_sm / regs_per_block
                         : arch.max_blocks_per_sm;

  const std::int64_t by_smem =
      smem_per_block > 0 ? arch.smem_per_sm / smem_per_block
                         : arch.max_blocks_per_sm;

  std::int64_t blocks = std::min({by_threads, by_blocks, by_regs, by_smem});
  blocks = std::max<std::int64_t>(blocks, 0);

  r.blocks_per_sm = static_cast<int>(blocks);
  r.active_threads_per_sm = static_cast<int>(blocks * alloc_threads);
  r.active_warps_per_sm = static_cast<int>(blocks * warps_per_block);
  const int max_warps = arch.max_threads_per_sm / arch.warp_size;
  r.occupancy = static_cast<double>(r.active_warps_per_sm) /
                static_cast<double>(max_warps);

  if (blocks == by_smem && smem_per_block > 0) {
    r.limiter = OccupancyLimiter::kSharedMem;
  } else if (blocks == by_regs) {
    r.limiter = OccupancyLimiter::kRegisters;
  } else if (blocks == by_blocks) {
    r.limiter = OccupancyLimiter::kBlocks;
  } else {
    r.limiter = OccupancyLimiter::kThreads;
  }
  return r;
}

const char* limiter_name(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kThreads:
      return "threads";
    case OccupancyLimiter::kBlocks:
      return "blocks";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMem:
      return "shared_mem";
  }
  return "?";
}

}  // namespace cstuner::gpusim
