#include "gpusim/fault_model.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/rng.hpp"

namespace cstuner::gpusim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCompileFail:
      return "compile_fail";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kTransient:
      return "transient";
  }
  return "unknown";
}

FaultConfig FaultConfig::uniform(double total_rate, std::uint64_t seed) {
  const double r = std::clamp(total_rate, 0.0, 0.95);
  FaultConfig c;
  c.compile_fail_rate = 0.35 * r;
  c.crash_rate = 0.15 * r;
  c.timeout_rate = 0.30 * r;
  c.transient_rate = 0.20 * r;
  c.noisy_run_rate = 0.5 * r;  // noisy reads are cheap; make them common
  c.seed = seed;
  return c;
}

double FaultConfig::rate_from_env() {
  const char* env = std::getenv("CSTUNER_FAULT_RATE");
  if (env == nullptr) return 0.0;
  const double rate = std::strtod(env, nullptr);
  return (rate > 0.0 && rate <= 1.0) ? rate : 0.0;
}

FaultModel::FaultModel(FaultConfig config) : config_(config) {}

double FaultModel::draw(std::uint64_t a, std::uint64_t b) const {
  // One SplitMix64 step over the mixed key gives well-distributed bits
  // without constructing a full generator per decision.
  const std::uint64_t mixed =
      SplitMix64(hash_combine(hash_combine(config_.seed, a), b)).next();
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

FaultKind FaultModel::decide(std::uint64_t key, int attempt) const {
  // Permanent draw first: keyed on the setting alone so the verdict is the
  // same on every attempt, like a deterministic nvcc rejection.
  const double p = draw(key, 0x5045524dULL /*'PERM'*/);
  if (p < config_.compile_fail_rate) return FaultKind::kCompileFail;
  if (p < config_.compile_fail_rate + config_.crash_rate) {
    return FaultKind::kCrash;
  }
  // Transient draw: keyed on (setting, attempt) so retries reroll.
  const double t =
      draw(key, hash_combine(0x5452414eULL /*'TRAN'*/,
                             static_cast<std::uint64_t>(attempt)));
  if (t < config_.timeout_rate) return FaultKind::kTimeout;
  if (t < config_.timeout_rate + config_.transient_rate) {
    return FaultKind::kTransient;
  }
  return FaultKind::kNone;
}

double FaultModel::noise_factor(std::uint64_t key,
                                std::uint64_t run_index) const {
  if (config_.noisy_run_rate <= 0.0) return 1.0;
  const double n = draw(key, hash_combine(0x4e4f4953ULL /*'NOIS'*/, run_index));
  return n < config_.noisy_run_rate ? config_.noise_multiplier : 1.0;
}

}  // namespace cstuner::gpusim
