#pragma once
// Inline per-setting stages of the analytical GPU model, parameterized on
// the hoisted StencilInvariants. Both the scalar Simulator::profile() and
// the batch SoA pipeline (profile_batch / profile_times) execute exactly
// these bodies, which is what makes "batch bit-identical to scalar" hold by
// construction rather than by test luck (docs/performance.md).
//
// The arithmetic is a line-for-line transcription of the original
// memory_model / compute_model / simulator code with only the grouping-
// preserving invariant substitutions described in stencil_invariants.hpp;
// do not re-associate floating-point expressions here.

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "gpusim/compute_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/stencil_invariants.hpp"
#include "space/setting.hpp"

namespace cstuner::gpusim::detail {

/// Memoized std::pow for the per-setting hot path. The bases cluster
/// heavily (occupancy fractions, small products), so a tiny direct-mapped
/// per-thread cache hits almost always; a miss calls libm and the result is
/// identical either way — scalar/batch bit-identity is unaffected. `Site`
/// separates the caches of distinct call sites (distinct exponents).
template <int Site>
inline double memo_pow(double base, double exponent) {
  struct Entry {
    std::uint64_t bits = 0;
    double value = 0.0;
  };
  thread_local std::array<Entry, 128> cache;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(base);
  if (bits == 0) return std::pow(base, exponent);  // sentinel collision
  Entry& e = cache[(bits * 0x9e3779b97f4a7c15ULL) >> 57];
  if (e.bits != bits) {
    e.bits = bits;
    e.value = std::pow(base, exponent);
  }
  return e.value;
}

/// Memoized std::log2 (same contract as memo_pow; inputs are small
/// integer-valued doubles like unroll products).
template <int Site>
inline double memo_log2(double x) {
  struct Entry {
    std::uint64_t bits = 0;
    double value = 0.0;
  };
  thread_local std::array<Entry, 128> cache;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  if (bits == 0) return std::log2(x);  // sentinel collision
  Entry& e = cache[(bits * 0x9e3779b97f4a7c15ULL) >> 57];
  if (e.bits != bits) {
    e.bits = bits;
    e.value = std::log2(x);
  }
  return e.value;
}

/// Memoized compute_occupancy. The key holds every input the function
/// reads — the block shape triple and the arch's allocation parameters —
/// so a hit returns exactly the bits the call would have produced and the
/// memo can never change a result (the occupancy CHECKs also re-fire
/// identically: an entry exists only for inputs that already passed them).
/// Settings cluster onto a few hundred (tpb, regs, smem) combinations per
/// tune, so the four integer divisions inside compute_occupancy are paid
/// per combination instead of per setting.
inline OccupancyResult memo_occupancy(const GpuArch& arch,
                                      std::int64_t threads_per_block,
                                      int registers_per_thread,
                                      std::int64_t smem_per_block) {
  struct Key {
    std::int64_t tpb = 0, smem = 0, regs_per_sm = 0, smem_per_sm = 0,
                 max_tpb = 0;
    int regs = 0, warp = 0, max_tps = 0, max_bps = 0, gran = 0;
    bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    bool used = false;
    OccupancyResult value;
  };
  thread_local std::array<Entry, 256> cache;
  const Key key{threads_per_block,
                smem_per_block,
                arch.registers_per_sm,
                arch.smem_per_sm,
                arch.max_threads_per_block,
                registers_per_thread,
                arch.warp_size,
                arch.max_threads_per_sm,
                arch.max_blocks_per_sm,
                arch.register_alloc_granularity};
  const std::uint64_t h =
      (static_cast<std::uint64_t>(threads_per_block) +
       (static_cast<std::uint64_t>(registers_per_thread) << 11) +
       (static_cast<std::uint64_t>(smem_per_block) << 19)) *
      0x9e3779b97f4a7c15ULL;
  Entry& e = cache[h >> 56];
  if (!e.used || !(e.key == key)) {
    e.key = key;
    e.value = compute_occupancy(arch, threads_per_block, registers_per_thread,
                                smem_per_block);
    e.used = true;
  }
  return e.value;
}

/// Memory-hierarchy stage (see memory_model.cpp for the model rationale).
inline MemoryAnalysis memory_stage(const GpuArch& arch,
                                   const StencilInvariants& inv,
                                   const space::Setting& setting,
                                   std::int64_t total_blocks,
                                   const OccupancyResult& occ) {
  using namespace space;
  MemoryAnalysis m;
  const double points = inv.points;
  const bool shared = setting.flag(kUseShared);
  const bool streaming = setting.flag(kUseStreaming);
  const bool retiming = setting.flag(kUseRetiming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;

  // Coalescing (paper §II-B2).
  const double tbx = static_cast<double>(setting.get(kTBx));
  const double bmx = static_cast<double>(setting.get(kBMx));
  double coal = 0.25 + 0.75 * std::min(1.0, tbx / 32.0);
  coal /= 1.0 + 0.75 * (std::min(bmx, 4.0) - 1.0);
  if (streaming && sd == 0) coal *= 0.5;
  m.coalescing_eff = clamp(coal, 0.25 / 2.0, 1.0);

  // Per-block tile footprint (elements incl. halo), for cache modeling.
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  double tile_elems = 1.0;
  double tile_interior = 1.0;
  for (int d = 0; d < 3; ++d) {
    double extent;
    if (streaming && d == sd) {
      extent = inv.window;  // sliding window of planes
      tile_interior *= 1.0;
    } else {
      const double interior = static_cast<double>(
          setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]));
      extent = interior + 2.0 * inv.order;
      tile_interior *= interior;
    }
    tile_elems *= extent;
  }
  const double halo_factor = tile_elems / std::max(tile_interior, 1.0);

  // L1: does the per-SM resident working set fit?
  const double block_bytes =
      tile_elems * 8.0 * static_cast<double>(inv.n_inputs);
  const double sm_working_set =
      block_bytes * std::max(occ.blocks_per_sm, 1);
  double l1_fit = static_cast<double>(arch.l1_bytes_per_sm) /
                  std::max(sm_working_set, 1.0);
  m.l1_hit_rate = 0.80 * clamp(std::sqrt(l1_fit), 0.05, 1.0);
  m.l1_hit_rate *= 0.5 + 0.5 * m.coalescing_eff;

  // L2 plane reuse: setting-independent, hoisted into the invariants.
  m.l2_hit_rate = inv.l2_hit_rate;

  // DRAM read traffic per input array (flat hoisted tap counts).
  double dram_reads = 0.0;
  for (const auto& [array, taps] : inv.tap_counts) {
    double reuse_misses = static_cast<double>(taps - 1);
    if (shared && array < inv.staged) {
      reuse_misses *= 0.02;
    } else {
      if (streaming) reuse_misses *= 0.45;
      if (retiming && inv.high_order) reuse_misses *= 0.55;
      reuse_misses *= (1.0 - m.l1_hit_rate);
      reuse_misses *= (1.0 - m.l2_hit_rate);
    }
    const double compulsory =
        1.0 + (halo_factor - 1.0) * (1.0 - m.l2_hit_rate);
    dram_reads += points * 8.0 * (compulsory + reuse_misses);
  }
  dram_reads /= (0.25 + 0.75 * m.coalescing_eff);

  double dram_writes =
      points * 8.0 * static_cast<double>(inv.n_outputs);
  dram_writes /= (0.4 + 0.6 * m.coalescing_eff);

  m.dram_read_bytes = dram_reads;
  m.dram_write_bytes = dram_writes;

  // Achievable bandwidth under the occupancy/grid-fill latency model.
  const double hiding =
      clamp(0.14 + 1.5 * memo_pow<0>(occ.occupancy, 0.62), 0.06, 1.0);
  const double grid_fill =
      clamp(static_cast<double>(total_blocks) /
                static_cast<double>(arch.num_sms),
            0.05, 1.0);
  m.achieved_dram_gbps = arch.dram_gbps * hiding * std::sqrt(grid_fill);

  const double dram_time_ms =
      (dram_reads + dram_writes) / (m.achieved_dram_gbps * 1e6);
  const double l2_traffic =
      (dram_reads + dram_writes) / std::max(1.0 - m.l2_hit_rate, 0.25);
  const double l2_time_ms = l2_traffic / (arch.l2_gbps * hiding * 1e6);
  m.mem_time_ms = std::max(dram_time_ms, l2_time_ms);
  return m;
}

/// Compute-side stage (see compute_model.cpp for the model rationale).
inline ComputeAnalysis compute_stage(const GpuArch& arch,
                                     const StencilInvariants& inv,
                                     const space::Setting& setting,
                                     std::int64_t total_blocks,
                                     const OccupancyResult& occ) {
  using namespace space;
  ComputeAnalysis c;
  const bool streaming = setting.flag(kUseStreaming);
  const bool prefetch = setting.flag(kUsePrefetching);
  const bool shared = setting.flag(kUseShared);
  const bool constant = setting.flag(kUseConstant);
  const bool retiming = setting.flag(kUseRetiming);

  // ILP from unrolling and merged accumulators (§II-B1/B2).
  const double unroll = static_cast<double>(
      setting.get(kUFx) * setting.get(kUFy) * setting.get(kUFz));
  const double merged = static_cast<double>(setting.points_per_thread());
  c.ilp = 1.0 + 0.22 * memo_log2<0>(unroll) + 0.08 * memo_log2<1>(merged);
  c.ilp = clamp(c.ilp, 1.0, 1.9);

  c.instr_overhead = 1.0 + 0.22 / std::sqrt(unroll);

  // Divergence: warp lanes idle in partial tiles at the grid boundary.
  double lane_eff = 1.0;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  for (int d = 0; d < 3; ++d) {
    std::int64_t coverage;
    if (streaming && d == sd) {
      coverage = setting.get(kSB);
    } else {
      coverage = setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]);
    }
    const std::int64_t extent = inv.geometry.extent[d];
    const std::int64_t covered =
        ceil_div<std::int64_t>(extent, coverage) * coverage;
    lane_eff *= static_cast<double>(extent) / static_cast<double>(covered);
  }
  c.divergence_eff = clamp(lane_eff, 0.3, 1.0);

  // Latency hiding of the FP64 pipeline.
  const double hiding = clamp(
      0.12 + 1.6 * memo_pow<1>(occ.occupancy * c.ilp, 0.65), 0.05, 1.0);

  double eff = hiding * c.divergence_eff / c.instr_overhead;

  if (constant) {
    eff *= inv.many_taps ? 1.06 : 0.97;
  }
  if (retiming) {
    eff *= inv.high_order ? 1.07 : 0.95;
  }
  if (shared) eff *= 0.94;

  // Tail quantization: the last wave of blocks underfills the machine.
  const double slots = static_cast<double>(arch.num_sms) *
                       std::max(occ.blocks_per_sm, 1);
  const double blocks = static_cast<double>(total_blocks);
  const double waves = std::ceil(blocks / slots);
  const double fill = blocks / (waves * slots);
  eff *= clamp(fill, 0.05, 1.0);

  c.fp64_eff = clamp(eff, 1e-4, 1.0);
  c.flop_time_ms = inv.total_flops / (arch.fp64_gflops * c.fp64_eff) / 1e6;

  // Barrier cost; prefetching overlaps it (§II-B3).
  if (shared) {
    double syncs_per_block = 2.0;
    if (streaming) {
      syncs_per_block = static_cast<double>(setting.get(kSB)) + 1.0;
    }
    double sync_us = 0.9 * syncs_per_block * waves /
                     std::sqrt(static_cast<double>(
                         std::max(occ.blocks_per_sm, 1)));
    if (prefetch) sync_us *= 0.45;
    c.sync_time_ms = sync_us / 1e3;
  } else if (streaming && prefetch) {
    c.sync_time_ms = 0.0;
  }
  return c;
}

/// Temporal-blocking adjustment and compute/memory overlap: combines the
/// stage analyses into the noise-free time per time step (simulator.cpp).
inline double combine_time_stage(const StencilInvariants& inv,
                                 const space::Setting& setting,
                                 const MemoryAnalysis& memory,
                                 const ComputeAnalysis& compute) {
  const double tf = static_cast<double>(setting.get(space::kTemporal));
  double flop_time = compute.flop_time_ms;
  double sync_time = compute.sync_time_ms;
  double mem_time = memory.mem_time_ms;
  if (tf > 1.0) {
    // Overlapped tiles recompute halo wavefronts per fused step...
    const double redundancy = 1.0 + inv.temporal_flop_coeff * (tf - 1.0);
    flop_time *= tf * redundancy;
    sync_time *= tf;
    // ...and the halo planes of deeper wavefronts are re-fetched.
    mem_time *= 1.0 + inv.temporal_mem_coeff * (tf - 1.0);
  }

  // Compute and memory pipelines overlap; the longer one dominates and a
  // fraction of the shorter one leaks past the overlap.
  const double longest = std::max(flop_time, mem_time);
  const double shortest = std::min(flop_time, mem_time);
  double time = longest + 0.18 * shortest;
  time += sync_time;
  time += inv.launch_ms;
  return time / tf;
}

}  // namespace cstuner::gpusim::detail
