#pragma once
// CUDA-style occupancy calculation: how many thread blocks of a kernel are
// co-resident per SM given its register, shared-memory and thread footprint,
// and which resource limits it.

#include "gpusim/gpu_arch.hpp"
#include "space/resource_model.hpp"

namespace cstuner::gpusim {

enum class OccupancyLimiter { kThreads, kBlocks, kRegisters, kSharedMem };

struct OccupancyResult {
  int blocks_per_sm = 0;
  int active_threads_per_sm = 0;
  int active_warps_per_sm = 0;
  double occupancy = 0.0;  ///< active warps / max warps
  OccupancyLimiter limiter = OccupancyLimiter::kThreads;
};

/// Computes residency for a block of `threads_per_block` threads using the
/// given per-thread registers and per-block shared memory.
OccupancyResult compute_occupancy(const GpuArch& arch,
                                  std::int64_t threads_per_block,
                                  int registers_per_thread,
                                  std::int64_t smem_per_block);

const char* limiter_name(OccupancyLimiter limiter);

}  // namespace cstuner::gpusim
