#pragma once
// Memory-hierarchy model: coalescing efficiency, L1/L2 capture of stencil
// neighbour reuse, DRAM traffic, and the resulting memory-bound time.

#include "codegen/cuda_codegen.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/occupancy.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::gpusim {

struct MemoryAnalysis {
  double coalescing_eff = 1.0;  ///< useful bytes / transferred bytes
  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;
  double dram_read_bytes = 0.0;   ///< per sweep
  double dram_write_bytes = 0.0;
  double mem_time_ms = 0.0;       ///< DRAM/L2-bound time
  double achieved_dram_gbps = 0.0;
};

MemoryAnalysis analyze_memory(const GpuArch& arch,
                              const stencil::StencilSpec& spec,
                              const space::Setting& setting,
                              const codegen::LaunchGeometry& geometry,
                              const OccupancyResult& occ,
                              const space::ResourceUsage& resources);

}  // namespace cstuner::gpusim
