#include "gpusim/stencil_invariants.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace cstuner::gpusim {

std::uint64_t stencil_fingerprint(const GpuArch& arch,
                                  const stencil::StencilSpec& spec) {
  std::uint64_t h = fnv1a(arch.name.data(), arch.name.size());
  h = hash_combine(h, fnv1a(spec.name.data(), spec.name.size()));
  for (const int extent : spec.grid) {
    h = hash_combine(h, static_cast<std::uint64_t>(extent));
  }
  h = hash_combine(h, static_cast<std::uint64_t>(spec.order));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.flops));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.n_inputs));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.n_outputs));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.taps.size()));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.pointwise_ops));
  return h;
}

StencilInvariants make_stencil_invariants(const GpuArch& arch,
                                          const stencil::StencilSpec& spec) {
  StencilInvariants inv;
  inv.order = spec.order;
  inv.n_inputs = spec.n_inputs;
  inv.n_outputs = spec.n_outputs;
  inv.points = static_cast<double>(spec.points());
  inv.total_flops = spec.total_flops();
  inv.geometry = codegen::make_geometry_partials(spec);

  // Taps per input array via a flat vector indexed by array id (the old
  // memory_model std::map built this on every call); the pair list keeps
  // the map's ascending-id iteration order and skips arrays with no taps.
  int max_array = -1;
  for (const auto& t : spec.taps) max_array = std::max(max_array, t.array);
  std::vector<int> counts(static_cast<std::size_t>(max_array + 1), 0);
  for (const auto& t : spec.taps) ++counts[static_cast<std::size_t>(t.array)];
  for (int array = 0; array <= max_array; ++array) {
    const int taps = counts[static_cast<std::size_t>(array)];
    if (taps > 0) inv.tap_counts.emplace_back(array, taps);
  }

  inv.staged = std::min<std::int64_t>(spec.n_inputs, 2);
  inv.many_taps = spec.taps.size() >= 20;
  inv.high_order = spec.order >= 2;
  inv.window = static_cast<double>(2 * spec.order + 1);

  inv.temporal_flop_coeff = 0.15 * spec.order;
  inv.temporal_mem_coeff = 0.10 * spec.order;

  // L2 plane-reuse hit rate (memory_model): one xy-plane of all input
  // arrays must survive in L2 for vertical neighbour reuse. Entirely
  // setting-independent, so evaluated here once.
  const double plane_bytes = static_cast<double>(spec.grid[0]) *
                             static_cast<double>(spec.grid[1]) * 8.0 *
                             static_cast<double>(spec.n_inputs);
  const double l2_fit =
      static_cast<double>(arch.l2_bytes) / std::max(plane_bytes, 1.0);
  inv.l2_hit_rate = 0.75 * clamp(l2_fit, 0.08, 1.0);

  inv.launch_ms = arch.kernel_launch_us / 1e3;

  inv.noise_seed_prefix =
      hash_combine(fnv1a(arch.name.data(), arch.name.size()),
                   fnv1a(spec.name.data(), spec.name.size()));
  inv.fingerprint = stencil_fingerprint(arch, spec);
  return inv;
}

}  // namespace cstuner::gpusim
