#pragma once
// Per-(arch, stencil) invariants of the analytical GPU model: everything a
// profile evaluation needs that does NOT depend on the setting, hoisted out
// of the per-setting hot path and computed once per tune instead of once
// per evaluation (docs/performance.md). Simulator caches one instance per
// (arch, stencil) pair; the batch oracle and the scalar profile() both read
// the same instance, so hoisting cannot introduce divergence.
//
// Bit-identity rule for adding fields: an invariant may pre-evaluate a
// subexpression only if the original code evaluates exactly that grouping
// (e.g. `0.15 * order` from the left-associative `0.15 * order * x`), so
// the remaining per-setting arithmetic reproduces the scalar path bit for
// bit.

#include <cstdint>
#include <utility>
#include <vector>

#include "codegen/cuda_codegen.hpp"
#include "gpusim/gpu_arch.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::gpusim {

struct StencilInvariants {
  // --- Stencil structure ---------------------------------------------------
  int order = 1;
  int n_inputs = 1;
  int n_outputs = 1;
  double points = 0.0;       ///< double(spec.points())
  double total_flops = 0.0;  ///< spec.total_flops()
  codegen::GeometryPartials geometry;  ///< grid extents for launch geometry
  /// (array id, tap count) per input array actually read, ascending by id —
  /// the flat-vector replacement for the old per-call std::map in
  /// memory_model.cpp (same iteration order, zero-tap arrays skipped).
  std::vector<std::pair<int, int>> tap_counts;
  std::int64_t staged = 1;    ///< min(n_inputs, 2) smem-staged arrays
  bool many_taps = false;     ///< taps.size() >= 20 (constant-memory win)
  bool high_order = false;    ///< order >= 2 (retiming win)
  double window = 1.0;        ///< 2*order+1 streaming-window extent

  // --- Temporal-blocking coefficients (simulator.cpp overlap model) --------
  double temporal_flop_coeff = 0.0;  ///< 0.15 * order
  double temporal_mem_coeff = 0.0;   ///< 0.10 * order

  // --- Arch-derived --------------------------------------------------------
  /// L2 plane-reuse hit rate: depends only on the grid plane size and the
  /// L2 capacity, so it is a full per-tune constant.
  double l2_hit_rate = 0.0;
  double launch_ms = 0.0;  ///< arch.kernel_launch_us / 1e3

  // --- Identity ------------------------------------------------------------
  /// hash_combine(fnv1a(arch.name), fnv1a(spec.name)) — the prefix of the
  /// measurement-noise seed chain (simulator.cpp).
  std::uint64_t noise_seed_prefix = 0;
  /// Structural fingerprint keying the Simulator-side cache; covers name,
  /// grid, order, flops and array counts so a same-named scaled variant
  /// gets its own entry.
  std::uint64_t fingerprint = 0;
};

/// Fingerprint used to key the invariants cache (pure function).
std::uint64_t stencil_fingerprint(const GpuArch& arch,
                                  const stencil::StencilSpec& spec);

/// Computes the invariants for one (arch, stencil) pair.
StencilInvariants make_stencil_invariants(const GpuArch& arch,
                                          const stencil::StencilSpec& spec);

}  // namespace cstuner::gpusim
