#pragma once
// The GPU kernel-execution simulator: composes the occupancy, memory and
// compute models into an execution time plus a Nsight-style metric vector.
// This is the (setting -> time, metrics) oracle every auto-tuner queries in
// place of the paper's real A100/V100 runs (DESIGN.md §2).
//
// Determinism: the noise-free profile is a pure function of
// (arch, stencil, setting); measurement noise is seeded from the same tuple
// plus the run index, so whole experiments are reproducible yet repeated
// "runs" differ like real measurements.

#include <array>

#include "codegen/cuda_codegen.hpp"
#include "gpusim/compute_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/occupancy.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::gpusim {

struct KernelProfile {
  double time_ms = 0.0;  ///< noise-free execution time of one sweep
  std::array<double, kMetricCount> metrics{};
  space::ResourceUsage resources;
  OccupancyResult occupancy;
  codegen::LaunchGeometry geometry;
  MemoryAnalysis memory;
  ComputeAnalysis compute;

  double metric(MetricId id) const {
    return metrics[static_cast<std::size_t>(id)];
  }
};

class Simulator {
 public:
  explicit Simulator(const GpuArch& arch) : arch_(arch) {}

  const GpuArch& arch() const { return arch_; }

  /// Noise-free analytical profile. The setting must satisfy the space
  /// constraints; throws ConstraintError for unlaunchable kernels
  /// (zero-occupancy configurations).
  KernelProfile profile(const stencil::StencilSpec& spec,
                        const space::Setting& setting) const;

  /// One simulated timing run: profile time with ~1.5% multiplicative
  /// measurement noise, deterministic in (arch, stencil, setting, run).
  double measure_ms(const stencil::StencilSpec& spec,
                    const space::Setting& setting,
                    std::uint64_t run_index) const;

  /// Metric vector with mild measurement noise (dataset collection).
  std::array<double, kMetricCount> measure_metrics(
      const stencil::StencilSpec& spec, const space::Setting& setting,
      std::uint64_t run_index) const;

 private:
  std::uint64_t noise_seed(const stencil::StencilSpec& spec,
                           const space::Setting& setting,
                           std::uint64_t run_index) const;

  const GpuArch& arch_;
};

}  // namespace cstuner::gpusim
