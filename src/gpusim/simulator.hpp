#pragma once
// The GPU kernel-execution simulator: composes the occupancy, memory and
// compute models into an execution time plus a Nsight-style metric vector.
// This is the (setting -> time, metrics) oracle every auto-tuner queries in
// place of the paper's real A100/V100 runs (DESIGN.md §2).
//
// Determinism: the noise-free profile is a pure function of
// (arch, stencil, setting); measurement noise is seeded from the same tuple
// plus the run index, so whole experiments are reproducible yet repeated
// "runs" differ like real measurements.
//
// Throughput: per-(arch, stencil) invariants are hoisted once into a cached
// StencilInvariants, and the batch entry points (profile_batch /
// profile_times) run the model as stage loops over contiguous scratch
// arrays with zero allocation per setting. Scalar and batch paths execute
// the same inline stage bodies (model_kernels.hpp), so batch results are
// bit-identical to profile() by construction (docs/performance.md).

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "codegen/cuda_codegen.hpp"
#include "gpusim/compute_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/metrics.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/stencil_invariants.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::gpusim {

struct KernelProfile {
  double time_ms = 0.0;  ///< noise-free execution time of one sweep
  std::array<double, kMetricCount> metrics{};
  space::ResourceUsage resources;
  OccupancyResult occupancy;
  codegen::LaunchGeometry geometry;
  MemoryAnalysis memory;
  ComputeAnalysis compute;

  double metric(MetricId id) const {
    return metrics[static_cast<std::size_t>(id)];
  }
};

class Simulator {
 public:
  explicit Simulator(const GpuArch& arch) : arch_(arch) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const GpuArch& arch() const { return arch_; }

  /// Hoisted per-(arch, stencil) model constants, computed on first use and
  /// cached for the lifetime of this simulator. Thread-safe; the returned
  /// reference stays valid until destruction.
  const StencilInvariants& invariants(const stencil::StencilSpec& spec) const;

  /// Noise-free analytical profile. The setting must satisfy the space
  /// constraints; throws ConstraintError for unlaunchable kernels
  /// (zero-occupancy configurations).
  KernelProfile profile(const stencil::StencilSpec& spec,
                        const space::Setting& setting) const;

  /// Batch profiling: out[i] = profile(spec, settings[i]), bit-identical,
  /// computed as stage loops over the batch. Requires
  /// out.size() == settings.size(); throws exactly where profile() would.
  void profile_batch(const stencil::StencilSpec& spec,
                     std::span<const space::Setting> settings,
                     std::span<KernelProfile> out) const;

  /// Time-only batch oracle (the evaluator hot path): out_ms[i] =
  /// profile(spec, settings[i]).time_ms, bit-identical, via SoA scratch
  /// arrays from a per-worker arena — zero heap allocation per setting in
  /// steady state. Requires out_ms.size() == settings.size().
  void profile_times(const StencilInvariants& inv,
                     std::span<const space::Setting> settings,
                     std::span<double> out_ms) const;

  /// profile_times with caller-supplied resource estimates. `usages[i]` must
  /// equal estimate_resources_core(...) under *default* ResourceLimits for
  /// settings[i] — e.g. the estimate a ConstraintChecker with default limits
  /// hands back from is_valid (check ResourceLimits equality before reusing;
  /// the estimator is pure, so equal limits give bit-identical usage). Skips
  /// the resource stage, nothing else changes.
  void profile_times(const StencilInvariants& inv,
                     std::span<const space::Setting> settings,
                     std::span<const space::ResourceUsage> usages,
                     std::span<double> out_ms) const;

  /// One simulated timing run: profile time with ~1.5% multiplicative
  /// measurement noise, deterministic in (arch, stencil, setting, run).
  double measure_ms(const stencil::StencilSpec& spec,
                    const space::Setting& setting,
                    std::uint64_t run_index) const;

  /// The noise application of measure_ms from precomputed pieces: equal to
  /// measure_ms(spec, setting, run_index) bit for bit when `noise_free_ms`
  /// is the profile time and `setting_hash` is setting.hash(). Lets batch
  /// callers profile once and draw several runs.
  double noisy_time_ms(const StencilInvariants& inv,
                       std::uint64_t setting_hash, double noise_free_ms,
                       std::uint64_t run_index) const;

  /// Same noise draw from the premixed seed
  /// hash_combine(inv.noise_seed_prefix, setting_hash) — hoistable across
  /// the runs of one evaluation. noisy_time_ms delegates here, so the two
  /// agree bit for bit by construction.
  static double noisy_time_from(std::uint64_t premixed_seed,
                                double noise_free_ms,
                                std::uint64_t run_index);

  /// Metric vector with mild measurement noise (dataset collection).
  std::array<double, kMetricCount> measure_metrics(
      const stencil::StencilSpec& spec, const space::Setting& setting,
      std::uint64_t run_index) const;

 private:
  /// Shared body of the two profile_times overloads; `precomputed_usages`
  /// is null when the resource stage must run.
  void profile_times_impl(const StencilInvariants& inv,
                          std::span<const space::Setting> settings,
                          const space::ResourceUsage* precomputed_usages,
                          std::span<double> out_ms) const;

  const GpuArch& arch_;

  // Invariants cache: tiny (one entry per stencil spec seen), append-only,
  // unique_ptr entries pin addresses so returned references stay valid.
  // The lock-free `last` pointer makes the common one-stencil-per-tune
  // lookup a single fingerprint compare.
  mutable std::mutex inv_mutex_;
  mutable std::vector<std::unique_ptr<StencilInvariants>> inv_cache_;
  mutable std::atomic<const StencilInvariants*> inv_last_{nullptr};
};

}  // namespace cstuner::gpusim
