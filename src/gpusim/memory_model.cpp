#include "gpusim/memory_model.hpp"

#include "gpusim/model_kernels.hpp"
#include "gpusim/stencil_invariants.hpp"

namespace cstuner::gpusim {

// The model arithmetic lives in detail::memory_stage (model_kernels.hpp),
// shared verbatim with the batch oracle; this standalone entry point hoists
// the invariants for a single call. Hot paths go through Simulator, which
// caches the invariants per (arch, stencil) instead.
MemoryAnalysis analyze_memory(const GpuArch& arch,
                              const stencil::StencilSpec& spec,
                              const space::Setting& setting,
                              const codegen::LaunchGeometry& geometry,
                              const OccupancyResult& occ,
                              const space::ResourceUsage& resources) {
  (void)resources;  // reserved for spill-traffic modeling
  const StencilInvariants inv = make_stencil_invariants(arch, spec);
  return detail::memory_stage(arch, inv, setting, geometry.total_blocks(),
                              occ);
}

}  // namespace cstuner::gpusim
