#include "gpusim/memory_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/math_util.hpp"

namespace cstuner::gpusim {

using namespace space;

namespace {

/// Taps reading each input array.
std::map<int, int> taps_per_array(const stencil::StencilSpec& spec) {
  std::map<int, int> counts;
  for (const auto& t : spec.taps) ++counts[t.array];
  return counts;
}

}  // namespace

MemoryAnalysis analyze_memory(const GpuArch& arch,
                              const stencil::StencilSpec& spec,
                              const space::Setting& setting,
                              const codegen::LaunchGeometry& geometry,
                              const OccupancyResult& occ,
                              const space::ResourceUsage& resources) {
  (void)resources;  // reserved for spill-traffic modeling
  MemoryAnalysis m;
  const double points = static_cast<double>(spec.points());
  const bool shared = setting.flag(kUseShared);
  const bool streaming = setting.flag(kUseStreaming);
  const bool retiming = setting.flag(kUseRetiming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;

  // --- Coalescing (paper §II-B2: block merging in the innermost dimension
  // disrupts memory coalescing; small TBx leaves transactions partially
  // used). Cyclic merging keeps warp accesses contiguous.
  const double tbx = static_cast<double>(setting.get(kTBx));
  const double bmx = static_cast<double>(setting.get(kBMx));
  // 32-byte DRAM sectors hold four doubles, so even fully scattered lanes
  // waste at most 4x; block merging strides lanes apart by BMx elements
  // (saturating at one double per sector) and sub-warp TBx rows split the
  // 128-byte transaction.
  double coal = 0.25 + 0.75 * std::min(1.0, tbx / 32.0);
  coal /= 1.0 + 0.75 * (std::min(bmx, 4.0) - 1.0);
  // Streaming along x makes each thread walk the unit-stride dimension:
  // consecutive threads then touch different rows.
  if (streaming && sd == 0) coal *= 0.5;
  m.coalescing_eff = clamp(coal, 0.25 / 2.0, 1.0);

  // --- Per-block tile footprint (elements incl. halo), for cache modeling.
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  double tile_elems = 1.0;
  double tile_interior = 1.0;
  for (int d = 0; d < 3; ++d) {
    double extent;
    if (streaming && d == sd) {
      // Sliding window of planes.
      extent = static_cast<double>(2 * spec.order + 1);
      tile_interior *= 1.0;
    } else {
      const double interior = static_cast<double>(
          setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]));
      extent = interior + 2.0 * spec.order;
      tile_interior *= interior;
    }
    tile_elems *= extent;
  }
  // Halo overhead of the block decomposition: loaded-but-not-computed ratio.
  const double halo_factor = tile_elems / std::max(tile_interior, 1.0);

  // --- L1: does the per-SM resident working set fit?
  const double block_bytes =
      tile_elems * 8.0 * static_cast<double>(spec.n_inputs);
  const double sm_working_set =
      block_bytes * std::max(occ.blocks_per_sm, 1);
  double l1_fit = static_cast<double>(arch.l1_bytes_per_sm) /
                  std::max(sm_working_set, 1.0);
  m.l1_hit_rate = 0.80 * clamp(std::sqrt(l1_fit), 0.05, 1.0);
  // Poorly coalesced access patterns also thrash L1 sectors.
  m.l1_hit_rate *= 0.5 + 0.5 * m.coalescing_eff;

  // --- L2: plane reuse across neighbouring blocks. One xy-plane of all
  // input arrays must survive in L2 for vertical (z) neighbour reuse.
  const double plane_bytes = static_cast<double>(spec.grid[0]) *
                             static_cast<double>(spec.grid[1]) * 8.0 *
                             static_cast<double>(spec.n_inputs);
  const double l2_fit =
      static_cast<double>(arch.l2_bytes) / std::max(plane_bytes, 1.0);
  m.l2_hit_rate = 0.75 * clamp(l2_fit, 0.08, 1.0);

  // --- DRAM read traffic. For each input array: one compulsory load per
  // point (inflated by block halo), plus the neighbour re-reads that escape
  // the on-chip capture chain (shared memory staging / streaming register
  // window / retimed accumulation / L1 / L2).
  const auto tap_counts = taps_per_array(spec);
  const std::int64_t staged = std::min<std::int64_t>(spec.n_inputs, 2);
  double dram_reads = 0.0;
  for (const auto& [array, taps] : tap_counts) {
    double reuse_misses = static_cast<double>(taps - 1);
    if (shared && array < staged) {
      // Staged arrays: intra-tile neighbour reads are served from smem;
      // only the cooperative load itself touches DRAM.
      reuse_misses *= 0.02;
    } else {
      // Streaming captures reuse along SD in the register/smem window.
      if (streaming) reuse_misses *= 0.45;
      // Retiming homogenizes accesses into per-axis partials held in
      // registers — effective for high-order stencils (§II-B4).
      if (retiming && spec.order >= 2) reuse_misses *= 0.55;
      // What remains goes through L1/L2.
      reuse_misses *= (1.0 - m.l1_hit_rate);
      reuse_misses *= (1.0 - m.l2_hit_rate);
    }
    // Halo cells are re-read by neighbouring blocks, but those reads
    // usually hit in L2 (the neighbour loaded them recently): only the
    // L2-miss fraction of the halo overhead reaches DRAM.
    const double compulsory =
        1.0 + (halo_factor - 1.0) * (1.0 - m.l2_hit_rate);
    dram_reads += points * 8.0 * (compulsory + reuse_misses);
  }
  // Uncoalesced transactions transfer full sectors for partial use.
  dram_reads /= (0.25 + 0.75 * m.coalescing_eff);

  double dram_writes =
      points * 8.0 * static_cast<double>(spec.n_outputs);
  dram_writes /= (0.4 + 0.6 * m.coalescing_eff);

  m.dram_read_bytes = dram_reads;
  m.dram_write_bytes = dram_writes;

  // --- Bandwidth actually achievable: DRAM needs enough in-flight warps.
  // ~50% occupancy saturates HBM on these parts.
  const double hiding =
      clamp(0.14 + 1.5 * std::pow(occ.occupancy, 0.62), 0.06, 1.0);
  // An almost-empty grid cannot use all memory channels either.
  const double grid_fill =
      clamp(static_cast<double>(geometry.total_blocks()) /
                static_cast<double>(arch.num_sms),
            0.05, 1.0);
  m.achieved_dram_gbps = arch.dram_gbps * hiding * std::sqrt(grid_fill);

  const double dram_time_ms =
      (dram_reads + dram_writes) / (m.achieved_dram_gbps * 1e6);
  // L2-bound component: all traffic that reaches L2 (hits + misses).
  const double l2_traffic =
      (dram_reads + dram_writes) / std::max(1.0 - m.l2_hit_rate, 0.25);
  const double l2_time_ms = l2_traffic / (arch.l2_gbps * hiding * 1e6);
  m.mem_time_ms = std::max(dram_time_ms, l2_time_ms);
  return m;
}

}  // namespace cstuner::gpusim
