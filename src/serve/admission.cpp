#include "serve/admission.hpp"

namespace cstuner::serve {

AdmissionDecision AdmissionController::try_admit(const std::string& tenant) {
  AdmissionDecision decision;
  if (draining_) {
    decision.reason = "draining";
    decision.retry_after_s = retry_after();
    return decision;
  }
  if (queued_ >= options_.max_queued) {
    decision.reason = "queue_full";
    decision.retry_after_s = retry_after();
    return decision;
  }
  if (tenant_load(tenant) >= options_.tenant_quota) {
    decision.reason = "tenant_quota";
    decision.retry_after_s = retry_after();
    return decision;
  }
  ++queued_;
  ++tenant_load_[tenant];
  decision.admitted = true;
  return decision;
}

void AdmissionController::adopt(const std::string& tenant) {
  ++queued_;
  ++tenant_load_[tenant];
}

void AdmissionController::on_start() {
  if (queued_ > 0) --queued_;
  ++running_;
}

void AdmissionController::on_finish(const std::string& tenant) {
  if (running_ > 0) --running_;
  auto it = tenant_load_.find(tenant);
  if (it != tenant_load_.end() && --it->second == 0) tenant_load_.erase(it);
}

void AdmissionController::on_abandon(const std::string& tenant) {
  if (queued_ > 0) --queued_;
  auto it = tenant_load_.find(tenant);
  if (it != tenant_load_.end() && --it->second == 0) tenant_load_.erase(it);
}

std::size_t AdmissionController::tenant_load(const std::string& tenant) const {
  auto it = tenant_load_.find(tenant);
  return it == tenant_load_.end() ? 0 : it->second;
}

double AdmissionController::retry_after() const {
  // Deeper backlog → longer hint, so shedding spreads resubmissions out
  // instead of synchronizing a thundering herd at one instant.
  return options_.retry_after_base_s * (1.0 + static_cast<double>(queued_));
}

}  // namespace cstuner::serve
