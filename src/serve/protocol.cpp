#include "serve/protocol.hpp"

#include <bit>

#include "common/error.hpp"

namespace cstuner::serve {

namespace {

struct StateName {
  SessionState state;
  const char* name;
};

constexpr StateName kStateNames[] = {
    {SessionState::kQueued, "queued"},
    {SessionState::kRunning, "running"},
    {SessionState::kDone, "done"},
    {SessionState::kFailed, "failed"},
    {SessionState::kCancelled, "cancelled"},
    {SessionState::kExpired, "expired"},
    {SessionState::kInterrupted, "interrupted"},
};

}  // namespace

const char* session_state_name(SessionState state) {
  for (const auto& entry : kStateNames) {
    if (entry.state == state) return entry.name;
  }
  return "unknown";
}

SessionState session_state_from_name(const std::string& name) {
  for (const auto& entry : kStateNames) {
    if (name == entry.name) return entry.state;
  }
  throw Error("unknown session state: " + name);
}

bool session_state_final(SessionState state) {
  switch (state) {
    case SessionState::kDone:
    case SessionState::kFailed:
    case SessionState::kCancelled:
    case SessionState::kExpired:
      return true;
    case SessionState::kQueued:
    case SessionState::kRunning:
    case SessionState::kInterrupted:
      return false;
  }
  return false;
}

void TuneRequest::write_fields(JsonWriter& json) const {
  json.field("kind", kind)
      .field("stencil", stencil)
      .field("arch", arch)
      .field("method", method)
      .field("tenant", tenant)
      .field("seed", seed)
      .field("budget_s", budget_s)
      .field("deadline_s", deadline_s)
      .field("fault_rate", fault_rate)
      .field("universe", universe)
      .field("samples", samples)
      .field("enumerate", enumerate);
  json.key("warm").begin_array();
  for (const std::int64_t v : warm) json.value(v);
  json.end_array();
}

TuneRequest TuneRequest::from_json(const JsonValue& v) {
  TuneRequest req;
  if (const JsonValue* m = v.find("kind")) req.kind = m->as_string();
  if (const JsonValue* m = v.find("stencil")) req.stencil = m->as_string();
  if (const JsonValue* m = v.find("arch")) req.arch = m->as_string();
  if (const JsonValue* m = v.find("method")) req.method = m->as_string();
  if (const JsonValue* m = v.find("tenant")) req.tenant = m->as_string();
  if (const JsonValue* m = v.find("seed")) req.seed = m->as_u64();
  if (const JsonValue* m = v.find("budget_s")) req.budget_s = m->as_double();
  if (const JsonValue* m = v.find("deadline_s")) {
    req.deadline_s = m->is_null() ? 0.0 : m->as_double();
  }
  if (const JsonValue* m = v.find("fault_rate")) {
    req.fault_rate = m->as_double();
  }
  if (const JsonValue* m = v.find("universe")) req.universe = m->as_u64();
  if (const JsonValue* m = v.find("samples")) req.samples = m->as_u64();
  if (const JsonValue* m = v.find("enumerate")) req.enumerate = m->as_bool();
  if (const JsonValue* m = v.find("warm")) {
    for (const JsonValue& item : m->as_array()) {
      req.warm.push_back(item.as_i64());
    }
  }
  if (req.kind != "tune" && req.kind != "analyze") {
    throw Error("unknown request kind: " + req.kind);
  }
  return req;
}

double SessionResult::best_time_ms() const {
  return std::bit_cast<double>(best_time_bits);
}

double SessionResult::virtual_time_s() const {
  return std::bit_cast<double>(virtual_time_bits);
}

void SessionResult::write_fields(JsonWriter& json) const {
  json.field("state", std::string(session_state_name(state)))
      .field("best_time_bits", best_time_bits)
      .field("best_time_ms", best_time_ms())
      .field("best_setting", best_setting)
      .field("evaluations", evaluations)
      .field("iterations", iterations)
      .field("virtual_time_bits", virtual_time_bits)
      .field("virtual_time_s", virtual_time_s())
      .field("lint_errors", lint_errors)
      .field("lint_warnings", lint_warnings)
      .field("error", error);
}

SessionResult SessionResult::from_json(const JsonValue& v) {
  SessionResult result;
  result.state = session_state_from_name(v.at("state").as_string());
  // The *_bits members are authoritative; the _ms/_s doubles beside them
  // exist for human readers only and are ignored on load.
  result.best_time_bits = v.at("best_time_bits").as_u64();
  result.best_setting = v.at("best_setting").as_string();
  result.evaluations = v.at("evaluations").as_u64();
  result.iterations = v.at("iterations").as_u64();
  result.virtual_time_bits = v.at("virtual_time_bits").as_u64();
  if (const JsonValue* m = v.find("lint_errors")) {
    result.lint_errors = m->as_u64();
  }
  if (const JsonValue* m = v.find("lint_warnings")) {
    result.lint_warnings = m->as_u64();
  }
  if (const JsonValue* m = v.find("error")) result.error = m->as_string();
  return result;
}

void write_file_atomic(const std::string& path, const std::string& data,
                       io::Vfs* vfs) {
  io::write_file_atomic(vfs != nullptr ? *vfs : io::Vfs::real(), path, data);
}

std::string read_file(const std::string& path, io::Vfs* vfs) {
  return (vfs != nullptr ? *vfs : io::Vfs::real()).read_file(path);
}

}  // namespace cstuner::serve
