#include "serve/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <iostream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/obs.hpp"
#include "serve/net.hpp"

namespace cstuner::serve {

namespace {

/// Written by the signal handler, polled by every accept loop. sig_atomic_t
/// is the only type async-signal-safe to write from a handler.
volatile std::sig_atomic_t g_signal_stop = 0;

void on_signal(int) { g_signal_stop = 1; }

void write_status_fields(JsonWriter& json, const SessionStatus& status) {
  json.field("id", status.id)
      .field("state", std::string(session_state_name(status.state)))
      .field("tenant", status.tenant)
      .field("stencil", status.stencil);
}

std::string error_line(const std::string& type, const std::string& message) {
  JsonWriter json;
  json.begin_object().field("type", type).field("error", message).end_object();
  return json.str();
}

/// Typed rejection for hostile-input limits (oversized lines, JSON bombs):
/// the client learns exactly why and the connection stays usable.
std::string rejected_line(const std::string& reason,
                          const std::string& message) {
  JsonWriter json;
  json.begin_object()
      .field("type", "rejected")
      .field("reason", reason)
      .field("error", message)
      .end_object();
  return json.str();
}

}  // namespace

void Server::install_signal_handlers() {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  // A client hanging up mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
}

Server::Server(SessionManager& manager, ServerOptions options)
    : manager_(manager), options_(std::move(options)) {
  listen_fd_ = listen_on(options_.host, options_.port);
  port_ = bound_port(listen_fd_);
  if (!options_.port_file.empty()) {
    write_file_atomic(options_.port_file, std::to_string(port_) + "\n");
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::run() {
  std::cerr << "serve: listening on " << options_.host << ":" << port_
            << " (state: " << manager_.options().state_dir << ")\n";
  std::vector<std::thread> connections;
  while (!stop_.load(std::memory_order_acquire) && g_signal_stop == 0) {
    const int fd = accept_with_timeout(listen_fd_, 200);
    if (fd < 0) continue;  // timeout or signal: re-check the stop flags
    CSTUNER_OBS_COUNT("serve.connections", 1);
    connections.emplace_back(&Server::serve_connection, this, fd);
  }
  std::cerr << "serve: draining (grace "
            << manager_.options().drain_grace_s << " s)\n";
  const bool rested = manager_.drain(manager_.options().drain_grace_s);
  // Connections see the stop flag at their next read timeout.
  for (std::thread& thread : connections) thread.join();
  std::cerr << (rested ? "serve: drained cleanly\n"
                       : "serve: drain grace expired; sessions checkpointed "
                         "for the next start\n");
}

void Server::serve_connection(int fd) {
  // A peer that accepts responses but never drains them would otherwise
  // park this thread inside a blocking send forever.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(options_.send_timeout_s);
  tv.tv_usec = static_cast<suseconds_t>(
      (options_.send_timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  LineReader reader(fd, options_.max_line_bytes);
  std::string line;
  // Poll in short slices so an idle connection notices a server stop
  // quickly; the idle budget bounds the total wait, and the partial budget
  // bounds how long a trickling (slow-loris) client can hold a half line.
  double idle_left_s = options_.idle_timeout_s;
  double partial_left_s = options_.partial_line_deadline_s;
  while (!stop_.load(std::memory_order_acquire) && g_signal_stop == 0 &&
         idle_left_s > 0.0) {
    const LineReader::Status status = reader.read_line(line, 250);
    if (status == LineReader::Status::kEof) break;
    if (status == LineReader::Status::kTimeout) {
      idle_left_s -= 0.25;
      if (reader.has_partial()) {
        partial_left_s -= 0.25;
        if (partial_left_s <= 0.0) {
          CSTUNER_OBS_COUNT("serve.net.slow_loris_closes", 1);
          break;
        }
      } else {
        partial_left_s = options_.partial_line_deadline_s;
      }
      continue;
    }
    idle_left_s = options_.idle_timeout_s;
    partial_left_s = options_.partial_line_deadline_s;
    if (status == LineReader::Status::kOversized) {
      CSTUNER_OBS_COUNT("serve.net.oversized", 1);
      try {
        send_all(fd, rejected_line("oversized",
                                   "request line exceeds " +
                                       std::to_string(options_.max_line_bytes) +
                                       " bytes") +
                         "\n");
      } catch (const Error&) {
        break;
      }
      continue;
    }
    if (line.empty()) continue;
    CSTUNER_OBS_COUNT("serve.net.lines", 1);
    std::string response;
    try {
      response = handle_line(fd, line);
    } catch (const JsonLimitError& e) {
      CSTUNER_OBS_COUNT("serve.net.oversized", 1);
      response = rejected_line("oversized", e.what());
    } catch (const Error& e) {
      response = error_line("bad_request", e.what());
    } catch (const std::exception& e) {
      response = error_line("error", e.what());
    }
    try {
      send_all(fd, response + "\n");
    } catch (const Error&) {
      break;  // client went away
    }
  }
  ::close(fd);
}

std::string Server::handle_line(int fd, const std::string& line) {
  CSTUNER_TRACE_SPAN("serve", "request");
  const JsonValue doc = json_parse(
      line, JsonLimits{options_.max_json_depth, options_.max_json_nodes});
  const std::string op = doc.at("op").as_string();
  JsonWriter json;

  if (op == "submit") {
    const SubmitOutcome out = manager_.submit(TuneRequest::from_json(doc));
    json.begin_object();
    if (out.accepted) {
      json.field("type", "accepted").field("id", out.id);
    } else {
      json.field("type", "rejected")
          .field("reason", out.reject_reason)
          .field("retry_after_s", out.retry_after_s);
    }
    // Degraded-mode answer: whatever the warm store predicted goes back
    // immediately, so even a shed request leaves with a usable setting.
    if (!out.warm_setting.empty()) {
      json.field("warm_setting", out.warm_setting)
          .field("warm_predicted_ms", out.warm_predicted_ms);
    }
    json.end_object();
    return json.str();
  }

  if (op == "status") {
    const auto status = manager_.status(doc.at("id").as_u64());
    if (!status.has_value()) return error_line("error", "unknown session id");
    json.begin_object().field("type", "status");
    write_status_fields(json, *status);
    if (session_state_final(status->state) ||
        status->state == SessionState::kInterrupted) {
      json.key("result").begin_object();
      status->result.write_fields(json);
      json.end_object();
    }
    json.end_object();
    return json.str();
  }

  if (op == "result") {
    const std::uint64_t id = doc.at("id").as_u64();
    double timeout_s = 60.0;
    if (const JsonValue* m = doc.find("timeout_s")) {
      timeout_s = m->as_double();
    }
    const auto result = manager_.result(id, timeout_s);
    if (!result.has_value()) {
      // Unknown id and still-running look different to status; here the
      // client asked to block, so both come back as a retryable timeout.
      if (!manager_.status(id).has_value()) {
        return error_line("error", "unknown session id");
      }
      json.begin_object().field("type", "timeout").field("id", id).end_object();
      return json.str();
    }
    json.begin_object().field("type", "result").field("id", id);
    result->write_fields(json);
    json.end_object();
    return json.str();
  }

  if (op == "stream") {
    const std::uint64_t id = doc.at("id").as_u64();
    double poll_s = 0.5;
    if (const JsonValue* m = doc.find("poll_s")) poll_s = m->as_double();
    for (;;) {
      const auto status = manager_.status(id);
      if (!status.has_value()) {
        return error_line("error", "unknown session id");
      }
      if (session_state_final(status->state) ||
          status->state == SessionState::kInterrupted) {
        json.begin_object().field("type", "result").field("id", id);
        status->result.write_fields(json);
        json.end_object();
        return json.str();
      }
      if (stop_.load(std::memory_order_acquire) || g_signal_stop != 0) {
        return error_line("error", "server stopping");
      }
      JsonWriter tick;
      tick.begin_object().field("type", "status");
      write_status_fields(tick, *status);
      tick.end_object();
      send_all(fd, tick.str() + "\n");
      // Blocks until the session rests or the poll interval elapses.
      manager_.result(id, poll_s);
    }
  }

  if (op == "cancel") {
    const bool ok = manager_.cancel(doc.at("id").as_u64());
    json.begin_object()
        .field("type", ok ? "ok" : "error")
        .field("cancelled", ok);
    if (!ok) json.field("error", "unknown or already-finished session");
    json.end_object();
    return json.str();
  }

  if (op == "stats") {
    const ServeStats stats = manager_.stats();
    json.begin_object()
        .field("type", "stats")
        .field("queued", static_cast<std::uint64_t>(stats.queued))
        .field("running", static_cast<std::uint64_t>(stats.running))
        .field("resting", static_cast<std::uint64_t>(stats.resting))
        .field("adopted", static_cast<std::uint64_t>(stats.adopted))
        .field("accepted_total",
               static_cast<std::uint64_t>(stats.accepted_total))
        .field("rejected_total",
               static_cast<std::uint64_t>(stats.rejected_total))
        .field("warm_entries", static_cast<std::uint64_t>(stats.warm_entries))
        .end_object();
    return json.str();
  }

  if (op == "shutdown") {
    stop();
    json.begin_object().field("type", "ok").field("draining", true).end_object();
    return json.str();
  }

  return error_line("bad_request", "unknown op: " + op);
}

}  // namespace cstuner::serve
