#include "serve/session_manager.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>

#include "analysis/analyzer.hpp"
#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "baselines/opentuner.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/simulator.hpp"
#include "obs/obs.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::serve {

namespace {

/// Queued and running sessions are live; everything else rests (final
/// states plus kInterrupted, which rests until the next daemon adopts it).
bool session_resting(SessionState state) {
  return state != SessionState::kQueued && state != SessionState::kRunning;
}

space::Setting setting_from_raw(const std::vector<std::int64_t>& raw) {
  space::Setting setting;
  for (std::size_t i = 0; i < space::kParamCount && i < raw.size(); ++i) {
    setting.set(static_cast<space::ParamId>(i), raw[i]);
  }
  return setting;
}

SessionResult result_from(const tuner::Evaluator& evaluator,
                          SessionState state) {
  SessionResult result;
  result.state = state;
  result.best_time_bits = std::bit_cast<std::uint64_t>(evaluator.best_time_ms());
  if (evaluator.best_setting().has_value()) {
    result.best_setting = evaluator.best_setting()->to_string();
  }
  result.evaluations = evaluator.unique_evaluations();
  result.iterations = evaluator.iterations();
  result.virtual_time_bits =
      std::bit_cast<std::uint64_t>(evaluator.virtual_time_s());
  return result;
}

std::unique_ptr<tuner::Tuner> make_tuner(const TuneRequest& request) {
  if (request.method == "csTuner") {
    core::CsTunerOptions options;
    options.universe_size = static_cast<std::size_t>(request.universe);
    options.seed = request.seed;
    options.enumerate_universe = request.enumerate;
    return std::make_unique<core::CsTuner>(options);
  }
  if (request.method == "garvey") {
    baselines::GarveyOptions options;
    options.seed = request.seed;
    return std::make_unique<baselines::Garvey>(options);
  }
  if (request.method == "opentuner") {
    baselines::OpenTunerOptions options;
    options.seed = request.seed;
    return std::make_unique<baselines::OpenTuner>(options);
  }
  if (request.method == "artemis") {
    baselines::ArtemisOptions options;
    options.seed = request.seed;
    return std::make_unique<baselines::Artemis>(options);
  }
  throw UsageError("unknown method: " + request.method +
                   " (csTuner|garvey|opentuner|artemis)");
}

/// Hostile-input validation, before anything is charged or persisted.
/// UsageError maps to a bad_request response at the server.
void validate_request(const TuneRequest& request, const RequestLimits& lim) {
  const auto check_name = [&](const char* field, const std::string& value) {
    if (value.size() > lim.max_name_bytes) {
      throw UsageError(std::string(field) + " exceeds " +
                       std::to_string(lim.max_name_bytes) + " bytes");
    }
  };
  check_name("kind", request.kind);
  check_name("stencil", request.stencil);
  check_name("arch", request.arch);
  check_name("method", request.method);
  check_name("tenant", request.tenant);
  if (!(request.budget_s >= 0.0) || request.budget_s > lim.max_budget_s) {
    throw UsageError("budget_s out of range [0, " +
                     std::to_string(lim.max_budget_s) + "]");
  }
  if (!(request.deadline_s >= 0.0) ||
      request.deadline_s > lim.max_deadline_s) {
    throw UsageError("deadline_s out of range [0, " +
                     std::to_string(lim.max_deadline_s) + "]");
  }
  if (!(request.fault_rate >= 0.0) || request.fault_rate > 1.0) {
    throw UsageError("fault_rate out of range [0, 1]");
  }
  if (request.universe == 0 || request.universe > lim.max_universe) {
    throw UsageError("universe out of range [1, " +
                     std::to_string(lim.max_universe) + "]");
  }
  if (request.samples > lim.max_samples) {
    throw UsageError("samples exceeds " + std::to_string(lim.max_samples));
  }
  if (request.warm.size() > lim.max_warm_values) {
    throw UsageError("warm setting exceeds " +
                     std::to_string(lim.max_warm_values) + " values");
  }
}

}  // namespace

SessionManager::SessionManager(ServeOptions options)
    : options_(std::move(options)),
      vfs_(options_.vfs != nullptr ? options_.vfs : &io::Vfs::real()),
      warm_store_(options_.warm_start ? options_.state_dir + "/warm_store.json"
                                      : std::string(),
                  vfs_),
      admission_(options_.admission) {
  vfs_->mkdirs(sessions_dir());
  std::lock_guard<std::mutex> lock(mutex_);
  recover_locked();
}

SessionManager::~SessionManager() { drain(options_.drain_grace_s); }

std::string SessionManager::sessions_dir() const {
  return options_.state_dir + "/sessions";
}

std::string SessionManager::session_dir(std::uint64_t id) const {
  return sessions_dir() + "/" + std::to_string(id);
}

void SessionManager::write_manifest(const Session& session) const {
  JsonWriter json;
  json.begin_object().field("id", session.id);
  session.request.write_fields(json);
  json.end_object();
  write_file_atomic(session.dir + "/manifest.json", json.str() + "\n", vfs_);
}

void SessionManager::write_result(const Session& session) const {
  JsonWriter json;
  json.begin_object().field("id", session.id);
  session.result.write_fields(json);
  json.end_object();
  write_file_atomic(session.dir + "/result.json", json.str() + "\n", vfs_);
}

void SessionManager::recover_locked() {
  // Every manifest is an accepted request; a missing result.json means the
  // previous daemon never finished it (clean drain and SIGKILL look the
  // same here, by design) — re-adopt and let the checkpoint replay carry
  // the run to the same final bits an uninterrupted run would produce.
  std::vector<std::uint64_t> ids;
  for (const std::string& name : vfs_->list_dir(sessions_dir())) {
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(name.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id == 0) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());  // adopt in submission order

  for (const std::uint64_t id : ids) {
    const std::string dir = session_dir(id);
    TuneRequest request;
    try {
      request = TuneRequest::from_json(
          json_parse(read_file(dir + "/manifest.json", vfs_)));
    } catch (const Error&) {
      // No (or torn) manifest: the submit never completed, so the session
      // was never acknowledged — nothing to recover.
      continue;
    }
    auto session = std::make_unique<Session>();
    session->id = id;
    session->request = std::move(request);
    session->dir = dir;
    if (vfs_->exists(dir + "/result.json")) {
      try {
        session->result = SessionResult::from_json(
            json_parse(read_file(dir + "/result.json", vfs_)));
        session->state = session->result.state;
      } catch (const Error&) {
        session->state = SessionState::kQueued;  // torn result: rerun
      }
    } else {
      session->state = SessionState::kQueued;
    }
    if (!session_resting(session->state)) {
      session->state = SessionState::kQueued;
      admission_.adopt(session->request.tenant);
      ++adopted_;
    }
    next_id_ = std::max(next_id_, id + 1);
    sessions_[id] = std::move(session);
  }
  if (adopted_ > 0) {
    std::cerr << "serve: re-adopted " << adopted_
              << " interrupted session(s) from " << sessions_dir() << "\n";
  }
  pump_locked();
}

SubmitOutcome SessionManager::submit(TuneRequest request) {
  SubmitOutcome out;
  // Validate before taking the lock or charging quotas: malformed or
  // hostile requests must never consume admission capacity — and the limit
  // checks run first, so a 10 MB stencil name is rejected before anything
  // tries to look it up.
  validate_request(request, options_.limits);
  const stencil::StencilSpec spec = stencil::make_stencil(request.stencil);
  const gpusim::GpuArch& arch = gpusim::arch_by_name(request.arch);
  if (request.kind == "tune") make_tuner(request);  // validates method

  if (request.kind == "tune" && options_.warm_start && request.warm.empty()) {
    space::SearchSpace space(spec);
    if (auto warm = warm_store_.predict(space, request.arch)) {
      // Pin the prediction into the request now: the manifest records it,
      // so a resumed run replays the same warm start even though the store
      // has moved on since.
      request.warm.assign(warm->raw().begin(), warm->raw().end());
      out.warm_setting = warm->to_string();
      gpusim::Simulator sim(arch);
      try {
        out.warm_predicted_ms = sim.profile(spec, *warm).time_ms;
      } catch (const Error&) {
        out.warm_predicted_ms = 0.0;
      }
    }
  } else if (!request.warm.empty()) {
    out.warm_setting = setting_from_raw(request.warm).to_string();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  const AdmissionDecision decision = admission_.try_admit(request.tenant);
  if (!decision.admitted) {
    ++rejected_total_;
    obs::metrics().counter("serve.rejected." + request.tenant).add(1);
    out.reject_reason = decision.reason;
    out.retry_after_s = decision.retry_after_s;
    update_gauges_locked();
    return out;
  }

  const std::uint64_t id = next_id_++;
  auto session = std::make_unique<Session>();
  session->id = id;
  session->request = std::move(request);
  session->dir = session_dir(id);
  try {
    vfs_->mkdirs(session->dir);
    // The durable manifest IS the acceptance: once this rename lands, no
    // crash can drop the session (zero dropped-but-accepted requests).
    write_manifest(*session);
  } catch (...) {
    admission_.on_abandon(session->request.tenant);
    throw;
  }
  ++accepted_total_;
  obs::metrics().counter("serve.accepted." + session->request.tenant).add(1);
  sessions_[id] = std::move(session);
  pump_locked();
  out.accepted = true;
  out.id = id;
  return out;
}

std::optional<SessionStatus> SessionManager::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  SessionStatus status;
  status.id = id;
  status.state = it->second->state;
  status.tenant = it->second->request.tenant;
  status.stencil = it->second->request.stencil;
  status.result = it->second->result;
  return status;
}

std::optional<SessionResult> SessionManager::result(std::uint64_t id,
                                                    double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  Session* session = it->second.get();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  if (!cv_.wait_until(lock, deadline, [session] {
        return session_resting(session->state);
      })) {
    return std::nullopt;
  }
  SessionResult result = session->result;
  result.state = session->state;
  return result;
}

bool SessionManager::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session* session = it->second.get();
  if (session_resting(session->state)) return false;
  if (session->state == SessionState::kQueued) {
    session->state = SessionState::kCancelled;
    session->result = SessionResult{};
    session->result.state = SessionState::kCancelled;
    session->result.error = "cancelled before start";
    admission_.on_abandon(session->request.tenant);
    try {
      write_result(*session);
    } catch (const Error&) {
    }
    pump_locked();
    cv_.notify_all();
    return true;
  }
  // Running: raise the flag; the evaluator throws CancelledError at its
  // next batch boundary without touching shared state.
  session->cancel.store(true, std::memory_order_release);
  return true;
}

bool SessionManager::drain(double grace_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  admission_.set_draining(true);
  drained_ = true;
  for (auto& [id, session] : sessions_) {
    if (session->state == SessionState::kQueued) {
      // Park for the next daemon: the manifest stays, no result.json is
      // written, so restart re-adopts it.
      session->state = SessionState::kInterrupted;
      session->result = SessionResult{};
      session->result.state = SessionState::kInterrupted;
      admission_.on_abandon(session->request.tenant);
    } else if (session->state == SessionState::kRunning) {
      session->drain_requested = true;
      session->cancel.store(true, std::memory_order_release);
    }
  }
  update_gauges_locked();
  cv_.notify_all();

  const bool rested = cv_.wait_for(
      lock, std::chrono::duration<double>(grace_s), [this] {
        return std::all_of(sessions_.begin(), sessions_.end(),
                           [](const auto& kv) {
                             return session_resting(kv.second->state);
                           });
      });

  // Join dispatch threads outside the lock (they need it to finish).
  // Cancellation guarantees each exits at its next evaluator call, so
  // these joins terminate even when the grace period ran out first.
  std::vector<std::thread> zombies;
  for (auto& [id, session] : sessions_) {
    if (session->thread.joinable()) {
      zombies.push_back(std::move(session->thread));
    }
  }
  lock.unlock();
  for (std::thread& thread : zombies) thread.join();
  return rested;
}

ServeStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeStats stats;
  for (const auto& [id, session] : sessions_) {
    if (session->state == SessionState::kQueued) {
      ++stats.queued;
    } else if (session->state == SessionState::kRunning) {
      ++stats.running;
    } else {
      ++stats.resting;
    }
  }
  stats.adopted = adopted_;
  stats.accepted_total = accepted_total_;
  stats.rejected_total = rejected_total_;
  stats.warm_entries = warm_store_.size();
  return stats;
}

void SessionManager::pump_locked() {
  // Reap dispatch threads of rested sessions (a rested session's thread
  // never reacquires the manager mutex, so this join can only block on its
  // final stack unwind). A dispatch thread pumping from finish_session
  // skips itself — drain() joins it later.
  for (auto& [id, session] : sessions_) {
    if (session->thread.joinable() && session_resting(session->state) &&
        session->thread.get_id() != std::this_thread::get_id()) {
      session->thread.join();
    }
  }
  for (auto& [id, session] : sessions_) {
    if (!admission_.can_start()) break;
    if (session->state != SessionState::kQueued) continue;
    if (admission_.draining()) break;
    admission_.on_start();
    session->state = SessionState::kRunning;
    session->thread =
        std::thread(&SessionManager::run_session, this, session.get());
  }
  update_gauges_locked();
}

void SessionManager::update_gauges_locked() {
  std::size_t queued = 0;
  std::size_t running = 0;
  for (const auto& [id, session] : sessions_) {
    queued += session->state == SessionState::kQueued ? 1 : 0;
    running += session->state == SessionState::kRunning ? 1 : 0;
  }
  CSTUNER_OBS_GAUGE("serve.queue_depth", queued);
  CSTUNER_OBS_GAUGE("serve.running", running);
  ThreadPool& pool = ThreadPool::global();
  CSTUNER_OBS_GAUGE("pool.queue_depth", pool.queue_depth());
  CSTUNER_OBS_GAUGE("pool.inflight", pool.inflight());
}

void SessionManager::run_session(Session* session) {
  CSTUNER_TRACE_SPAN("serve", "session");
  try {
    if (session->request.kind == "analyze") {
      run_analyze(*session);
    } else {
      run_tune(*session);
    }
  } catch (const std::exception& e) {
    SessionResult result;
    result.state = SessionState::kFailed;
    result.error = e.what();
    finish_session(session, SessionState::kFailed, std::move(result));
  }
}

void SessionManager::run_tune(Session& session) {
  const TuneRequest& request = session.request;
  const stencil::StencilSpec spec = stencil::make_stencil(request.stencil);
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::arch_by_name(request.arch));
  tuner::Evaluator evaluator(sim, space, {}, request.seed);
  evaluator.set_cancel_flag(&session.cancel);
  if (request.deadline_s > 0.0) {
    evaluator.set_virtual_deadline(request.deadline_s);
  }
  if (request.fault_rate > 0.0) {
    evaluator.set_fault_injection(
        gpusim::FaultConfig::uniform(request.fault_rate, request.seed),
        spec.name);
  }

  tuner::Checkpoint checkpoint(session.dir + "/checkpoint", vfs_);
  checkpoint.set_sync_policy(options_.checkpoint_sync);
  if (checkpoint.has_journal_file()) {
    const std::size_t recovered = checkpoint.load();
    std::cerr << "serve: session " << session.id << " resuming, " << recovered
              << " journaled evaluation(s)\n";
  }
  evaluator.set_checkpoint(&checkpoint);

  const auto checkpoint_and_rest = [&](SessionState state,
                                       const std::string& error) {
    checkpoint.flush();
    checkpoint.write_snapshot(evaluator.serialize_state());
    SessionResult result = result_from(evaluator, state);
    result.error = error;
    finish_session(&session, state, std::move(result));
  };

  try {
    // Replay the manifest-pinned warm start first: it seeds best-so-far
    // (and the cache) before the tuner's own search, and because it is the
    // first journaled evaluation a resumed run replays it identically.
    if (!request.warm.empty()) {
      const space::Setting warm = setting_from_raw(request.warm);
      if (space.is_valid(warm)) evaluator.evaluate(warm);
    }
    std::unique_ptr<tuner::Tuner> tuner = make_tuner(request);
    tuner::StopCriteria stop;
    stop.max_virtual_seconds = request.budget_s;
    tuner->tune(evaluator, stop);
  } catch (const DeadlineError& e) {
    checkpoint_and_rest(SessionState::kExpired, e.what());
    return;
  } catch (const CancelledError& e) {
    // Drain-initiated cancels park the session for the next daemon; an
    // explicit client cancel is final. Both flush everything committed so
    // far — an interrupted session resumes from here bit-identically.
    checkpoint_and_rest(session.drain_requested ? SessionState::kInterrupted
                                                : SessionState::kCancelled,
                        e.what());
    return;
  } catch (const tuner::CheckpointError& e) {
    // The storage failed, not the tuning. Degrade exactly this session:
    // the evaluator's shared state is untouched (the typed error already
    // guarantees no partial mutation), no result.json means a later daemon
    // re-adopts and retries from whatever the journal durably holds.
    CSTUNER_OBS_COUNT("serve.checkpoint_failures", 1);
    SessionResult result = result_from(evaluator, SessionState::kFailed);
    result.error = e.what();
    finish_session(&session, SessionState::kFailed, std::move(result));
    return;
  }

  checkpoint.flush();
  checkpoint.write_snapshot(evaluator.serialize_state());
  SessionResult result = result_from(evaluator, SessionState::kDone);
  if (options_.warm_start && evaluator.best_setting().has_value()) {
    warm_store_.add(spec, request.arch, *evaluator.best_setting(),
                    evaluator.best_time_ms());
  }
  finish_session(&session, SessionState::kDone, std::move(result));
}

void SessionManager::run_analyze(Session& session) {
  const TuneRequest& request = session.request;
  const stencil::StencilSpec spec = stencil::make_stencil(request.stencil);
  space::SearchSpace space(spec);
  const gpusim::GpuArch& arch = gpusim::arch_by_name(request.arch);
  analysis::AnalyzerOptions options;
  options.arch = &arch;

  Rng rng(request.seed);
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  try {
    for (std::uint64_t i = 0; i < request.samples; ++i) {
      if (session.cancel.load(std::memory_order_acquire)) {
        throw CancelledError("analysis cancelled");
      }
      const space::Setting setting = space.random_valid(rng);
      const analysis::Report report =
          analysis::analyze_setting(spec, setting, options);
      errors += report.error_count();
      warnings += report.count(analysis::Severity::kWarning);
    }
  } catch (const CancelledError& e) {
    // Analysis has no journal; an interrupted one simply reruns from its
    // seed next time (same settings, same verdicts — it is deterministic).
    SessionResult result;
    result.state = session.drain_requested ? SessionState::kInterrupted
                                           : SessionState::kCancelled;
    result.error = e.what();
    finish_session(&session, result.state, std::move(result));
    return;
  }

  SessionResult result;
  result.state = SessionState::kDone;
  result.evaluations = request.samples;
  result.lint_errors = errors;
  result.lint_warnings = warnings;
  finish_session(&session, SessionState::kDone, std::move(result));
}

void SessionManager::finish_session(Session* session, SessionState state,
                                    SessionResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  session->state = state;
  result.state = state;
  session->result = std::move(result);
  admission_.on_finish(session->request.tenant);
  obs::metrics()
      .counter("serve.finished." + session->request.tenant)
      .add(1);
  if (state != SessionState::kInterrupted) {
    // Interrupted sessions intentionally leave no result.json: its absence
    // is what marks them for re-adoption on the next start.
    try {
      write_result(*session);
    } catch (const Error& e) {
      std::cerr << "serve: session " << session->id
                << ": cannot publish result: " << e.what() << "\n";
    }
  }
  pump_locked();
  cv_.notify_all();
}

}  // namespace cstuner::serve
