#pragma once
// Persistent cross-stencil warm-start store (docs/serving.md §Warm starts).
// Every finished tuning session deposits its best (stencil, arch, setting,
// time) tuple; later submissions for similar stencils get a predicted good
// setting back immediately — under overload the daemon can answer with the
// prediction alone while the full refinement waits in the queue.
//
// Prediction is two-tier: with few entries, nearest-neighbour by stencil
// shape features (same-arch entries preferred); once the store holds enough
// history, a per-parameter random-forest regressor (src/ml) maps shape
// features to parameter values. Either way the raw prediction is snapped to
// the target space's admissible values, canonicalized, repaired, and
// validated before anyone sees it.
//
// Persistence is a single JSON file rewritten via tmp + fsync + rename, the
// same crash-safety discipline as checkpoint snapshots: readers see the old
// store or the new one, never a torn file.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "io/vfs.hpp"
#include "space/search_space.hpp"

namespace cstuner::serve {

/// One deposited tuning outcome.
struct WarmEntry {
  std::string stencil;
  std::string arch;
  std::vector<double> features;        ///< features_of() at deposit time
  std::vector<std::int64_t> setting;   ///< raw parameter values
  std::uint64_t best_time_bits = 0;    ///< IEEE-754 bits of best time (ms)

  double best_time_ms() const;
};

class WarmStore {
 public:
  /// Loads the store at `path` if the file exists (empty path = in-memory
  /// only, nothing persisted). A malformed file — truncated at any byte,
  /// or garbage — loads as empty with a warning, never fatal and never
  /// poisoning predictions: the store is an accelerator, not a correctness
  /// dependency. I/O goes through `vfs` (default: the real filesystem).
  explicit WarmStore(std::string path = "", io::Vfs* vfs = nullptr);

  /// Deposits a tuning outcome. One entry per (stencil, arch) is kept: a
  /// slower duplicate is dropped, a faster one replaces. Persists when
  /// backed by a file.
  void add(const stencil::StencilSpec& spec, const std::string& arch,
           const space::Setting& setting, double best_time_ms);

  /// Predicted good setting for a new (space, arch), or nullopt when the
  /// store has nothing usable. The result is always valid in `space`.
  std::optional<space::Setting> predict(const space::SearchSpace& space,
                                        const std::string& arch) const;

  std::size_t size() const;

  /// Shape features used for similarity: {log2 points, order, flops,
  /// io_arrays, taps per point, log2(1 + arithmetic intensity)}.
  static std::vector<double> features_of(const stencil::StencilSpec& spec);

  /// Entries before the forest tier activates.
  static constexpr std::size_t kForestThreshold = 8;

 private:
  void load();
  void persist_locked() const;
  std::optional<space::Setting> predict_forest_locked(
      const space::SearchSpace& space) const;
  std::optional<space::Setting> predict_nearest_locked(
      const space::SearchSpace& space, const std::string& arch) const;

  std::string path_;
  io::Vfs* vfs_;
  mutable std::mutex mutex_;
  std::vector<WarmEntry> entries_;
};

}  // namespace cstuner::serve
