#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::serve {

namespace {

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

int listen_on(const std::string& host, int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot bind " + host + ":" + std::to_string(port) + ": " +
                std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw Error("listen() failed on " + host + ":" + std::to_string(port));
  }
  return fd;
}

int bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw Error("getsockname() failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

int accept_with_timeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return -1;  // signal (e.g. SIGTERM): let caller check
    throw Error("poll() failed on listener");
  }
  if (ready == 0) return -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return -1;
    throw Error("accept() failed");
  }
  return fd;
}

int connect_to(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error("socket() failed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot connect to " + host + ":" + std::to_string(port) +
                ": " + std::strerror(err));
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped draining. Give up on the
        // connection instead of wedging the serving thread behind it.
        CSTUNER_OBS_COUNT("serve.net.send_timeouts", 1);
        throw Error("send() timed out");
      }
      throw Error("send() failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

LineReader::Status LineReader::read_line(std::string& out, int timeout_ms) {
  // One deadline for the whole call: a peer trickling one byte per poll
  // interval exhausts this budget instead of resetting it per chunk.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (discarding_) {
        // Tail of an oversized line: drop it and report the rejection now
        // that the stream is aligned on the next line.
        buffer_.erase(0, nl + 1);
        discarding_ = false;
        return Status::kOversized;
      }
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
      // Line limit blown: stop buffering, start discarding to the next
      // newline. Memory stays bounded no matter how much the peer sends.
      buffer_.clear();
      discarding_ = true;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    if (remaining <= 0) return Status::kTimeout;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0) {
      if (errno == EINTR) return Status::kTimeout;
      throw Error("poll() failed on connection");
    }
    if (ready == 0) return Status::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kEof;  // reset-by-peer etc: treat as end of stream
    }
    if (n == 0) {
      // Peer closed; a trailing unterminated line is not a request.
      return Status::kEof;
    }
    CSTUNER_OBS_COUNT("serve.net.bytes_in", n);
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cstuner::serve
