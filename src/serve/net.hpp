#pragma once
// Minimal POSIX TCP plumbing for the serve daemon (docs/serving.md): a
// listener with poll-based accept (so the accept loop can notice a drain
// signal between connections), a blocking client connect, and a buffered
// line reader — the protocol is one JSON document per line, so lines are
// the only framing the transport needs.

#include <string>

namespace cstuner::serve {

/// Opens a listening TCP socket on host:port (port 0 = ephemeral; read the
/// chosen one back with bound_port). Throws cstuner::Error on failure.
int listen_on(const std::string& host, int port, int backlog = 16);

/// The port a listening socket actually bound (resolves port 0).
int bound_port(int listen_fd);

/// Accepts one connection, waiting at most timeout_ms. Returns the
/// connected fd, or -1 on timeout (no connection pending).
int accept_with_timeout(int listen_fd, int timeout_ms);

/// Connects to host:port, waiting at most timeout_ms for the connection to
/// establish. Throws cstuner::Error on failure or timeout.
int connect_to(const std::string& host, int port, int timeout_ms);

/// Writes the whole buffer, resuming across short writes and EINTR.
/// Throws cstuner::Error on a transport error.
void send_all(int fd, const std::string& data);

/// Buffered newline-delimited reader over one socket. Does not own the fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  enum class Status { kLine, kEof, kTimeout };

  /// Reads one '\n'-terminated line (terminator stripped) into `out`.
  /// kTimeout after timeout_ms with no complete line — the caller decides
  /// whether to keep waiting (and can check a stop flag in between).
  Status read_line(std::string& out, int timeout_ms);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace cstuner::serve
