#pragma once
// Minimal POSIX TCP plumbing for the serve daemon (docs/serving.md): a
// listener with poll-based accept (so the accept loop can notice a drain
// signal between connections), a blocking client connect, and a buffered
// line reader — the protocol is one JSON document per line, so lines are
// the only framing the transport needs.

#include <cstddef>
#include <string>

namespace cstuner::serve {

/// Opens a listening TCP socket on host:port (port 0 = ephemeral; read the
/// chosen one back with bound_port). Throws cstuner::Error on failure.
int listen_on(const std::string& host, int port, int backlog = 16);

/// The port a listening socket actually bound (resolves port 0).
int bound_port(int listen_fd);

/// Accepts one connection, waiting at most timeout_ms. Returns the
/// connected fd, or -1 on timeout (no connection pending).
int accept_with_timeout(int listen_fd, int timeout_ms);

/// Connects to host:port, waiting at most timeout_ms for the connection to
/// establish. Throws cstuner::Error on failure or timeout.
int connect_to(const std::string& host, int port, int timeout_ms);

/// Writes the whole buffer, resuming across short writes and EINTR.
/// Throws cstuner::Error on a transport error — including a send timeout
/// when the socket carries SO_SNDTIMEO (a receiver that stops draining must
/// kill the connection, not wedge the serving thread).
void send_all(int fd, const std::string& data);

/// Buffered newline-delimited reader over one socket. Does not own the fd.
///
/// Hostile-input posture: `max_line_bytes` bounds buffering — once a line
/// exceeds it the partial bytes are dropped and the stream is consumed up
/// to the next newline, which reports kOversized so the server can answer
/// with a typed rejection and keep the connection. Each read_line call
/// observes one deadline computed on entry, so a client trickling a byte
/// per poll interval cannot extend the wait forever (slow-loris).
class LineReader {
 public:
  /// `max_line_bytes` of 0 means unbounded (trusted local use only).
  explicit LineReader(int fd, std::size_t max_line_bytes = 0)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  enum class Status { kLine, kEof, kTimeout, kOversized };

  /// Reads one '\n'-terminated line (terminator stripped) into `out`.
  /// kTimeout after timeout_ms with no complete line — the caller decides
  /// whether to keep waiting (and can check a stop flag in between).
  /// kOversized when a line blew past max_line_bytes (the oversized line
  /// has been fully discarded; the stream is aligned on the next line).
  Status read_line(std::string& out, int timeout_ms);

  /// True when an incomplete line (or an oversized line still being
  /// discarded) is pending — the server uses this to hold a trickling
  /// connection to an overall deadline across read_line calls.
  bool has_partial() const { return !buffer_.empty() || discarding_; }

 private:
  int fd_;
  std::size_t max_line_bytes_;
  bool discarding_ = false;
  std::string buffer_;
};

}  // namespace cstuner::serve
