#pragma once
// The daemon's TCP front end (docs/serving.md): accepts connections, frames
// newline-delimited JSON requests, and maps each op onto the
// SessionManager. All policy — admission, quotas, deadlines, recovery —
// lives in the manager; this layer only speaks the protocol.
//
// Shutdown: stop() (or SIGTERM/SIGINT via install_signal_handlers) makes
// the accept loop wind down, drains the manager (running sessions
// checkpoint and park), and returns. A SIGKILL skips the drain — which the
// manager's construction-time recovery is explicitly built to survive.

#include <atomic>
#include <cstddef>
#include <string>

#include "serve/session_manager.hpp"

namespace cstuner::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port lands in port_file
  /// When non-empty, the bound port is published here (atomic write) once
  /// the listener is up — how scripts find an ephemeral-port daemon.
  std::string port_file;
  /// Idle read timeout per connection before the daemon hangs up.
  double idle_timeout_s = 120.0;

  // Hostile-input bounds (docs/durability.md). Every limit answers with a
  // typed response or a closed connection — never unbounded buffering.
  /// Longest accepted request line; longer lines are discarded and
  /// answered with rejected{reason:"oversized"}.
  std::size_t max_line_bytes = std::size_t{1} << 20;
  /// JSON parse limits for request documents (JsonLimitError maps to the
  /// same typed oversized rejection).
  int max_json_depth = 16;
  std::size_t max_json_nodes = 4096;
  /// A connection may hold an incomplete request line at most this long
  /// before the daemon hangs up (slow-loris defense).
  double partial_line_deadline_s = 10.0;
  /// SO_SNDTIMEO per connection: a peer that stops draining responses gets
  /// disconnected instead of wedging the serving thread.
  double send_timeout_s = 10.0;
};

class Server {
 public:
  /// Binds the listener immediately (throws on failure); serving starts
  /// with run().
  Server(SessionManager& manager, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }

  /// Serves until stop() is called or an installed signal handler fires.
  /// Drains the manager before returning.
  void run();

  /// Requests shutdown; safe from any thread (the shutdown op uses it).
  void stop() { stop_.store(true, std::memory_order_release); }

  /// Routes SIGTERM and SIGINT to the graceful-drain path of every Server
  /// in the process (a sig_atomic_t flag the accept loops poll).
  static void install_signal_handlers();

 private:
  void serve_connection(int fd);
  /// Handles one request line; returns the final response line. The stream
  /// op additionally sends interim status lines on `fd` directly.
  std::string handle_line(int fd, const std::string& line);

  SessionManager& manager_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace cstuner::serve
