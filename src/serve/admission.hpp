#pragma once
// Admission control and backpressure for the serve daemon (docs/serving.md
// §Quotas): bounded run/queue capacity, per-tenant quotas, and load shedding
// with typed rejections carrying a retry_after hint that grows with queue
// depth. Pure bookkeeping — no locks here; the SessionManager's mutex
// serializes every call, which keeps admission decisions atomic with the
// session-table updates they gate.

#include <cstddef>
#include <map>
#include <string>

namespace cstuner::serve {

struct AdmissionOptions {
  std::size_t max_running = 2;   ///< sessions executing concurrently
  std::size_t max_queued = 16;   ///< sessions waiting, all tenants combined
  std::size_t tenant_quota = 8;  ///< queued+running cap per tenant
  double retry_after_base_s = 0.5;
};

/// Outcome of one admission attempt. When !admitted, `reason` is one of
/// "queue_full" | "tenant_quota" | "draining" and retry_after_s tells the
/// client when resubmitting is likely to succeed.
struct AdmissionDecision {
  bool admitted = false;
  std::string reason;
  double retry_after_s = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  /// Decides whether a new session for `tenant` may enter the queue and, if
  /// so, charges the queue and tenant counters.
  AdmissionDecision try_admit(const std::string& tenant);

  /// Re-admits a journaled session found on restart, bypassing the queue
  /// bound — adopted sessions were already accepted once and must not be
  /// dropped (zero dropped-but-accepted requests). Tenant accounting still
  /// applies so quotas stay truthful.
  void adopt(const std::string& tenant);

  /// True when a queued session may move to running.
  bool can_start() const { return running_ < options_.max_running; }
  /// Queue → running transition.
  void on_start();
  /// Running session reached a resting state (final or interrupted).
  void on_finish(const std::string& tenant);
  /// Queued session left without ever running (cancel, drain).
  void on_abandon(const std::string& tenant);

  /// Draining daemons refuse all new work with reason "draining".
  void set_draining(bool draining) { draining_ = draining; }
  bool draining() const { return draining_; }

  std::size_t queued() const { return queued_; }
  std::size_t running() const { return running_; }
  std::size_t tenant_load(const std::string& tenant) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  double retry_after() const;

  AdmissionOptions options_;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool draining_ = false;
  std::map<std::string, std::size_t> tenant_load_;
};

}  // namespace cstuner::serve
