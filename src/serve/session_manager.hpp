#pragma once
// Session scheduling for the tuning daemon (docs/serving.md). A
// SessionManager owns the session table, the admission controller, and the
// warm-start store; the TCP server above it is a thin protocol shim.
//
// Lifecycle: submit() validates the request, asks the warm store for a
// starting point, runs admission, and — only after the session manifest is
// durably on disk — acknowledges the session. Accepted sessions queue until
// a run slot frees; each running session gets a dedicated dispatch thread
// and an Evaluator whose batches fan out over the shared ThreadPool
// (docs/threading.md). Cooperative cancellation and virtual-clock deadlines
// plumb straight into the evaluator, so a cancel/expiry never poisons the
// shared cache or quarantine state of other sessions.
//
// Crash safety: the manifest is the unit of acceptance. Tune sessions
// checkpoint (journal + snapshots) under their session directory; results
// are published by atomic rename. On construction the manager re-adopts
// every manifest without a result — whether the previous daemon drained
// cleanly or died by SIGKILL — and resumes each from its journal, so the
// final results are bit-identical to never-interrupted runs
// (docs/fault-tolerance.md).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/warm_store.hpp"
#include "tuner/checkpoint.hpp"

namespace cstuner::serve {

/// Upper bounds on request parameters, enforced at submit before anything
/// is charged or persisted: a hostile (or fuzzed) request must not be able
/// to commit the daemon to unbounded work or unbounded strings. Defaults
/// sit far above every legitimate workload in the repo.
struct RequestLimits {
  double max_budget_s = 3600.0;        ///< virtual tuning budget
  double max_deadline_s = 86400.0;     ///< virtual-clock deadline
  std::uint64_t max_universe = 10'000'000;
  std::uint64_t max_samples = 100'000;  ///< analyze sample cap
  std::size_t max_warm_values = 64;     ///< warm-start vector length
  std::size_t max_name_bytes = 64;      ///< tenant/stencil/arch/method/kind
};

struct ServeOptions {
  /// Root of all daemon state: sessions/<id>/{manifest.json, checkpoint/,
  /// result.json} plus the warm-start store.
  std::string state_dir = "serve-state";
  AdmissionOptions admission;
  RequestLimits limits;
  /// Journal durability of session checkpoints (--checkpoint-sync).
  tuner::Checkpoint::SyncPolicy checkpoint_sync =
      tuner::Checkpoint::SyncPolicy::kBatch;
  /// Wall-clock grace a drain waits for running sessions to reach their
  /// next cancellation point and checkpoint.
  double drain_grace_s = 30.0;
  /// Consult/feed the warm-start store (--no-warm-start turns this off;
  /// the recovery smoke test does, because predictions depend on which
  /// sessions finished first and would differ across a restart).
  bool warm_start = true;
  /// Filesystem boundary for all daemon state; nullptr = the real
  /// filesystem. The crash-consistency sweep injects a FaultVfs here.
  io::Vfs* vfs = nullptr;
};

/// submit() outcome: either an accepted session id or a typed rejection.
/// Either way, when the warm store had a prediction for the request it is
/// attached — under overload the client gets a usable setting immediately
/// while the full refinement queues (or is retried later).
struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;
  std::string reject_reason;  ///< "queue_full" | "tenant_quota" | "draining"
  double retry_after_s = 0.0;
  std::string warm_setting;  ///< human-readable prediction ("" = none)
  double warm_predicted_ms = 0.0;  ///< model-predicted time of the warm setting
};

/// Point-in-time view of one session for status responses.
struct SessionStatus {
  std::uint64_t id = 0;
  SessionState state = SessionState::kQueued;
  std::string tenant;
  std::string stencil;
  SessionResult result;  ///< meaningful once the session rests
};

/// Daemon-level counters for the stats op.
struct ServeStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t resting = 0;
  std::size_t adopted = 0;  ///< sessions re-adopted at startup
  std::size_t accepted_total = 0;
  std::size_t rejected_total = 0;
  std::size_t warm_entries = 0;
};

class SessionManager {
 public:
  /// Opens (creating if needed) the state directory and immediately
  /// re-adopts every journaled session found there — recovery is part of
  /// construction so a restarted daemon can never forget accepted work.
  explicit SessionManager(ServeOptions options = {});
  /// Drains (cancel + checkpoint) anything still running.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Validates, warm-starts, admits, persists the manifest, and queues.
  /// Throws UsageError for malformed requests (unknown stencil/arch/
  /// method) — the caller maps that to a bad_request response.
  SubmitOutcome submit(TuneRequest request);

  /// nullopt for unknown ids.
  std::optional<SessionStatus> status(std::uint64_t id) const;

  /// Blocks until the session rests (final or interrupted) or `timeout_s`
  /// wall seconds pass; nullopt on timeout or unknown id.
  std::optional<SessionResult> result(std::uint64_t id, double timeout_s);

  /// Requests cooperative cancellation. True if the session existed and
  /// was not already resting.
  bool cancel(std::uint64_t id);

  /// Graceful drain: refuse new work, park queued sessions for the next
  /// daemon, cancel running ones at their next batch boundary (they
  /// checkpoint and rest as kInterrupted). Returns true when everything
  /// rested within `grace_s` (then joins stragglers unconditionally —
  /// cancellation guarantees forward progress).
  bool drain(double grace_s);

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }
  /// Sessions re-adopted by the constructor's recovery pass.
  std::size_t adopted() const { return adopted_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    TuneRequest request;
    SessionState state = SessionState::kQueued;
    SessionResult result;
    std::string dir;
    std::atomic<bool> cancel{false};
    bool drain_requested = false;
    std::thread thread;
  };

  std::string sessions_dir() const;
  std::string session_dir(std::uint64_t id) const;
  void write_manifest(const Session& session) const;
  void write_result(const Session& session) const;
  void recover_locked();
  /// Starts queued sessions while run slots are free and reaps finished
  /// dispatch threads. Call with mutex_ held.
  void pump_locked();
  void update_gauges_locked();
  /// Session dispatch-thread body.
  void run_session(Session* session);
  void run_tune(Session& session);
  void run_analyze(Session& session);
  /// Transition to a resting state: bookkeeping + result publication +
  /// wakeups. Called from the dispatch thread.
  void finish_session(Session* session, SessionState state,
                      SessionResult result);

  ServeOptions options_;
  io::Vfs* vfs_;
  WarmStore warm_store_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  AdmissionController admission_;
  std::uint64_t next_id_ = 1;
  std::size_t adopted_ = 0;
  std::size_t accepted_total_ = 0;
  std::size_t rejected_total_ = 0;
  bool drained_ = false;
};

}  // namespace cstuner::serve
