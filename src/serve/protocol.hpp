#pragma once
// Wire protocol of the tuning daemon (docs/serving.md): line-delimited JSON
// over TCP. Every request is one JSON object with an "op" member; every
// response is one JSON object with a "type" member. This header holds the
// typed request/result payloads shared by the server, the session manager,
// the on-disk session manifests, and the CLI client — the manifest IS the
// submit request plus the warm-start decision, so a re-adopted session
// replays from exactly what was admitted.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "io/vfs.hpp"

namespace cstuner::serve {

/// Lifecycle of one session. kInterrupted is the only non-final resting
/// state: the session was checkpointed by a drain (or found mid-flight
/// after a crash) and will be re-adopted — and resumed bit-identically —
/// by the next daemon start.
enum class SessionState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kExpired,      ///< per-request virtual-clock deadline fired
  kInterrupted,  ///< drained/crashed mid-run; resumable from its journal
};

const char* session_state_name(SessionState state);
SessionState session_state_from_name(const std::string& name);
/// Final states: the session will never run again (kInterrupted is not
/// final — restart re-adopts it).
bool session_state_final(SessionState state);

/// One tuning (or analysis) request, as submitted and as persisted in the
/// session manifest.
struct TuneRequest {
  std::string kind = "tune";  ///< "tune" | "analyze"
  std::string stencil = "j3d7pt";
  std::string arch = "a100";
  std::string method = "csTuner";
  std::string tenant = "default";
  std::uint64_t seed = 7;
  double budget_s = 60.0;   ///< virtual-time stop budget
  double deadline_s = 0.0;  ///< virtual-clock deadline; 0 disables
  double fault_rate = 0.0;
  std::uint64_t universe = 8000;
  std::uint64_t samples = 16;  ///< analyze sessions: settings analyzed
  bool enumerate = true;
  /// Warm-start setting chosen at submit time (raw parameter values; empty
  /// = none). Pinned in the manifest so resume replays the same choice no
  /// matter how the warm store evolved since.
  std::vector<std::int64_t> warm;

  /// Serializes as a JSON object body (caller opens/closes the object).
  void write_fields(JsonWriter& json) const;
  /// Parses from a request or manifest object; unknown members are
  /// ignored, absent ones keep their defaults.
  static TuneRequest from_json(const JsonValue& v);
};

/// Terminal outcome of a session, as served to clients and persisted as
/// result.json. Times are IEEE-754 bit patterns so the kill-and-restart
/// acceptance test can compare results bit for bit.
struct SessionResult {
  SessionState state = SessionState::kDone;
  std::uint64_t best_time_bits = 0x7ff0000000000000ULL;  // +inf
  std::string best_setting;
  std::uint64_t evaluations = 0;
  std::uint64_t iterations = 0;
  std::uint64_t virtual_time_bits = 0;
  std::uint64_t lint_errors = 0;    ///< analyze sessions
  std::uint64_t lint_warnings = 0;  ///< analyze sessions
  std::string error;

  double best_time_ms() const;
  double virtual_time_s() const;

  void write_fields(JsonWriter& json) const;
  static SessionResult from_json(const JsonValue& v);
};

/// Durably writes `data` to `path` via tmp + fsync + rename + parent-dir
/// fsync (io::write_file_atomic): readers see the old file or the new one,
/// never a torn write, and the publication survives a power cut. The same
/// discipline as checkpoint snapshots — manifests, results and the warm
/// store all publish through this. `vfs` defaults to the real filesystem.
void write_file_atomic(const std::string& path, const std::string& data,
                       io::Vfs* vfs = nullptr);

/// Whole-file read; throws cstuner::Error when unreadable.
std::string read_file(const std::string& path, io::Vfs* vfs = nullptr);

}  // namespace cstuner::serve
