#include "serve/warm_store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ml/random_forest.hpp"
#include "obs/obs.hpp"
#include "serve/protocol.hpp"

namespace cstuner::serve {

namespace {

/// Builds a Setting from raw values, snapping each to the nearest value the
/// target space actually admits (stores may hold entries from spaces with
/// different caps).
space::Setting snapped_setting(const space::SearchSpace& space,
                               const std::vector<double>& raw) {
  space::Setting setting;
  for (std::size_t i = 0; i < space::kParamCount && i < raw.size(); ++i) {
    const auto id = static_cast<space::ParamId>(i);
    const auto& values = space.parameter(id).values;
    std::int64_t best = values.front();
    double best_dist = std::abs(static_cast<double>(best) - raw[i]);
    for (const std::int64_t v : values) {
      const double dist = std::abs(static_cast<double>(v) - raw[i]);
      if (dist < best_dist) {
        best = v;
        best_dist = dist;
      }
    }
    setting.set(id, best);
  }
  return setting;
}

/// Canonicalize + repair + validate; nullopt when even repair cannot make
/// the candidate valid.
std::optional<space::Setting> validated(const space::SearchSpace& space,
                                        space::Setting candidate) {
  candidate = space.checker().repaired(
      space.checker().canonicalized(std::move(candidate)));
  if (space.is_valid(candidate)) return candidate;
  return std::nullopt;
}

double feature_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double sum = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

double WarmEntry::best_time_ms() const {
  return std::bit_cast<double>(best_time_bits);
}

WarmStore::WarmStore(std::string path, io::Vfs* vfs)
    : path_(std::move(path)),
      vfs_(vfs != nullptr ? vfs : &io::Vfs::real()) {
  load();
}

std::vector<double> WarmStore::features_of(const stencil::StencilSpec& spec) {
  return {std::log2(static_cast<double>(spec.points())),
          static_cast<double>(spec.order),
          static_cast<double>(spec.flops),
          static_cast<double>(spec.io_arrays),
          static_cast<double>(spec.taps_per_point()),
          std::log2(1.0 + spec.arithmetic_intensity())};
}

void WarmStore::load() {
  try {
    if (path_.empty() || !vfs_->exists(path_)) return;
  } catch (const Error&) {
    return;
  }
  try {
    const JsonValue doc = json_parse(read_file(path_, vfs_));
    std::vector<WarmEntry> entries;
    for (const JsonValue& item : doc.at("entries").as_array()) {
      WarmEntry entry;
      entry.stencil = item.at("stencil").as_string();
      entry.arch = item.at("arch").as_string();
      entry.best_time_bits = item.at("best_time_bits").as_u64();
      for (const JsonValue& f : item.at("features").as_array()) {
        entry.features.push_back(f.as_double());
      }
      for (const JsonValue& v : item.at("setting").as_array()) {
        entry.setting.push_back(v.as_i64());
      }
      entries.push_back(std::move(entry));
    }
    entries_ = std::move(entries);
  } catch (const Error& e) {
    // A torn or stale store only loses warm starts, never correctness:
    // load empty, warn, count — and never let the corruption poison
    // predictions or crash the daemon.
    entries_.clear();
    CSTUNER_OBS_COUNT("serve.warm_store.corrupt", 1);
    CSTUNER_WARN << "warm store " << path_
                 << " is corrupt; starting empty (" << e.what() << ")";
  }
}

void WarmStore::persist_locked() const {
  if (path_.empty()) return;
  JsonWriter json;
  json.begin_object().key("entries").begin_array();
  for (const WarmEntry& entry : entries_) {
    json.begin_object()
        .field("stencil", entry.stencil)
        .field("arch", entry.arch)
        .field("best_time_bits", entry.best_time_bits)
        .field("best_time_ms", entry.best_time_ms());
    json.key("features").begin_array();
    for (const double f : entry.features) json.value(f);
    json.end_array();
    json.key("setting").begin_array();
    for (const std::int64_t v : entry.setting) json.value(v);
    json.end_array();
    json.end_object();
  }
  json.end_array().end_object();
  try {
    write_file_atomic(path_, json.str() + "\n", vfs_);
  } catch (const Error& e) {
    // Deposits are an accelerator too: a full disk must not fail the
    // session that just finished tuning.
    CSTUNER_OBS_COUNT("serve.warm_store.persist_failures", 1);
    CSTUNER_WARN << "warm store " << path_
                 << ": persist failed (" << e.what() << ")";
  }
}

void WarmStore::add(const stencil::StencilSpec& spec, const std::string& arch,
                    const space::Setting& setting, double best_time_ms) {
  if (!std::isfinite(best_time_ms)) return;
  WarmEntry entry;
  entry.stencil = spec.name;
  entry.arch = arch;
  entry.features = features_of(spec);
  entry.setting.assign(setting.raw().begin(), setting.raw().end());
  entry.best_time_bits = std::bit_cast<std::uint64_t>(best_time_ms);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const WarmEntry& e) {
                           return e.stencil == entry.stencil &&
                                  e.arch == entry.arch;
                         });
  if (it != entries_.end()) {
    if (it->best_time_ms() <= best_time_ms) return;  // keep the faster one
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
  }
  persist_locked();
}

std::size_t WarmStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::optional<space::Setting> WarmStore::predict(
    const space::SearchSpace& space, const std::string& arch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.empty()) return std::nullopt;
  if (entries_.size() >= kForestThreshold) {
    if (auto setting = predict_forest_locked(space)) return setting;
  }
  return predict_nearest_locked(space, arch);
}

std::optional<space::Setting> WarmStore::predict_forest_locked(
    const space::SearchSpace& space) const {
  // Train order is sorted by (stencil, arch) so the model — and therefore
  // the prediction — depends only on store *content*, not on the order
  // sessions happened to finish in.
  std::vector<const WarmEntry*> order;
  order.reserve(entries_.size());
  for (const WarmEntry& entry : entries_) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const WarmEntry* a, const WarmEntry* b) {
              return std::tie(a->stencil, a->arch) <
                     std::tie(b->stencil, b->arch);
            });

  const std::size_t n_features = features_of(space.spec()).size();
  std::vector<double> table;
  table.reserve(order.size() * n_features);
  for (const WarmEntry* entry : order) {
    for (std::size_t f = 0; f < n_features; ++f) {
      table.push_back(f < entry->features.size() ? entry->features[f] : 0.0);
    }
  }
  const ml::TableView x{table, order.size(), n_features};
  const std::vector<double> target_features = features_of(space.spec());

  ml::ForestConfig config;
  config.n_trees = 16;
  config.tree.max_features = 2;  // ~sqrt of the 6 shape features

  std::vector<double> raw(space::kParamCount, 1.0);
  for (std::size_t p = 0; p < space::kParamCount; ++p) {
    std::vector<double> y;
    y.reserve(order.size());
    for (const WarmEntry* entry : order) {
      y.push_back(p < entry->setting.size()
                      ? static_cast<double>(entry->setting[p])
                      : 1.0);
    }
    ml::RandomForest forest(ml::TreeTask::kRegression, config);
    // Fixed seed per parameter: predictions are a pure function of store
    // content, reproducible across daemon restarts.
    Rng rng(hash_combine(0xF0125, static_cast<std::uint64_t>(p)));
    forest.fit(x, y, rng);
    raw[p] = forest.predict(target_features);
  }
  return validated(space, snapped_setting(space, raw));
}

std::optional<space::Setting> WarmStore::predict_nearest_locked(
    const space::SearchSpace& space, const std::string& arch) const {
  const std::vector<double> target = features_of(space.spec());
  std::vector<const WarmEntry*> order;
  order.reserve(entries_.size());
  for (const WarmEntry& entry : entries_) order.push_back(&entry);
  // Same-arch entries first, then by shape distance; ties broken by name so
  // the scan order is deterministic.
  std::sort(order.begin(), order.end(),
            [&](const WarmEntry* a, const WarmEntry* b) {
              const bool a_arch = a->arch == arch;
              const bool b_arch = b->arch == arch;
              if (a_arch != b_arch) return a_arch;
              const double da = feature_distance(a->features, target);
              const double db = feature_distance(b->features, target);
              if (da != db) return da < db;
              return std::tie(a->stencil, a->arch) <
                     std::tie(b->stencil, b->arch);
            });
  for (const WarmEntry* entry : order) {
    std::vector<double> raw;
    raw.reserve(entry->setting.size());
    for (const std::int64_t v : entry->setting) {
      raw.push_back(static_cast<double>(v));
    }
    if (auto setting = validated(space, snapped_setting(space, raw))) {
      return setting;
    }
    // Invalid in this space (different caps): try the next-nearest entry.
  }
  return std::nullopt;
}

}  // namespace cstuner::serve
