#pragma once
// CUDA-C kernel source generation for a (stencil, setting) pair.
//
// The paper's pre-processing stage "writes the sampled parameter settings
// into CUDA kernels for the subsequent auto-tuning process" (§V-F, Fig. 12).
// We emit complete, human-readable CUDA-C translation units realizing the
// selected optimizations: thread-block mapping, shared-memory tiling,
// constant-memory coefficients, 2.5-D streaming with concurrent tiles,
// block/cyclic merging, loop unrolling pragmas, register prefetching and
// retimed accumulation. Without an NVIDIA toolchain the output is consumed
// by structural tests and the overhead benchmark rather than nvcc; the
// launch geometry and resource footprint it encodes are exactly what the
// GPU model simulates.

#include <string>

#include "space/resource_model.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::codegen {

struct KernelSource {
  std::string name;        ///< kernel function name
  std::string source;      ///< full translation unit text
  std::string launch;      ///< dim3 grid/block launch snippet
  space::ResourceUsage resources;
};

/// Launch geometry implied by a setting (blocks per dimension).
struct LaunchGeometry {
  std::int64_t grid[3] = {1, 1, 1};   ///< thread blocks per dimension
  std::int64_t block[3] = {1, 1, 1};  ///< threads per dimension

  std::int64_t total_blocks() const { return grid[0] * grid[1] * grid[2]; }
  std::int64_t threads_per_block() const {
    return block[0] * block[1] * block[2];
  }
};

LaunchGeometry compute_launch_geometry(const stencil::StencilSpec& spec,
                                       const space::Setting& setting);

/// Generates the full kernel source for a valid setting.
KernelSource generate_kernel(const stencil::StencilSpec& spec,
                             const space::Setting& setting);

}  // namespace cstuner::codegen
