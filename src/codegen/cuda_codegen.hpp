#pragma once
// CUDA-C kernel source generation for a (stencil, setting) pair.
//
// The paper's pre-processing stage "writes the sampled parameter settings
// into CUDA kernels for the subsequent auto-tuning process" (§V-F, Fig. 12).
// We emit complete, human-readable CUDA-C translation units realizing the
// selected optimizations: thread-block mapping, shared-memory tiling,
// constant-memory coefficients, 2.5-D streaming with concurrent tiles,
// block/cyclic merging, loop unrolling pragmas, register prefetching and
// retimed accumulation. Without an NVIDIA toolchain the output is consumed
// by structural tests and the overhead benchmark rather than nvcc; the
// launch geometry and resource footprint it encodes are exactly what the
// GPU model simulates.

#include <string>

#include "common/math_util.hpp"
#include "space/resource_model.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::codegen {

struct KernelSource {
  std::string name;        ///< kernel function name
  std::string source;      ///< full translation unit text
  std::string launch;      ///< dim3 grid/block launch snippet
  space::ResourceUsage resources;
};

/// Launch geometry implied by a setting (blocks per dimension).
struct LaunchGeometry {
  std::int64_t grid[3] = {1, 1, 1};   ///< thread blocks per dimension
  std::int64_t block[3] = {1, 1, 1};  ///< threads per dimension

  std::int64_t total_blocks() const { return grid[0] * grid[1] * grid[2]; }
  std::int64_t threads_per_block() const {
    return block[0] * block[1] * block[2];
  }
};

/// Setting-independent part of the launch-geometry computation — the grid
/// extents. The gpusim invariants cache hoists this once per (arch,
/// stencil) so the batch oracle only runs the inline division below.
struct GeometryPartials {
  std::int64_t extent[3] = {1, 1, 1};
};

inline GeometryPartials make_geometry_partials(
    const stencil::StencilSpec& spec) {
  GeometryPartials p;
  for (int d = 0; d < 3; ++d) {
    p.extent[d] = spec.grid[static_cast<std::size_t>(d)];
  }
  return p;
}

/// Launch geometry implied by a setting, from hoisted partials. Inline:
/// this runs once per setting on the batch-oracle hot path.
inline LaunchGeometry compute_launch_geometry(const GeometryPartials& partials,
                                              const space::Setting& setting) {
  LaunchGeometry g;
  constexpr space::ParamId tb[] = {space::kTBx, space::kTBy, space::kTBz};
  constexpr space::ParamId cm[] = {space::kCMx, space::kCMy, space::kCMz};
  constexpr space::ParamId bm[] = {space::kBMx, space::kBMy, space::kBMz};
  const bool streaming = setting.flag(space::kUseStreaming);
  const int sd = static_cast<int>(setting.get(space::kSD)) - 1;
  for (int d = 0; d < 3; ++d) {
    g.block[d] = setting.get(tb[d]);
    const std::int64_t extent = partials.extent[d];
    if (streaming && d == sd) {
      // Concurrent streaming: one block per SB-long tile of the streaming
      // dimension (SB == extent degenerates to classic 2.5-D streaming).
      g.grid[d] = ceil_div<std::int64_t>(extent, setting.get(space::kSB));
    } else {
      const std::int64_t coverage = setting.get(tb[d]) *
                                    setting.get(cm[d]) * setting.get(bm[d]);
      g.grid[d] = ceil_div<std::int64_t>(extent, coverage);
    }
  }
  return g;
}

LaunchGeometry compute_launch_geometry(const stencil::StencilSpec& spec,
                                       const space::Setting& setting);

/// Generates the full kernel source for a valid setting.
KernelSource generate_kernel(const stencil::StencilSpec& spec,
                             const space::Setting& setting);

}  // namespace cstuner::codegen
