#include "analysis/space_lint.hpp"

#include <cmath>
#include <sstream>

#include "analysis/propagate.hpp"

namespace cstuner::analysis {

namespace {

using space::ParamId;
using space::Setting;

/// One (parameter, value) pin applied on top of a candidate setting.
struct Pin {
  ParamId id;
  std::int64_t value;
};

void apply_pins(Setting& s, const std::vector<Pin>& pins) {
  for (const auto& pin : pins) s.set(pin.id, pin.value);
}

bool pins_hold(const Setting& s, const std::vector<Pin>& pins) {
  for (const auto& pin : pins) {
    if (s.get(pin.id) != pin.value) return false;
  }
  return true;
}

/// Deterministic witness templates: the all-ones setting (always valid on
/// its own) and its streaming variants, which unlock the SD/SB/prefetching
/// subspace the canonical encoding ties to useStreaming.
std::vector<Setting> witness_templates() {
  std::vector<Setting> out;
  out.emplace_back();  // all ones
  for (std::int64_t sd = 1; sd <= 3; ++sd) {
    Setting s;
    s.set(space::kUseStreaming, space::kOn);
    s.set(space::kSD, sd);
    s.set(space::kSB, 1);
    out.push_back(s);
  }
  return out;
}

/// Systematic dimension-local sweep: enumerates the streaming configuration
/// (useStreaming x SD x SB) and, for every grid dimension one of the pinned
/// parameters belongs to, its TB/CM/BM support values — everything else at
/// the all-ones baseline. Large unroll/merge factors are only admissible
/// with the right support (UF <= CM*BM, or UF <= SB on the streaming
/// dimension), which uniform random probing almost never assembles; this
/// sweep finds such witnesses deterministically.
bool sweep_witness(const space::SearchSpace& space,
                   const std::vector<Pin>& pins) {
  const auto& checker = space.checker();
  std::vector<int> dims;
  for (const auto& pin : pins) {
    const int d = space::param_dimension(pin.id);
    if (d >= 0) dims.push_back(d);
  }

  const space::ParamId tb[] = {space::kTBx, space::kTBy, space::kTBz};
  const space::ParamId cm[] = {space::kCMx, space::kCMy, space::kCMz};
  const space::ParamId bm[] = {space::kBMx, space::kBMy, space::kBMz};

  // Per-dimension support combinations (including the trivial all-ones one).
  std::vector<Setting> supports{Setting{}};
  for (const int d : dims) {
    std::vector<Setting> expanded;
    for (const Setting& base : supports) {
      for (const std::int64_t t : space.parameter(tb[d]).values) {
        for (const std::int64_t c : space.parameter(cm[d]).values) {
          for (const std::int64_t b : space.parameter(bm[d]).values) {
            Setting s = base;
            s.set(tb[d], t);
            s.set(cm[d], c);
            s.set(bm[d], b);
            expanded.push_back(s);
          }
        }
      }
    }
    supports = std::move(expanded);
  }

  // Retiming/shared/constant change the register and shared-memory
  // footprint, so a borderline merge factor may only be feasible with the
  // right flag combination; enumerate all eight.
  const space::ParamId flags[] = {space::kUseRetiming, space::kUseShared,
                                  space::kUseConstant};
  for (int mask = 0; mask < 8; ++mask) {
    for (const Setting& support : supports) {
      Setting flagged = support;
      for (int f = 0; f < 3; ++f) {
        flagged.set(flags[f], (mask >> f) & 1 ? space::kOn : space::kOff);
      }
      // Non-streaming configuration.
      {
        Setting s = flagged;
        apply_pins(s, pins);
        if (checker.is_valid(s)) return true;
      }
      // Streaming configurations.
      for (const std::int64_t sd : space.parameter(space::kSD).values) {
        for (const std::int64_t sb : space.parameter(space::kSB).values) {
          Setting s = flagged;
          s.set(space::kUseStreaming, space::kOn);
          s.set(space::kSD, sd);
          s.set(space::kSB, sb);
          // Rule 4: the streaming dimension carries no block/merge factors.
          const int d = static_cast<int>(sd) - 1;
          s.set(tb[d], 1);
          s.set(cm[d], 1);
          s.set(bm[d], 1);
          apply_pins(s, pins);
          if (checker.is_valid(s)) return true;
        }
      }
    }
  }
  return false;
}

/// True when some valid setting satisfies all pins: first the deterministic
/// templates (with and without repair), then the systematic dimension-local
/// sweep, then randomized search for anything the sweep's all-ones baseline
/// cannot reach.
bool find_witness(const space::SearchSpace& space, const std::vector<Pin>& pins,
                  std::size_t attempts, Rng& rng) {
  const auto& checker = space.checker();
  for (const Setting& base : witness_templates()) {
    Setting s = base;
    apply_pins(s, pins);
    if (checker.is_valid(s)) return true;
    const Setting repaired = checker.repaired(s);
    if (pins_hold(repaired, pins) && checker.is_valid(repaired)) return true;
  }
  if (sweep_witness(space, pins)) return true;
  for (std::size_t i = 0; i < attempts; ++i) {
    Setting s = space.random_setting(rng);
    apply_pins(s, pins);
    if (checker.is_valid(s)) return true;
    const Setting repaired = checker.repaired(s);
    if (pins_hold(repaired, pins) && checker.is_valid(repaired)) return true;
  }
  return false;
}

}  // namespace

bool SpaceLintResult::value_is_live(ParamId id, std::int64_t value,
                                    const space::SearchSpace& space) const {
  const auto p = static_cast<std::size_t>(id);
  const auto& values = space.parameters()[p].values;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == value) return live[p][i] != 0;
  }
  return false;
}

namespace {

/// Proven path: liveness, pairs, and the exact count come from the symbolic
/// propagation engine; every verdict carries an unsat certificate.
void lint_symbolic(const space::SearchSpace& space,
                   const PropagationResult& propagation,
                   SpaceLintResult& result) {
  const auto& params = space.parameters();
  result.proven = true;
  result.valid_count = propagation.valid_count;

  result.live.resize(params.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    result.live[p].assign(params[p].values.size(), 0);
    for (std::size_t i = 0; i < params[p].values.size(); ++i) {
      result.live[p][i] =
          ((propagation.live_masks[p] >> i) & 1U) != 0 ? 1 : 0;
    }
  }
  for (const DeadValue& dv : propagation.dead_values) {
    ++result.dead_values;
    const auto& param = params[static_cast<std::size_t>(dv.param)];
    std::ostringstream msg;
    msg << param.name << '=' << dv.value
        << " appears in no valid setting (statically prunable); rule "
        << dv.rule << ": " << dv.certificate;
    result.report.warn("space.dead-value", "space:" + param.name, msg.str(),
                       "proven");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    if (params[p].values.empty() || propagation.live_masks[p] != 0) continue;
    result.report.error("space.dead-parameter", "space:" + params[p].name,
                        "every admissible value of " + params[p].name +
                            " is dead: the space is empty",
                        "proven");
  }

  for (const DeadPair& pair : propagation.dead_pairs) {
    ++result.dead_pairs;
    const auto& pa = params[static_cast<std::size_t>(pair.a)];
    const auto& pb = params[static_cast<std::size_t>(pair.b)];
    std::ostringstream msg;
    msg << pa.name << '=' << pair.value_a << " with " << pb.name << '='
        << pair.value_b
        << " is jointly infeasible (statically prunable subspace): "
        << pair.certificate;
    result.report.note("space.dead-subspace",
                       "space:" + pa.name + "x" + pb.name, msg.str(),
                       "proven");
  }
  // Every candidate pair is decided from the region verdicts.
  for (std::size_t a = 0; a < params.size(); ++a) {
    if (params[a].kind == space::ParamKind::kPow2) continue;
    for (std::size_t b = a + 1; b < params.size(); ++b) {
      if (params[b].kind == space::ParamKind::kPow2) continue;
      result.probed_pairs += params[a].values.size() *
                             params[b].values.size();
    }
  }

  std::ostringstream msg;
  msg << result.valid_count << " valid settings (exact) out of 10^"
      << space.log10_cartesian_size() << " raw combinations";
  result.report.note("space.valid-count", "space", msg.str(), "proven");
}

/// Heuristic path: randomized witness probing, capped pair checks.
void lint_heuristic(const space::SearchSpace& space,
                    const SpaceLintOptions& options, Rng& rng,
                    SpaceLintResult& result) {
  const auto& params = space.parameters();

  // --- Per-parameter value liveness. ---------------------------------------
  result.live.resize(params.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    const auto& param = params[p];
    result.live[p].assign(param.values.size(), 0);
    std::size_t dead_here = 0;
    for (std::size_t i = 0; i < param.values.size(); ++i) {
      const std::int64_t value = param.values[i];
      const bool live = find_witness(
          space, {{param.id, value}}, options.probe_attempts, rng);
      result.live[p][i] = live ? 1 : 0;
      if (!live) {
        ++dead_here;
        ++result.dead_values;
        std::ostringstream msg;
        msg << param.name << '=' << value
            << " appears in no valid setting (statically prunable)";
        result.report.warn("space.dead-value", "space:" + param.name,
                           msg.str(), "heuristic");
      }
    }
    if (dead_here == param.values.size()) {
      result.report.error("space.dead-parameter", "space:" + param.name,
                          "every admissible value of " + param.name +
                              " is dead: the space is empty",
                          "heuristic");
    }
  }

  // --- Pairwise subspace liveness over the small (bool/enum) parameters. ---
  // Deterministic (parameter, parameter, value, value) order; probes past
  // the cap are counted as skipped instead of silently run.
  if (options.check_pairs) {
    for (std::size_t a = 0; a < params.size(); ++a) {
      if (params[a].kind == space::ParamKind::kPow2) continue;
      for (std::size_t b = a + 1; b < params.size(); ++b) {
        if (params[b].kind == space::ParamKind::kPow2) continue;
        for (std::size_t i = 0; i < params[a].values.size(); ++i) {
          for (std::size_t j = 0; j < params[b].values.size(); ++j) {
            if (result.live[a][i] == 0 || result.live[b][j] == 0) {
              continue;  // implied by a dead value; already reported
            }
            if (result.probed_pairs >= options.max_pair_probes) {
              ++result.skipped_pairs;
              continue;
            }
            ++result.probed_pairs;
            const std::vector<Pin> pins = {
                {params[a].id, params[a].values[i]},
                {params[b].id, params[b].values[j]}};
            if (!find_witness(space, pins, options.probe_attempts, rng)) {
              ++result.dead_pairs;
              std::ostringstream msg;
              msg << params[a].name << '=' << params[a].values[i] << " with "
                  << params[b].name << '=' << params[b].values[j]
                  << " is jointly infeasible (statically prunable subspace)";
              result.report.note("space.dead-subspace",
                                 "space:" + params[a].name + "x" +
                                     params[b].name,
                                 msg.str(), "heuristic");
            }
          }
        }
      }
    }
    if (result.skipped_pairs > 0) {
      std::ostringstream msg;
      msg << result.skipped_pairs << " of "
          << result.probed_pairs + result.skipped_pairs
          << " pair subspaces skipped by the probe cap ("
          << options.max_pair_probes << ')';
      result.report.note("space.pairs-skipped", "space", msg.str(),
                         "heuristic");
    }
  }
}

}  // namespace

SpaceLintResult lint_space(const space::SearchSpace& space,
                           const SpaceLintOptions& options) {
  SpaceLintResult result;
  Rng rng(options.seed);

  bool symbolic_done = false;
  if (options.use_symbolic) {
    PropagateOptions popts;
    popts.compute_counts = true;
    const PropagationResult propagation = propagate(space, popts);
    if (propagation.engine_applicable) {
      lint_symbolic(space, propagation, result);
      symbolic_done = true;
    } else {
      result.report.note("space.engine-inapplicable", "space",
                         "symbolic engine unavailable: " +
                             propagation.inapplicable_reason +
                             "; falling back to randomized probing");
    }
  }
  if (!symbolic_done) lint_heuristic(space, options, rng, result);

  // --- Valid fraction of the unconstrained cartesian space. ----------------
  // Always sampled: it estimates rejection-sampling efficiency, which the
  // symbolic count does not replace (and cross-checks it cheaply).
  if (options.validity_samples > 0) {
    std::size_t valid = 0;
    for (std::size_t i = 0; i < options.validity_samples; ++i) {
      if (space.is_valid(space.random_setting(rng))) ++valid;
    }
    result.sampled_valid_fraction =
        static_cast<double>(valid) /
        static_cast<double>(options.validity_samples);
    std::ostringstream msg;
    msg << "~" << result.sampled_valid_fraction * 100.0
        << "% of independently-uniform draws satisfy all constraints";
    result.report.note("space.valid-fraction", "space", msg.str(),
                       "heuristic");
  }

  return result;
}

}  // namespace cstuner::analysis
