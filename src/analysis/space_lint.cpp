#include "analysis/space_lint.hpp"

#include <sstream>

namespace cstuner::analysis {

namespace {

using space::ParamId;
using space::Setting;

/// One (parameter, value) pin applied on top of a candidate setting.
struct Pin {
  ParamId id;
  std::int64_t value;
};

void apply_pins(Setting& s, const std::vector<Pin>& pins) {
  for (const auto& pin : pins) s.set(pin.id, pin.value);
}

bool pins_hold(const Setting& s, const std::vector<Pin>& pins) {
  for (const auto& pin : pins) {
    if (s.get(pin.id) != pin.value) return false;
  }
  return true;
}

/// Deterministic witness templates: the all-ones setting (always valid on
/// its own) and its streaming variants, which unlock the SD/SB/prefetching
/// subspace the canonical encoding ties to useStreaming.
std::vector<Setting> witness_templates() {
  std::vector<Setting> out;
  out.emplace_back();  // all ones
  for (std::int64_t sd = 1; sd <= 3; ++sd) {
    Setting s;
    s.set(space::kUseStreaming, space::kOn);
    s.set(space::kSD, sd);
    s.set(space::kSB, 1);
    out.push_back(s);
  }
  return out;
}

/// Systematic dimension-local sweep: enumerates the streaming configuration
/// (useStreaming x SD x SB) and, for every grid dimension one of the pinned
/// parameters belongs to, its TB/CM/BM support values — everything else at
/// the all-ones baseline. Large unroll/merge factors are only admissible
/// with the right support (UF <= CM*BM, or UF <= SB on the streaming
/// dimension), which uniform random probing almost never assembles; this
/// sweep finds such witnesses deterministically.
bool sweep_witness(const space::SearchSpace& space,
                   const std::vector<Pin>& pins) {
  const auto& checker = space.checker();
  std::vector<int> dims;
  for (const auto& pin : pins) {
    const int d = space::param_dimension(pin.id);
    if (d >= 0) dims.push_back(d);
  }

  const space::ParamId tb[] = {space::kTBx, space::kTBy, space::kTBz};
  const space::ParamId cm[] = {space::kCMx, space::kCMy, space::kCMz};
  const space::ParamId bm[] = {space::kBMx, space::kBMy, space::kBMz};

  // Per-dimension support combinations (including the trivial all-ones one).
  std::vector<Setting> supports{Setting{}};
  for (const int d : dims) {
    std::vector<Setting> expanded;
    for (const Setting& base : supports) {
      for (const std::int64_t t : space.parameter(tb[d]).values) {
        for (const std::int64_t c : space.parameter(cm[d]).values) {
          for (const std::int64_t b : space.parameter(bm[d]).values) {
            Setting s = base;
            s.set(tb[d], t);
            s.set(cm[d], c);
            s.set(bm[d], b);
            expanded.push_back(s);
          }
        }
      }
    }
    supports = std::move(expanded);
  }

  // Retiming/shared/constant change the register and shared-memory
  // footprint, so a borderline merge factor may only be feasible with the
  // right flag combination; enumerate all eight.
  const space::ParamId flags[] = {space::kUseRetiming, space::kUseShared,
                                  space::kUseConstant};
  for (int mask = 0; mask < 8; ++mask) {
    for (const Setting& support : supports) {
      Setting flagged = support;
      for (int f = 0; f < 3; ++f) {
        flagged.set(flags[f], (mask >> f) & 1 ? space::kOn : space::kOff);
      }
      // Non-streaming configuration.
      {
        Setting s = flagged;
        apply_pins(s, pins);
        if (checker.is_valid(s)) return true;
      }
      // Streaming configurations.
      for (const std::int64_t sd : space.parameter(space::kSD).values) {
        for (const std::int64_t sb : space.parameter(space::kSB).values) {
          Setting s = flagged;
          s.set(space::kUseStreaming, space::kOn);
          s.set(space::kSD, sd);
          s.set(space::kSB, sb);
          // Rule 4: the streaming dimension carries no block/merge factors.
          const int d = static_cast<int>(sd) - 1;
          s.set(tb[d], 1);
          s.set(cm[d], 1);
          s.set(bm[d], 1);
          apply_pins(s, pins);
          if (checker.is_valid(s)) return true;
        }
      }
    }
  }
  return false;
}

/// True when some valid setting satisfies all pins: first the deterministic
/// templates (with and without repair), then the systematic dimension-local
/// sweep, then randomized search for anything the sweep's all-ones baseline
/// cannot reach.
bool find_witness(const space::SearchSpace& space, const std::vector<Pin>& pins,
                  std::size_t attempts, Rng& rng) {
  const auto& checker = space.checker();
  for (const Setting& base : witness_templates()) {
    Setting s = base;
    apply_pins(s, pins);
    if (checker.is_valid(s)) return true;
    const Setting repaired = checker.repaired(s);
    if (pins_hold(repaired, pins) && checker.is_valid(repaired)) return true;
  }
  if (sweep_witness(space, pins)) return true;
  for (std::size_t i = 0; i < attempts; ++i) {
    Setting s = space.random_setting(rng);
    apply_pins(s, pins);
    if (checker.is_valid(s)) return true;
    const Setting repaired = checker.repaired(s);
    if (pins_hold(repaired, pins) && checker.is_valid(repaired)) return true;
  }
  return false;
}

}  // namespace

bool SpaceLintResult::value_is_live(ParamId id, std::int64_t value,
                                    const space::SearchSpace& space) const {
  const auto p = static_cast<std::size_t>(id);
  const auto& values = space.parameters()[p].values;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == value) return live[p][i] != 0;
  }
  return false;
}

SpaceLintResult lint_space(const space::SearchSpace& space,
                           const SpaceLintOptions& options) {
  SpaceLintResult result;
  Rng rng(options.seed);
  const auto& params = space.parameters();

  // --- Per-parameter value liveness. ---------------------------------------
  result.live.resize(params.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    const auto& param = params[p];
    result.live[p].assign(param.values.size(), 0);
    std::size_t dead_here = 0;
    for (std::size_t i = 0; i < param.values.size(); ++i) {
      const std::int64_t value = param.values[i];
      const bool live = find_witness(
          space, {{param.id, value}}, options.probe_attempts, rng);
      result.live[p][i] = live ? 1 : 0;
      if (!live) {
        ++dead_here;
        ++result.dead_values;
        std::ostringstream msg;
        msg << param.name << '=' << value
            << " appears in no valid setting (statically prunable)";
        result.report.warn("space.dead-value", "space:" + param.name,
                           msg.str());
      }
    }
    if (dead_here == param.values.size()) {
      result.report.error("space.dead-parameter", "space:" + param.name,
                          "every admissible value of " + param.name +
                              " is dead: the space is empty");
    }
  }

  // --- Pairwise subspace liveness over the small (bool/enum) parameters. ---
  if (options.check_pairs) {
    for (std::size_t a = 0; a < params.size(); ++a) {
      if (params[a].kind == space::ParamKind::kPow2) continue;
      for (std::size_t b = a + 1; b < params.size(); ++b) {
        if (params[b].kind == space::ParamKind::kPow2) continue;
        for (std::size_t i = 0; i < params[a].values.size(); ++i) {
          for (std::size_t j = 0; j < params[b].values.size(); ++j) {
            if (result.live[a][i] == 0 || result.live[b][j] == 0) {
              continue;  // implied by a dead value; already reported
            }
            const std::vector<Pin> pins = {
                {params[a].id, params[a].values[i]},
                {params[b].id, params[b].values[j]}};
            if (!find_witness(space, pins, options.probe_attempts, rng)) {
              ++result.dead_pairs;
              std::ostringstream msg;
              msg << params[a].name << '=' << params[a].values[i] << " with "
                  << params[b].name << '=' << params[b].values[j]
                  << " is jointly infeasible (statically prunable subspace)";
              result.report.note("space.dead-subspace",
                                 "space:" + params[a].name + "x" +
                                     params[b].name,
                                 msg.str());
            }
          }
        }
      }
    }
  }

  // --- Valid fraction of the unconstrained cartesian space. ----------------
  if (options.validity_samples > 0) {
    std::size_t valid = 0;
    for (std::size_t i = 0; i < options.validity_samples; ++i) {
      if (space.is_valid(space.random_setting(rng))) ++valid;
    }
    result.sampled_valid_fraction =
        static_cast<double>(valid) /
        static_cast<double>(options.validity_samples);
    std::ostringstream msg;
    msg << "~" << result.sampled_valid_fraction * 100.0
        << "% of independently-uniform draws satisfy all constraints";
    result.report.note("space.valid-fraction", "space", msg.str());
  }

  return result;
}

}  // namespace cstuner::analysis
