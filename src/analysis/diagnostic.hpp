#pragma once
// Structured diagnostics for the static analyzer (ISSUE 2): every finding
// carries a severity, a stable rule identifier (e.g. "race.rw-no-sync"), a
// location string and a human-readable message, so tooling can filter by
// rule and the CLI can emit machine-readable JSON.

#include <cstddef>
#include <string>
#include <vector>

namespace cstuner {
class JsonWriter;
}

namespace cstuner::analysis {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;      ///< stable identifier, "<pass>.<check>"
  std::string location;  ///< "kernel:line N", "space:<param>", ...
  std::string message;
  /// How the finding was established: "proven" (backed by a symbolic
  /// certificate, see docs/static-analysis.md), "heuristic" (randomized
  /// probing, may miss or over-report), or empty when the distinction does
  /// not apply. Rendered as a suffix in text and as a field in JSON.
  std::string verdict;

  std::string to_string() const;
};

/// An ordered collection of diagnostics from one or more passes.
class Report {
 public:
  void add(Severity severity, std::string rule, std::string location,
           std::string message, std::string verdict = "");
  void note(std::string rule, std::string location, std::string message,
            std::string verdict = "") {
    add(Severity::kNote, std::move(rule), std::move(location),
        std::move(message), std::move(verdict));
  }
  void warn(std::string rule, std::string location, std::string message,
            std::string verdict = "") {
    add(Severity::kWarning, std::move(rule), std::move(location),
        std::move(message), std::move(verdict));
  }
  void error(std::string rule, std::string location, std::string message,
             std::string verdict = "") {
    add(Severity::kError, std::move(rule), std::move(location),
        std::move(message), std::move(verdict));
  }

  /// Appends all diagnostics of `other`.
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }
  std::size_t count(Severity severity) const;
  std::size_t error_count() const { return count(Severity::kError); }
  /// No error-severity findings (notes/warnings allowed).
  bool clean() const { return error_count() == 0; }

  bool has_rule(const std::string& rule) const;
  /// Diagnostics matching a rule prefix, e.g. "bounds." for the whole pass.
  std::vector<Diagnostic> matching(const std::string& rule_prefix) const;

  std::string to_string() const;
  /// Writes this report as a JSON array onto an in-progress writer.
  void write_json(JsonWriter& json) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace cstuner::analysis
