#include "analysis/domain.hpp"

#include <bit>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::analysis {

ValueDomain::ValueDomain(const space::Parameter& param) : param_(&param) {
  const std::size_t n = param.values.size();
  CSTUNER_CHECK_MSG(n <= 64, "domain mask holds at most 64 values");
  mask_ = n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

ValueDomain::ValueDomain(const space::Parameter& param, std::uint64_t mask)
    : param_(&param), mask_(mask) {
  const std::size_t n = param.values.size();
  CSTUNER_CHECK_MSG(n <= 64, "domain mask holds at most 64 values");
  if (n < 64) mask_ &= (std::uint64_t{1} << n) - 1;
}

std::size_t ValueDomain::count() const {
  return static_cast<std::size_t>(std::popcount(mask_));
}

bool ValueDomain::contains(std::int64_t value) const {
  if (param_ == nullptr) return false;
  for (std::size_t i = 0; i < param_->values.size(); ++i) {
    if (param_->values[i] == value) return ((mask_ >> i) & 1U) != 0;
  }
  return false;
}

bool ValueDomain::remove(std::int64_t value) {
  if (param_ == nullptr) return false;
  for (std::size_t i = 0; i < param_->values.size(); ++i) {
    if (param_->values[i] == value) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if ((mask_ & bit) == 0) return false;
      mask_ &= ~bit;
      return true;
    }
  }
  return false;
}

std::size_t ValueDomain::clamp_max(std::int64_t hi) {
  if (param_ == nullptr) return 0;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < param_->values.size(); ++i) {
    if (param_->values[i] <= hi) continue;
    const std::uint64_t bit = std::uint64_t{1} << i;
    if ((mask_ & bit) != 0) {
      mask_ &= ~bit;
      ++removed;
    }
  }
  return removed;
}

std::size_t ValueDomain::clamp_min(std::int64_t lo) {
  if (param_ == nullptr) return 0;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < param_->values.size(); ++i) {
    if (param_->values[i] >= lo) continue;
    const std::uint64_t bit = std::uint64_t{1} << i;
    if ((mask_ & bit) != 0) {
      mask_ &= ~bit;
      ++removed;
    }
  }
  return removed;
}

std::int64_t ValueDomain::min() const {
  CSTUNER_CHECK_MSG(!empty(), "min() of an empty domain");
  const auto i = static_cast<std::size_t>(std::countr_zero(mask_));
  return param_->values[i];
}

std::int64_t ValueDomain::max() const {
  CSTUNER_CHECK_MSG(!empty(), "max() of an empty domain");
  const auto i = static_cast<std::size_t>(63 - std::countl_zero(mask_));
  return param_->values[i];
}

std::int64_t ValueDomain::gcd() const {
  std::int64_t g = 0;
  for_each([&g](std::int64_t v) { g = std::gcd(g, v); });
  return g;
}

bool ValueDomain::all_pow2() const {
  bool ok = true;
  for_each([&ok](std::int64_t v) { ok = ok && is_pow2(v); });
  return ok;
}

std::int64_t ValueDomain::ceil_value(std::int64_t v) const {
  std::int64_t best = -1;
  for_each([&](std::int64_t candidate) {
    if (candidate >= v && best < 0) best = candidate;
  });
  return best;
}

std::string ValueDomain::to_string() const {
  if (empty()) return "{}";
  std::ostringstream os;
  if (count() <= 8) {
    os << '{';
    bool first = true;
    for_each([&](std::int64_t v) {
      if (!first) os << ", ";
      first = false;
      os << v;
    });
    os << '}';
    return os.str();
  }
  os << '[' << min() << ".." << max() << ']';
  if (all_pow2()) os << " pow2";
  os << " x" << count();
  return os.str();
}

}  // namespace cstuner::analysis
