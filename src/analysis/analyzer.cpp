#include "analysis/analyzer.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "gpusim/occupancy.hpp"

namespace cstuner::analysis {

namespace {

std::string at_line(int line) { return "kernel:line " + std::to_string(line); }

}  // namespace

void check_races(const KernelModel& model, Report& report) {
  if (!model.uses_shared()) return;  // nothing to race on

  // Which loops (by index) contain a shared-tile write: their bodies restage
  // the tile every iteration, so the iteration boundary is a WAR hazard.
  std::set<int> restaging_loops;
  for (const auto& e : model.events) {
    if (e.kind != EventKind::kSharedWrite) continue;
    for (int loop : e.loops) restaging_loops.insert(loop);
  }

  bool pending_write = false;  // staging write not yet barriered
  int pending_write_line = 0;
  bool read_since_sync = false;
  int last_read_line = 0;

  for (const auto& e : model.events) {
    switch (e.kind) {
      case EventKind::kSharedWrite:
        pending_write = true;
        pending_write_line = e.line;
        break;
      case EventKind::kSharedRead:
        if (pending_write) {
          report.error("race.rw-no-sync", at_line(e.line),
                       "shared tile '" + e.tile.tile + "' read before the "
                       "staging write at line " +
                           std::to_string(pending_write_line) +
                           " is barriered by __syncthreads()");
          pending_write = false;  // report each unsynced phase once
        }
        read_since_sync = true;
        last_read_line = e.line;
        break;
      case EventKind::kSync:
        if (e.guarded) {
          report.error("race.divergent-sync", at_line(e.line),
                       "__syncthreads() inside the divergent bounds-check "
                       "branch: threads outside the domain never reach the "
                       "barrier (deadlock)");
        }
        pending_write = false;
        read_since_sync = false;
        break;
      case EventKind::kLoopClose:
        if (restaging_loops.count(e.loop) != 0) {
          if (read_since_sync) {
            report.error(
                "race.war-loop-carry", at_line(e.line),
                "loop restages the shared tile but its body ends without a "
                "__syncthreads() after the last tile read (line " +
                    std::to_string(last_read_line) +
                    "): next iteration's staging races the read");
            read_since_sync = false;  // report once per loop nest
          } else if (pending_write) {
            report.error("race.rw-no-sync", at_line(e.line),
                         "loop body ends with an unbarriered shared-tile "
                         "staging write (line " +
                             std::to_string(pending_write_line) + ")");
            pending_write = false;
          }
        }
        break;
      default:
        break;
    }
  }
}

void check_bounds(const stencil::StencilSpec& spec,
                  const space::Setting& setting, const KernelModel& model,
                  Report& report) {
  // Domain constants embedded in the source must match the spec: every
  // downstream bound is computed from them.
  const char* dim_names[3] = {"M1", "M2", "M3"};
  for (int d = 0; d < 3; ++d) {
    const auto m = model.define(dim_names[d]);
    if (!m.has_value() || *m != spec.grid[static_cast<std::size_t>(d)]) {
      report.error("bounds.domain-mismatch", "kernel",
                   std::string(dim_names[d]) + " define " +
                       (m.has_value() ? std::to_string(*m) : "missing") +
                       " does not match grid extent " +
                       std::to_string(spec.grid[static_cast<std::size_t>(d)]));
    }
  }
  const auto halo_def = model.define("HALO");
  if (!halo_def.has_value() || *halo_def != spec.order) {
    report.error("bounds.domain-mismatch", "kernel",
                 "HALO define " +
                     (halo_def.has_value() ? std::to_string(*halo_def)
                                           : "missing") +
                     " does not match stencil order " +
                     std::to_string(spec.order));
  }
  // Bound accesses against the padding the source actually allocates (the
  // idx() macro pads by HALO), falling back to the spec when it is absent.
  const std::int64_t halo = halo_def.value_or(spec.order);

  const auto geometry = codegen::compute_launch_geometry(spec, setting);

  bool guard_reported = false;
  for (const auto& e : model.events) {
    if (e.kind == EventKind::kGlobalRead || e.kind == EventKind::kGlobalWrite) {
      for (int p = 0; p < 3; ++p) {
        const IndexExpr& c = e.global.coord[p];
        if (c.base.empty()) {
          report.error("bounds.constant-coordinate", at_line(e.line),
                       "global access to '" + e.global.array +
                           "' uses a bare constant coordinate");
          continue;
        }
        if (c.axis() != p) {
          report.error("bounds.axis-mismatch", at_line(e.line),
                       "coordinate " + std::to_string(p) + " of '" +
                           e.global.array + "' indexes axis '" + c.base +
                           "'");
          continue;
        }
        if (c.base[0] == 'c') {
          // Clamped staging coordinate: must be declared and unshifted
          // (the clamp guarantees [0, M-1], but nothing beyond that).
          if (model.clamps.find(c.base) == model.clamps.end()) {
            report.error("bounds.unknown-clamp", at_line(e.line),
                         "clamped coordinate '" + c.base +
                             "' has no clamp declaration");
          }
          if (c.offset != 0) {
            report.error("bounds.clamped-offset", at_line(e.line),
                         "offset " + std::to_string(c.offset) +
                             " applied to clamped coordinate '" + c.base +
                             "' escapes the clamp");
          }
          continue;
        }
        // Global coordinate gx/gy/gz in [0, M-1] under the guard; the
        // padded allocation admits offsets up to +-HALO.
        if (std::abs(c.offset) > halo) {
          report.error("bounds.halo-overflow", at_line(e.line),
                       "access '" + e.global.array + "' offsets '" + c.base +
                           "' by " + std::to_string(c.offset) +
                           ", beyond the HALO padding of " +
                           std::to_string(halo));
        }
        if (!e.guarded && !guard_reported) {
          report.error("bounds.unguarded-access", at_line(e.line),
                       "global access through '" + c.base +
                           "' outside the bounds guard: overhanging threads "
                           "index past the padded domain");
          guard_reported = true;
        }
      }
    } else if (e.kind == EventKind::kSharedRead ||
               e.kind == EventKind::kSharedWrite) {
      const SharedTileDecl* decl = model.tile(e.tile.tile);
      if (decl == nullptr) {
        report.error("bounds.unknown-tile", at_line(e.line),
                     "access to undeclared shared tile '" + e.tile.tile +
                         "'");
        continue;
      }
      for (int p = 0; p < 3; ++p) {
        const IndexExpr& ix = e.tile.index[p];
        std::int64_t min_index = ix.offset;
        std::int64_t max_index = ix.offset;
        if (!ix.base.empty()) {
          const int axis = ix.axis();
          // Declaration order is [z][y][x]: position p indexes axis 2-p.
          if (axis != 2 - p) {
            report.error("bounds.axis-mismatch", at_line(e.line),
                         "tile '" + e.tile.tile + "' position " +
                             std::to_string(p) + " indexes axis '" + ix.base +
                             "'");
            continue;
          }
          // l-variables span [0, block_extent-1].
          max_index += geometry.block[axis] - 1;
        }
        if (min_index < 0) {
          report.error("bounds.negative-index", at_line(e.line),
                       "tile '" + e.tile.tile + "' index '" + ix.base +
                           (ix.offset < 0 ? std::to_string(ix.offset) : "") +
                           "' can reach " + std::to_string(min_index) +
                           " (missing halo shift)");
        }
        if (max_index >= decl->dims[p]) {
          report.error("bounds.tile-overflow", at_line(e.line),
                       "tile '" + e.tile.tile + "' position " +
                           std::to_string(p) + " reaches index " +
                           std::to_string(max_index) +
                           " but the tile extent is " +
                           std::to_string(decl->dims[p]));
        }
      }
    }
  }

  // The kernel must bounds-guard whenever the block footprint can overhang
  // the domain (with pow-2 factors and arbitrary extents it always can).
  bool any_global = false;
  for (const auto& e : model.events) {
    if (e.kind == EventKind::kGlobalRead || e.kind == EventKind::kGlobalWrite) {
      any_global = true;
    }
  }
  if (any_global && !model.has_guard) {
    report.error("bounds.missing-guard", "kernel",
                 "no domain bounds guard (if gx >= M1 ...) in the emitted "
                 "kernel");
  }

  // Launch geometry must cover the whole domain.
  const bool streaming = setting.flag(space::kUseStreaming);
  const int sd = static_cast<int>(setting.get(space::kSD)) - 1;
  const space::ParamId tb[] = {space::kTBx, space::kTBy, space::kTBz};
  const space::ParamId cm[] = {space::kCMx, space::kCMy, space::kCMz};
  const space::ParamId bm[] = {space::kBMx, space::kBMy, space::kBMz};
  for (int d = 0; d < 3; ++d) {
    const std::int64_t extent = spec.grid[static_cast<std::size_t>(d)];
    const std::int64_t per_block =
        (streaming && d == sd)
            ? setting.get(space::kSB)
            : setting.get(tb[d]) * setting.get(cm[d]) * setting.get(bm[d]);
    if (geometry.grid[d] * per_block < extent) {
      report.error("bounds.domain-uncovered", "kernel",
                   "dimension " + std::to_string(d) + ": " +
                       std::to_string(geometry.grid[d]) + " blocks x " +
                       std::to_string(per_block) + " points cover only " +
                       std::to_string(geometry.grid[d] * per_block) + " of " +
                       std::to_string(extent));
    }
  }
}

namespace {

/// Structural register floor: every scalar/array the emitted source declares
/// in registers. The analytic model must never claim fewer registers than
/// the source visibly consumes.
int structural_register_floor(const std::string& source) {
  int count = 0;
  std::istringstream is(source);
  std::string line;
  while (std::getline(is, line)) {
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::string code = line.substr(b);
    if (code.rfind("__shared__", 0) == 0 ||
        code.rfind("__constant__", 0) == 0) {
      continue;
    }
    if (code.rfind("double pf_next[", 0) == 0) {
      count += static_cast<int>(std::strtoll(code.c_str() + 15, nullptr, 10));
      continue;
    }
    if (code.rfind("double ", 0) == 0 || code.rfind("const int ", 0) == 0 ||
        code.rfind("int g", 0) == 0) {
      // One register per initialized declarator on the line (declaration
      // lines never contain comparison operators, so every '=' initializes
      // one scalar).
      for (char c : code) {
        if (c == '=') ++count;
      }
    }
  }
  return count;
}

}  // namespace

void check_resources(const stencil::StencilSpec& spec,
                     const space::Setting& setting,
                     const codegen::KernelSource& kernel,
                     const KernelModel& model, const AnalyzerOptions& options,
                     Report& report) {
  const auto& limits = options.limits;
  const auto& claimed = kernel.resources;

  // --- Shared memory: re-derive from the declarations in the source. ------
  std::int64_t derived_smem = 0;
  for (const auto& tile : model.tiles) {
    derived_smem += tile.element_count() * 8;
  }
  if (derived_smem != claimed.shared_mem_per_block) {
    report.error("resource.smem-drift", "kernel",
                 "declared shared tiles total " +
                     std::to_string(derived_smem) + " B but the kernel "
                     "reports " +
                     std::to_string(claimed.shared_mem_per_block) + " B");
  }
  if (setting.flag(space::kUseShared) && model.tiles.empty()) {
    report.error("resource.smem-drift", "kernel",
                 "useShared is on but the kernel declares no shared tile");
  }
  if (!setting.flag(space::kUseShared) && !model.tiles.empty()) {
    report.error("resource.smem-drift", "kernel",
                 "useShared is off but the kernel declares shared tiles");
  }
  if (derived_smem > limits.max_smem_per_block) {
    report.error("resource.smem-capacity", "kernel",
                 "shared tiles need " + std::to_string(derived_smem) +
                     " B, exceeding the " +
                     std::to_string(limits.max_smem_per_block) +
                     " B per-block limit");
  }

  // --- Cross-validate against the analytic resource model. -----------------
  const auto modeled = space::estimate_resources(spec, setting, limits);
  if (modeled.registers_per_thread != claimed.registers_per_thread ||
      modeled.shared_mem_per_block != claimed.shared_mem_per_block ||
      modeled.spilled != claimed.spilled) {
    report.error("resource.model-drift", "kernel",
                 "kernel-reported footprint (regs " +
                     std::to_string(claimed.registers_per_thread) + ", smem " +
                     std::to_string(claimed.shared_mem_per_block) +
                     " B) drifts from the resource model (regs " +
                     std::to_string(modeled.registers_per_thread) +
                     ", smem " + std::to_string(modeled.shared_mem_per_block) +
                     " B)");
  }

  // --- Registers: structural floor and spill limits. -----------------------
  const int floor = structural_register_floor(kernel.source);
  if (claimed.registers_per_thread < floor) {
    report.error("resource.register-undercount", "kernel",
                 "kernel reports " +
                     std::to_string(claimed.registers_per_thread) +
                     " registers/thread but the source declares at least " +
                     std::to_string(floor) + " live values");
  }
  const bool should_spill =
      claimed.registers_per_thread > limits.max_registers_per_thread;
  if (claimed.spilled != should_spill) {
    report.error("resource.spill-flag", "kernel",
                 "spill flag inconsistent with the per-thread register "
                 "limit");
  }
  if (should_spill) {
    report.error("resource.register-spill", "kernel",
                 std::to_string(claimed.registers_per_thread) +
                     " registers/thread exceeds the ISA limit of " +
                     std::to_string(limits.max_registers_per_thread));
  }

  // --- Launch configuration. ----------------------------------------------
  const std::int64_t threads = setting.threads_per_block();
  if (!model.launch_bounds.has_value()) {
    report.error("resource.launch-drift", "kernel",
                 "kernel has no __launch_bounds__ annotation");
  } else if (*model.launch_bounds != threads) {
    report.error("resource.launch-drift", "kernel",
                 "__launch_bounds__(" + std::to_string(*model.launch_bounds) +
                     ") does not match the setting's " +
                     std::to_string(threads) + " threads/block");
  }
  if (threads > limits.max_threads_per_block) {
    report.error("resource.thread-limit", "kernel",
                 std::to_string(threads) + " threads/block exceeds " +
                     std::to_string(limits.max_threads_per_block));
  }

  // Per-warp register allocation granularity: the block's total demand must
  // fit the SM register file or the kernel cannot launch (mirrors the
  // constraint checker, re-derived here from the claimed footprint).
  const std::int64_t warps = (threads + 31) / 32;
  const std::int64_t regs_per_warp =
      ((static_cast<std::int64_t>(claimed.registers_per_thread) * 32 + 255) /
       256) *
      256;
  if (warps * regs_per_warp > limits.max_registers_per_block) {
    report.error("resource.register-file", "kernel",
                 "block needs " + std::to_string(warps * regs_per_warp) +
                     " registers; the register file holds " +
                     std::to_string(limits.max_registers_per_block));
  }

  // --- Constant memory. ----------------------------------------------------
  if (setting.flag(space::kUseConstant)) {
    if (!model.constant_count.has_value()) {
      report.error("resource.constant-drift", "kernel",
                   "useConstant is on but no __constant__ coefficient array "
                   "is declared");
    } else {
      if (*model.constant_count !=
          static_cast<std::int64_t>(spec.taps.size())) {
        report.error("resource.constant-drift", "kernel",
                     "c_weights holds " +
                         std::to_string(*model.constant_count) +
                         " coefficients but the stencil has " +
                         std::to_string(spec.taps.size()) + " taps");
      }
      if (*model.constant_count * 8 > 64 * 1024) {
        report.error("resource.constant-capacity", "kernel",
                     "constant coefficients exceed the 64 KiB constant "
                     "memory bank");
      }
    }
  } else if (model.constant_count.has_value()) {
    report.error("resource.constant-drift", "kernel",
                 "useConstant is off but the kernel declares __constant__ "
                 "coefficients");
  }

  // --- Occupancy: the kernel must be launchable at all. --------------------
  if (options.arch != nullptr) {
    const auto occ = gpusim::compute_occupancy(
        *options.arch, threads, claimed.registers_per_thread, derived_smem);
    if (occ.blocks_per_sm < 1) {
      report.error("resource.unlaunchable", "kernel",
                   "zero blocks per SM on " + options.arch->name +
                       " (limiter: " +
                       gpusim::limiter_name(occ.limiter) + ")");
    }
  }
}

Report analyze_kernel(const stencil::StencilSpec& spec,
                      const space::Setting& setting,
                      const codegen::KernelSource& kernel,
                      const AnalyzerOptions& options) {
  Report report;
  const KernelModel model = KernelModel::parse(kernel.source, &report);
  if (options.race) check_races(model, report);
  if (options.bounds) check_bounds(spec, setting, model, report);
  if (options.resources) {
    check_resources(spec, setting, kernel, model, options, report);
  }
  return report;
}

Report analyze_setting(const stencil::StencilSpec& spec,
                       const space::Setting& setting,
                       const AnalyzerOptions& options) {
  return analyze_kernel(spec, setting, codegen::generate_kernel(spec, setting),
                        options);
}

}  // namespace cstuner::analysis
