#include "analysis/diagnostic.hpp"

#include <sstream>

#include "common/json.hpp"

namespace cstuner::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << " [" << rule << "] " << location << ": "
     << message;
  if (!verdict.empty()) os << " (" << verdict << ')';
  return os.str();
}

void Report::add(Severity severity, std::string rule, std::string location,
                 std::string message, std::string verdict) {
  diagnostics_.push_back({severity, std::move(rule), std::move(location),
                          std::move(message), std::move(verdict)});
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool Report::has_rule(const std::string& rule) const {
  for (const auto& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::vector<Diagnostic> Report::matching(
    const std::string& rule_prefix) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics_) {
    if (d.rule.rfind(rule_prefix, 0) == 0) out.push_back(d);
  }
  return out;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.to_string() << '\n';
  return os.str();
}

void Report::write_json(JsonWriter& json) const {
  json.begin_array();
  for (const auto& d : diagnostics_) {
    json.begin_object();
    json.field("severity", severity_name(d.severity));
    json.field("rule", d.rule);
    json.field("location", d.location);
    json.field("message", d.message);
    if (!d.verdict.empty()) json.field("verdict", d.verdict);
    json.end_object();
  }
  json.end_array();
}

}  // namespace cstuner::analysis
