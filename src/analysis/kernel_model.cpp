#include "analysis/kernel_model.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace cstuner::analysis {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Drops a trailing "// ..." comment (the emitter never nests braces or
/// brackets inside comments elsewhere than at end of line).
std::string strip_comment(const std::string& s) {
  const auto pos = s.find("//");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

bool parse_index_expr(const std::string& text, IndexExpr& out) {
  const std::string t = strip(text);
  if (t.empty()) return false;
  // Pure number.
  if (t.find_first_not_of("0123456789-") == std::string::npos) {
    out.base.clear();
    out.offset = std::strtoll(t.c_str(), nullptr, 10);
    return true;
  }
  // base, base+k, base-k (whitespace tolerated around the operator).
  std::size_t op = t.find_first_of("+-", 1);
  out.base = strip(t.substr(0, op));
  if (op == std::string::npos) {
    out.offset = 0;
    return true;
  }
  const std::string rest = strip(t.substr(op + 1));
  if (rest.empty() ||
      rest.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out.offset = std::strtoll(rest.c_str(), nullptr, 10);
  if (t[op] == '-') out.offset = -out.offset;
  return true;
}

/// Parses "[a][b][c]" starting at `pos` (pointing at the first '[').
/// Returns the position one past the last ']' or npos on failure.
std::size_t parse_bracket_triple(const std::string& s, std::size_t pos,
                                 IndexExpr out[3]) {
  for (int i = 0; i < 3; ++i) {
    if (pos >= s.size() || s[pos] != '[') return std::string::npos;
    const auto close = s.find(']', pos);
    if (close == std::string::npos) return std::string::npos;
    if (!parse_index_expr(s.substr(pos + 1, close - pos - 1), out[i])) {
      return std::string::npos;
    }
    pos = close + 1;
  }
  return pos;
}

/// Parses "idx(x, y, z)" starting at `pos` (pointing at "idx(").
/// Returns the position one past ')' or npos.
std::size_t parse_idx_call(const std::string& s, std::size_t pos,
                           IndexExpr out[3]) {
  const auto open = pos + 4;  // past "idx("
  const auto close = s.find(')', open);
  if (close == std::string::npos) return std::string::npos;
  std::string args = s.substr(open, close - open);
  std::istringstream is(args);
  std::string part;
  for (int i = 0; i < 3; ++i) {
    if (!std::getline(is, part, i < 2 ? ',' : '\n')) return std::string::npos;
    if (!parse_index_expr(part, out[i])) return std::string::npos;
  }
  return close + 1;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Position of the top-level assignment '=' in a statement, or npos.
/// Skips '==', '>=', '<=', '!=', '+=', '-=', '*=', '/='.
std::size_t assignment_pos(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '=') continue;
    if (i + 1 < s.size() && s[i + 1] == '=') {
      ++i;
      continue;
    }
    if (i > 0 && std::string("=<>!+-*/%&|^").find(s[i - 1]) !=
                     std::string::npos) {
      continue;
    }
    return i;
  }
  return std::string::npos;
}

}  // namespace

int IndexExpr::axis() const {
  if (base.empty()) return -1;
  switch (base.back()) {
    case 'x':
      return 0;
    case 'y':
      return 1;
    case 'z':
      return 2;
    default:
      return -1;
  }
}

const SharedTileDecl* KernelModel::tile(const std::string& name) const {
  for (const auto& t : tiles) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

KernelModel KernelModel::parse(const std::string& source, Report* report) {
  KernelModel model;

  struct OpenLoop {
    int index;
    int depth;  ///< brace depth inside the loop body
  };
  std::vector<OpenLoop> loop_stack;
  int depth = 0;
  int guard_depth = -1;  ///< body depth of the divergent else-branch
  bool pending_else_guard = false;
  int line_no = 0;

  auto current_loops = [&] {
    std::vector<int> out;
    out.reserve(loop_stack.size());
    for (const auto& l : loop_stack) out.push_back(l.index);
    return out;
  };
  auto add_event = [&](Event e) {
    e.line = line_no;
    e.guarded = guard_depth >= 0 && depth >= guard_depth;
    if (e.kind != EventKind::kLoopOpen && e.kind != EventKind::kLoopClose) {
      e.loops = current_loops();
    }
    model.events.push_back(std::move(e));
  };

  std::istringstream is(source);
  std::string raw;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string code = strip(strip_comment(raw));
    if (code.empty()) {
      // Comment-only or blank line; braces never hide in emitted comments.
      continue;
    }

    // --- Declarations & defines (no brace bookkeeping needed first). ------
    if (code.rfind("#define ", 0) == 0) {
      std::istringstream def(code.substr(8));
      std::string name, value;
      def >> name >> value;
      if (!value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos) {
        model.defines[name] = std::strtoll(value.c_str(), nullptr, 10);
      }
      continue;
    }
    if (const auto lb = code.find("__launch_bounds__(");
        lb != std::string::npos) {
      model.launch_bounds =
          std::strtoll(code.c_str() + lb + 18, nullptr, 10);
      // Fall through: the signature line also opens the kernel body brace.
    }
    if (code.rfind("__constant__ double c_weights[", 0) == 0) {
      model.constant_count =
          std::strtoll(code.c_str() + 30, nullptr, 10);
      continue;
    }
    if (code.rfind("__shared__ double ", 0) == 0) {
      SharedTileDecl decl;
      decl.line = line_no;
      std::size_t pos = 18;
      while (pos < code.size() && is_ident_char(code[pos])) {
        decl.name += code[pos++];
      }
      IndexExpr dims[3];
      if (parse_bracket_triple(code, pos, dims) != std::string::npos) {
        bool numeric = true;
        for (int i = 0; i < 3; ++i) {
          if (!dims[i].base.empty()) numeric = false;
          decl.dims[i] = dims[i].offset;
        }
        if (numeric) {
          model.tiles.push_back(decl);
        } else if (report != nullptr) {
          report->error("structure.tile-decl", "kernel:line " +
                        std::to_string(line_no),
                        "non-constant shared tile dimensions");
        }
      } else if (report != nullptr) {
        report->error("structure.tile-decl",
                      "kernel:line " + std::to_string(line_no),
                      "unparseable __shared__ declaration: " + code);
      }
      continue;
    }
    if (code.rfind("const int c", 0) == 0) {
      // "const int cx = gx < M1 ? gx : M1 - 1;"
      const std::string name = code.substr(10, 2);
      const auto eq = code.find('=');
      if (eq != std::string::npos) {
        const std::string rhs = strip(code.substr(eq + 1));
        model.clamps[name] = rhs.substr(0, 2);
      }
      continue;
    }

    // --- Control flow. ----------------------------------------------------
    const bool opens = code.find('{') != std::string::npos;
    const bool closes_only = code[0] == '}';

    if (code.rfind("if (gx >= M1", 0) == 0) {
      model.has_guard = true;
      pending_else_guard = true;
      continue;
    }
    if (code.rfind("else", 0) == 0 && opens) {
      ++depth;
      if (pending_else_guard) {
        guard_depth = depth;
        pending_else_guard = false;
      }
      continue;
    }
    if (code.rfind("for (", 0) == 0 && opens) {
      LoopInfo info;
      info.open_line = line_no;
      std::size_t pos = code.find("int ");
      if (pos != std::string::npos) {
        pos += 4;
        while (pos < code.size() && is_ident_char(code[pos])) {
          info.var += code[pos++];
        }
      }
      const int index = static_cast<int>(model.loops.size());
      model.loops.push_back(info);
      Event e;
      e.kind = EventKind::kLoopOpen;
      e.loop = index;
      e.loops = current_loops();
      add_event(e);
      ++depth;
      loop_stack.push_back({index, depth});
      continue;
    }
    if (closes_only) {
      if (!loop_stack.empty() && loop_stack.back().depth == depth) {
        Event e;
        e.kind = EventKind::kLoopClose;
        e.loop = loop_stack.back().index;
        // The close belongs to the loop's enclosing scope, but record the
        // loop itself as context too.
        e.loops = current_loops();
        add_event(e);
        loop_stack.pop_back();
      }
      if (guard_depth >= 0 && depth == guard_depth) guard_depth = -1;
      --depth;
      continue;
    }

    // --- Statements. ------------------------------------------------------
    if (code.find("__syncthreads()") != std::string::npos) {
      Event e;
      e.kind = EventKind::kSync;
      add_event(e);
      continue;
    }

    const std::size_t assign = assignment_pos(code);

    // Scan every tile access in the statement.
    std::size_t pos = 0;
    while ((pos = code.find("tile", pos)) != std::string::npos) {
      if (pos > 0 && is_ident_char(code[pos - 1])) {
        ++pos;
        continue;
      }
      std::size_t name_end = pos;
      while (name_end < code.size() && is_ident_char(code[name_end])) {
        ++name_end;
      }
      TileAccess access;
      access.tile = code.substr(pos, name_end - pos);
      const auto after = parse_bracket_triple(code, name_end, access.index);
      if (after == std::string::npos) {
        if (report != nullptr) {
          report->error("structure.tile-access",
                        "kernel:line " + std::to_string(line_no),
                        "unparseable tile access: " + code);
        }
        pos = name_end;
        continue;
      }
      Event e;
      e.kind = (assign != std::string::npos && pos < assign)
                   ? EventKind::kSharedWrite
                   : EventKind::kSharedRead;
      e.tile = access;
      add_event(e);
      pos = after;
    }

    // Scan every global access through idx() in the statement.
    pos = 0;
    while ((pos = code.find("[idx(", pos)) != std::string::npos) {
      // Array name is the identifier immediately before '['.
      std::size_t name_begin = pos;
      while (name_begin > 0 && is_ident_char(code[name_begin - 1])) {
        --name_begin;
      }
      GlobalAccess access;
      access.array = code.substr(name_begin, pos - name_begin);
      if (parse_idx_call(code, pos + 1, access.coord) == std::string::npos) {
        if (report != nullptr) {
          report->error("structure.global-access",
                        "kernel:line " + std::to_string(line_no),
                        "unparseable idx() access: " + code);
        }
        pos += 5;
        continue;
      }
      Event e;
      e.kind = (assign != std::string::npos && name_begin < assign)
                   ? EventKind::kGlobalWrite
                   : EventKind::kGlobalRead;
      e.global = access;
      add_event(e);
      pos = code.find(')', pos) + 1;
    }

    if (opens) ++depth;
  }

  if (depth != 0 && report != nullptr) {
    report->error("structure.braces", "kernel",
                  "unbalanced braces in emitted kernel (depth " +
                      std::to_string(depth) + " at end of file)");
  }
  return model;
}

}  // namespace cstuner::analysis
