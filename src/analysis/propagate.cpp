#include "analysis/propagate.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace cstuner::analysis {

namespace space_ns = cstuner::space;

namespace {

using space_ns::EnumRegion;
using space_ns::kParamCount;
using space_ns::Parameter;
using space_ns::ParamId;
using space_ns::SearchSpace;
using space_ns::Setting;

constexpr std::size_t idx(ParamId id) { return static_cast<std::size_t>(id); }

constexpr ParamId kSplitParams[7] = {
    space_ns::kUseShared,  space_ns::kUseConstant,
    space_ns::kUseStreaming, space_ns::kSD,
    space_ns::kUseRetiming, space_ns::kUsePrefetching,
    space_ns::kTemporal};

constexpr ParamId kCmIds[3] = {space_ns::kCMx, space_ns::kCMy, space_ns::kCMz};
constexpr ParamId kBmIds[3] = {space_ns::kBMx, space_ns::kBMy, space_ns::kBMz};
constexpr ParamId kUfIds[3] = {space_ns::kUFx, space_ns::kUFy, space_ns::kUFz};
constexpr ParamId kTbIds[3] = {space_ns::kTBx, space_ns::kTBy, space_ns::kTBz};

std::array<std::int64_t, 7> split_key_of_region(const EnumRegion& region) {
  std::array<std::int64_t, 7> key{};
  for (std::size_t i = 0; i < 7; ++i) {
    key[i] = region.pinned[idx(kSplitParams[i])];
  }
  return key;
}

std::array<std::int64_t, 7> split_key_of_setting(const Setting& setting) {
  std::array<std::int64_t, 7> key{};
  for (std::size_t i = 0; i < 7; ++i) {
    key[i] = setting.get(kSplitParams[i]);
  }
  return key;
}

/// Mutable per-region propagation state: one ValueDomain per free parameter.
struct RegionState {
  EnumRegion region;
  std::array<ValueDomain, kParamCount> domains;
  bool empty = false;
  std::string empty_reason;
};

/// The all-minima setting of the region under the current domains; the
/// pointwise-least member of the region's candidate box.
Setting base_witness(const RegionState& st) {
  Setting s;
  for (std::size_t p = 0; p < kParamCount; ++p) {
    const auto id = static_cast<ParamId>(p);
    if (st.region.pinned[p] != 0) {
      s.set(id, st.region.pinned[p]);
    } else if (!st.domains[p].empty()) {
      s.set(id, st.domains[p].min());
    }
  }
  return s;
}

/// Minimal support for an unroll factor: the (CM, BM) pair from the current
/// domains whose product is the least one >= `uf` while still covering the
/// grid. Registers and shared memory read (CM, BM) only through the product,
/// so the least product is the most permissive support — if the witness it
/// yields is invalid, no support works.
std::optional<std::pair<std::int64_t, std::int64_t>> min_unroll_support(
    const RegionState& st, int dim, std::int64_t uf, std::int64_t grid) {
  const ValueDomain& cms = st.domains[idx(kCmIds[dim])];
  const ValueDomain& bms = st.domains[idx(kBmIds[dim])];
  const std::int64_t tb_lo = st.domains[idx(kTbIds[dim])].empty()
                                 ? st.region.pinned[idx(kTbIds[dim])]
                                 : st.domains[idx(kTbIds[dim])].min();
  std::optional<std::pair<std::int64_t, std::int64_t>> best;
  std::int64_t best_prod = 0;
  cms.for_each([&](std::int64_t c) {
    bms.for_each([&](std::int64_t b) {
      const std::int64_t prod = c * b;
      if (prod < uf || tb_lo * prod > grid) return;
      if (!best.has_value() || prod < best_prod ||
          (prod == best_prod && c < best->first)) {
        best = {c, b};
        best_prod = prod;
      }
    });
  });
  return best;
}

/// The minimal witness for p=v in the region: v pinned, the cheapest support
/// for the unroll rules, every other free parameter at its domain minimum.
/// Returns nullopt (with the rule that lacks support) when no support
/// exists at all.
std::optional<Setting> minimal_witness(const RegionState& st,
                                       const SearchSpace& space, ParamId p,
                                       std::int64_t v,
                                       std::string* no_support_rule,
                                       std::string* no_support_reason) {
  Setting s = base_witness(st);
  s.set(p, v);
  const auto& spec = space.spec();
  const int dim = space_ns::param_dimension(p);
  const bool is_uf = p == kUfIds[0] || p == kUfIds[1] || p == kUfIds[2];
  if (is_uf && st.region.streaming && dim == st.region.sd) {
    // Rule 6: UF along the streaming dimension needs SB >= UF.
    const std::int64_t sb = st.domains[idx(space_ns::kSB)].ceil_value(v);
    if (sb < 0) {
      *no_support_rule = "sb-unroll";
      std::ostringstream os;
      os << space_ns::param_name(p) << '=' << v
         << " has no admissible SB >= it (SB domain "
         << st.domains[idx(space_ns::kSB)].to_string() << ')';
      *no_support_reason = os.str();
      return std::nullopt;
    }
    s.set(space_ns::kSB, sb);
  } else if (is_uf) {
    // Rule 7: UF elsewhere needs CM*BM >= UF within coverage.
    const std::int64_t grid =
        spec.grid[static_cast<std::size_t>(dim)];
    const auto support = min_unroll_support(st, dim, v, grid);
    if (!support.has_value()) {
      *no_support_rule = "unroll-support";
      std::ostringstream os;
      os << space_ns::param_name(p) << '=' << v
         << " has no merge support: no CM*BM >= it covers grid extent "
         << grid;
      *no_support_reason = os.str();
      return std::nullopt;
    }
    s.set(kCmIds[dim], support->first);
    s.set(kBmIds[dim], support->second);
  }
  return s;
}

struct KillRecord {
  std::string rule;
  std::string certificate;
  std::uint64_t regions = 0;
};

}  // namespace

std::string classify_violation(const std::string& message) {
  const auto has = [&message](const char* needle) {
    return message.find(needle) != std::string::npos;
  };
  if (has("is not an admissible value")) return "admissible";
  if (has("thread block exceeds")) return "threads";
  if (has("temporal blocking")) return "temporal";
  if (has("require streaming") || has("requires streaming")) {
    return "canonical";
  }
  if (has("coverage")) return "coverage";
  if (has("2.5-D blocking")) return "streaming-shape";
  if (has("SB exceeds the streaming dimension extent")) return "sb-extent";
  if (has("unroll factor in streaming dimension")) return "sb-unroll";
  if (has("exceeds merged trip count")) return "unroll-support";
  if (has("register spill")) return "register-spill";
  if (has("register file holds")) return "register-file";
  if (has("shared memory")) return "shared-memory";
  return "unknown";
}

bool PropagationResult::value_proven_dead(space::ParamId param,
                                          std::int64_t value) const {
  if (!engine_applicable) return false;
  for (const DeadValue& dv : dead_values) {
    if (dv.param == param && dv.value == value) return true;
  }
  return false;
}

int PropagationResult::region_of(const space::Setting& setting) const {
  const auto it = region_index.find(split_key_of_setting(setting));
  return it == region_index.end() ? -1 : it->second;
}

PropagationResult propagate(const space::SearchSpace& space,
                            const PropagateOptions& options) {
  PropagationResult result;
  const auto& params = space.parameters();
  for (const Parameter& p : params) {
    if (p.values.size() > 64) {
      result.inapplicable_reason =
          p.name + " has " + std::to_string(p.values.size()) +
          " values; the engine's domain masks hold at most 64";
      return result;
    }
  }
  result.engine_applicable = true;

  std::vector<RegionState> states;
  for (EnumRegion& region : space_ns::build_regions(space)) {
    RegionState st;
    st.region = std::move(region);
    for (std::size_t p = 0; p < kParamCount; ++p) {
      if (st.region.pinned[p] == 0) {
        st.domains[p] = ValueDomain(params[p], st.region.masks[p]);
      }
    }
    states.push_back(std::move(st));
  }

  // Per-(param, value-index) aggregation of why prunes happened, for the
  // global dead-value certificates.
  std::map<std::pair<std::size_t, std::size_t>, KillRecord> kills;
  const auto record_kill = [&kills](std::size_t p, std::size_t value_index,
                                    const std::string& rule,
                                    const std::string& certificate) {
    KillRecord& rec = kills[{p, value_index}];
    if (rec.regions == 0) {
      rec.rule = rule;
      rec.certificate = certificate;
    }
    ++rec.regions;
  };

  // Per-region arc-consistency fixpoint via minimal witnesses.
  for (RegionState& st : states) {
    const Setting base = base_witness(st);
    if (const auto viol = space.checker().violation(base)) {
      st.empty = true;
      st.empty_reason = *viol;
      ++result.rule_prunes[classify_violation(*viol)];
      continue;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t p = 0; p < kParamCount; ++p) {
        if (st.region.pinned[p] != 0) continue;
        ValueDomain& dom = st.domains[p];
        std::vector<std::int64_t> doomed;
        std::vector<std::pair<std::string, std::string>> why;
        dom.for_each([&](std::int64_t v) {
          if (v == base.get(static_cast<ParamId>(p))) return;  // base valid
          std::string rule;
          std::string reason;
          const auto witness = minimal_witness(
              st, space, static_cast<ParamId>(p), v, &rule, &reason);
          if (witness.has_value()) {
            const auto viol = space.checker().violation(*witness);
            if (!viol.has_value()) return;
            rule = classify_violation(*viol);
            std::ostringstream os;
            os << space_ns::param_name(static_cast<ParamId>(p)) << '=' << v
               << ": minimal witness fails: " << *viol;
            reason = os.str();
          }
          doomed.push_back(v);
          why.emplace_back(rule, reason);
        });
        for (std::size_t i = 0; i < doomed.size(); ++i) {
          dom.remove(doomed[i]);
          changed = true;
          ++result.rule_prunes[why[i].first];
          record_kill(p, params[p].value_index(doomed[i]), why[i].first,
                      why[i].second);
        }
        // Domains always retain the base value, so they cannot empty out.
        CSTUNER_CHECK(!dom.empty());
      }
    }
  }

  // Publish pruned regions and summaries; exact counts where requested.
  result.regions.reserve(states.size());
  result.region_summaries.reserve(states.size());
  for (RegionState& st : states) {
    for (std::size_t p = 0; p < kParamCount; ++p) {
      if (st.region.pinned[p] == 0) {
        st.region.masks[p] = st.empty ? 0 : st.domains[p].mask();
      }
    }
    RegionSummary summary;
    summary.label = st.region.label();
    summary.empty = st.empty;
    summary.empty_reason = st.empty_reason;
    result.region_summaries.push_back(std::move(summary));
    result.regions.push_back(st.region);
  }
  for (std::size_t r = 0; r < result.regions.size(); ++r) {
    result.region_index[split_key_of_region(result.regions[r])] =
        static_cast<int>(r);
  }
  if (options.compute_counts) {
    const auto count_one = [&](std::size_t r) {
      if (result.region_summaries[r].empty) return;
      result.region_summaries[r].valid_count =
          space_ns::count_region(space, result.regions[r]);
    };
    if (options.pool != nullptr) {
      options.pool->parallel_for(result.regions.size(), count_one);
    } else {
      for (std::size_t r = 0; r < result.regions.size(); ++r) count_one(r);
    }
    for (const RegionSummary& summary : result.region_summaries) {
      result.valid_count += summary.valid_count;
    }
  }

  // Live masks: union of pins and surviving free values over non-empty
  // regions.
  for (std::size_t r = 0; r < result.regions.size(); ++r) {
    if (result.region_summaries[r].empty) continue;
    const EnumRegion& region = result.regions[r];
    for (std::size_t p = 0; p < kParamCount; ++p) {
      if (region.pinned[p] != 0) {
        result.live_masks[p] |=
            std::uint64_t{1} << params[p].value_index(region.pinned[p]);
      } else {
        result.live_masks[p] |= region.masks[p];
      }
    }
  }

  // Global dead values with certificates.
  for (std::size_t p = 0; p < kParamCount; ++p) {
    for (std::size_t i = 0; i < params[p].values.size(); ++i) {
      if (((result.live_masks[p] >> i) & 1U) != 0) continue;
      DeadValue dv;
      dv.param = static_cast<ParamId>(p);
      dv.value = params[p].values[i];
      const auto kill = kills.find({p, i});
      if (kill != kills.end()) {
        dv.rule = kill->second.rule;
        std::ostringstream os;
        os << "dead in every region; e.g. " << kill->second.certificate;
        dv.certificate = os.str();
      } else {
        // Never free and never pinned by a non-empty region: either the
        // canonical encoding excludes the value outright, or every region
        // pinning it is empty.
        bool pinned_somewhere = false;
        for (std::size_t r = 0; r < result.regions.size(); ++r) {
          if (result.regions[r].pinned[p] !=
              static_cast<std::int64_t>(dv.value)) {
            continue;
          }
          pinned_somewhere = true;
          if (dv.certificate.empty()) {
            std::ostringstream os;
            os << "every region with "
               << space_ns::param_name(static_cast<ParamId>(p)) << '='
               << dv.value << " is infeasible; e.g. ["
               << result.regions[r].label()
               << "]: " << result.region_summaries[r].empty_reason;
            dv.certificate = os.str();
            dv.rule = classify_violation(
                result.region_summaries[r].empty_reason);
          }
        }
        if (!pinned_somewhere) {
          dv.rule = p == idx(space_ns::kTemporal) ? "temporal" : "canonical";
          std::ostringstream os;
          os << space_ns::param_name(static_cast<ParamId>(p)) << '='
             << dv.value
             << " cannot be encoded: excluded by the canonical-form rules";
          dv.certificate = os.str();
          ++result.rule_prunes[dv.rule];
        }
      }
      result.dead_values.push_back(std::move(dv));
    }
  }

  // Jointly-infeasible pairs of individually-live bool/enum values: dead
  // iff no non-empty region pins both.
  const auto value_live = [&result, &params](std::size_t p, std::size_t i) {
    return ((result.live_masks[p] >> i) & 1U) != 0 &&
           i < params[p].values.size();
  };
  for (std::size_t a = 0; a < kParamCount; ++a) {
    if (params[a].kind == space_ns::ParamKind::kPow2) continue;
    for (std::size_t b = a + 1; b < kParamCount; ++b) {
      if (params[b].kind == space_ns::ParamKind::kPow2) continue;
      for (std::size_t i = 0; i < params[a].values.size(); ++i) {
        if (!value_live(a, i)) continue;
        for (std::size_t j = 0; j < params[b].values.size(); ++j) {
          if (!value_live(b, j)) continue;
          const std::int64_t va = params[a].values[i];
          const std::int64_t vb = params[b].values[j];
          bool any_region = false;
          bool any_live = false;
          std::string example;
          for (std::size_t r = 0;
               r < result.regions.size() && !any_live; ++r) {
            if (result.regions[r].pinned[a] != va ||
                result.regions[r].pinned[b] != vb) {
              continue;
            }
            any_region = true;
            if (!result.region_summaries[r].empty) {
              any_live = true;
            } else if (example.empty()) {
              example = "[" + result.regions[r].label() +
                        "]: " + result.region_summaries[r].empty_reason;
            }
          }
          if (any_live) continue;
          DeadPair pair;
          pair.a = static_cast<ParamId>(a);
          pair.value_a = va;
          pair.b = static_cast<ParamId>(b);
          pair.value_b = vb;
          std::ostringstream os;
          if (!any_region) {
            os << "no region encodes "
               << space_ns::param_name(static_cast<ParamId>(a)) << '=' << va
               << " with " << space_ns::param_name(static_cast<ParamId>(b))
               << '=' << vb << " (canonical-form rules)";
          } else {
            os << "every region with the pair is infeasible; e.g. "
               << example;
          }
          pair.certificate = os.str();
          result.dead_pairs.push_back(std::move(pair));
        }
      }
    }
  }

  return result;
}

}  // namespace cstuner::analysis
