#pragma once
// Pass 4 of the static analyzer (ISSUE 2): search-space lint. Enumerates
// per-parameter value liveness under the ConstraintChecker — a value is
// *dead* when no valid setting assigns it — and probes small cross-parameter
// subspaces (bool/enum pairs) for joint infeasibility. Auto-tuning spaces
// are notoriously full of such holes (Schoonhoven et al.); surfacing them as
// structured diagnostics both documents the space and feeds the tuner-side
// static pruning (analysis/pruner.hpp).

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "space/search_space.hpp"

namespace cstuner::analysis {

struct SpaceLintOptions {
  /// Randomized witness-search attempts per (parameter, value) after the
  /// deterministic templates fail.
  std::size_t probe_attempts = 200;
  /// Random draws for the valid-fraction estimate (0 disables it).
  std::size_t validity_samples = 2000;
  /// Probe joint liveness of bool/enum parameter pairs.
  bool check_pairs = true;
  std::uint64_t seed = 1;
};

struct SpaceLintResult {
  Report report;
  /// live[p][i]: some valid setting assigns parameters()[p].values[i].
  std::vector<std::vector<char>> live;
  std::size_t dead_values = 0;
  std::size_t dead_pairs = 0;
  /// Fraction of independently-uniform draws that satisfy all constraints.
  double sampled_valid_fraction = 0.0;

  bool value_is_live(space::ParamId id, std::int64_t value,
                     const space::SearchSpace& space) const;
};

SpaceLintResult lint_space(const space::SearchSpace& space,
                           const SpaceLintOptions& options = {});

}  // namespace cstuner::analysis
