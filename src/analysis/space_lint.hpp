#pragma once
// Pass 4 of the static analyzer (ISSUE 2): search-space lint. Enumerates
// per-parameter value liveness under the ConstraintChecker — a value is
// *dead* when no valid setting assigns it — and checks small cross-parameter
// subspaces (bool/enum pairs) for joint infeasibility. Auto-tuning spaces
// are notoriously full of such holes (Schoonhoven et al.); surfacing them as
// structured diagnostics both documents the space and feeds the tuner-side
// static pruning (analysis/pruner.hpp).
//
// Two verdict tiers (ISSUE 7, docs/static-analysis.md): when the symbolic
// propagation engine applies (analysis/propagate.hpp), deadness and the
// exact valid count are *proven* and tagged as such; otherwise the pass
// falls back to randomized witness probing and tags its findings
// "heuristic". The sampled valid fraction is always heuristic.

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "space/search_space.hpp"

namespace cstuner::analysis {

struct SpaceLintOptions {
  /// Randomized witness-search attempts per (parameter, value) after the
  /// deterministic templates fail (heuristic path only).
  std::size_t probe_attempts = 200;
  /// Random draws for the valid-fraction estimate (0 disables it).
  std::size_t validity_samples = 2000;
  /// Probe joint liveness of bool/enum parameter pairs.
  bool check_pairs = true;
  /// Upper bound on heuristic pair probes; pairs past the cap are skipped
  /// in deterministic (parameter, parameter, value, value) order and
  /// reported in SpaceLintResult::skipped_pairs. The symbolic path decides
  /// every pair from region verdicts and never skips.
  std::size_t max_pair_probes = 4096;
  /// Use the symbolic engine when it applies; false forces the randomized
  /// heuristics (mainly for tests and comparison).
  bool use_symbolic = true;
  std::uint64_t seed = 1;
};

struct SpaceLintResult {
  Report report;
  /// live[p][i]: some valid setting assigns parameters()[p].values[i].
  std::vector<std::vector<char>> live;
  std::size_t dead_values = 0;
  std::size_t dead_pairs = 0;
  /// Pair subspaces actually decided / skipped by the probe cap.
  std::size_t probed_pairs = 0;
  std::size_t skipped_pairs = 0;
  /// True when liveness and counts come from the symbolic engine: every
  /// dead-value/dead-subspace diagnostic then carries an unsat certificate
  /// and the "proven" verdict.
  bool proven = false;
  /// Exact number of valid settings (proven path only; 0 otherwise).
  std::uint64_t valid_count = 0;
  /// Fraction of independently-uniform draws that satisfy all constraints.
  double sampled_valid_fraction = 0.0;

  bool value_is_live(space::ParamId id, std::int64_t value,
                     const space::SearchSpace& space) const;
};

SpaceLintResult lint_space(const space::SearchSpace& space,
                           const SpaceLintOptions& options = {});

}  // namespace cstuner::analysis
