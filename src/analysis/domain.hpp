#pragma once
// Per-parameter abstract domains for the symbolic constraint-propagation
// engine (propagate.hpp, docs/search-space.md). A ValueDomain is the set of
// still-possible values of one parameter inside one case-split region,
// represented as a bitmask over the parameter's sorted value list. On top of
// the exact set it exposes the two abstractions the propagation rules reason
// with: the interval [min, max] (coverage/threads/extent rules are threshold
// rules, so clamping an endpoint is an exact arc-consistency step) and
// divisibility structure (gcd / all-pow2 — the merge and unroll factors the
// resource rules read only through products of domain values).
//
// Removing a value never makes an invalid setting valid (every rule's
// left-hand side is monotone within a region), so domains only ever shrink:
// propagation is a descending fixpoint over a finite lattice and must
// terminate.

#include <cstdint>
#include <string>
#include <utility>

#include "space/parameter.hpp"

namespace cstuner::analysis {

class ValueDomain {
 public:
  ValueDomain() = default;
  /// Full domain: every admissible value of the parameter. Requires
  /// cardinality <= 64 (the engine bails out on wider parameters).
  explicit ValueDomain(const space::Parameter& param);
  /// Restricted domain: bit i of `mask` admits param.values[i].
  ValueDomain(const space::Parameter& param, std::uint64_t mask);

  const space::Parameter* parameter() const { return param_; }
  std::uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  std::size_t count() const;
  bool contains(std::int64_t value) const;

  /// Removes one value; true when it was present.
  bool remove(std::int64_t value);
  /// Removes every value > hi (resp. < lo); returns how many were removed.
  std::size_t clamp_max(std::int64_t hi);
  std::size_t clamp_min(std::int64_t lo);

  /// Interval abstraction. Undefined on an empty domain (checked).
  std::int64_t min() const;
  std::int64_t max() const;
  std::pair<std::int64_t, std::int64_t> interval() const {
    return {min(), max()};
  }

  /// Divisibility abstraction: gcd of the remaining values (0 when empty).
  std::int64_t gcd() const;
  /// Congruence abstraction: every remaining value a power of two.
  bool all_pow2() const;

  /// Smallest remaining value >= v, or -1 when none exists.
  std::int64_t ceil_value(std::int64_t v) const;

  /// "{1, 2, 4}" for small sets, "[1..64] pow2 x12" for larger ones.
  std::string to_string() const;

  /// Invokes fn(value) over remaining values in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (param_ == nullptr) return;
    for (std::size_t i = 0; i < param_->values.size(); ++i) {
      if (((mask_ >> i) & 1U) != 0) fn(param_->values[i]);
    }
  }

 private:
  const space::Parameter* param_ = nullptr;
  std::uint64_t mask_ = 0;
};

}  // namespace cstuner::analysis
