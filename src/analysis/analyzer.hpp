#pragma once
// Static analyzer for generated CUDA kernels (ISSUE 2, tentpole). Runs over
// a (StencilSpec, Setting) pair and the kernel the codegen layer emitted for
// it, proving three families of properties without ever invoking nvcc:
//
//   race      — every shared-tile staging write is separated from tap reads
//               by a uniform __syncthreads(); loop-carried WAR hazards
//               (streaming/temporal restaging) are barriered; no barrier
//               sits in divergent control flow.
//   bounds    — global accesses stay inside the HALO-padded domain and are
//               guarded (or clamped); shared-tile indices stay inside the
//               declared tile extents for the active block shape; the launch
//               geometry covers the whole domain.
//   resource  — the shared/constant/register footprint encoded in the
//               source (tile declarations, c_weights, __launch_bounds__)
//               is re-derived independently and cross-checked against
//               space::estimate_resources, the resource limits, and the
//               occupancy model (the kernel must be launchable at all).
//
// The fourth pass (search-space lint) lives in analysis/space_lint.hpp; the
// tuner-side pruning built on the same machinery in analysis/pruner.hpp.

#include "analysis/diagnostic.hpp"
#include "analysis/kernel_model.hpp"
#include "codegen/cuda_codegen.hpp"
#include "gpusim/gpu_arch.hpp"
#include "space/resource_model.hpp"
#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::analysis {

struct AnalyzerOptions {
  bool race = true;
  bool bounds = true;
  bool resources = true;
  space::ResourceLimits limits{};
  /// When set, the resource pass additionally verifies the kernel is
  /// launchable on this architecture (occupancy > 0).
  const gpusim::GpuArch* arch = nullptr;
};

/// Pass 1: shared-memory race detection over the parsed kernel structure.
void check_races(const KernelModel& model, Report& report);

/// Pass 2: bounds/halo analysis of global and shared-tile accesses.
void check_bounds(const stencil::StencilSpec& spec,
                  const space::Setting& setting, const KernelModel& model,
                  Report& report);

/// Pass 3: independent re-derivation of the resource footprint and
/// cross-validation against the resource model / limits / occupancy.
void check_resources(const stencil::StencilSpec& spec,
                     const space::Setting& setting,
                     const codegen::KernelSource& kernel,
                     const KernelModel& model, const AnalyzerOptions& options,
                     Report& report);

/// Parses `kernel` and runs the enabled kernel-level passes.
Report analyze_kernel(const stencil::StencilSpec& spec,
                      const space::Setting& setting,
                      const codegen::KernelSource& kernel,
                      const AnalyzerOptions& options = {});

/// Convenience: generates the kernel for (spec, setting), then analyzes it.
Report analyze_setting(const stencil::StencilSpec& spec,
                       const space::Setting& setting,
                       const AnalyzerOptions& options = {});

}  // namespace cstuner::analysis
