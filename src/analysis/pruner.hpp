#pragma once
// Tuner-side static pruning built on the constraint machinery (ISSUE 2).
// Search strategies generate far more candidate settings than survive the
// ConstraintChecker, and GA/DE populations revisit the same encodings over
// and over; the pruner memoizes validity by canonical content hash so each
// distinct setting pays the full rule evaluation exactly once. Thread-safe:
// strategies probe candidates from the evaluator's thread pool.

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "space/search_space.hpp"

namespace cstuner::analysis {

class StaticPruner {
 public:
  struct Stats {
    std::size_t checked = 0;    ///< total is_valid() queries
    std::size_t pruned = 0;     ///< queries answered "invalid"
    std::size_t memo_hits = 0;  ///< queries served from the memo table
  };

  explicit StaticPruner(const space::SearchSpace& space) : space_(space) {}

  StaticPruner(const StaticPruner&) = delete;
  StaticPruner& operator=(const StaticPruner&) = delete;

  /// Memoized constraint check (canonical-hash keyed).
  bool is_valid(const space::Setting& setting);

  /// keep[i] == 1 iff settings[i] is valid.
  std::vector<char> filter(const std::vector<space::Setting>& settings);

  /// Drops invalid settings in place, preserving order; returns the number
  /// removed.
  std::size_t prune(std::vector<space::Setting>& settings);

  Stats stats() const;

 private:
  const space::SearchSpace& space_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, bool> memo_;
  Stats stats_;
};

}  // namespace cstuner::analysis
