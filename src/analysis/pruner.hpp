#pragma once
// Tuner-side static pruning built on the constraint machinery (ISSUE 2).
// Search strategies generate far more candidate settings than survive the
// ConstraintChecker, and GA/DE populations revisit the same encodings over
// and over; the pruner memoizes validity by canonical content hash so each
// distinct setting pays the full rule evaluation exactly once. Thread-safe:
// strategies probe candidates from the evaluator's thread pool.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "analysis/propagate.hpp"
#include "space/search_space.hpp"

namespace cstuner::analysis {

class StaticPruner {
 public:
  struct Stats {
    std::size_t checked = 0;    ///< total is_valid() queries
    std::size_t pruned = 0;     ///< queries answered "invalid"
    std::size_t memo_hits = 0;  ///< queries served from the memo table
    /// Queries rejected by the propagated domains (region pin mismatch,
    /// empty region, proven-dead value) before any per-setting rule ran.
    std::size_t domain_pruned = 0;
  };

  explicit StaticPruner(const space::SearchSpace& space) : space_(space) {}

  StaticPruner(const StaticPruner&) = delete;
  StaticPruner& operator=(const StaticPruner&) = delete;

  /// Consults propagated domains (analysis/propagate.hpp) before the full
  /// per-setting check: settings whose split-parameter combination maps to
  /// no region, land in a proven-empty region, mismatch a region pin, or
  /// assign a value pruned from its region domain are rejected without
  /// evaluating the resource model. Sound because propagation only removes
  /// proven-dead values; the result must come from the same space.
  void set_domains(std::shared_ptr<const PropagationResult> domains);

  /// Memoized constraint check (canonical-hash keyed).
  bool is_valid(const space::Setting& setting);

  /// keep[i] == 1 iff settings[i] is valid.
  std::vector<char> filter(const std::vector<space::Setting>& settings);

  /// Drops invalid settings in place, preserving order; returns the number
  /// removed.
  std::size_t prune(std::vector<space::Setting>& settings);

  Stats stats() const;

 private:
  /// True when the propagated result proves `canonical` invalid (region
  /// pin mismatch, empty region, or pruned domain value).
  bool domain_rejects(const PropagationResult& domains,
                      const space::Setting& canonical) const;

  const space::SearchSpace& space_;
  std::shared_ptr<const PropagationResult> domains_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, bool> memo_;
  Stats stats_;
};

}  // namespace cstuner::analysis
