#pragma once
// Symbolic constraint propagation over the search space (ISSUE 7,
// docs/search-space.md, docs/static-analysis.md). Where lint_space probes
// the space with randomized witnesses, this engine *proves* facts about it:
//
//   1. Case-split on the bool/enum/temporal parameters into the canonical
//      regions of space/lazy_universe.hpp (rule 2 / rule 10 combinations
//      that cannot be encoded are excluded by construction).
//   2. Inside each region run an arc-consistency style fixpoint over the
//      free numeric parameters' ValueDomains: a value is kept iff its
//      *minimal witness* — the setting that pins the value, picks the
//      cheapest support for the unroll rules, and leaves everything else at
//      the domain minimum — passes the ConstraintChecker. Every rule's
//      left-hand side is monotone nondecreasing in every free parameter
//      within a region, so the minimal witness decides liveness exactly:
//      the failed rule on the witness is an unsat certificate for the value,
//      and a region whose all-minima witness fails is proven empty.
//   3. Aggregate across regions: proven-dead values and jointly-infeasible
//      pairs with certificates, per-rule pruning attribution, and exact
//      valid-setting counts per region (space/lazy_universe.hpp's counting
//      DP over the pruned domains).
//
// The result feeds lint_space (proven diagnostics), analysis::StaticPruner
// (domain checks before per-setting validation), and the CLI's
// `analyze --space` mode.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/domain.hpp"
#include "common/thread_pool.hpp"
#include "space/lazy_universe.hpp"

namespace cstuner::analysis {

struct PropagateOptions {
  /// Compute exact per-region valid-setting counts (runs the counting DP;
  /// skip when only deadness verdicts are needed).
  bool compute_counts = true;
  /// Parallelizes the counting DP across regions when provided.
  ThreadPool* pool = nullptr;
};

/// A value proven to appear in no valid setting, with the rule that kills it
/// and a human-readable unsat certificate.
struct DeadValue {
  space::ParamId param = space::kTBx;
  std::int64_t value = 0;
  std::string rule;
  std::string certificate;
};

/// Two individually-live values proven jointly infeasible.
struct DeadPair {
  space::ParamId a = space::kTBx;
  std::int64_t value_a = 0;
  space::ParamId b = space::kTBx;
  std::int64_t value_b = 0;
  std::string certificate;
};

struct RegionSummary {
  std::string label;       ///< EnumRegion::label()
  bool empty = false;      ///< proven: the all-minima witness fails
  std::string empty_reason;
  std::uint64_t valid_count = 0;  ///< exact; 0 when counts are skipped
};

struct PropagationResult {
  /// False when the space exceeds the engine's representation (a parameter
  /// with more than 64 values); everything below is then empty and callers
  /// must fall back to heuristics.
  bool engine_applicable = false;
  std::string inapplicable_reason;

  /// Canonical regions with masks pruned to exactly the live values.
  std::vector<space::EnumRegion> regions;
  std::vector<RegionSummary> region_summaries;

  /// live_masks[p] bit i set iff parameters()[p].values[i] appears in some
  /// valid setting (union of pins and pruned masks over non-empty regions).
  std::array<std::uint64_t, space::kParamCount> live_masks{};

  std::vector<DeadValue> dead_values;
  std::vector<DeadPair> dead_pairs;

  /// Exact number of valid settings in the whole space (compute_counts).
  std::uint64_t valid_count = 0;
  /// Stable rule id -> number of (region, value) prunes + region kills it
  /// accounts for; attributes *why* the space shrinks.
  std::map<std::string, std::uint64_t> rule_prunes;

  /// True iff `value` is admissible for `param` yet appears in no valid
  /// setting.
  bool value_proven_dead(space::ParamId param, std::int64_t value) const;
  /// Index into regions() of the region owning this setting's bool/enum
  /// pin tuple, or -1 when no region encodes it (the setting then violates
  /// the canonical-encoding or temporal rules). Settings should be
  /// canonicalized first.
  int region_of(const space::Setting& setting) const;

  /// Split-parameter pin tuple -> region index (see region_of).
  std::map<std::array<std::int64_t, 7>, int> region_index;
};

/// Stable rule identifier ("coverage", "register-file", ...) parsed from a
/// ConstraintChecker::violation message; "unknown" when unrecognized.
std::string classify_violation(const std::string& message);

PropagationResult propagate(const space::SearchSpace& space,
                            const PropagateOptions& options = {});

}  // namespace cstuner::analysis
