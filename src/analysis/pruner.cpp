#include "analysis/pruner.hpp"

namespace cstuner::analysis {

bool StaticPruner::is_valid(const space::Setting& setting) {
  const space::Setting canonical = space_.checker().canonicalized(setting);
  const std::uint64_t key = canonical.hash();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checked;
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.memo_hits;
      if (!it->second) ++stats_.pruned;
      return it->second;
    }
  }
  const bool valid = space_.checker().is_valid(canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.emplace(key, valid);
  if (!valid) ++stats_.pruned;
  return valid;
}

std::vector<char> StaticPruner::filter(
    const std::vector<space::Setting>& settings) {
  std::vector<char> keep(settings.size(), 0);
  for (std::size_t i = 0; i < settings.size(); ++i) {
    keep[i] = is_valid(settings[i]) ? 1 : 0;
  }
  return keep;
}

std::size_t StaticPruner::prune(std::vector<space::Setting>& settings) {
  const std::size_t before = settings.size();
  std::size_t out = 0;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    if (is_valid(settings[i])) settings[out++] = settings[i];
  }
  settings.resize(out);
  return before - out;
}

StaticPruner::Stats StaticPruner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cstuner::analysis
