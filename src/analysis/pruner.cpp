#include "analysis/pruner.hpp"

namespace cstuner::analysis {

void StaticPruner::set_domains(
    std::shared_ptr<const PropagationResult> domains) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (domains != nullptr && !domains->engine_applicable) domains = nullptr;
  domains_ = std::move(domains);
}

bool StaticPruner::domain_rejects(const PropagationResult& domains,
                                  const space::Setting& canonical) const {
  const int r = domains.region_of(canonical);
  // No region encodes the split-parameter combination: the canonical-form
  // or temporal rules reject it.
  if (r < 0) return true;
  const auto region_index = static_cast<std::size_t>(r);
  const space::EnumRegion& region = domains.regions[region_index];
  if (domains.region_summaries[region_index].empty) return true;
  const auto& params = space_.parameters();
  for (std::size_t p = 0; p < space::kParamCount; ++p) {
    const auto id = static_cast<space::ParamId>(p);
    if (region.pinned[p] != 0) {
      // Pins beyond the split key (rule 4 / rule 2 collapses) are necessary
      // conditions for membership.
      if (canonical.get(id) != region.pinned[p]) return true;
    } else {
      // A value pruned from the region's domain is proven dead there. An
      // inadmissible value is not in the list at all — leave it to the full
      // check's rule 0 for the canonical diagnostic path.
      const auto& values = params[p].values;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] != canonical.get(id)) continue;
        if (((region.masks[p] >> i) & 1U) == 0) return true;
        break;
      }
    }
  }
  return false;
}

bool StaticPruner::is_valid(const space::Setting& setting) {
  const space::Setting canonical = space_.checker().canonicalized(setting);
  const std::uint64_t key = canonical.hash();
  std::shared_ptr<const PropagationResult> domains;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checked;
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.memo_hits;
      if (!it->second) ++stats_.pruned;
      return it->second;
    }
    domains = domains_;
  }
  if (domains != nullptr && domain_rejects(*domains, canonical)) {
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.emplace(key, false);
    ++stats_.pruned;
    ++stats_.domain_pruned;
    return false;
  }
  const bool valid = space_.checker().is_valid(canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.emplace(key, valid);
  if (!valid) ++stats_.pruned;
  return valid;
}

std::vector<char> StaticPruner::filter(
    const std::vector<space::Setting>& settings) {
  std::vector<char> keep(settings.size(), 0);
  for (std::size_t i = 0; i < settings.size(); ++i) {
    keep[i] = is_valid(settings[i]) ? 1 : 0;
  }
  return keep;
}

std::size_t StaticPruner::prune(std::vector<space::Setting>& settings) {
  const std::size_t before = settings.size();
  std::size_t out = 0;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    if (is_valid(settings[i])) settings[out++] = settings[i];
  }
  settings.resize(out);
  return before - out;
}

StaticPruner::Stats StaticPruner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cstuner::analysis
