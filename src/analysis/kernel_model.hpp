#pragma once
// Structural model of an emitted CUDA kernel (ISSUE 2). The analyzer does
// not run nvcc; it parses the generated translation unit into an ordered
// event stream — shared-tile writes/reads, __syncthreads() barriers, global
// loads/stores, loop nesting, the bounds guard — plus the declarations that
// encode the kernel's resource footprint (#defines, __shared__ tiles,
// __constant__ arrays, __launch_bounds__). The four analysis passes consume
// this model instead of raw text, so a corrupted kernel (dropped sync,
// shrunken tile, wrong halo) is still parseable and its defect attributable.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace cstuner::analysis {

/// One bracketed index expression, e.g. "lz+2" -> {base "lz", offset 2},
/// "cx" -> {base "cx", offset 0}, "7" -> {base "", offset 7}.
struct IndexExpr {
  std::string base;
  std::int64_t offset = 0;

  /// 0/1/2 for x/y/z-suffixed bases (lx, gy, cz, ...), -1 otherwise.
  int axis() const;
};

/// A shared-tile access: tile name + the three index expressions in
/// declaration order [z][y][x].
struct TileAccess {
  std::string tile;
  IndexExpr index[3];
};

/// A global-memory access through the idx() macro: array name + the three
/// coordinate expressions in idx(x, y, z) order.
struct GlobalAccess {
  std::string array;
  IndexExpr coord[3];
};

enum class EventKind {
  kSharedWrite,
  kSharedRead,
  kSync,
  kGlobalRead,
  kGlobalWrite,
  kLoopOpen,
  kLoopClose,
};

struct Event {
  EventKind kind = EventKind::kSync;
  int line = 0;            ///< 1-based line in the source text
  bool guarded = false;    ///< inside the divergent bounds-check branch
  int loop = -1;           ///< loop index for kLoopOpen/kLoopClose
  std::vector<int> loops;  ///< enclosing loop indices, outermost first
  TileAccess tile;         ///< payload for shared events
  GlobalAccess global;     ///< payload for global events
};

struct LoopInfo {
  std::string var;  ///< induction variable ("s", "tt", "cy", "by", "r", ...)
  int open_line = 0;
};

struct SharedTileDecl {
  std::string name;
  std::int64_t dims[3] = {0, 0, 0};  ///< declaration order [z][y][x]
  int line = 0;

  std::int64_t element_count() const { return dims[0] * dims[1] * dims[2]; }
};

/// Parsed structural view of one generated kernel translation unit.
class KernelModel {
 public:
  /// Parses the emitted source. Structural anomalies that prevent a clean
  /// parse (unbalanced braces, malformed index expressions) are reported
  /// under the "structure." rule family when `report` is non-null.
  static KernelModel parse(const std::string& source,
                           Report* report = nullptr);

  std::map<std::string, std::int64_t> defines;  ///< M1/M2/M3/HALO
  std::optional<std::int64_t> launch_bounds;
  std::optional<std::int64_t> constant_count;  ///< c_weights extent
  std::vector<SharedTileDecl> tiles;
  std::vector<LoopInfo> loops;
  std::vector<Event> events;
  bool has_guard = false;   ///< "if (gx >= M1 || ...)" bounds check present
  /// Clamped coordinate variables: name -> source variable ("cx" -> "gx").
  std::map<std::string, std::string> clamps;

  std::optional<std::int64_t> define(const std::string& name) const {
    const auto it = defines.find(name);
    if (it == defines.end()) return std::nullopt;
    return it->second;
  }
  const SharedTileDecl* tile(const std::string& name) const;
  bool uses_shared() const { return !tiles.empty(); }
};

}  // namespace cstuner::analysis
