#include "ga/breeding.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cstuner::ga {

std::vector<Genome> breed_generation(
    const std::vector<Genome>& genomes, const std::vector<double>& fitnesses,
    const std::vector<std::uint32_t>& cardinalities, double crossover_rate,
    double mutation_rate, Rng& rng) {
  CSTUNER_CHECK(genomes.size() == fitnesses.size());
  CSTUNER_CHECK(genomes.size() >= 2);
  const int pop_size = static_cast<int>(genomes.size());
  std::vector<Genome> offspring;
  offspring.reserve(genomes.size());
  for (int i = 0; i < pop_size; ++i) {
    if (rng.bernoulli(crossover_rate)) {
      const int hood[4] = {(i - 2 + pop_size) % pop_size,
                           (i - 1 + pop_size) % pop_size, (i + 1) % pop_size,
                           (i + 2) % pop_size};
      auto pick = [&]() -> std::size_t {
        // Roulette over shifted fitness (fitnesses may be <= 0).
        double lo = fitnesses[static_cast<std::size_t>(hood[0])];
        for (int h : hood) {
          lo = std::min(lo, fitnesses[static_cast<std::size_t>(h)]);
        }
        double total = 0.0;
        for (int h : hood) {
          total += fitnesses[static_cast<std::size_t>(h)] - lo + 1e-12;
        }
        double ticket = rng.uniform() * total;
        for (int h : hood) {
          ticket -= fitnesses[static_cast<std::size_t>(h)] - lo + 1e-12;
          if (ticket <= 0.0) return static_cast<std::size_t>(h);
        }
        return static_cast<std::size_t>(hood[3]);
      };
      const std::size_t pa = pick();
      const std::size_t pb = pick();
      offspring.push_back(uniform_crossover(genomes[pa], genomes[pb], rng));
    } else {
      offspring.push_back(genomes[static_cast<std::size_t>(i)]);
    }
    mutate_genome(offspring.back(), cardinalities, mutation_rate, rng);
  }
  return offspring;
}

}  // namespace cstuner::ga
