#include "ga/gene.hpp"

#include <bit>

#include "common/error.hpp"

namespace cstuner::ga {

int gene_bits(std::uint32_t cardinality) {
  CSTUNER_CHECK(cardinality >= 1);
  if (cardinality == 1) return 1;
  return std::bit_width(cardinality - 1);
}

std::uint32_t mutate_gene(std::uint32_t value, std::uint32_t cardinality,
                          double rate, Rng& rng) {
  const int bits = gene_bits(cardinality);
  std::uint32_t mutated = value;
  for (int b = 0; b < bits; ++b) {
    if (rng.bernoulli(rate)) mutated ^= (1u << b);
  }
  if (mutated >= cardinality) {
    mutated = static_cast<std::uint32_t>(rng.bounded(cardinality));
  }
  return mutated;
}

Genome uniform_crossover(const Genome& a, const Genome& b, Rng& rng) {
  CSTUNER_CHECK(a.size() == b.size());
  Genome child(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    child[i] = rng.bernoulli(0.5) ? a[i] : b[i];
  }
  return child;
}

Genome random_genome(const std::vector<std::uint32_t>& cardinalities,
                     Rng& rng) {
  Genome g(cardinalities.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<std::uint32_t>(rng.bounded(cardinalities[i]));
  }
  return g;
}

void mutate_genome(Genome& genome,
                   const std::vector<std::uint32_t>& cardinalities,
                   double rate, Rng& rng) {
  CSTUNER_CHECK(genome.size() == cardinalities.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    genome[i] = mutate_gene(genome[i], cardinalities[i], rate, rng);
  }
}

}  // namespace cstuner::ga
