#pragma once
// One island's breeding step (Fig. 6): fitness-proportional neighbourhood
// selection over the four ring neighbours, uniform crossover, then bit
// mutation of every offspring. Extracted from IslandGa so the serial
// optimizer-zoo port (search/ported.cpp) breeds bit-identically to the
// concurrent island GA — both call this one function with the same RNG
// stream, so the draw order can never drift between them.

#include <cstdint>
#include <vector>

#include "ga/gene.hpp"

namespace cstuner::ga {

/// Breeds one full generation of offspring from `genomes`/`fitnesses`
/// (parallel arrays, one slot per individual). Each slot crosses over with
/// probability `crossover_rate`, picking both parents by roulette over
/// shifted fitness from its ring neighbourhood {i-2, i-1, i+1, i+2}, and is
/// always mutated. Consumes `rng` in a fixed order: one bernoulli per slot,
/// one uniform per roulette pick, then the crossover/mutation draws.
std::vector<Genome> breed_generation(
    const std::vector<Genome>& genomes, const std::vector<double>& fitnesses,
    const std::vector<std::uint32_t>& cardinalities, double crossover_rate,
    double mutation_rate, Rng& rng);

}  // namespace cstuner::ga
