#include "ga/island_ga.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ga/breeding.hpp"
#include "minimpi/comm.hpp"
#include "obs/obs.hpp"

namespace cstuner::ga {

namespace {

constexpr int kTagMigrateGenomes = 1;
constexpr int kTagMigrateFitness = 2;
constexpr int kTagStatsFitness = 3;
constexpr int kTagStatsBest = 4;
constexpr int kTagDecision = 5;
constexpr int kTagResult = 6;

struct Individual {
  Genome genome;
  double fitness = 0.0;
};

std::vector<std::uint32_t> flatten(const std::vector<Individual>& pop,
                                   std::size_t count) {
  std::vector<std::uint32_t> flat;
  if (count > 0) flat.reserve(count * pop[0].genome.size());
  for (std::size_t i = 0; i < count; ++i) {
    flat.insert(flat.end(), pop[i].genome.begin(), pop[i].genome.end());
  }
  return flat;
}

}  // namespace

IslandGa::IslandGa(std::vector<std::uint32_t> cardinalities,
                   GaOptions options)
    : cardinalities_(std::move(cardinalities)), options_(options) {
  CSTUNER_CHECK(!cardinalities_.empty());
  for (auto c : cardinalities_) CSTUNER_CHECK(c >= 1);
  CSTUNER_CHECK(options_.sub_populations >= 1);
  CSTUNER_CHECK(options_.population_size >= 2);
}

GaResult IslandGa::run(
    const std::function<double(const Genome&)>& evaluate,
    const std::function<bool(const GaState&)>& should_stop) {
  return run(
      [&evaluate](const std::vector<Genome>& genomes) {
        std::vector<double> fitnesses;
        fitnesses.reserve(genomes.size());
        for (const auto& genome : genomes) {
          fitnesses.push_back(evaluate(genome));
        }
        return fitnesses;
      },
      should_stop);
}

GaResult IslandGa::run(
    const BatchFitness& evaluate,
    const std::function<bool(const GaState&)>& should_stop) {
  CSTUNER_TRACE_SPAN("ga", "ga.run");
  GaResult result;
  // Detects the pathological all-islands-killed plan: nobody ran to the end,
  // so `result` was never written by a coordinator.
  std::atomic<bool> any_island_finished{false};

  const std::size_t n_genes = cardinalities_.size();
  const int pop_size = options_.population_size;

  minimpi::RunOptions mpi_options;
  mpi_options.recover_killed_ranks = true;
  minimpi::Context::run(
      options_.sub_populations, mpi_options, [&](minimpi::Comm& comm) {
    Rng rng(hash_combine(options_.seed,
                         static_cast<std::uint64_t>(comm.rank()) + 101));

    // Injected-crash point, hit at the start of every generation (and once
    // before the initial population, generation 0). Throwing RankKilled
    // before any generation-g work makes the death independent of peer and
    // evaluator-thread timing: the dead island never reaches generation
    // g's membership sync, so every survivor sees the same view.
    auto maybe_die = [&](std::uint64_t gen) {
      if (!options_.kill_predicate ||
          !options_.kill_predicate(comm.rank(), gen)) {
        return;
      }
      CSTUNER_OBS_COUNT("ga.rank_deaths", 1);
      if (options_.event_sink) {
        options_.event_sink({tuner::IslandEvent::Kind::kRankDeath,
                             comm.rank(), gen, -1});
      }
      throw minimpi::RankKilled("island " + std::to_string(comm.rank()) +
                                " killed at generation " +
                                std::to_string(gen));
    };
    maybe_die(0);

    // Batch-evaluate one island generation. Other islands may be inside
    // their own call at the same time; the oracle handles the concurrency.
    auto evaluate_into = [&](std::vector<Individual>& pop,
                             std::vector<Genome> genomes) {
      const auto fitnesses = evaluate(genomes);
      CSTUNER_CHECK_MSG(fitnesses.size() == genomes.size(),
                        "batch fitness must match genome count");
      for (std::size_t i = 0; i < pop.size(); ++i) {
        pop[i].genome = std::move(genomes[i]);
        pop[i].fitness = fitnesses[i];
      }
    };

    // --- Initial population.
    std::vector<Individual> pop(static_cast<std::size_t>(pop_size));
    {
      std::vector<Genome> genomes;
      genomes.reserve(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) {
        genomes.push_back(options_.initializer
                              ? options_.initializer(rng)
                              : random_genome(cardinalities_, rng));
        CSTUNER_CHECK(genomes.back().size() == n_genes);
      }
      evaluate_into(pop, std::move(genomes));
    }

    auto best_of = [](const std::vector<Individual>& p) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i].fitness > p[best].fitness) best = i;
      }
      return best;
    };
    auto worst_of = [](const std::vector<Individual>& p) {
      std::size_t worst = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i].fitness < p[worst].fitness) worst = i;
      }
      return worst;
    };

    // Ring-heal state: the last agreed membership (starts as the full
    // ring) and the elites most recently received from the left live
    // neighbour. If that neighbour dies, its legacy is adopted so the dead
    // island's best genomes are not lost with it.
    minimpi::MembershipView view;
    view.live.resize(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      view.live[static_cast<std::size_t>(r)] = r;
    }
    std::vector<Individual> legacy;
    int legacy_source = -1;

    for (std::size_t gen = 1; gen <= options_.max_generations; ++gen) {
      maybe_die(gen);
      // --- Breeding: each slot breeds from its four ring neighbours with
      // fitness-proportional parent choice (Fig. 6 description, shared with
      // the serial optimizer-zoo port via ga/breeding.hpp). All offspring
      // are bred first (breeding reads only the parents), then the whole
      // generation is evaluated as one batch.
      std::vector<Genome> parents(pop.size());
      std::vector<double> fitnesses(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) {
        parents[i] = pop[i].genome;
        fitnesses[i] = pop[i].fitness;
      }
      std::vector<Genome> offspring =
          breed_generation(parents, fitnesses, cardinalities_,
                           options_.crossover_rate, options_.mutation_rate,
                           rng);
      std::vector<Individual> next(pop.size());
      evaluate_into(next, std::move(offspring));
      // Elitism: the best parent survives over the worst child.
      const std::size_t elite = best_of(pop);
      const std::size_t worst_child = worst_of(next);
      if (pop[elite].fitness > next[worst_child].fitness) {
        next[worst_child] = pop[elite];
      }
      pop = std::move(next);

      // --- Membership sync: survivors agree on who is alive before any
      // generation-g exchange. Generations are globally lock-stepped (the
      // stop decision below gathers from every live rank), so no island
      // can die between this sync and the exchanges that use its view.
      const minimpi::MembershipView prev_view = view;
      view = comm.sync_membership();
      CSTUNER_CHECK_MSG(
          static_cast<int>(view.live.size()) >= options_.min_islands,
          "island GA: live islands fell below min_islands");

      // --- Ring healing: if my left live neighbour died, the ring reknits
      // across the gap and I adopt the elites it last migrated to me, so
      // the dead island's best genomes stay in the gene pool.
      if (prev_view.live.size() > 1) {
        const int prev_left = prev_view.left_neighbor_of(comm.rank());
        if (!view.contains(prev_left)) {
          CSTUNER_OBS_COUNT("ga.ring_heals", 1);
          if (options_.event_sink) {
            options_.event_sink({tuner::IslandEvent::Kind::kRingHeal,
                                 comm.rank(), gen, prev_left});
          }
          if (legacy_source == prev_left && !legacy.empty()) {
            CSTUNER_OBS_COUNT("ga.elite_adoptions", legacy.size());
            if (options_.event_sink) {
              options_.event_sink({tuner::IslandEvent::Kind::kEliteAdoption,
                                   comm.rank(), gen, prev_left});
            }
            for (const Individual& elite : legacy) {
              const std::size_t worst = worst_of(pop);
              if (elite.fitness > pop[worst].fitness) pop[worst] = elite;
            }
          }
          legacy.clear();
          legacy_source = -1;
        }
      }

      // --- Ring migration: top individuals go to the right *live*
      // neighbour (the agreed view heals the ring around dead islands).
      if (view.live.size() > 1 &&
          gen % static_cast<std::size_t>(options_.migration_interval) == 0) {
        CSTUNER_TRACE_SPAN("comm", "ga.migration");
        CSTUNER_OBS_COUNT("ga.migrations", 1);
        std::vector<Individual> sorted = pop;
        std::sort(sorted.begin(), sorted.end(),
                  [](const Individual& a, const Individual& b) {
                    return a.fitness > b.fitness;
                  });
        const auto m = static_cast<std::size_t>(
            std::min<int>(options_.migrants, pop_size));
        std::vector<double> fit(m);
        for (std::size_t i = 0; i < m; ++i) fit[i] = sorted[i].fitness;
        const int right = view.right_neighbor_of(comm.rank());
        const int left = view.left_neighbor_of(comm.rank());
        comm.try_send_values<std::uint32_t>(right, kTagMigrateGenomes,
                                            flatten(sorted, m));
        comm.try_send_values<double>(right, kTagMigrateFitness, fit);
        const auto in_genomes =
            comm.try_recv_values<std::uint32_t>(left, kTagMigrateGenomes);
        const auto in_fitness =
            comm.try_recv_values<double>(left, kTagMigrateFitness);
        if (in_genomes && in_fitness) {
          CSTUNER_CHECK(in_genomes->size() == m * n_genes);
          CSTUNER_CHECK(in_fitness->size() == m);
          legacy.clear();
          legacy_source = left;
          for (std::size_t i = 0; i < m; ++i) {
            Individual migrant;
            migrant.genome.assign(
                in_genomes->begin() +
                    static_cast<std::ptrdiff_t>(i * n_genes),
                in_genomes->begin() +
                    static_cast<std::ptrdiff_t>((i + 1) * n_genes));
            migrant.fitness = (*in_fitness)[i];
            legacy.push_back(migrant);
            const std::size_t worst = worst_of(pop);
            if (migrant.fitness > pop[worst].fitness) pop[worst] = migrant;
          }
        }
      }

      // --- Global stop decision on the coordinator: the lowest live rank
      // (rank 0 until it dies). Every live rank derives the same
      // coordinator from the agreed view.
      const int coordinator = view.live.front();
      const std::size_t local_best = best_of(pop);
      std::vector<double> local_fitness(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) {
        local_fitness[i] = pop[i].fitness;
      }
      bool stop = false;
      if (comm.rank() == coordinator) {
        // One generation finished across all live islands (the coordinator
        // decides after gathering every live rank's stats, so this count
        // is deterministic).
        CSTUNER_OBS_COUNT("ga.generations", 1);
        CSTUNER_OBS_GAUGE("ga.live_islands",
                          static_cast<std::int64_t>(view.live.size()));
        GaState state;
        state.generation = gen;
        state.fitnesses = local_fitness;
        state.fitnesses.reserve(pop.size() * view.live.size());
        state.best = pop[local_best].genome;
        state.best_fitness = pop[local_best].fitness;
        for (int r : view.live) {
          if (r == coordinator) continue;
          const auto fit = comm.try_recv_values<double>(r, kTagStatsFitness);
          const auto genome =
              comm.try_recv_values<std::uint32_t>(r, kTagStatsBest);
          // A rank that died mid-exchange contributes nothing this
          // generation; the next sync drops it from the view.
          if (!fit || !genome) continue;
          state.fitnesses.insert(state.fitnesses.end(), fit->begin(),
                                 fit->end());
          const double best_fit = fit->empty() ? 0.0 : (*fit)[0];
          // Convention: remote fitness vectors are sorted descending, so
          // fit[0] is that rank's best, matching `genome`.
          if (best_fit > state.best_fitness) {
            state.best_fitness = best_fit;
            state.best = *genome;
          }
        }
        std::sort(state.fitnesses.begin(), state.fitnesses.end(),
                  std::greater<>());
        stop = should_stop(state) || gen == options_.max_generations;
        // Only the one coordinator of this generation writes the closure;
        // coordinator turnover happens only across membership syncs, which
        // order the old coordinator's death before the new one's writes.
        result.best = state.best;
        result.best_fitness = state.best_fitness;
        result.generations = gen;
        result.islands_survived = view.live.size();
        result.rank_deaths =
            static_cast<std::size_t>(comm.size()) - view.live.size();
        for (int r : view.live) {
          if (r == coordinator) continue;
          comm.try_send_values<std::uint8_t>(
              r, kTagDecision, {static_cast<std::uint8_t>(stop ? 1 : 0)});
        }
      } else {
        std::vector<double> sorted_fitness = local_fitness;
        std::sort(sorted_fitness.begin(), sorted_fitness.end(),
                  std::greater<>());
        comm.try_send_values<double>(coordinator, kTagStatsFitness,
                                     sorted_fitness);
        comm.try_send_values<std::uint32_t>(coordinator, kTagStatsBest,
                                            pop[local_best].genome);
        const auto decision =
            comm.try_recv_values<std::uint8_t>(coordinator, kTagDecision);
        // A coordinator death mid-decision is indistinguishable from "keep
        // going"; the next generation's sync elects a successor.
        stop = decision && !decision->empty() && (*decision)[0] != 0;
      }
      if (stop) break;
    }
    any_island_finished.store(true, std::memory_order_release);
    (void)kTagResult;
  });
  CSTUNER_CHECK_MSG(any_island_finished.load(std::memory_order_acquire),
                    "island GA: every island died before finishing");
  return result;
}

}  // namespace cstuner::ga
