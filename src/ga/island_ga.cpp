#include "ga/island_ga.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "minimpi/comm.hpp"
#include "obs/obs.hpp"

namespace cstuner::ga {

namespace {

constexpr int kTagMigrateGenomes = 1;
constexpr int kTagMigrateFitness = 2;
constexpr int kTagStatsFitness = 3;
constexpr int kTagStatsBest = 4;
constexpr int kTagDecision = 5;
constexpr int kTagResult = 6;

struct Individual {
  Genome genome;
  double fitness = 0.0;
};

std::vector<std::uint32_t> flatten(const std::vector<Individual>& pop,
                                   std::size_t count) {
  std::vector<std::uint32_t> flat;
  if (count > 0) flat.reserve(count * pop[0].genome.size());
  for (std::size_t i = 0; i < count; ++i) {
    flat.insert(flat.end(), pop[i].genome.begin(), pop[i].genome.end());
  }
  return flat;
}

}  // namespace

IslandGa::IslandGa(std::vector<std::uint32_t> cardinalities,
                   GaOptions options)
    : cardinalities_(std::move(cardinalities)), options_(options) {
  CSTUNER_CHECK(!cardinalities_.empty());
  for (auto c : cardinalities_) CSTUNER_CHECK(c >= 1);
  CSTUNER_CHECK(options_.sub_populations >= 1);
  CSTUNER_CHECK(options_.population_size >= 2);
}

GaResult IslandGa::run(
    const std::function<double(const Genome&)>& evaluate,
    const std::function<bool(const GaState&)>& should_stop) {
  return run(
      [&evaluate](const std::vector<Genome>& genomes) {
        std::vector<double> fitnesses;
        fitnesses.reserve(genomes.size());
        for (const auto& genome : genomes) {
          fitnesses.push_back(evaluate(genome));
        }
        return fitnesses;
      },
      should_stop);
}

GaResult IslandGa::run(
    const BatchFitness& evaluate,
    const std::function<bool(const GaState&)>& should_stop) {
  CSTUNER_TRACE_SPAN("ga", "ga.run");
  GaResult result;

  const std::size_t n_genes = cardinalities_.size();
  const int pop_size = options_.population_size;

  minimpi::Context::run(options_.sub_populations, [&](minimpi::Comm& comm) {
    Rng rng(hash_combine(options_.seed,
                         static_cast<std::uint64_t>(comm.rank()) + 101));

    // Batch-evaluate one island generation. Other islands may be inside
    // their own call at the same time; the oracle handles the concurrency.
    auto evaluate_into = [&](std::vector<Individual>& pop,
                             std::vector<Genome> genomes) {
      const auto fitnesses = evaluate(genomes);
      CSTUNER_CHECK_MSG(fitnesses.size() == genomes.size(),
                        "batch fitness must match genome count");
      for (std::size_t i = 0; i < pop.size(); ++i) {
        pop[i].genome = std::move(genomes[i]);
        pop[i].fitness = fitnesses[i];
      }
    };

    // --- Initial population.
    std::vector<Individual> pop(static_cast<std::size_t>(pop_size));
    {
      std::vector<Genome> genomes;
      genomes.reserve(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) {
        genomes.push_back(options_.initializer
                              ? options_.initializer(rng)
                              : random_genome(cardinalities_, rng));
        CSTUNER_CHECK(genomes.back().size() == n_genes);
      }
      evaluate_into(pop, std::move(genomes));
    }

    auto best_of = [](const std::vector<Individual>& p) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i].fitness > p[best].fitness) best = i;
      }
      return best;
    };
    auto worst_of = [](const std::vector<Individual>& p) {
      std::size_t worst = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i].fitness < p[worst].fitness) worst = i;
      }
      return worst;
    };

    for (std::size_t gen = 1; gen <= options_.max_generations; ++gen) {
      // --- Breeding: each slot breeds from its four ring neighbours with
      // fitness-proportional parent choice (Fig. 6 description). All
      // offspring are bred first (breeding reads only the parents), then
      // the whole generation is evaluated as one batch.
      std::vector<Genome> offspring;
      offspring.reserve(static_cast<std::size_t>(pop_size));
      for (int i = 0; i < pop_size; ++i) {
        if (rng.bernoulli(options_.crossover_rate)) {
          const int hood[4] = {(i - 2 + pop_size) % pop_size,
                               (i - 1 + pop_size) % pop_size,
                               (i + 1) % pop_size, (i + 2) % pop_size};
          auto pick = [&]() -> const Individual& {
            // Roulette over shifted fitness (fitnesses may be <= 0).
            double lo = pop[static_cast<std::size_t>(hood[0])].fitness;
            for (int h : hood) {
              lo = std::min(lo, pop[static_cast<std::size_t>(h)].fitness);
            }
            double total = 0.0;
            for (int h : hood) {
              total += pop[static_cast<std::size_t>(h)].fitness - lo + 1e-12;
            }
            double ticket = rng.uniform() * total;
            for (int h : hood) {
              ticket -=
                  pop[static_cast<std::size_t>(h)].fitness - lo + 1e-12;
              if (ticket <= 0.0) return pop[static_cast<std::size_t>(h)];
            }
            return pop[static_cast<std::size_t>(hood[3])];
          };
          const Individual& pa = pick();
          const Individual& pb = pick();
          offspring.push_back(uniform_crossover(pa.genome, pb.genome, rng));
        } else {
          offspring.push_back(pop[static_cast<std::size_t>(i)].genome);
        }
        mutate_genome(offspring.back(), cardinalities_,
                      options_.mutation_rate, rng);
      }
      std::vector<Individual> next(pop.size());
      evaluate_into(next, std::move(offspring));
      // Elitism: the best parent survives over the worst child.
      const std::size_t elite = best_of(pop);
      const std::size_t worst_child = worst_of(next);
      if (pop[elite].fitness > next[worst_child].fitness) {
        next[worst_child] = pop[elite];
      }
      pop = std::move(next);

      // --- Ring migration: top individuals go to the right neighbour.
      if (options_.sub_populations > 1 &&
          gen % static_cast<std::size_t>(options_.migration_interval) == 0) {
        CSTUNER_TRACE_SPAN("comm", "ga.migration");
        CSTUNER_OBS_COUNT("ga.migrations", 1);
        std::vector<Individual> sorted = pop;
        std::sort(sorted.begin(), sorted.end(),
                  [](const Individual& a, const Individual& b) {
                    return a.fitness > b.fitness;
                  });
        const auto m = static_cast<std::size_t>(
            std::min<int>(options_.migrants, pop_size));
        std::vector<double> fit(m);
        for (std::size_t i = 0; i < m; ++i) fit[i] = sorted[i].fitness;
        comm.send_values<std::uint32_t>(comm.right_neighbor(),
                                        kTagMigrateGenomes,
                                        flatten(sorted, m));
        comm.send_values<double>(comm.right_neighbor(), kTagMigrateFitness,
                                 fit);
        const auto in_genomes = comm.recv_values<std::uint32_t>(
            comm.left_neighbor(), kTagMigrateGenomes);
        const auto in_fitness = comm.recv_values<double>(
            comm.left_neighbor(), kTagMigrateFitness);
        CSTUNER_CHECK(in_genomes.size() == m * n_genes);
        for (std::size_t i = 0; i < m; ++i) {
          Individual migrant;
          migrant.genome.assign(
              in_genomes.begin() + static_cast<std::ptrdiff_t>(i * n_genes),
              in_genomes.begin() +
                  static_cast<std::ptrdiff_t>((i + 1) * n_genes));
          migrant.fitness = in_fitness[i];
          const std::size_t worst = worst_of(pop);
          if (migrant.fitness > pop[worst].fitness) pop[worst] = migrant;
        }
      }

      // --- Global stop decision on rank 0.
      const std::size_t local_best = best_of(pop);
      std::vector<double> local_fitness(pop.size());
      for (std::size_t i = 0; i < pop.size(); ++i) {
        local_fitness[i] = pop[i].fitness;
      }
      bool stop = false;
      if (comm.rank() == 0) {
        // One generation finished across all islands (rank 0 decides after
        // gathering every rank's stats, so this count is deterministic).
        CSTUNER_OBS_COUNT("ga.generations", 1);
        GaState state;
        state.generation = gen;
        state.fitnesses = local_fitness;
        state.fitnesses.reserve(pop.size() *
                                static_cast<std::size_t>(comm.size()));
        state.best = pop[local_best].genome;
        state.best_fitness = pop[local_best].fitness;
        for (int r = 1; r < comm.size(); ++r) {
          const auto fit = comm.recv_values<double>(r, kTagStatsFitness);
          state.fitnesses.insert(state.fitnesses.end(), fit.begin(),
                                 fit.end());
          const auto genome =
              comm.recv_values<std::uint32_t>(r, kTagStatsBest);
          const double best_fit = fit.empty() ? 0.0 : fit[0];
          // Convention: remote fitness vectors are sorted descending, so
          // fit[0] is that rank's best, matching `genome`.
          if (best_fit > state.best_fitness) {
            state.best_fitness = best_fit;
            state.best = genome;
          }
        }
        std::sort(state.fitnesses.begin(), state.fitnesses.end(),
                  std::greater<>());
        stop = should_stop(state) || gen == options_.max_generations;
        result.best = state.best;
        result.best_fitness = state.best_fitness;
        result.generations = gen;
        for (int r = 1; r < comm.size(); ++r) {
          comm.send_values<std::uint8_t>(
              r, kTagDecision, {static_cast<std::uint8_t>(stop ? 1 : 0)});
        }
      } else {
        std::vector<double> sorted_fitness = local_fitness;
        std::sort(sorted_fitness.begin(), sorted_fitness.end(),
                  std::greater<>());
        comm.send_values<double>(0, kTagStatsFitness, sorted_fitness);
        comm.send_values<std::uint32_t>(0, kTagStatsBest,
                                        pop[local_best].genome);
        const auto decision =
            comm.recv_values<std::uint8_t>(0, kTagDecision);
        stop = decision[0] != 0;
      }
      if (stop) break;
    }
    (void)kTagResult;
  });
  return result;
}

}  // namespace cstuner::ga
