#pragma once
// Multi-process genetic algorithm (Fig. 6): sub-populations run on minimpi
// ranks, breed by fitness-proportional neighbourhood selection + uniform
// crossover + bit mutation, and migrate their best individuals around a
// single ring every generation. A caller-supplied stop predicate (evaluated
// on rank 0 and broadcast) implements csTuner's CV(top-n) approximation as
// well as plain generation caps.

#include <functional>
#include <string>

#include "ga/gene.hpp"

namespace cstuner::ga {

/// Optional custom initial-genome generator (defaults to uniform random).
using GenomeInitializer = std::function<Genome(Rng&)>;

/// Fitness oracle over a whole generation of one island: maps each genome
/// to a fitness (higher = better), same order. Islands call it concurrently
/// (one call per island per generation), so it must be thread-safe; the
/// batched tuner::Evaluator::evaluate_batch is the intended backend.
using BatchFitness =
    std::function<std::vector<double>(const std::vector<Genome>&)>;

}  // namespace cstuner::ga

namespace cstuner::ga {

struct GaOptions {
  int sub_populations = 2;   ///< ranks (paper §V-A2)
  int population_size = 16;  ///< individuals per sub-population
  double crossover_rate = 0.8;
  double mutation_rate = 0.005;
  int migration_interval = 1;  ///< generations between migrations
  int migrants = 2;            ///< individuals exchanged per migration
  std::size_t max_generations = 1000;  ///< hard safety cap
  std::uint64_t seed = 1;
  /// Custom initial-population generator (e.g. constraint-aware seeding);
  /// empty = uniform random genomes.
  GenomeInitializer initializer;
};

/// Global view after each generation, passed to the stop predicate.
struct GaState {
  std::size_t generation = 0;
  /// All individual fitnesses of the current generation across every
  /// sub-population, sorted descending (fitness = higher is better).
  std::vector<double> fitnesses;
  Genome best;
  double best_fitness = 0.0;
};

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  std::size_t generations = 0;
};

class IslandGa {
 public:
  /// `cardinalities`: the valid index range per gene (re-indexed values).
  IslandGa(std::vector<std::uint32_t> cardinalities, GaOptions options);

  /// Runs the GA, evaluating each island's generation of offspring as one
  /// batch. There is no internal evaluation mutex: islands invoke
  /// `evaluate` concurrently, so it must be thread-safe (a parallel
  /// Evaluator, or any pure function). `should_stop` is consulted on rank 0
  /// after every generation, while all islands are quiescent.
  GaResult run(const BatchFitness& evaluate,
               const std::function<bool(const GaState&)>& should_stop);

  /// Per-genome convenience wrapper: `evaluate` is called once per genome,
  /// sequentially within an island but concurrently across islands.
  GaResult run(const std::function<double(const Genome&)>& evaluate,
               const std::function<bool(const GaState&)>& should_stop);

 private:
  std::vector<std::uint32_t> cardinalities_;
  GaOptions options_;
};

}  // namespace cstuner::ga
