#pragma once
// Multi-process genetic algorithm (Fig. 6): sub-populations run on minimpi
// ranks, breed by fitness-proportional neighbourhood selection + uniform
// crossover + bit mutation, and migrate their best individuals around a
// single ring every generation. A caller-supplied stop predicate (evaluated
// on rank 0 and broadcast) implements csTuner's CV(top-n) approximation as
// well as plain generation caps.

#include <functional>
#include <string>

#include "ga/gene.hpp"
#include "tuner/fault.hpp"

namespace cstuner::ga {

/// Optional custom initial-genome generator (defaults to uniform random).
using GenomeInitializer = std::function<Genome(Rng&)>;

/// Fitness oracle over a whole generation of one island: maps each genome
/// to a fitness (higher = better), same order. Islands call it concurrently
/// (one call per island per generation), so it must be thread-safe; the
/// batched tuner::Evaluator::evaluate_batch is the intended backend.
using BatchFitness =
    std::function<std::vector<double>(const std::vector<Genome>&)>;

/// Deterministic crash schedule: consulted by every island at the start of
/// every generation; returning true makes that island die there (a
/// one-shot decision — tuner::FaultInjector::should_kill is the intended
/// backend). Must be thread-safe.
using KillPredicate = std::function<bool(int rank, std::uint64_t generation)>;

/// Receives island-level recovery events (deaths, ring heals, elite
/// adoptions) as they happen, from island threads. Must be thread-safe;
/// tuner::Checkpoint::append_island_event is the intended backend.
using IslandEventSink = std::function<void(const tuner::IslandEvent&)>;

}  // namespace cstuner::ga

namespace cstuner::ga {

struct GaOptions {
  int sub_populations = 2;   ///< ranks (paper §V-A2)
  int population_size = 16;  ///< individuals per sub-population
  double crossover_rate = 0.8;
  double mutation_rate = 0.005;
  int migration_interval = 1;  ///< generations between migrations
  int migrants = 2;            ///< individuals exchanged per migration
  std::size_t max_generations = 1000;  ///< hard safety cap
  std::uint64_t seed = 1;
  /// Custom initial-population generator (e.g. constraint-aware seeding);
  /// empty = uniform random genomes.
  GenomeInitializer initializer;
  /// Injected-crash schedule; empty = no islands ever die.
  KillPredicate kill_predicate;
  /// Recovery-event observer; empty = events are only counted in obs.
  IslandEventSink event_sink;
  /// Abort (cstuner::Error) if the live island count drops below this.
  /// 1 = degrade all the way down to a single surviving island.
  int min_islands = 1;
};

/// Global view after each generation, passed to the stop predicate.
struct GaState {
  std::size_t generation = 0;
  /// All individual fitnesses of the current generation across every
  /// sub-population, sorted descending (fitness = higher is better).
  std::vector<double> fitnesses;
  Genome best;
  double best_fitness = 0.0;
};

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  std::size_t generations = 0;
  /// Islands still alive when the run finished (== sub_populations when no
  /// kill fired) and how many died along the way.
  std::size_t islands_survived = 0;
  std::size_t rank_deaths = 0;
};

class IslandGa {
 public:
  /// `cardinalities`: the valid index range per gene (re-indexed values).
  IslandGa(std::vector<std::uint32_t> cardinalities, GaOptions options);

  /// Runs the GA, evaluating each island's generation of offspring as one
  /// batch. There is no internal evaluation mutex: islands invoke
  /// `evaluate` concurrently, so it must be thread-safe (a parallel
  /// Evaluator, or any pure function). `should_stop` is consulted on the
  /// coordinator (lowest live rank; rank 0 until it dies) after every
  /// generation, while all islands are quiescent.
  ///
  /// Islands killed by `kill_predicate` do not abort the run: the
  /// migration ring heals around the gap, the dead island's last-migrated
  /// elites are adopted by its right live neighbour, and the search
  /// degrades gracefully down to `min_islands` survivors (throwing
  /// cstuner::Error only below that, or if every island dies).
  GaResult run(const BatchFitness& evaluate,
               const std::function<bool(const GaState&)>& should_stop);

  /// Per-genome convenience wrapper: `evaluate` is called once per genome,
  /// sequentially within an island but concurrently across islands.
  GaResult run(const std::function<double(const Genome&)>& evaluate,
               const std::function<bool(const GaState&)>& should_stop);

 private:
  std::vector<std::uint32_t> cardinalities_;
  GaOptions options_;
};

}  // namespace cstuner::ga
