#pragma once
// Binary gene encoding (§IV-E): each gene is an index into a re-indexed
// value set, stored in binary so mutation flips individual bits. Values that
// mutate outside the valid range are redrawn uniformly, matching the paper's
// re-indexing scheme that keeps every gene value meaningful.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cstuner::ga {

/// A genome: one index per tuned dimension.
using Genome = std::vector<std::uint32_t>;

/// Bits needed to represent indices in [0, cardinality).
int gene_bits(std::uint32_t cardinality);

/// Flips each of the gene's bits with probability `rate`; out-of-range
/// results are redrawn uniformly in [0, cardinality).
std::uint32_t mutate_gene(std::uint32_t value, std::uint32_t cardinality,
                          double rate, Rng& rng);

/// Uniform crossover: each gene copied from a random parent.
Genome uniform_crossover(const Genome& a, const Genome& b, Rng& rng);

/// Random genome for the given per-gene cardinalities.
Genome random_genome(const std::vector<std::uint32_t>& cardinalities,
                     Rng& rng);

/// Mutates every gene of the genome.
void mutate_genome(Genome& genome,
                   const std::vector<std::uint32_t>& cardinalities,
                   double rate, Rng& rng);

}  // namespace cstuner::ga
