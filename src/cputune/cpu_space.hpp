#pragma once
// The CPU optimization space: the Table I methodology re-targeted at
// shared-memory multicore hardware. Parameters cover OpenMP-style thread
// count and scheduling, loop tiling per dimension, SIMD vector width,
// unrolling, and non-temporal stores.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cputune/cpu_arch.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::cputune {

enum CpuParamId : std::size_t {
  kThreads = 0,   ///< worker threads (pow2 up to cores*smt)
  kTileX,         ///< tile extent, unit-stride dimension
  kTileY,
  kTileZ,
  kVecWidth,      ///< SIMD lanes used (pow2 up to arch width)
  kUnroll,        ///< innermost unroll factor
  kSchedule,      ///< 1 = static, 2 = dynamic, 3 = guided
  kNtStores,      ///< 1 = off, 2 = streaming (non-temporal) stores
  kCpuParamCount
};

constexpr std::size_t kCpuParams = static_cast<std::size_t>(kCpuParamCount);

const char* cpu_param_name(CpuParamId id);
bool cpu_param_is_numeric(CpuParamId id);

/// A CPU tuning configuration: one value per parameter (values >= 1).
struct CpuSetting {
  std::array<std::int64_t, kCpuParams> values;

  CpuSetting() { values.fill(1); }
  std::int64_t get(CpuParamId id) const {
    return values[static_cast<std::size_t>(id)];
  }
  void set(CpuParamId id, std::int64_t v) {
    values[static_cast<std::size_t>(id)] = v;
  }
  bool operator==(const CpuSetting&) const = default;
  std::uint64_t hash() const;
  std::string to_string() const;
};

/// Admissible values per parameter for a (stencil, CPU) pair.
class CpuSpace {
 public:
  CpuSpace(stencil::StencilSpec spec, const CpuArch& arch);

  const stencil::StencilSpec& spec() const { return spec_; }
  const CpuArch& arch() const { return arch_; }

  const std::vector<std::int64_t>& values(CpuParamId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  std::size_t cardinality(CpuParamId id) const {
    return values(id).size();
  }

  /// Constraints: tiles within the grid, vector width <= tile_x,
  /// unroll <= tile_z, threads have enough tiles to share.
  bool is_valid(const CpuSetting& setting) const;

  CpuSetting random_valid(Rng& rng, std::size_t max_tries = 100000) const;

  std::vector<CpuSetting> sample(Rng& rng, std::size_t count) const;

 private:
  stencil::StencilSpec spec_;
  const CpuArch& arch_;
  std::array<std::vector<std::int64_t>, kCpuParams> values_;
};

}  // namespace cstuner::cputune
