#include "cputune/cpu_arch.hpp"

#include "common/error.hpp"

namespace cstuner::cputune {

const CpuArch& xeon_8380() {
  static const CpuArch arch = [] {
    CpuArch a;
    a.name = "xeon8380";
    a.cores = 40;
    a.smt = 2;
    a.base_ghz = 2.3;
    a.fma_ports = 2;
    a.vector_doubles = 8;  // AVX-512
    a.l1d_bytes = 48 * 1024;
    a.l2_bytes = 1280 * 1024;
    a.l3_bytes = 60LL * 1024 * 1024;
    a.dram_gbps = 204.0;  // 8-channel DDR4-3200
    return a;
  }();
  return arch;
}

const CpuArch& epyc_7742() {
  static const CpuArch arch = [] {
    CpuArch a;
    a.name = "epyc7742";
    a.cores = 64;
    a.smt = 2;
    a.base_ghz = 2.25;
    a.fma_ports = 2;
    a.vector_doubles = 4;  // AVX2
    a.l1d_bytes = 32 * 1024;
    a.l2_bytes = 512 * 1024;
    a.l3_bytes = 256LL * 1024 * 1024;
    a.dram_gbps = 204.0;
    return a;
  }();
  return arch;
}

const CpuArch& cpu_arch_by_name(const std::string& name) {
  if (name == "xeon8380") return xeon_8380();
  if (name == "epyc7742") return epyc_7742();
  throw UsageError("unknown CPU architecture: " + name);
}

}  // namespace cstuner::cputune
