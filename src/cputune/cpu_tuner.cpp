#include "cputune/cpu_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

#include "common/error.hpp"
#include "regress/pmnf.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::cputune {

namespace {

/// log2 encoding for numeric parameters (same fairness rule as §IV-B).
double cv_encoded(CpuParamId id, std::int64_t value) {
  if (cpu_param_is_numeric(id)) {
    return std::log2(static_cast<double>(value)) + 1.0;
  }
  return static_cast<double>(value);
}

/// Ordered CV of best-partner values, mirroring core::grouping.
double ordered_cv(const std::vector<CpuSetting>& settings,
                  const std::vector<double>& times, CpuParamId pi,
                  CpuParamId pj) {
  std::map<std::int64_t, std::pair<double, std::int64_t>> best_by_value;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    auto [it, inserted] =
        best_by_value.try_emplace(settings[i].get(pi), times[i],
                                  settings[i].get(pj));
    if (!inserted && times[i] < it->second.first) {
      it->second = {times[i], settings[i].get(pj)};
    }
  }
  if (best_by_value.size() < 2) {
    return std::numeric_limits<double>::max();
  }
  std::vector<double> partners;
  for (const auto& [v, best] : best_by_value) {
    (void)v;
    partners.push_back(cv_encoded(pj, best.second));
  }
  return stats::coefficient_of_variation(partners);
}

}  // namespace

CpuTuner::CpuTuner(CpuTunerOptions options) : options_(options) {}

CpuTuneResult CpuTuner::tune(const CpuSpace& space,
                             const CpuSimulator& simulator) {
  CpuTuneResult result;
  Rng rng(options_.seed);
  const auto& spec = space.spec();

  // --- Dataset + candidate universe.
  const auto dataset = space.sample(rng, options_.dataset_size);
  CSTUNER_CHECK_MSG(dataset.size() >= 8, "CPU dataset too small");
  std::vector<double> dataset_times(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset_times[i] = simulator.measure_ms(spec, dataset[i], i);
  }
  auto universe = space.sample(rng, options_.universe_size);

  // --- Grouping: pairwise CVs -> deque -> Algorithm 1.
  std::vector<stats::ScoredPair> pairs;
  for (std::size_t a = 0; a < kCpuParams; ++a) {
    for (std::size_t b = a + 1; b < kCpuParams; ++b) {
      const double ab = ordered_cv(dataset, dataset_times,
                                   static_cast<CpuParamId>(a),
                                   static_cast<CpuParamId>(b));
      const double ba = ordered_cv(dataset, dataset_times,
                                   static_cast<CpuParamId>(b),
                                   static_cast<CpuParamId>(a));
      pairs.push_back({a, b, 0.5 * (ab + ba)});
    }
  }
  result.groups =
      stats::group_parameters(stats::build_deque(std::move(pairs)),
                              kCpuParams);

  // --- PMNF sampling with execution time as the modeled response.
  regress::Matrix x(dataset.size(), kCpuParams);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    for (std::size_t c = 0; c < kCpuParams; ++c) {
      x(r, c) = static_cast<double>(dataset[r].values[c]);
    }
  }
  const regress::PmnfFitter fitter;
  const auto fit = fitter.fit_best(x, dataset_times, result.groups);
  std::vector<std::size_t> order(universe.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> predicted(universe.size());
  for (std::size_t i = 0; i < universe.size(); ++i) {
    std::vector<double> row(kCpuParams);
    for (std::size_t c = 0; c < kCpuParams; ++c) {
      row[c] = static_cast<double>(universe[i].values[c]);
    }
    predicted[i] = fit.model.predict(row);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predicted[a] < predicted[b];
  });
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.sampling_ratio *
                                  static_cast<double>(universe.size())));
  std::vector<CpuSetting> sampled;
  for (std::size_t i = 0; i < keep && i < order.size(); ++i) {
    sampled.push_back(universe[order[i]]);
  }
  result.sampled_count = sampled.size();

  // --- Evaluation bookkeeping.
  std::unordered_map<std::uint64_t, double> cache;
  double best_time = std::numeric_limits<double>::infinity();
  CpuSetting best = dataset.front();
  auto evaluate = [&](const CpuSetting& s) {
    if (!space.is_valid(s)) return std::numeric_limits<double>::infinity();
    auto it = cache.find(s.hash());
    if (it != cache.end()) return it->second;
    if (result.evaluations >= options_.max_evaluations) {
      return std::numeric_limits<double>::infinity();
    }
    const double t = simulator.measure_ms(spec, s, s.hash());
    cache.emplace(s.hash(), t);
    ++result.evaluations;
    if (t < best_time) {
      best_time = t;
      best = s;
      result.trace.emplace_back(result.evaluations, t);
    }
    return t;
  };

  // Base: dataset optimum.
  {
    std::size_t bi = 0;
    for (std::size_t i = 1; i < dataset_times.size(); ++i) {
      if (dataset_times[i] < dataset_times[bi]) bi = i;
    }
    best = dataset[bi];
    evaluate(best);
  }

  // --- Re-index per group, then iterative GA with approximation.
  for (const auto& group : result.groups) {
    if (result.evaluations >= options_.max_evaluations) break;
    std::set<std::vector<std::int64_t>> distinct;
    for (const auto& s : sampled) {
      std::vector<std::int64_t> tuple;
      for (std::size_t p : group) tuple.push_back(s.values[p]);
      distinct.insert(std::move(tuple));
    }
    std::vector<std::vector<std::int64_t>> tuples(distinct.begin(),
                                                  distinct.end());
    if (tuples.empty()) continue;

    auto graft = [&](std::size_t index) {
      CpuSetting candidate = best;
      for (std::size_t i = 0; i < group.size(); ++i) {
        candidate.values[group[i]] = tuples[index][i];
      }
      // Cheap repair of the intra-setting rules.
      if (candidate.get(kVecWidth) > candidate.get(kTileX)) {
        candidate.set(kVecWidth, candidate.get(kTileX));
      }
      if (candidate.get(kUnroll) > candidate.get(kTileZ)) {
        candidate.set(kUnroll, candidate.get(kTileZ));
      }
      return candidate;
    };

    const std::size_t pop_total =
        static_cast<std::size_t>(options_.ga.sub_populations) *
        static_cast<std::size_t>(options_.ga.population_size);
    if (tuples.size() <= pop_total) {
      for (std::size_t t = 0; t < tuples.size(); ++t) evaluate(graft(t));
    } else {
      ga::GaOptions ga_options = options_.ga;
      ga_options.seed = hash_combine(options_.seed, group.front() + 17);
      ga::IslandGa island({static_cast<std::uint32_t>(tuples.size())},
                          ga_options);
      island.run(
          [&](const ga::Genome& genome) {
            const double t = evaluate(graft(genome[0]));
            return std::isfinite(t) ? 1000.0 / t : 1e-9;
          },
          [&](const ga::GaState& state) {
            if (result.evaluations >= options_.max_evaluations) return true;
            if (state.generation < 2) return false;
            std::vector<double> top;
            for (double f : state.fitnesses) {
              if (f > 0.0 && std::isfinite(f)) top.push_back(f);
              if (top.size() == options_.top_n) break;
            }
            return top.size() >= 2 &&
                   stats::coefficient_of_variation(top) <
                       options_.cv_threshold;
          });
    }
  }

  result.best = best;
  result.best_time_ms = best_time;
  return result;
}

}  // namespace cstuner::cputune
