#pragma once
// The csTuner pipeline re-instantiated for the CPU target (§VII): dataset ->
// CV-based parameter grouping -> PMNF-guided sampling (time as the modeled
// response) -> re-indexed per-group evolutionary search with CV(top-n)
// approximation. Exercises the same statistics/regression/GA components as
// the GPU pipeline, demonstrating the "versatility of its components" claim
// of §IV-A.

#include <optional>
#include <vector>

#include "cputune/cpu_model.hpp"
#include "cputune/cpu_space.hpp"
#include "ga/island_ga.hpp"
#include "stats/deque_group.hpp"

namespace cstuner::cputune {

struct CpuTunerOptions {
  std::size_t dataset_size = 96;
  std::size_t universe_size = 3000;
  double sampling_ratio = 0.15;
  ga::GaOptions ga;  ///< defaults match the GPU pipeline (2 x 16)
  std::size_t top_n = 8;
  double cv_threshold = 0.02;
  std::size_t max_evaluations = 400;
  std::uint64_t seed = 3;
};

struct CpuTuneResult {
  CpuSetting best;
  double best_time_ms = 0.0;
  std::size_t evaluations = 0;
  stats::Groups groups;
  std::size_t sampled_count = 0;
  /// (evaluations, best-so-far) trace.
  std::vector<std::pair<std::size_t, double>> trace;
};

class CpuTuner {
 public:
  explicit CpuTuner(CpuTunerOptions options = {});

  CpuTuneResult tune(const CpuSpace& space, const CpuSimulator& simulator);

 private:
  CpuTunerOptions options_;
};

}  // namespace cstuner::cputune
