#pragma once
// CPU architecture descriptors for the §VII extension: "extend csTuner to
// support other hardware such as CPU ... we only need to adjust the
// optimization space according to the target hardware".

#include <cstdint>
#include <string>

namespace cstuner::cputune {

struct CpuArch {
  std::string name;
  int cores = 0;
  int smt = 2;                   ///< hardware threads per core
  double base_ghz = 0.0;
  int fma_ports = 2;             ///< FMA pipes per core
  int vector_doubles = 8;        ///< SIMD lanes (doubles): 8 = AVX-512
  std::int64_t l1d_bytes = 48 * 1024;   ///< per core
  std::int64_t l2_bytes = 0;            ///< per core
  std::int64_t l3_bytes = 0;            ///< shared
  double dram_gbps = 0.0;        ///< socket memory bandwidth
};

/// Intel Xeon Platinum 8380 (Ice Lake SP, AVX-512).
const CpuArch& xeon_8380();

/// AMD EPYC 7742 (Rome, AVX2).
const CpuArch& epyc_7742();

const CpuArch& cpu_arch_by_name(const std::string& name);

}  // namespace cstuner::cputune
