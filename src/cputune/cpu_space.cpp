#include "cputune/cpu_space.hpp"

#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::cputune {

const char* cpu_param_name(CpuParamId id) {
  static const char* kNames[kCpuParams] = {"threads", "tileX", "tileY",
                                           "tileZ",   "vec",   "unroll",
                                           "schedule", "ntStores"};
  return kNames[static_cast<std::size_t>(id)];
}

bool cpu_param_is_numeric(CpuParamId id) {
  return id != kSchedule && id != kNtStores;
}

std::uint64_t CpuSetting::hash() const {
  std::uint64_t h = 0x435055u;  // "CPU"
  for (auto v : values) h = hash_combine(h, static_cast<std::uint64_t>(v));
  return h;
}

std::string CpuSetting::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kCpuParams; ++i) {
    if (i) os << ' ';
    os << cpu_param_name(static_cast<CpuParamId>(i)) << '=' << values[i];
  }
  return os.str();
}

CpuSpace::CpuSpace(stencil::StencilSpec spec, const CpuArch& arch)
    : spec_(std::move(spec)), arch_(arch) {
  values_[kThreads] =
      pow2_range(static_cast<std::int64_t>(arch.cores) * arch.smt);
  values_[kTileX] = pow2_range(spec_.grid[0]);
  values_[kTileY] = pow2_range(std::min(spec_.grid[1], 128));
  values_[kTileZ] = pow2_range(std::min(spec_.grid[2], 128));
  values_[kVecWidth] = pow2_range(arch.vector_doubles);
  values_[kUnroll] = pow2_range(8);
  values_[kSchedule] = {1, 2, 3};
  values_[kNtStores] = {1, 2};
}

bool CpuSpace::is_valid(const CpuSetting& s) const {
  for (std::size_t i = 0; i < kCpuParams; ++i) {
    const auto& admissible = values_[i];
    const auto v = s.values[i];
    bool found = false;
    for (auto a : admissible) found |= (a == v);
    if (!found) return false;
  }
  // Vectorization happens along the unit-stride tile.
  if (s.get(kVecWidth) > s.get(kTileX)) return false;
  // Unrolling applies to the z-tile loop.
  if (s.get(kUnroll) > s.get(kTileZ)) return false;
  // Every thread needs at least one tile to work on.
  const std::int64_t tiles =
      ceil_div<std::int64_t>(spec_.grid[0], s.get(kTileX)) *
      ceil_div<std::int64_t>(spec_.grid[1], s.get(kTileY)) *
      ceil_div<std::int64_t>(spec_.grid[2], s.get(kTileZ));
  if (tiles < s.get(kThreads)) return false;
  return true;
}

CpuSetting CpuSpace::random_valid(Rng& rng, std::size_t max_tries) const {
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    CpuSetting s;
    for (std::size_t i = 0; i < kCpuParams; ++i) {
      const auto& admissible = values_[i];
      s.values[i] = admissible[rng.index(admissible.size())];
    }
    // Constructive fixes for the cheap rules; tile-count rule via retry.
    if (s.get(kVecWidth) > s.get(kTileX)) {
      s.set(kVecWidth, 1);
    }
    if (s.get(kUnroll) > s.get(kTileZ)) s.set(kUnroll, 1);
    if (is_valid(s)) return s;
  }
  throw Error("CpuSpace::random_valid exhausted retries");
}

std::vector<CpuSetting> CpuSpace::sample(Rng& rng, std::size_t count) const {
  std::vector<CpuSetting> out;
  std::unordered_set<std::uint64_t> seen;
  std::size_t attempts = 0;
  while (out.size() < count && attempts < count * 64) {
    ++attempts;
    const CpuSetting s = random_valid(rng);
    if (seen.insert(s.hash()).second) out.push_back(s);
  }
  return out;
}

}  // namespace cstuner::cputune
