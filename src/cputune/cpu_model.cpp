#include "cputune/cpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace cstuner::cputune {

CpuProfile CpuSimulator::profile(const stencil::StencilSpec& spec,
                                 const CpuSetting& s) const {
  CpuProfile p;
  const double points = static_cast<double>(spec.points());

  const std::int64_t threads = s.get(kThreads);
  const std::int64_t vec = s.get(kVecWidth);
  const std::int64_t unroll = s.get(kUnroll);

  // --- Compute roofline. SMT shares the FMA ports, so throughput scales
  // with physical cores; wide vectors trigger a frequency derate.
  const double cores_used = std::min<double>(
      static_cast<double>(threads), static_cast<double>(arch_.cores));
  double ghz = arch_.base_ghz;
  if (vec >= 8) ghz *= 0.85;  // AVX-512 license downclock
  const double peak_core_gflops =
      ghz * arch_.fma_ports * static_cast<double>(vec) * 2.0;

  // Lane utilization: remainder loops waste lanes when tileX is barely
  // wider than the vector; unrolling hides FMA latency.
  const double tile_x = static_cast<double>(s.get(kTileX));
  const double remainder_eff = tile_x / (std::ceil(tile_x / vec) * vec);
  const double ilp_eff =
      clamp(0.62 + 0.12 * std::log2(static_cast<double>(unroll)), 0.62, 1.0);
  p.vector_efficiency = remainder_eff * ilp_eff;

  p.compute_ms = spec.total_flops() /
                 (cores_used * peak_core_gflops * p.vector_efficiency) / 1e6;

  // --- Memory. Reuse captured when the tile working set fits in L2.
  const double tile_bytes =
      (tile_x + 2.0 * spec.order) *
      (static_cast<double>(s.get(kTileY)) + 2.0 * spec.order) *
      (static_cast<double>(s.get(kTileZ)) + 2.0 * spec.order) * 8.0 *
      static_cast<double>(spec.n_inputs);
  const double l2_fit =
      static_cast<double>(arch_.l2_bytes) / std::max(tile_bytes, 1.0);
  p.cache_capture = clamp(0.55 + 0.45 * std::min(l2_fit, 1.0), 0.2, 1.0);

  const double reuse = static_cast<double>(spec.taps.size()) /
                       std::max(1, spec.n_inputs);
  double read_bytes = points * 8.0 *
                      (static_cast<double>(spec.n_inputs) +
                       (reuse - 1.0) * (1.0 - p.cache_capture));
  double write_bytes = points * 8.0 * static_cast<double>(spec.n_outputs);
  // Regular stores read the line first (RFO); non-temporal stores do not,
  // but bypassing the cache hurts if outputs are re-read soon (they are
  // not, for a single sweep).
  if (s.get(kNtStores) == 1) write_bytes *= 2.0;

  // Bandwidth saturates around a dozen active threads; a single core only
  // sustains a fraction of socket bandwidth (limited MLP).
  const double t = static_cast<double>(threads);
  const double bw_eff = arch_.dram_gbps * clamp(1.45 * t / (t + 6.0), 0.15, 1.0);
  p.memory_ms = (read_bytes + write_bytes) / (bw_eff * 1e6);

  // --- Scheduling: static suffers tile-count quantization; dynamic and
  // guided balance at a small per-tile dispatch cost.
  const double tiles =
      std::ceil(static_cast<double>(spec.grid[0]) / tile_x) *
      std::ceil(static_cast<double>(spec.grid[1]) /
                static_cast<double>(s.get(kTileY))) *
      std::ceil(static_cast<double>(spec.grid[2]) /
                static_cast<double>(s.get(kTileZ)));
  double sched_overhead_ms = 0.0;
  if (s.get(kSchedule) == 1) {
    const double rounds = std::ceil(tiles / static_cast<double>(threads));
    p.imbalance = rounds * static_cast<double>(threads) / tiles;
  } else {
    p.imbalance = 1.02;
    const double per_tile_us = (s.get(kSchedule) == 2) ? 0.35 : 0.12;
    sched_overhead_ms =
        tiles * per_tile_us / static_cast<double>(threads) / 1e3;
  }

  p.time_ms = std::max(p.compute_ms, p.memory_ms) * p.imbalance +
              sched_overhead_ms + 0.008 /* fork/join */;
  return p;
}

double CpuSimulator::measure_ms(const stencil::StencilSpec& spec,
                                const CpuSetting& s,
                                std::uint64_t run_index) const {
  const CpuProfile p = profile(spec, s);
  std::uint64_t h = fnv1a(arch_.name.data(), arch_.name.size());
  h = hash_combine(h, fnv1a(spec.name.data(), spec.name.size()));
  h = hash_combine(h, s.hash());
  h = hash_combine(h, run_index);
  Rng rng(h);
  const double z = clamp(rng.normal(), -3.0, 3.0);
  return p.time_ms * (1.0 + 0.01 * z);
}

}  // namespace cstuner::cputune
