#pragma once
// Analytical multicore-CPU execution model: the (setting -> time) oracle for
// the CPU tuning target. Same philosophy as gpusim: roofline of vectorized
// FMA throughput vs memory bandwidth, cache capture of stencil reuse, and
// scheduling/imbalance overheads — deterministic with seeded noise.

#include "cputune/cpu_arch.hpp"
#include "cputune/cpu_space.hpp"

namespace cstuner::cputune {

struct CpuProfile {
  double time_ms = 0.0;
  double compute_ms = 0.0;
  double memory_ms = 0.0;
  double imbalance = 1.0;       ///< static-schedule tail factor (>= 1)
  double vector_efficiency = 0.0;
  double cache_capture = 0.0;   ///< fraction of reuse served on-chip
};

class CpuSimulator {
 public:
  explicit CpuSimulator(const CpuArch& arch) : arch_(arch) {}

  const CpuArch& arch() const { return arch_; }

  /// Noise-free analytical profile; the setting must be valid.
  CpuProfile profile(const stencil::StencilSpec& spec,
                     const CpuSetting& setting) const;

  /// One timing run with ~1% deterministic noise.
  double measure_ms(const stencil::StencilSpec& spec,
                    const CpuSetting& setting,
                    std::uint64_t run_index) const;

 private:
  const CpuArch& arch_;
};

}  // namespace cstuner::cputune
