#pragma once
// Performance Model Normal Form (PMNF) regression, Eq. 3 of the paper:
//
//   f(P) = sum_k  c_k * prod_{l in group k}  P_l^i * log2^j(P_l)
//
// The parameter groups (from Algorithm 1) shrink the PMNF function search
// space to |I| x |J| candidates regardless of parameter count: one exponent
// pair (i, j) is shared by all groups, each group contributes one product
// term, and an intercept c_0 is added. Each candidate is linear in the
// coefficients c_k, so fitting is a linear least-squares solve; the best
// candidate is selected by residual standard error (RSE), since R² is not a
// valid measure for non-linear model families.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "regress/least_squares.hpp"
#include "regress/matrix.hpp"

namespace cstuner::regress {

/// One fitted PMNF candidate.
class PmnfModel {
 public:
  PmnfModel() = default;
  PmnfModel(std::vector<std::vector<std::size_t>> groups, int i_exp, int j_exp,
            std::vector<double> coefficients);

  /// Predicted response for a full parameter-value row (values must be >= 1
  /// so log2 is defined; the space encodes bool/enum parameters from 1).
  double predict(std::span<const double> params) const;

  int i_exponent() const { return i_exp_; }
  int j_exponent() const { return j_exp_; }
  const std::vector<double>& coefficients() const { return coefficients_; }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }

  /// e.g. "c0 + c1*(P0*P3)^2*log2(..) + ..." for diagnostics.
  std::string to_string() const;

 private:
  friend class PmnfFitter;
  static double term_value(std::span<const double> params,
                           std::span<const std::size_t> group, int i_exp,
                           int j_exp);

  std::vector<std::vector<std::size_t>> groups_;
  int i_exp_ = 0;
  int j_exp_ = 0;
  std::vector<double> coefficients_;  // [intercept, one per group]
};

/// A fitted candidate plus its selection score.
struct PmnfFitResult {
  PmnfModel model;
  double rse = 0.0;
  double r2 = 0.0;
};

/// Searches the (i, j) candidate grid, fits each by least squares, returns
/// all fits plus the index of the RSE-best one.
class PmnfFitter {
 public:
  /// `i_range` / `j_range` default to the paper's evaluation setting:
  /// i in {0,1,2}, j in {0,1}, excluding the degenerate (0,0) pair.
  PmnfFitter();
  PmnfFitter(std::vector<int> i_range, std::vector<int> j_range);

  /// X: one row per observation, one column per parameter (raw values >= 1).
  /// y: response (a GPU metric or execution time).
  /// groups: parameter groups from Algorithm 1.
  /// Candidates are independent least-squares problems, so `pool` fits the
  /// (i, j) grid concurrently into fixed slots (result order and values are
  /// identical for any worker count); nullptr fits serially.
  std::vector<PmnfFitResult> fit_all(
      const Matrix& x, std::span<const double> y,
      const std::vector<std::vector<std::size_t>>& groups,
      ThreadPool* pool = nullptr) const;

  PmnfFitResult fit_best(
      const Matrix& x, std::span<const double> y,
      const std::vector<std::vector<std::size_t>>& groups,
      ThreadPool* pool = nullptr) const;

  std::size_t candidate_count() const;

 private:
  std::vector<int> i_range_;
  std::vector<int> j_range_;
};

}  // namespace cstuner::regress
