#pragma once
// Minimal dense row-major matrix, sufficient for the least-squares fits of
// the PMNF performance models. No external BLAS/LAPACK dependency.

#include <cstddef>
#include <span>
#include <vector>

namespace cstuner::regress {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x for a vector x of length cols().
  std::vector<double> multiply(std::span<const double> x) const;

  Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cstuner::regress
