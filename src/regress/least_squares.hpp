#pragma once
// Linear least squares via Householder QR with column-degeneracy guarding,
// plus the fit-quality measures the paper uses: residual standard error
// (RSE, used to select among PMNF candidates because R² is only meaningful
// for linear models) and R² for reference.

#include <vector>

#include "regress/matrix.hpp"

namespace cstuner::regress {

struct LeastSquaresFit {
  std::vector<double> coefficients;
  double rss = 0.0;  ///< residual sum of squares
  double rse = 0.0;  ///< sqrt(rss / (n - p)), infinity when n <= p
  double r2 = 0.0;   ///< 1 - rss / tss
};

/// Solves min ||A x - y||_2. Near-singular columns are regularized with a
/// tiny ridge so the solve never fails on degenerate designs; the resulting
/// fit simply scores a poor RSE and loses model selection.
LeastSquaresFit solve_least_squares(const Matrix& a,
                                    std::span<const double> y);

}  // namespace cstuner::regress
