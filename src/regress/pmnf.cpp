#include "regress/pmnf.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::regress {

PmnfModel::PmnfModel(std::vector<std::vector<std::size_t>> groups, int i_exp,
                     int j_exp, std::vector<double> coefficients)
    : groups_(std::move(groups)),
      i_exp_(i_exp),
      j_exp_(j_exp),
      coefficients_(std::move(coefficients)) {
  CSTUNER_CHECK(coefficients_.size() == groups_.size() + 1);
}

double PmnfModel::term_value(std::span<const double> params,
                             std::span<const std::size_t> group, int i_exp,
                             int j_exp) {
  double prod = 1.0;
  for (std::size_t l : group) {
    CSTUNER_CHECK_MSG(l < params.size(), "group references missing parameter");
    const double v = params[l];
    CSTUNER_CHECK_MSG(v >= 1.0, "PMNF requires parameter values >= 1");
    double factor = 1.0;
    for (int e = 0; e < i_exp; ++e) factor *= v;
    if (j_exp > 0) {
      double lg = std::log2(v);
      for (int e = 0; e < j_exp; ++e) factor *= lg;
    }
    prod *= factor;
  }
  return prod;
}

double PmnfModel::predict(std::span<const double> params) const {
  double acc = coefficients_[0];
  for (std::size_t k = 0; k < groups_.size(); ++k) {
    acc += coefficients_[k + 1] *
           term_value(params, groups_[k], i_exp_, j_exp_);
  }
  return acc;
}

std::string PmnfModel::to_string() const {
  std::ostringstream os;
  os << coefficients_[0];
  for (std::size_t k = 0; k < groups_.size(); ++k) {
    os << " + " << coefficients_[k + 1] << "*[";
    for (std::size_t l = 0; l < groups_[k].size(); ++l) {
      if (l) os << '*';
      os << 'P' << groups_[k][l];
    }
    os << "]^" << i_exp_;
    if (j_exp_ > 0) os << "*log2^" << j_exp_;
  }
  return os.str();
}

PmnfFitter::PmnfFitter() : PmnfFitter({0, 1, 2}, {0, 1}) {}

PmnfFitter::PmnfFitter(std::vector<int> i_range, std::vector<int> j_range)
    : i_range_(std::move(i_range)), j_range_(std::move(j_range)) {
  CSTUNER_CHECK(!i_range_.empty() && !j_range_.empty());
}

std::size_t PmnfFitter::candidate_count() const {
  std::size_t count = 0;
  for (int i : i_range_) {
    for (int j : j_range_) {
      if (i == 0 && j == 0) continue;  // constant term: degenerate
      (void)j;
      ++count;
    }
  }
  return count;
}

std::vector<PmnfFitResult> PmnfFitter::fit_all(
    const Matrix& x, std::span<const double> y,
    const std::vector<std::vector<std::size_t>>& groups,
    ThreadPool* pool) const {
  CSTUNER_CHECK(x.rows() == y.size());
  CSTUNER_CHECK(!groups.empty());
  std::vector<std::pair<int, int>> candidates;
  candidates.reserve(i_range_.size() * j_range_.size());
  for (int i_exp : i_range_) {
    for (int j_exp : j_range_) {
      if (i_exp == 0 && j_exp == 0) continue;
      candidates.emplace_back(i_exp, j_exp);
    }
  }
  CSTUNER_TRACE_SPAN("regress", "pmnf.fit_all");
  CSTUNER_OBS_COUNT("regress.pmnf_fits", candidates.size());
  // Each candidate is an independent least-squares solve writing its own
  // result slot, so the grid fits concurrently.
  std::vector<PmnfFitResult> results(candidates.size());
  const auto fit_candidate = [&](std::size_t c) {
    const auto [i_exp, j_exp] = candidates[c];
    // Design matrix: intercept column + one product term per group.
    Matrix design(x.rows(), groups.size() + 1);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      design(r, 0) = 1.0;
      for (std::size_t k = 0; k < groups.size(); ++k) {
        design(r, k + 1) =
            PmnfModel::term_value(x.row(r), groups[k], i_exp, j_exp);
      }
    }
    const LeastSquaresFit fit = solve_least_squares(design, y);
    results[c].model = PmnfModel(groups, i_exp, j_exp, fit.coefficients);
    results[c].rse = fit.rse;
    results[c].r2 = fit.r2;
  };
  if (pool != nullptr) {
    pool->parallel_for(candidates.size(), fit_candidate);
  } else {
    for (std::size_t c = 0; c < candidates.size(); ++c) fit_candidate(c);
  }
  return results;
}

PmnfFitResult PmnfFitter::fit_best(
    const Matrix& x, std::span<const double> y,
    const std::vector<std::vector<std::size_t>>& groups,
    ThreadPool* pool) const {
  auto results = fit_all(x, y, groups, pool);
  CSTUNER_CHECK(!results.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].rse < results[best].rse) best = i;
  }
  return results[best];
}

}  // namespace cstuner::regress
