#include "regress/matrix.hpp"

#include "common/error.hpp"

namespace cstuner::regress {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  CSTUNER_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const auto row_span = row(r);
    for (std::size_t c = 0; c < cols_; ++c) acc += row_span[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

}  // namespace cstuner::regress
