#include "regress/least_squares.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::regress {

LeastSquaresFit solve_least_squares(const Matrix& a,
                                    std::span<const double> y) {
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  CSTUNER_CHECK(y.size() == n);
  CSTUNER_CHECK(n >= 1 && p >= 1);

  // Normal equations with a tiny ridge: (AtA + eps I) x = At y.
  // For the modest design sizes here (p <= ~25, n <= a few hundred) this is
  // numerically adequate and the ridge guards rank deficiency.
  Matrix ata(p, p);
  std::vector<double> aty(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < p; ++i) {
      aty[i] += row[i] * y[r];
      for (std::size_t j = i; j < p; ++j) ata(i, j) += row[i] * row[j];
    }
  }
  double scale = 0.0;
  for (std::size_t i = 0; i < p; ++i) scale = std::max(scale, ata(i, i));
  const double ridge = std::max(scale, 1.0) * 1e-10;
  for (std::size_t i = 0; i < p; ++i) {
    ata(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);
  }

  // Cholesky factorization of the SPD system.
  Matrix l(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = ata(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        CSTUNER_CHECK_MSG(sum > 0.0, "Cholesky failed: matrix not SPD");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward/backward substitution.
  std::vector<double> z(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    double sum = aty[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  LeastSquaresFit fit;
  fit.coefficients.assign(p, 0.0);
  for (std::size_t ii = p; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < p; ++k) {
      sum -= l(k, ii) * fit.coefficients[k];
    }
    fit.coefficients[ii] = sum / l(ii, ii);
  }

  const auto predicted = a.multiply(fit.coefficients);
  double rss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double e = y[r] - predicted[r];
    rss += e * e;
  }
  fit.rss = rss;
  fit.rse = (n > p) ? std::sqrt(rss / static_cast<double>(n - p))
                    : std::numeric_limits<double>::infinity();
  const double mu = stats::mean(y);
  double tss = 0.0;
  for (double v : y) tss += (v - mu) * (v - mu);
  fit.r2 = (tss > 0.0) ? 1.0 - rss / tss : 0.0;
  return fit;
}

}  // namespace cstuner::regress
