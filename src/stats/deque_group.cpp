#include "stats/deque_group.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cstuner::stats {

std::deque<ScoredPair> build_deque(std::vector<ScoredPair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.score != y.score) return x.score < y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return {pairs.begin(), pairs.end()};
}

std::size_t find_group(const Groups& groups, std::size_t item) {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t member : groups[g]) {
      if (member == item) return g;
    }
  }
  return kNoGroup;
}

Groups group_parameters(std::deque<ScoredPair> deque, std::size_t n_items) {
  Groups groups;
  const std::size_t que_size = deque.size();
  for (std::size_t i = 0; i < que_size; ++i) {
    if (i % 2 == 0) {
      // Strong end: the pair is highly correlated — same group.
      const ScoredPair p = deque.front();
      deque.pop_front();
      const std::size_t ga = find_group(groups, p.a);
      const std::size_t gb = find_group(groups, p.b);
      if (ga == kNoGroup && gb == kNoGroup) {
        groups.push_back({p.a, p.b});
      } else if (ga != kNoGroup && gb != kNoGroup) {
        continue;  // both already placed
      } else if (ga != kNoGroup) {
        groups[ga].push_back(p.b);
      } else {
        groups[gb].push_back(p.a);
      }
    } else {
      // Weak end: the pair is weakly correlated — keep the parameters apart
      // by giving each unseen one its own group.
      const ScoredPair p = deque.back();
      deque.pop_back();
      if (find_group(groups, p.a) == kNoGroup) groups.push_back({p.a});
      if (find_group(groups, p.b) == kNoGroup) groups.push_back({p.b});
    }
  }
  // Defensive completeness: items that appeared in no pair (possible when a
  // parameter has a single valid value) become singletons.
  for (std::size_t item = 0; item < n_items; ++item) {
    if (find_group(groups, item) == kNoGroup) groups.push_back({item});
  }
  return groups;
}

Groups combine_metrics(std::deque<ScoredPair> deque, std::size_t n_items,
                       std::size_t max_collections) {
  CSTUNER_CHECK(max_collections >= 1);
  Groups collections;
  const std::size_t que_size = deque.size();
  for (std::size_t i = 0; i < que_size; ++i) {
    // Ascending sort ⇒ the back holds the most strongly correlated pair.
    const ScoredPair p = deque.back();
    deque.pop_back();
    const std::size_t ga = find_group(collections, p.a);
    const std::size_t gb = find_group(collections, p.b);
    if (ga == kNoGroup && gb == kNoGroup) {
      if (collections.size() < max_collections) {
        collections.push_back({p.a, p.b});
      }
      continue;
    }
    if (ga != kNoGroup && gb != kNoGroup) continue;
    if (ga != kNoGroup) {
      collections[ga].push_back(p.b);
    } else {
      collections[gb].push_back(p.a);
    }
  }
  // Metrics never absorbed (cap hit while both endpoints were unseen and no
  // later pair connected them to a collection) become their own collections.
  for (std::size_t item = 0; item < n_items; ++item) {
    if (find_group(collections, item) == kNoGroup) {
      collections.push_back({item});
    }
  }
  return collections;
}

}  // namespace cstuner::stats
