#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  CSTUNER_CHECK(x.size() == y.size());
  CSTUNER_CHECK(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / (std::sqrt(sxx) * std::sqrt(syy));
}

namespace {

/// Ranks with tie-averaging.
std::vector<double> ranks(std::span<const double> x) {
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(x.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

}  // namespace cstuner::stats
