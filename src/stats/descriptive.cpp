#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cstuner::stats {

double mean(std::span<const double> xs) {
  CSTUNER_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double mu = mean(xs);
  CSTUNER_CHECK_MSG(mu != 0.0, "CV undefined for zero mean");
  return stddev(xs) / mu;
}

double min(std::span<const double> xs) {
  CSTUNER_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  CSTUNER_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  CSTUNER_CHECK(!xs.empty());
  CSTUNER_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  return s;
}

}  // namespace cstuner::stats
