#pragma once
// Descriptive statistics used across the csTuner pipeline: the coefficient of
// variation (Eq. 1) drives both parameter grouping (§IV-C) and the top-n
// approximation stop of the evolutionary search (§IV-E).

#include <span>
#include <vector>

namespace cstuner::stats {

double mean(std::span<const double> xs);

/// Population variance (1/n), matching Eq. 1 of the paper.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Coefficient of variation c_v = sigma / mu (Eq. 1). Requires mean != 0.
double coefficient_of_variation(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Median (average of the two middle elements for even sizes).
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Summary of a sample, computed in one pass over a copy.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace cstuner::stats
