#include "stats/histogram.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CSTUNER_CHECK(hi > lo);
  CSTUNER_CHECK(bins >= 1);
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::int64_t>(std::floor((value - lo_) / width));
  bin = clamp<std::int64_t>(bin, 0,
                            static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::bin_label(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ostringstream os;
  os << '[' << lo_ + width * static_cast<double>(bin) << ','
     << lo_ + width * static_cast<double>(bin + 1)
     << (bin + 1 == counts_.size() ? "]" : ")");
  return os.str();
}

}  // namespace cstuner::stats
