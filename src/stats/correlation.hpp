#pragma once
// Correlation measures. The Pearson correlation coefficient (Eq. 2) drives
// metric combination (§IV-D, Alg. 2) and representative-metric selection.

#include <span>

namespace cstuner::stats {

/// Pearson correlation coefficient of two equal-length samples (Eq. 2).
/// Returns 0 when either sample has zero variance.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (used by tests as a robustness cross-check on
/// the simulator's metric/time relationships).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace cstuner::stats
