#pragma once
// Fixed-bin histogramming for the motivation figures (Figs. 2 and 3), which
// bin speedups/percentages into [0,1] with a configurable stride.

#include <span>
#include <string>
#include <vector>

namespace cstuner::stats {

/// Histogram over [lo, hi) with `bins` equal-width bins. Values below lo
/// clamp into the first bin; values >= hi clamp into the last (the paper's
/// speedup bins are closed at 1.0).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// Fraction of samples in the given bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Human-readable bin label, e.g. "[0.2,0.4)".
  std::string bin_label(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cstuner::stats
