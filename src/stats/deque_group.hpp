#pragma once
// The two deque-based pair-merging routines of the paper:
//   * Algorithm 1 — parameter grouping from pairwise CV scores (§IV-C)
//   * Algorithm 2 — metric combination from pairwise PCC scores (§IV-D)
//
// Both operate on a double-ended queue of item pairs sorted in ascending
// order of their correlation score and build disjoint groups of item ids.
//
// Note on fidelity: the paper's printed pseudocode of Algorithm 1 attaches
// the merge logic to the weak (high-CV) end and singleton creation to the
// strong (low-CV) end, which contradicts its own stated principle ("put
// strongly correlated parameters in a group"). We implement the stated
// principle — merge on the strongly correlated end, keep the weakly
// correlated end apart — while preserving the alternating two-ended deque
// structure. DESIGN.md documents this deviation.

#include <cstddef>
#include <deque>
#include <vector>

namespace cstuner::stats {

/// An unordered item pair with its correlation score.
struct ScoredPair {
  std::size_t a = 0;
  std::size_t b = 0;
  double score = 0.0;  // CV for Alg. 1 (lower = stronger), PCC for Alg. 2
                       // (higher |.| = stronger)
};

using Groups = std::vector<std::vector<std::size_t>>;

/// Sorts pairs ascending by score and returns the deque the algorithms pop
/// from. Ties are broken by (a, b) for determinism.
std::deque<ScoredPair> build_deque(std::vector<ScoredPair> pairs);

/// Algorithm 1: parameter grouping. `pairs` must cover item ids < n_items.
/// Alternates between popping the strongly correlated front (low CV — the
/// two parameters are merged into a common group) and the weakly correlated
/// back (high CV — unseen parameters become singleton groups). Every item
/// in [0, n_items) appears in exactly one output group.
Groups group_parameters(std::deque<ScoredPair> deque, std::size_t n_items);

/// Algorithm 2: metric combination. Pops the strongest pair (highest score —
/// callers pass |PCC|) from the back each time; creates a new collection
/// while fewer than `max_collections` exist, otherwise merges into the
/// collection already containing one of the two metrics. Metrics whose every
/// pair arrives after the cap is reached and that never co-occur with a
/// collected metric are appended as singleton collections at the end so no
/// metric is lost.
Groups combine_metrics(std::deque<ScoredPair> deque, std::size_t n_items,
                       std::size_t max_collections);

/// Index of the group containing `item`, or npos.
std::size_t find_group(const Groups& groups, std::size_t item);

inline constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

}  // namespace cstuner::stats
