#pragma once
// Group value re-indexing (Fig. 7): the sampled search space leaves each
// parameter group with a sparse set of valid value tuples; re-indexing maps
// them to a dense [0, n) integer range so binary genes never point at
// invalid combinations during GA initialization and mutation.

#include <vector>

#include "space/setting.hpp"
#include "stats/deque_group.hpp"

namespace cstuner::core {

/// The dense index for one parameter group.
struct GroupIndex {
  std::vector<space::ParamId> params;                ///< group members
  std::vector<std::vector<std::int64_t>> tuples;     ///< sorted value tuples

  std::size_t cardinality() const { return tuples.size(); }

  /// Writes tuple `index` into the group's parameters of `setting`.
  void apply(std::size_t index, space::Setting& setting) const;

  /// Index of the tuple currently present in `setting`, or npos.
  std::size_t index_of(const space::Setting& setting) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Builds one GroupIndex per parameter group from the distinct value tuples
/// occurring in the sampled settings (ascending lexicographic order, as in
/// Fig. 7).
std::vector<GroupIndex> build_group_indices(
    const stats::Groups& parameter_groups,
    const std::vector<space::Setting>& sampled);

}  // namespace cstuner::core
