#include "core/metric_combine.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/correlation.hpp"

namespace cstuner::core {

std::vector<stats::ScoredPair> compute_metric_pccs(
    const tuner::PerfDataset& dataset) {
  CSTUNER_CHECK(dataset.size() >= 2);
  const std::size_t n = gpusim::kMetricCount;
  std::vector<std::vector<double>> columns(n);
  for (std::size_t m = 0; m < n; ++m) columns[m] = dataset.metric_column(m);
  std::vector<stats::ScoredPair> pairs;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double pcc = stats::pearson(columns[a], columns[b]);
      pairs.push_back({a, b, std::fabs(pcc)});
    }
  }
  return pairs;
}

MetricSelection combine_metrics(const tuner::PerfDataset& dataset,
                                std::size_t num_collections) {
  MetricSelection sel;
  auto deque = stats::build_deque(compute_metric_pccs(dataset));
  sel.collections = stats::combine_metrics(std::move(deque),
                                           gpusim::kMetricCount,
                                           num_collections);
  // Representative per collection: strongest |PCC| against execution time.
  for (const auto& collection : sel.collections) {
    double best_abs = -1.0;
    double best_pcc = 0.0;
    std::size_t best_metric = collection.front();
    for (std::size_t m : collection) {
      const auto column = dataset.metric_column(m);
      const double pcc = stats::pearson(column, dataset.times_ms);
      if (std::fabs(pcc) > best_abs) {
        best_abs = std::fabs(pcc);
        best_pcc = pcc;
        best_metric = m;
      }
    }
    sel.selected.push_back(best_metric);
    sel.time_correlation.push_back(best_pcc);
  }
  return sel;
}

}  // namespace cstuner::core
