#pragma once
// Approximation-based early termination (§IV-E): a parameter group's tuning
// stops once the coefficient of variation of the top-n fitnesses drops below
// a threshold — the population has converged onto the near-optimal plateau
// that Fig. 4 shows always exists, so further generations buy little.

#include <cstddef>
#include <vector>

namespace cstuner::core {

struct ApproxConfig {
  std::size_t top_n = 8;
  double cv_threshold = 0.02;
  std::size_t min_generations = 2;  ///< never stop before this many
};

/// True when CV(top-n of `fitnesses_desc`) < threshold. `fitnesses_desc`
/// must be sorted descending and strictly positive (csTuner uses
/// fitness = 1000 / time_ms). Fewer than two finite entries -> false.
bool approximation_reached(const std::vector<double>& fitnesses_desc,
                           const ApproxConfig& config);

}  // namespace cstuner::core
