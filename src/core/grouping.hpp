#pragma once
// Parameter grouping (§IV-C): quantifies pairwise parameter correlation on
// the performance dataset via the coefficient of variation of best-partner
// values, then groups parameters with the deque algorithm (Alg. 1).

#include <vector>

#include "stats/deque_group.hpp"
#include "tuner/dataset.hpp"

namespace cstuner::core {

/// CV-based correlation score for every unordered parameter pair.
///
/// For the ordered pair (Pi, Pj): for each admissible value v of Pi that
/// occurs in the dataset, find the best-performing dataset entry with
/// Pi == v and record its Pj value (log2-encoded for numeric parameters, as
/// the paper prescribes for fair CV comparison). The CV of those recorded
/// values measures how much the best Pj moves as Pi changes — low CV means
/// the pair is strongly coupled. The unordered score is the mean of the two
/// ordered CVs. Pairs with fewer than two observations score +inf
/// (uninformative -> weakest end of the deque).
std::vector<stats::ScoredPair> compute_pair_cvs(
    const space::SearchSpace& space, const tuner::PerfDataset& dataset);

/// Full grouping pipeline: pair CVs -> ascending deque -> Algorithm 1.
stats::Groups group_parameters(const space::SearchSpace& space,
                               const tuner::PerfDataset& dataset);

}  // namespace cstuner::core
