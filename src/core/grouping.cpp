#include "core/grouping.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::core {

using space::kParamCount;
using space::ParamId;

namespace {

/// Ordered CV of best-partner values for (pi -> pj); +inf when fewer than
/// two of pi's values are observed.
double ordered_cv(const space::SearchSpace& space,
                  const tuner::PerfDataset& dataset, ParamId pi,
                  ParamId pj) {
  // value of pi -> (best time seen, pj value at that entry)
  std::map<std::int64_t, std::pair<double, std::int64_t>> best_by_value;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& s = dataset.settings[i];
    const double t = dataset.times_ms[i];
    auto [it, inserted] =
        best_by_value.try_emplace(s.get(pi), t, s.get(pj));
    if (!inserted && t < it->second.first) {
      it->second = {t, s.get(pj)};
    }
  }
  if (best_by_value.size() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> partners;
  partners.reserve(best_by_value.size());
  for (const auto& [value, best] : best_by_value) {
    (void)value;
    partners.push_back(space::SearchSpace::cv_encoded(pj, best.second));
  }
  (void)space;
  return stats::coefficient_of_variation(partners);
}

}  // namespace

std::vector<stats::ScoredPair> compute_pair_cvs(
    const space::SearchSpace& space, const tuner::PerfDataset& dataset) {
  CSTUNER_CHECK(dataset.size() >= 2);
  std::vector<stats::ScoredPair> pairs;
  for (std::size_t a = 0; a < kParamCount; ++a) {
    for (std::size_t b = a + 1; b < kParamCount; ++b) {
      const double cv_ab = ordered_cv(space, dataset, static_cast<ParamId>(a),
                                      static_cast<ParamId>(b));
      const double cv_ba = ordered_cv(space, dataset, static_cast<ParamId>(b),
                                      static_cast<ParamId>(a));
      double score;
      if (std::isinf(cv_ab) || std::isinf(cv_ba)) {
        score = std::numeric_limits<double>::max();  // sortable "weakest"
      } else {
        score = 0.5 * (cv_ab + cv_ba);
      }
      pairs.push_back({a, b, score});
    }
  }
  return pairs;
}

stats::Groups group_parameters(const space::SearchSpace& space,
                               const tuner::PerfDataset& dataset) {
  auto deque = stats::build_deque(compute_pair_cvs(space, dataset));
  return stats::group_parameters(std::move(deque), kParamCount);
}

}  // namespace cstuner::core
