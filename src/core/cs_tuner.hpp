#pragma once
// csTuner (§IV): the full auto-tuning pipeline — performance dataset,
// CV-based parameter grouping, PCC metric combination, PMNF-guided space
// sampling, group re-indexing, and iterative per-group evolutionary search
// with CV(top-n) approximation. Degenerates to exhaustive search for groups
// smaller than the GA population, as the paper specifies.

#include <optional>

#include "analysis/pruner.hpp"
#include "core/approx.hpp"
#include "core/reindex.hpp"
#include "core/sampling.hpp"
#include "ga/island_ga.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::core {

/// Ablation switches: each replaces one csTuner component with the naive
/// alternative the paper argues against (used by bench_ablation).
enum class GroupingMode {
  kStatistical,  ///< CV + Algorithm 1 (the paper's method)
  kSingleton,    ///< no grouping: every parameter alone
  kByDimension,  ///< Garvey-style expert grouping by grid dimension
};

enum class SamplingMode {
  kPmnf,    ///< PMNF-model-guided filtering (the paper's method)
  kRandom,  ///< uniform random subset of the universe
};

struct CsTunerOptions {
  std::size_t dataset_size = 128;    ///< §V-A2
  std::size_t universe_size = 20000; ///< candidate universe (DESIGN.md §5)
  SamplingConfig sampling;           ///< ratio 10%, 4 metric collections
  ga::GaOptions ga;                  ///< 2 x 16, crossover .8, mutation .005
  ApproxConfig approx;
  GroupingMode grouping_mode = GroupingMode::kStatistical;
  SamplingMode sampling_mode = SamplingMode::kPmnf;
  /// CV(top-n)-based early stop per group (§IV-E); false = every group runs
  /// the full max_generations, the manual-cap regime the paper replaces.
  bool use_approximation = true;
  /// Emit CUDA source for every sampled setting during pre-processing.
  /// The paper always does this; benches that do not consume the source
  /// text leave it off (the virtual clock already charges per-variant
  /// compile cost at evaluation time). Fig. 12 turns it on.
  bool generate_kernels = false;
  /// Build the candidate universe by constraint-propagating enumeration
  /// (space::LazyUniverse): the exact valid count is computed, spaces no
  /// larger than universe_size are enumerated in full, larger ones
  /// contribute a deterministic count-proportioned spread sample. No RNG
  /// involved — the universe is a pure function of the space, bit-identical
  /// across worker counts. The default since sample_universe itself moved
  /// onto the enumerator; false (`tune --no-enumerate`) routes through
  /// sample_universe, whose spread phase is salted from the seed.
  bool enumerate_universe = true;
  std::uint64_t seed = 7;
};

/// Wall-clock breakdown of the pre-processing stages (Fig. 12) plus the
/// artifacts the pipeline produced.
struct PreprocessReport {
  double dataset_s = 0.0;   ///< offline metric collection (not in Fig. 12)
  double grouping_s = 0.0;
  double sampling_s = 0.0;  ///< metric combination + PMNF + filtering
  double codegen_s = 0.0;   ///< writing sampled settings into CUDA kernels
  stats::Groups groups;
  std::vector<MetricModel> models;
  std::size_t universe_count = 0;
  std::size_t sampled_count = 0;
  std::size_t generated_kernel_bytes = 0;
  /// Constraint-invalid settings dropped from the candidate universe before
  /// tuning (only preset universes can contain them).
  std::size_t universe_pruned = 0;
  /// Exact valid-setting count of the whole space (enumerate_universe only;
  /// 0 when rejection sampling was used).
  std::uint64_t universe_exact_count = 0;
  /// Static-pruner counters over the whole run (universe + in-loop grafts).
  analysis::StaticPruner::Stats prune;
};

class CsTuner : public tuner::Tuner {
 public:
  explicit CsTuner(CsTunerOptions options = {});

  std::string name() const override { return "csTuner"; }
  void tune(tuner::Evaluator& evaluator,
            const tuner::StopCriteria& stop) override;

  /// Artifacts and timings of the most recent tune() call.
  const PreprocessReport& report() const { return report_; }

  /// Benches that compare methods on equal footing inject a shared dataset
  /// and/or candidate universe instead of re-sampling.
  void set_dataset(tuner::PerfDataset dataset);
  void set_universe(std::vector<space::Setting> universe);

 private:
  CsTunerOptions options_;
  PreprocessReport report_;
  std::optional<tuner::PerfDataset> preset_dataset_;
  std::optional<std::vector<space::Setting>> preset_universe_;
};

}  // namespace cstuner::core
