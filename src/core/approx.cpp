#include "core/approx.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace cstuner::core {

bool approximation_reached(const std::vector<double>& fitnesses_desc,
                           const ApproxConfig& config) {
  std::vector<double> top;
  for (double f : fitnesses_desc) {
    if (!std::isfinite(f) || f <= 0.0) continue;
    top.push_back(f);
    if (top.size() == config.top_n) break;
  }
  if (top.size() < 2) return false;
  return stats::coefficient_of_variation(top) < config.cv_threshold;
}

}  // namespace cstuner::core
