#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cstuner::core {

std::vector<MetricModel> fit_metric_models(
    const tuner::PerfDataset& dataset, const MetricSelection& selection,
    const stats::Groups& parameter_groups,
    const regress::PmnfFitter& fitter, ThreadPool* pool) {
  CSTUNER_CHECK(dataset.size() >= 4);
  const auto x = dataset.feature_matrix();
  std::vector<MetricModel> models;
  for (std::size_t i = 0; i < selection.selected.size(); ++i) {
    MetricModel model;
    model.metric = selection.selected[i];
    model.time_correlation = selection.time_correlation[i];
    const auto y = dataset.metric_column(model.metric);
    model.metric_mean = stats::mean(y);
    model.metric_std = std::max(stats::stddev(y), 1e-12);
    model.fit = fitter.fit_best(x, y, parameter_groups, pool);
    models.push_back(std::move(model));
  }
  // Execution time itself is part of the performance dataset; model it too
  // (weight 1, the strongest signal) so the filter cannot be misled by a
  // metric that correlates with time only locally.
  {
    MetricModel model;
    model.metric = kTimeModel;
    model.time_correlation = 1.0;
    model.metric_mean = stats::mean(dataset.times_ms);
    model.metric_std = std::max(stats::stddev(dataset.times_ms), 1e-12);
    model.fit = fitter.fit_best(x, dataset.times_ms, parameter_groups, pool);
    models.push_back(std::move(model));
  }
  return models;
}

double predicted_badness(const std::vector<MetricModel>& models,
                         const tuner::PerfDataset& dataset,
                         const space::Setting& setting) {
  (void)dataset;  // standardization is baked into the models
  const auto features = space::SearchSpace::to_feature_row(setting);
  double badness = 0.0;
  for (const auto& model : models) {
    const double predicted = model.fit.model.predict(features);
    const double z = (predicted - model.metric_mean) / model.metric_std;
    // A metric positively correlated with time predicts slowness when high.
    badness += (model.time_correlation >= 0.0 ? z : -z) *
               std::fabs(model.time_correlation);
  }
  return badness;
}

SampledSpace sample_search_space(const space::SearchSpace& space,
                                 const tuner::PerfDataset& dataset,
                                 const stats::Groups& parameter_groups,
                                 const std::vector<space::Setting>& universe,
                                 const SamplingConfig& config,
                                 ThreadPool* pool) {
  CSTUNER_CHECK(config.ratio > 0.0 && config.ratio <= 1.0);
  CSTUNER_CHECK(!universe.empty());
  (void)space;

  SampledSpace out;
  out.selection = combine_metrics(dataset, config.num_collections);
  out.models =
      fit_metric_models(dataset, out.selection, parameter_groups, {}, pool);

  // Scoring the (typically 20k-candidate) universe is the sampling hot
  // loop; each score is a pure function of its own candidate.
  std::vector<double> badness(universe.size());
  const auto score = [&](std::size_t i) {
    badness[i] = predicted_badness(out.models, dataset, universe[i]);
  };
  if (pool != nullptr) {
    pool->parallel_for(universe.size(), score);
  } else {
    for (std::size_t i = 0; i < universe.size(); ++i) score(i);
  }
  std::vector<std::size_t> order(universe.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return badness[a] < badness[b];
  });
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.ratio *
                          static_cast<double>(universe.size()))));
  out.settings.reserve(keep);
  for (std::size_t i = 0; i < keep && i < order.size(); ++i) {
    out.settings.push_back(universe[order[i]]);
  }
  return out;
}

}  // namespace cstuner::core
