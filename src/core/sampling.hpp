#pragma once
// PMNF-guided search-space sampling (§IV-D): fit one PMNF model per selected
// metric on the dataset, score every candidate-universe setting by how
// favourably its predicted metrics compare (in the direction each metric
// correlates with execution time), and keep the best `ratio` fraction. This
// is the paper's threshold filter with the sampling ratio of §V-E as the
// knob.

#include <vector>

#include "core/metric_combine.hpp"
#include "regress/pmnf.hpp"
#include "stats/deque_group.hpp"
#include "tuner/dataset.hpp"

namespace cstuner::core {

struct SamplingConfig {
  double ratio = 0.10;              ///< fraction of the universe kept
  std::size_t num_collections = 4;  ///< Alg. 2 numCollection
};

/// Sentinel `metric` id for the execution-time PMNF model that accompanies
/// the per-metric models in the filter.
inline constexpr std::size_t kTimeModel = static_cast<std::size_t>(-1);

struct MetricModel {
  std::size_t metric = 0;
  double time_correlation = 0.0;  ///< sign gives the "good" direction
  regress::PmnfFitResult fit;
  double metric_mean = 0.0;       ///< dataset standardization
  double metric_std = 1.0;
};

struct SampledSpace {
  std::vector<space::Setting> settings;  ///< the sampled (kept) settings
  std::vector<MetricModel> models;
  MetricSelection selection;
};

/// Fits PMNF models for the selected metrics. `pool` parallelizes each
/// metric's (i, j) candidate grid; nullptr fits serially.
std::vector<MetricModel> fit_metric_models(
    const tuner::PerfDataset& dataset, const MetricSelection& selection,
    const stats::Groups& parameter_groups,
    const regress::PmnfFitter& fitter = {}, ThreadPool* pool = nullptr);

/// Scores one setting: sum over models of the predicted metric value,
/// standardized on the dataset and signed so that lower = predicted faster.
double predicted_badness(const std::vector<MetricModel>& models,
                         const tuner::PerfDataset& dataset,
                         const space::Setting& setting);

/// Full sampling pipeline over a candidate universe. Model fitting and the
/// per-candidate badness scores fan across `pool` (scores land in fixed
/// slots, so the sampled set is identical for any worker count).
SampledSpace sample_search_space(const space::SearchSpace& space,
                                 const tuner::PerfDataset& dataset,
                                 const stats::Groups& parameter_groups,
                                 const std::vector<space::Setting>& universe,
                                 const SamplingConfig& config,
                                 ThreadPool* pool = nullptr);

}  // namespace cstuner::core
