#pragma once
// Metric combination (§IV-D, Alg. 2): pairwise |PCC| of the collected GPU
// metrics drives the deque combination into collections; the representative
// of each collection is the member most strongly correlated with execution
// time, and only representatives get PMNF models.

#include <vector>

#include "stats/deque_group.hpp"
#include "tuner/dataset.hpp"

namespace cstuner::core {

struct MetricSelection {
  stats::Groups collections;            ///< metric ids per collection
  std::vector<std::size_t> selected;    ///< one representative per collection
  std::vector<double> time_correlation; ///< PCC vs time for each selected
};

/// |PCC| for every unordered metric pair (constant columns score 0).
std::vector<stats::ScoredPair> compute_metric_pccs(
    const tuner::PerfDataset& dataset);

/// Full pipeline; `num_collections` is Alg. 2's numCollection input.
MetricSelection combine_metrics(const tuner::PerfDataset& dataset,
                                std::size_t num_collections);

}  // namespace cstuner::core
