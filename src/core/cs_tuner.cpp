#include "core/cs_tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "analysis/propagate.hpp"
#include "codegen/cuda_codegen.hpp"
#include "core/grouping.hpp"
#include "obs/obs.hpp"
#include "space/lazy_universe.hpp"

namespace cstuner::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fitness used throughout: strictly positive, higher = faster, so CV-based
/// approximation (Eq. 1) is well defined.
double fitness_of(double time_ms) {
  if (!std::isfinite(time_ms) || time_ms <= 0.0) return 1e-9;
  return 1000.0 / time_ms;
}

}  // namespace

CsTuner::CsTuner(CsTunerOptions options) : options_(std::move(options)) {}

void CsTuner::set_dataset(tuner::PerfDataset dataset) {
  preset_dataset_ = std::move(dataset);
}

void CsTuner::set_universe(std::vector<space::Setting> universe) {
  preset_universe_ = std::move(universe);
}

void CsTuner::tune(tuner::Evaluator& evaluator,
                   const tuner::StopCriteria& stop) {
  CSTUNER_TRACE_PHASE("cstuner.tune");
  report_ = PreprocessReport{};
  const auto& space = evaluator.space();
  analysis::StaticPruner pruner(space);
  {
    // Symbolic domain pre-pass: proven-dead values and empty regions reject
    // grafted candidates before the per-setting resource model runs. Sound
    // (propagation only removes proven-dead values), so tuning results are
    // unchanged; counts are skipped because only verdicts are needed here.
    analysis::PropagateOptions popts;
    popts.compute_counts = false;
    popts.pool = evaluator.thread_pool();
    pruner.set_domains(std::make_shared<analysis::PropagationResult>(
        analysis::propagate(space, popts)));
  }
  Rng rng(options_.seed);

  // --- Offline: candidate universe + performance dataset (§IV-A). ---------
  auto t0 = Clock::now();
  std::vector<space::Setting> universe;
  tuner::PerfDataset dataset;
  {
    CSTUNER_TRACE_PHASE("cstuner.offline");
    if (preset_universe_.has_value()) {
      universe = *preset_universe_;
    } else if (options_.enumerate_universe) {
      // Constraint-propagating enumeration: exact count, then either the
      // full valid space or a deterministic spread sample of it. The
      // sample phase is salted from the tuner RNG (same discipline as
      // sample_universe): an unsalted sample lands on every block's start,
      // and block starts repeat the same inner lexicographic values, which
      // collapses per-parameter diversity enough to starve the per-group
      // GA of distinct tuples.
      space::LazyUniverse lazy(space, {}, evaluator.thread_pool());
      report_.universe_exact_count = lazy.valid_count();
      if (lazy.valid_count() <= options_.universe_size) {
        universe = lazy.take_all();
      } else {
        universe = lazy.spread_sample(options_.universe_size, rng.next() | 1);
      }
    } else {
      universe = space.sample_universe(rng, options_.universe_size);
    }
    // Static pruning: preset universes may carry constraint-invalid
    // settings; drop them before any tuning stage sees them.
    // sample_universe() output is valid by construction, so this only seeds
    // the pruner's memo there.
    report_.universe_pruned = pruner.prune(universe);
    if (preset_dataset_.has_value()) {
      dataset = *preset_dataset_;
    } else if (evaluator.checkpoint() != nullptr &&
               evaluator.checkpoint()->loaded_dataset().has_value()) {
      // Resume: the snapshot carries the dataset bit-exactly; skip the
      // offline collection entirely.
      dataset = *evaluator.checkpoint()->loaded_dataset();
    } else {
      // Collection draws from its own stream so that skipping it on resume
      // leaves `rng` — and everything downstream of it — unchanged.
      Rng dataset_rng(hash_combine(options_.seed, 0xDA7A5E7ULL));
      dataset = tuner::collect_dataset(space, evaluator.simulator(),
                                       options_.dataset_size, dataset_rng,
                                       evaluator.thread_pool(),
                                       evaluator.fault_injector());
    }
    if (evaluator.checkpoint() != nullptr) {
      evaluator.checkpoint()->set_dataset_json(
          tuner::serialize_dataset(dataset));
    }
    report_.dataset_s = seconds_since(t0);
    report_.universe_count = universe.size();
  }
  CSTUNER_OBS_GAUGE("cstuner.universe_size", universe.size());
  // The universe bounds the unique settings this tune can evaluate; sizing
  // the result-cache shards now keeps the flat tables from rehashing
  // mid-tune (docs/performance.md).
  evaluator.reserve_cache(universe.size());

  // --- Pre-processing 1: parameter grouping (§IV-C). ----------------------
  t0 = Clock::now();
  {
    CSTUNER_TRACE_PHASE("cstuner.grouping");
    switch (options_.grouping_mode) {
      case GroupingMode::kStatistical:
        report_.groups = group_parameters(space, dataset);
        break;
      case GroupingMode::kSingleton:
        for (std::size_t p = 0; p < space::kParamCount; ++p) {
          report_.groups.push_back({p});
        }
        break;
      case GroupingMode::kByDimension:
        report_.groups = {
            {space::kTBx, space::kUFx, space::kCMx, space::kBMx},
            {space::kTBy, space::kUFy, space::kCMy, space::kBMy},
            {space::kTBz, space::kUFz, space::kCMz, space::kBMz},
            {space::kUseStreaming, space::kSD, space::kSB,
             space::kUsePrefetching},
            {space::kUseShared, space::kUseConstant, space::kUseRetiming},
        };
        break;
    }
    report_.grouping_s = seconds_since(t0);
  }
  CSTUNER_OBS_GAUGE("cstuner.groups", report_.groups.size());

  // --- Pre-processing 2: metric combination + PMNF sampling (§IV-D). ------
  t0 = Clock::now();
  SampledSpace sampled;
  {
    CSTUNER_TRACE_PHASE("cstuner.sampling");
    if (options_.sampling_mode == SamplingMode::kPmnf) {
      sampled = sample_search_space(space, dataset, report_.groups, universe,
                                    options_.sampling,
                                    evaluator.thread_pool());
    } else {
      // Ablation: plain random subset, no model guidance.
      std::vector<space::Setting> shuffled = universe;
      rng.shuffle(shuffled);
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.sampling.ratio *
                                      static_cast<double>(shuffled.size())));
      shuffled.resize(std::min(shuffled.size(), keep));
      sampled.settings = std::move(shuffled);
    }
    report_.sampling_s = seconds_since(t0);
    report_.sampled_count = sampled.settings.size();
    report_.models = sampled.models;
  }
  CSTUNER_OBS_GAUGE("cstuner.sampled_count", sampled.settings.size());

  // --- Pre-processing 3: code generation for the sampled settings. --------
  if (options_.generate_kernels) {
    CSTUNER_TRACE_PHASE("cstuner.codegen");
    t0 = Clock::now();
    for (const auto& setting : sampled.settings) {
      const auto kernel = codegen::generate_kernel(space.spec(), setting);
      report_.generated_kernel_bytes += kernel.source.size();
    }
    report_.codegen_s = seconds_since(t0);
  }

  // --- Re-indexing of group value tuples (Fig. 7). -------------------------
  auto indices = build_group_indices(report_.groups, sampled.settings);

  // Base setting: the optimum of the performance dataset (§IV-C). Measure
  // it first — it is the starting point of the convergence curve (and the
  // reason csTuner "has a better starting point" in Fig. 8).
  space::Setting base = dataset.settings[dataset.best_index()];
  evaluator.evaluate(base);

  // Tune large groups first: they carry the most performance variance and
  // fix the context for the smaller ones.
  std::vector<std::size_t> group_order(indices.size());
  for (std::size_t i = 0; i < group_order.size(); ++i) group_order[i] = i;
  std::sort(group_order.begin(), group_order.end(),
            [&](std::size_t a, std::size_t b) {
              return indices[a].cardinality() > indices[b].cardinality();
            });

  const std::size_t pop_total =
      static_cast<std::size_t>(options_.ga.sub_populations) *
      static_cast<std::size_t>(options_.ga.population_size);

  // Iterative per-group tuning (§IV-E). One pass tunes every group once;
  // remaining budget funds refinement passes around the improved base until
  // a pass stops paying off.
  for (std::size_t pass = 0; !stop.reached(evaluator); ++pass) {
    CSTUNER_TRACE_PHASE("cstuner.group_pass");
    CSTUNER_OBS_COUNT("cstuner.passes", 1);
    const double best_before_pass = evaluator.best_time_ms();
    for (std::size_t gi : group_order) {
    if (stop.reached(evaluator)) break;
    const GroupIndex& group = indices[gi];
    if (group.cardinality() == 0) continue;
    // Quiescent at entry and exit (island.run joins its ranks; the
    // exhaustive branch is synchronous), so virtual attribution per group
    // is deterministic.
    CSTUNER_TRACE_PHASE("cstuner.group");

    std::size_t best_tuple = GroupIndex::npos;
    double best_time = std::numeric_limits<double>::infinity();
    auto consider = [&](std::size_t tuple, double time_ms) {
      if (time_ms < best_time) {
        best_time = time_ms;
        best_tuple = tuple;
      }
    };

    if (group.cardinality() <= pop_total) {
      // Degenerate case (§V-A2): exhaustive search over the group,
      // evaluated in iteration-sized batches across the pool.
      const auto chunk_size =
          static_cast<std::size_t>(options_.ga.population_size);
      std::size_t t = 0;
      while (t < group.cardinality() && !stop.reached(evaluator)) {
        const std::size_t chunk_end =
            std::min(t + chunk_size, group.cardinality());
        std::vector<space::Setting> candidates;
        candidates.reserve(chunk_end - t);
        const std::size_t first_tuple = t;
        for (; t < chunk_end; ++t) {
          space::Setting candidate = base;
          group.apply(t, candidate);
          // Grafting a tuple onto the base can violate cross-group rules;
          // repair instead of discarding so the whole group stays
          // searchable.
          candidates.push_back(space.checker().repaired(candidate));
        }
        // Static pruning: anything still invalid after repair never reaches
        // the evaluator (it would score infinity there anyway). Quarantined
        // repeat offenders are skipped the same way — a penalty outcome is
        // already known, so they should not burn batch slots.
        const auto keep = pruner.filter(candidates);
        std::vector<space::Setting> kept;
        std::vector<std::size_t> kept_pos;
        kept.reserve(candidates.size());
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (keep[i] && !evaluator.is_quarantined(candidates[i].hash())) {
            kept.push_back(candidates[i]);
            kept_pos.push_back(i);
          }
        }
        const auto kept_results = evaluator.evaluate_batch(kept);
        for (std::size_t j = 0; j < kept_results.size(); ++j) {
          consider(first_tuple + kept_pos[j], kept_results[j].time_or_inf());
        }
        evaluator.mark_iteration();
      }
    } else {
      // Evolutionary search with approximation over the re-indexed tuples.
      // Each island hands its generation over as one batch; both islands'
      // batches are in flight at once, so `consider` needs its own lock.
      ga::GaOptions ga_options = options_.ga;
      ga_options.seed =
          hash_combine(hash_combine(options_.seed, gi + 1), pass);
      // Survivability wiring: the fault injector's rank-kill plan drives
      // island deaths (one-shot per entry, so the plan fires in whichever
      // group/pass first reaches the scheduled generation), and recovery
      // events are journaled so --resume replays a degraded run.
      if (const tuner::FaultInjector* injector = evaluator.fault_injector();
          injector != nullptr && injector->has_kill_plan()) {
        ga_options.kill_predicate = [injector](int rank,
                                               std::uint64_t generation) {
          return injector->should_kill(rank, generation);
        };
      }
      if (tuner::Checkpoint* checkpoint = evaluator.checkpoint()) {
        ga_options.event_sink = [checkpoint](const tuner::IslandEvent& e) {
          checkpoint->append_island_event(e);
        };
      }
      ga::IslandGa island({static_cast<std::uint32_t>(group.cardinality())},
                          ga_options);
      std::mutex consider_mutex;
      auto evaluate = [&](const std::vector<ga::Genome>& genomes) {
        std::vector<space::Setting> candidates;
        candidates.reserve(genomes.size());
        for (const auto& genome : genomes) {
          space::Setting candidate = base;
          group.apply(genome[0], candidate);
          candidates.push_back(space.checker().repaired(candidate));
        }
        // Static pruning: statically-invalid genomes take the penalty
        // fitness directly instead of occupying evaluator batch slots; so
        // do quarantined repeat offenders.
        const auto keep = pruner.filter(candidates);
        std::vector<space::Setting> kept;
        std::vector<std::size_t> kept_pos;
        kept.reserve(candidates.size());
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          if (keep[i] && !evaluator.is_quarantined(candidates[i].hash())) {
            kept.push_back(candidates[i]);
            kept_pos.push_back(i);
          }
        }
        const auto kept_results = evaluator.evaluate_batch(kept);
        std::vector<double> times(candidates.size(),
                                  std::numeric_limits<double>::infinity());
        for (std::size_t j = 0; j < kept_results.size(); ++j) {
          times[kept_pos[j]] = kept_results[j].time_or_inf();
        }
        std::vector<double> fitnesses(times.size());
        std::lock_guard<std::mutex> lock(consider_mutex);
        for (std::size_t i = 0; i < times.size(); ++i) {
          consider(genomes[i][0], times[i]);
          fitnesses[i] = fitness_of(times[i]);
        }
        return fitnesses;
      };
      auto should_stop = [&](const ga::GaState& state) {
        evaluator.mark_iteration();
        if (stop.reached(evaluator)) return true;
        if (!options_.use_approximation) return false;  // cap-only regime
        if (state.generation < options_.approx.min_generations) return false;
        return approximation_reached(state.fitnesses, options_.approx);
      };
      island.run(evaluate, should_stop);
    }

    if (best_tuple != GroupIndex::npos &&
        std::isfinite(best_time)) {
      group.apply(best_tuple, base);
      base = space.checker().repaired(base);
    }
    }
    // A pass that improved nothing has converged; further passes would
    // only replay cached evaluations.
    if (evaluator.best_time_ms() >= best_before_pass * 0.999) break;
  }

  // Polish: any remaining budget walks the sampled settings in PMNF-ranked
  // order (they are sorted best-predicted first), so iso-time comparisons
  // never leave csTuner idle while baselines keep searching. Batched in
  // iteration-sized chunks so the walk fans across the pool.
  const auto polish_chunk =
      static_cast<std::size_t>(options_.ga.population_size);
  std::size_t p = 0;
  CSTUNER_TRACE_PHASE("cstuner.polish");
  while (p < sampled.settings.size() && !stop.reached(evaluator)) {
    const std::size_t chunk_end =
        std::min(p + polish_chunk, sampled.settings.size());
    const std::vector<space::Setting> chunk(
        sampled.settings.begin() + static_cast<std::ptrdiff_t>(p),
        sampled.settings.begin() + static_cast<std::ptrdiff_t>(chunk_end));
    evaluator.evaluate_batch(chunk);
    evaluator.mark_iteration();
    p = chunk_end;
  }

  report_.prune = pruner.stats();
}

}  // namespace cstuner::core
