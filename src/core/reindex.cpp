#include "core/reindex.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace cstuner::core {

void GroupIndex::apply(std::size_t index, space::Setting& setting) const {
  CSTUNER_CHECK(index < tuples.size());
  const auto& tuple = tuples[index];
  for (std::size_t i = 0; i < params.size(); ++i) {
    setting.set(params[i], tuple[i]);
  }
}

std::size_t GroupIndex::index_of(const space::Setting& setting) const {
  std::vector<std::int64_t> current;
  current.reserve(params.size());
  for (auto p : params) current.push_back(setting.get(p));
  const auto it = std::lower_bound(tuples.begin(), tuples.end(), current);
  if (it != tuples.end() && *it == current) {
    return static_cast<std::size_t>(it - tuples.begin());
  }
  return npos;
}

std::vector<GroupIndex> build_group_indices(
    const stats::Groups& parameter_groups,
    const std::vector<space::Setting>& sampled) {
  CSTUNER_CHECK(!sampled.empty());
  std::vector<GroupIndex> indices;
  indices.reserve(parameter_groups.size());
  for (const auto& group : parameter_groups) {
    GroupIndex gi;
    for (std::size_t p : group) {
      gi.params.push_back(static_cast<space::ParamId>(p));
    }
    std::set<std::vector<std::int64_t>> distinct;
    for (const auto& setting : sampled) {
      std::vector<std::int64_t> tuple;
      tuple.reserve(gi.params.size());
      for (auto p : gi.params) tuple.push_back(setting.get(p));
      distinct.insert(std::move(tuple));
    }
    gi.tuples.assign(distinct.begin(), distinct.end());
    indices.push_back(std::move(gi));
  }
  return indices;
}

}  // namespace cstuner::core
