#pragma once
// Memory-backed Vfs with deterministic fault injection and simulated power
// cuts (docs/durability.md) — the storage-boundary sibling of the PR 3
// evaluation fault oracle. Durability code runs against a FaultVfs exactly
// as it runs against the real filesystem; the test harness then dials in
// disk-full errors, short writes and power cuts and asserts the recovery
// invariants.
//
// Crash model. Each file is an inode with two byte strings:
//
//   live   what the running process reads back (page cache + disk),
//   disk   what survives a power cut (platter only).
//
// write() touches live; fsync() copies live to disk. The *namespace*
// (which name maps to which inode) is likewise two-tiered: creations,
// renames and unlinks take effect in the live namespace immediately but
// reach the durable namespace only at fsync_dir(parent). A power cut
// replaces live with disk: files whose directory entry was never synced
// vanish; files whose entry is durable but whose data was never fsync'd
// survive with a torn prefix of their live content (the hostile-but-real
// outcome on actual hardware). Directories themselves are durable on
// creation — a deliberate simplification; the sweep targets file data and
// rename atomicity, not mkdir.
//
// Determinism: every fault decision derives from (seed, op index), so a
// given schedule replays identically and a crash-consistency sweep can
// enumerate cut points exhaustively.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "io/vfs.hpp"

namespace cstuner::io {

/// Deterministic fault schedule. Rates are per-operation probabilities
/// drawn from (seed, op index); power_cut_after_ops arms a cut that fires
/// on the first operation after that many have completed (-1 = never).
struct FaultSchedule {
  std::uint64_t seed = 1;
  double write_error_rate = 0.0;   ///< ENOSPC on write()
  double read_error_rate = 0.0;    ///< EIO on read_file()
  double fsync_error_rate = 0.0;   ///< EIO on fsync()/fsync_dir()
  double short_write_rate = 0.0;   ///< write() consumes a strict prefix
  std::int64_t power_cut_after_ops = -1;
};

/// Counters for chaos-run observability; also exported as io.* obs metrics.
struct FaultVfsStats {
  std::uint64_t ops = 0;
  std::uint64_t faults_injected = 0;  ///< injected ENOSPC/EIO errors
  std::uint64_t short_writes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t power_cuts = 0;
  std::uint64_t renames_dropped = 0;  ///< namespace ops undone by cuts
  std::uint64_t files_dropped = 0;    ///< never-durable files lost to cuts
  std::uint64_t torn_files = 0;       ///< survived a cut with a torn prefix
};

class FaultVfs final : public Vfs {
 public:
  explicit FaultVfs(FaultSchedule schedule = {});

  // --- Vfs interface ------------------------------------------------------
  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void mkdirs(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void unlink(const std::string& path) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void fsync_dir(const std::string& path) override;
  void copy_file(const std::string& from, const std::string& to) override;
  Handle open(const std::string& path, OpenMode mode) override;
  std::size_t write(Handle handle, const char* data, std::size_t size) override;
  void fsync(Handle handle) override;
  void close(Handle handle) override;

  // --- Chaos controls -----------------------------------------------------
  /// Arms (or disarms, with -1) the power cut: the first operation after
  /// `after_ops` total operations throws PowerCutError, as does every
  /// operation until restart().
  void arm_power_cut(std::int64_t after_ops);
  /// True once the cut has fired (every op now throws PowerCutError).
  bool cut() const;
  /// "Reboots the machine": the live state becomes exactly what a power
  /// cut preserves — durable entries only, torn prefixes for unsynced
  /// data — open handles are invalidated, and operations work again.
  void restart();

  std::uint64_t op_count() const;
  FaultVfsStats stats() const;

 private:
  struct Inode {
    std::string live;
    std::string disk;
    bool disk_valid = false;  ///< disk holds a complete fsync'd image
  };
  using InodePtr = std::shared_ptr<Inode>;

  /// Per-operation entry: counts the op and fires the armed power cut.
  void op_gate(std::unique_lock<std::mutex>& lock);
  /// Deterministic uniform draw for fault category `cat` at the current op.
  double draw(std::uint64_t cat) const;
  std::uint64_t draw_u64(std::uint64_t cat) const;
  void maybe_inject(double rate, std::uint64_t cat, VfsErrc errc,
                    const std::string& what);
  InodePtr& live_inode(const std::string& path);

  FaultSchedule schedule_;
  mutable std::mutex mutex_;
  std::map<std::string, InodePtr> live_;  ///< live namespace: path -> inode
  std::map<std::string, InodePtr> disk_;  ///< durable namespace
  std::set<std::string> dirs_;
  std::map<Handle, InodePtr> handles_;
  Handle next_handle_ = 3;
  bool cut_ = false;
  FaultVfsStats stats_;
};

}  // namespace cstuner::io
