#pragma once
// Injectable virtual filesystem boundary (docs/durability.md). Every
// durability path in the framework — checkpoint journals and snapshots,
// session manifests and results, the warm-start store — performs its I/O
// through an io::Vfs instead of calling POSIX directly, so the storage
// layer itself can be fault-injected and crash-simulated in tests:
//
//   RealVfs    POSIX passthrough; the production implementation.
//   FaultVfs   memory-backed filesystem with a deterministic, seedable
//              fault schedule (ENOSPC, EIO, short writes) and simulated
//              power cuts that drop everything not yet fsync'd
//              (io/fault_vfs.hpp).
//
// The interface is deliberately narrow: whole-file reads, handle-based
// writes (truncate-create or append), fsync, rename, unlink, truncate,
// directory create/list/fsync. That is exactly the vocabulary the
// durability code uses, and a small surface keeps the fault model honest —
// there is no way to sneak a byte to disk around the schedule.
//
// Durability contract (shared by RealVfs and the FaultVfs crash model):
//   - written data is volatile until fsync(handle);
//   - a newly created file's directory entry — and any rename or unlink —
//     is volatile until fsync_dir(parent);
//   - write() may be short; use write_all() to resume.
// write_file_atomic() below packages the full discipline (tmp + fsync +
// rename + parent fsync): after it returns, a crash at any point yields
// either the old file or the new one, never a torn or missing entry.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace cstuner::io {

/// Typed failure cause, so callers can map storage failures to their own
/// degraded modes without parsing message strings.
enum class VfsErrc {
  kNoSpace,   ///< ENOSPC: the disk is full
  kIoError,   ///< EIO or any other unrecoverable device error
  kNotFound,  ///< missing file or directory
  kPowerCut,  ///< simulated power cut: the machine is "off" (FaultVfs only)
};

const char* vfs_errc_name(VfsErrc code);

/// Every Vfs failure is a VfsError; the code distinguishes degradable
/// conditions (disk full) from bugs (missing file where one must exist).
class VfsError : public Error {
 public:
  VfsError(VfsErrc code, const std::string& what)
      : Error(what), code_(code) {}
  VfsErrc code() const { return code_; }

 private:
  VfsErrc code_;
};

/// Thrown by FaultVfs for every operation after the scheduled cut point:
/// the simulated machine has lost power. FaultVfs::restart() "reboots" it.
class PowerCutError : public VfsError {
 public:
  explicit PowerCutError(const std::string& what)
      : VfsError(VfsErrc::kPowerCut, what) {}
};

class Vfs {
 public:
  /// Opaque file handle; valid until close(). Only writing handles exist —
  /// reads are whole-file, which is how all durability code consumes them.
  using Handle = int;

  enum class OpenMode {
    kTruncate,  ///< create or truncate to empty
    kAppend,    ///< create if missing, append at the end
  };

  virtual ~Vfs() = default;

  // --- Whole-file / namespace operations ---------------------------------
  virtual std::string read_file(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  /// Names (not paths) of the entries directly inside `path`, sorted.
  virtual std::vector<std::string> list_dir(const std::string& path) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  /// Missing files are tolerated (remove-if-present semantics).
  virtual void unlink(const std::string& path) = 0;
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;
  /// Persists directory-entry metadata: file creations, renames and
  /// unlinks inside `path` survive a crash only after this returns.
  virtual void fsync_dir(const std::string& path) = 0;
  /// Best-effort copy for snapshot fallbacks (RealVfs hard-links when the
  /// filesystem allows). Not fsync'd: losing the copy only narrows
  /// recovery, never correctness.
  virtual void copy_file(const std::string& from, const std::string& to) = 0;

  // --- Handle operations --------------------------------------------------
  virtual Handle open(const std::string& path, OpenMode mode) = 0;
  /// Writes up to `size` bytes; may be short. Throws VfsError on failure.
  virtual std::size_t write(Handle handle, const char* data,
                            std::size_t size) = 0;
  virtual void fsync(Handle handle) = 0;
  virtual void close(Handle handle) = 0;

  // --- Helpers built on the primitives ------------------------------------
  /// Writes the whole buffer, resuming across short writes.
  void write_all(Handle handle, std::string_view data);
  /// Writes `data` to `path` (truncating) and fsyncs before closing.
  void write_file_synced(const std::string& path, const std::string& data);

  /// The process-wide RealVfs.
  static Vfs& real();
};

/// Durably publishes `data` at `path`: write `path`.tmp, fsync it, rename
/// over `path`, then fsync the parent directory so the rename itself is on
/// the platter (without the parent fsync POSIX does not guarantee the new
/// entry survives a power cut). Readers see the old file or the new one,
/// never a torn write — checkpoint snapshots, session manifests/results and
/// the warm store all publish through this.
void write_file_atomic(Vfs& vfs, const std::string& path,
                       const std::string& data);

/// The directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path);

}  // namespace cstuner::io
