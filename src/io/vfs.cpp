#include "io/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"

namespace cstuner::io {

namespace fs = std::filesystem;

const char* vfs_errc_name(VfsErrc code) {
  switch (code) {
    case VfsErrc::kNoSpace:
      return "no_space";
    case VfsErrc::kIoError:
      return "io_error";
    case VfsErrc::kNotFound:
      return "not_found";
    case VfsErrc::kPowerCut:
      return "power_cut";
  }
  return "unknown";
}

namespace {

VfsErrc errc_from_errno(int err) {
  switch (err) {
    case ENOSPC:
    case EDQUOT:
      return VfsErrc::kNoSpace;
    case ENOENT:
      return VfsErrc::kNotFound;
    default:
      return VfsErrc::kIoError;
  }
}

[[noreturn]] void fail(int err, const std::string& what) {
  throw VfsError(errc_from_errno(err), what + ": " + std::strerror(err));
}

/// POSIX passthrough. Handles are raw file descriptors.
class RealVfs final : public Vfs {
 public:
  std::string read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw VfsError(VfsErrc::kNotFound, "cannot read " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) throw VfsError(VfsErrc::kIoError, "read failed: " + path);
    return text.str();
  }

  bool exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  void mkdirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      throw VfsError(VfsErrc::kIoError, "cannot create directory " + path);
    }
  }

  std::vector<std::string> list_dir(const std::string& path) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (fs::directory_iterator it(path, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) throw VfsError(VfsErrc::kIoError, "cannot list " + path);
    std::sort(names.begin(), names.end());
    return names;
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      fail(errno, "cannot rename " + from + " -> " + to);
    }
  }

  void unlink(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      fail(errno, "cannot unlink " + path);
    }
  }

  void truncate(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      fail(errno, "cannot truncate " + path);
    }
  }

  void fsync_dir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) fail(errno, "cannot open directory " + path);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    // Some filesystems refuse directory fsync (EINVAL); the rename is then
    // only as durable as the filesystem's own journaling — nothing better
    // is available, so that is not an error.
    if (rc != 0 && err != EINVAL && err != EROFS) {
      fail(err, "fsync failed on directory " + path);
    }
    CSTUNER_OBS_COUNT("io.fsyncs", 1);
  }

  void copy_file(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::remove(to, ec);
    ec.clear();
    fs::create_hard_link(from, to, ec);
    if (ec) {
      ec.clear();
      fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
      // Best effort by contract: a lost copy only narrows recovery.
    }
  }

  Handle open(const std::string& path, OpenMode mode) override {
    const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                      (mode == OpenMode::kAppend ? O_APPEND : O_TRUNC);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) fail(errno, "cannot open " + path);
    return fd;
  }

  std::size_t write(Handle handle, const char* data,
                    std::size_t size) override {
    for (;;) {
      const ssize_t n = ::write(handle, data, size);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      fail(errno, "write failed");
    }
  }

  void fsync(Handle handle) override {
    if (::fsync(handle) != 0) fail(errno, "fsync failed");
    CSTUNER_OBS_COUNT("io.fsyncs", 1);
  }

  void close(Handle handle) override {
    if (::close(handle) != 0) fail(errno, "close failed");
  }
};

}  // namespace

void Vfs::write_all(Handle handle, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    off += write(handle, data.data() + off, data.size() - off);
  }
}

void Vfs::write_file_synced(const std::string& path, const std::string& data) {
  const Handle handle = open(path, OpenMode::kTruncate);
  try {
    write_all(handle, data);
    fsync(handle);
  } catch (...) {
    try {
      close(handle);
    } catch (const VfsError&) {
      // The original failure is the interesting one.
    }
    throw;
  }
  close(handle);
}

Vfs& Vfs::real() {
  static RealVfs vfs;
  return vfs;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_file_atomic(Vfs& vfs, const std::string& path,
                       const std::string& data) {
  const std::string tmp = path + ".tmp";
  vfs.write_file_synced(tmp, data);
  vfs.rename(tmp, path);
  // The rename reached the directory, not the platter: sync the parent so
  // an immediate power cut cannot roll the publication back.
  vfs.fsync_dir(parent_dir(path));
}

}  // namespace cstuner::io
