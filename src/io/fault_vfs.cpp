#include "io/fault_vfs.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace cstuner::io {

namespace {

// Fault-draw categories. Each (seed, op index, category) triple yields an
// independent deterministic draw, so enabling one fault class never
// perturbs the schedule of another.
constexpr std::uint64_t kCatWriteError = 0;
constexpr std::uint64_t kCatReadError = 1;
constexpr std::uint64_t kCatFsyncError = 2;
constexpr std::uint64_t kCatShortWrite = 3;
constexpr std::uint64_t kCatShortLen = 4;
constexpr std::uint64_t kCatTornLen = 5;

bool is_root(const std::string& path) { return path == "." || path == "/"; }

}  // namespace

FaultVfs::FaultVfs(FaultSchedule schedule) : schedule_(schedule) {}

void FaultVfs::op_gate(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // documents that the caller holds the mutex
  ++stats_.ops;
  if (!cut_) {
    const std::int64_t armed = schedule_.power_cut_after_ops;
    if (armed >= 0 && static_cast<std::int64_t>(stats_.ops) > armed) {
      cut_ = true;
      ++stats_.power_cuts;
      CSTUNER_OBS_COUNT("io.power_cuts", 1);
    }
  }
  if (cut_) {
    throw PowerCutError("simulated power cut at op " +
                        std::to_string(stats_.ops));
  }
}

double FaultVfs::draw(std::uint64_t cat) const {
  return Rng(hash_combine(hash_combine(schedule_.seed, stats_.ops), cat))
      .uniform();
}

std::uint64_t FaultVfs::draw_u64(std::uint64_t cat) const {
  return Rng(hash_combine(hash_combine(schedule_.seed, stats_.ops), cat))
      .next();
}

void FaultVfs::maybe_inject(double rate, std::uint64_t cat, VfsErrc errc,
                            const std::string& what) {
  if (rate > 0.0 && draw(cat) < rate) {
    ++stats_.faults_injected;
    CSTUNER_OBS_COUNT("io.faults_injected", 1);
    throw VfsError(errc, what + " (injected " +
                             std::string(vfs_errc_name(errc)) + " at op " +
                             std::to_string(stats_.ops) + ")");
  }
}

FaultVfs::InodePtr& FaultVfs::live_inode(const std::string& path) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    throw VfsError(VfsErrc::kNotFound, "no such file: " + path);
  }
  return it->second;
}

std::string FaultVfs::read_file(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  maybe_inject(schedule_.read_error_rate, kCatReadError, VfsErrc::kIoError,
               "cannot read " + path);
  return live_inode(path)->live;
}

bool FaultVfs::exists(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  return is_root(path) || live_.count(path) != 0 || dirs_.count(path) != 0;
}

void FaultVfs::mkdirs(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  if (is_root(path)) return;
  // Register every component; directories are durable on creation (see the
  // header — the crash model targets file data and rename atomicity).
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? path : path.substr(0, pos);
    if (!prefix.empty() && !is_root(prefix)) dirs_.insert(prefix);
  }
}

std::vector<std::string> FaultVfs::list_dir(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  if (!is_root(path) && dirs_.count(path) == 0) {
    throw VfsError(VfsErrc::kNotFound, "no such directory: " + path);
  }
  const auto basename = [](const std::string& p) {
    const std::size_t slash = p.find_last_of('/');
    return slash == std::string::npos ? p : p.substr(slash + 1);
  };
  std::vector<std::string> names;
  for (const auto& [p, inode] : live_) {
    (void)inode;
    if (parent_dir(p) == path) names.push_back(basename(p));
  }
  for (const auto& d : dirs_) {
    if (parent_dir(d) == path) names.push_back(basename(d));
  }
  std::sort(names.begin(), names.end());
  return names;
}

void FaultVfs::rename(const std::string& from, const std::string& to) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  auto it = live_.find(from);
  if (it == live_.end()) {
    throw VfsError(VfsErrc::kNotFound, "cannot rename " + from + ": missing");
  }
  // Live namespace only — the durable namespace catches up at
  // fsync_dir(parent), which is what makes torn renames possible.
  live_[to] = it->second;
  live_.erase(from);
}

void FaultVfs::unlink(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  live_.erase(path);
}

void FaultVfs::truncate(const std::string& path, std::uint64_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  live_inode(path)->live.resize(static_cast<std::size_t>(size), '\0');
}

void FaultVfs::fsync_dir(const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  ++stats_.fsyncs;
  CSTUNER_OBS_COUNT("io.fsyncs", 1);
  maybe_inject(schedule_.fsync_error_rate, kCatFsyncError, VfsErrc::kIoError,
               "fsync failed on directory " + path);
  // Commit this directory's namespace: durable entries under `path` become
  // exactly the live entries under `path`. Data durability is separate —
  // an entry-durable file with unsynced data recovers to a torn prefix.
  for (auto it = disk_.begin(); it != disk_.end();) {
    if (parent_dir(it->first) == path) {
      it = disk_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [p, inode] : live_) {
    if (parent_dir(p) == path) disk_[p] = inode;
  }
}

void FaultVfs::copy_file(const std::string& from, const std::string& to) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  auto it = live_.find(from);
  if (it == live_.end()) return;  // best effort, by contract
  auto inode = std::make_shared<Inode>();
  inode->live = it->second->live;
  live_[to] = std::move(inode);  // volatile: neither entry nor data synced
}

Vfs::Handle FaultVfs::open(const std::string& path, OpenMode mode) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  const std::string parent = parent_dir(path);
  if (!is_root(parent) && dirs_.count(parent) == 0) {
    throw VfsError(VfsErrc::kNotFound, "no such directory: " + parent);
  }
  auto it = live_.find(path);
  InodePtr inode;
  if (it != live_.end()) {
    // Same inode as on a real filesystem: an O_TRUNC open clears the page
    // cache view but the previously fsync'd image survives a crash until
    // the next fsync(handle) commits the new content.
    inode = it->second;
    if (mode == OpenMode::kTruncate) inode->live.clear();
  } else {
    inode = std::make_shared<Inode>();
    live_[path] = inode;
  }
  const Handle handle = next_handle_++;
  handles_[handle] = std::move(inode);
  return handle;
}

std::size_t FaultVfs::write(Handle handle, const char* data,
                            std::size_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    throw VfsError(VfsErrc::kIoError, "write on stale handle");
  }
  maybe_inject(schedule_.write_error_rate, kCatWriteError, VfsErrc::kNoSpace,
               "write failed");
  std::size_t n = size;
  if (size > 1 && schedule_.short_write_rate > 0.0 &&
      draw(kCatShortWrite) < schedule_.short_write_rate) {
    n = 1 + static_cast<std::size_t>(draw_u64(kCatShortLen) % (size - 1));
    ++stats_.short_writes;
    CSTUNER_OBS_COUNT("io.short_writes", 1);
  }
  it->second->live.append(data, n);
  return n;
}

void FaultVfs::fsync(Handle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    throw VfsError(VfsErrc::kIoError, "fsync on stale handle");
  }
  ++stats_.fsyncs;
  CSTUNER_OBS_COUNT("io.fsyncs", 1);
  maybe_inject(schedule_.fsync_error_rate, kCatFsyncError, VfsErrc::kIoError,
               "fsync failed");
  it->second->disk = it->second->live;
  it->second->disk_valid = true;
}

void FaultVfs::close(Handle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  op_gate(lock);
  if (handles_.erase(handle) == 0) {
    throw VfsError(VfsErrc::kIoError, "close on stale handle");
  }
}

void FaultVfs::arm_power_cut(std::int64_t after_ops) {
  std::unique_lock<std::mutex> lock(mutex_);
  schedule_.power_cut_after_ops = after_ops;
}

bool FaultVfs::cut() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cut_;
}

void FaultVfs::restart() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Account for what the cut destroyed before rebuilding the live view.
  std::set<const Inode*> durable;
  for (const auto& [p, inode] : disk_) {
    (void)p;
    durable.insert(inode.get());
  }
  for (const auto& [p, inode] : live_) {
    auto it = disk_.find(p);
    if (it == disk_.end() || it->second != inode) {
      ++stats_.renames_dropped;
      CSTUNER_OBS_COUNT("io.torn_renames_survived", 1);
    }
    if (durable.count(inode.get()) == 0) ++stats_.files_dropped;
  }
  // The machine reboots onto exactly the durable state: durable entries
  // only; files whose data was never fsync'd come back as a deterministic
  // torn prefix of whatever the page cache held.
  std::map<std::string, InodePtr> recovered;
  for (const auto& [p, inode] : disk_) {
    auto fresh = std::make_shared<Inode>();
    if (inode->disk_valid) {
      fresh->live = inode->disk;
    } else {
      const std::uint64_t len =
          Rng(hash_combine(hash_combine(schedule_.seed,
                                        fnv1a(p.data(), p.size())),
                           kCatTornLen))
              .bounded(inode->live.size() + 1);
      fresh->live = inode->live.substr(0, static_cast<std::size_t>(len));
      ++stats_.torn_files;
    }
    fresh->disk = fresh->live;
    fresh->disk_valid = true;
    recovered[p] = std::move(fresh);
  }
  live_ = recovered;
  disk_ = std::move(recovered);
  handles_.clear();
  cut_ = false;
  schedule_.power_cut_after_ops = -1;  // recovery runs without a second cut
}

std::uint64_t FaultVfs::op_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_.ops;
}

FaultVfsStats FaultVfs::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cstuner::io
