#include "exec/cpu_executor.hpp"

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::exec {

using namespace space;
using stencil::Grid3;
using stencil::StencilSpec;

namespace {

struct DimPlan {
  std::int64_t tb = 1;        ///< threads
  std::int64_t cm = 1;        ///< cyclic merge factor
  std::int64_t bm = 1;        ///< block merge factor
  std::int64_t coverage = 1;  ///< points covered per block
  std::int64_t blocks = 1;
  bool is_stream = false;
  std::int64_t sb = 1;  ///< streaming tile length (stream dim only)
};

/// Per-dimension decomposition mirroring codegen::compute_launch_geometry.
std::array<DimPlan, 3> make_plan(const StencilSpec& spec,
                                 const Setting& setting) {
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const bool streaming = setting.flag(kUseStreaming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  std::array<DimPlan, 3> plan;
  for (int d = 0; d < 3; ++d) {
    DimPlan& p = plan[static_cast<std::size_t>(d)];
    const std::int64_t extent = spec.grid[static_cast<std::size_t>(d)];
    p.tb = setting.get(tb[d]);
    p.cm = setting.get(cm[d]);
    p.bm = setting.get(bm[d]);
    if (streaming && d == sd) {
      p.is_stream = true;
      p.sb = setting.get(kSB);
      p.coverage = p.sb;
    } else {
      p.coverage = p.tb * p.cm * p.bm;
    }
    p.blocks = ceil_div<std::int64_t>(extent, p.coverage);
  }
  return plan;
}

}  // namespace

void run_tiled(const StencilSpec& spec, const Setting& setting,
               const std::vector<Grid3>& inputs, std::vector<Grid3>& outputs,
               const ExecOptions& options) {
  CSTUNER_CHECK(static_cast<int>(inputs.size()) == spec.n_inputs);
  CSTUNER_CHECK(static_cast<int>(outputs.size()) == spec.n_outputs);
  const auto plan = make_plan(spec, setting);
  const std::int64_t total_blocks =
      plan[0].blocks * plan[1].blocks * plan[2].blocks;

  // One thread block: iterate its threads and each thread's merged points.
  auto run_block = [&](std::int64_t bx, std::int64_t by, std::int64_t bz) {
    const std::int64_t block_idx[3] = {bx, by, bz};
    // Enumerate the points one thread computes along one dimension:
    // cyclic chunks of (tb*bm), block-merged runs of bm inside each.
    auto thread_points = [&](int d, std::int64_t thread_idx,
                             std::vector<std::int64_t>& out_coords) {
      const DimPlan& p = plan[static_cast<std::size_t>(d)];
      const std::int64_t base = block_idx[d] * p.coverage;
      const std::int64_t extent = spec.grid[static_cast<std::size_t>(d)];
      out_coords.clear();
      if (p.is_stream) {
        // The whole block streams the SB tile; thread index is 1 here
        // (constraints force TB=CM=BM=1 along the streaming dimension).
        for (std::int64_t s = 0; s < p.sb; ++s) {
          const std::int64_t g = base + s;
          if (g < extent) out_coords.push_back(g);
        }
        return;
      }
      for (std::int64_t c = 0; c < p.cm; ++c) {
        for (std::int64_t b = 0; b < p.bm; ++b) {
          const std::int64_t g =
              base + c * (p.tb * p.bm) + thread_idx * p.bm + b;
          if (g < extent) out_coords.push_back(g);
        }
      }
    };

    std::vector<std::int64_t> xs, ys, zs;
    for (std::int64_t tz = 0; tz < plan[2].tb; ++tz) {
      for (std::int64_t ty = 0; ty < plan[1].tb; ++ty) {
        for (std::int64_t tx = 0; tx < plan[0].tb; ++tx) {
          thread_points(0, tx, xs);
          thread_points(1, ty, ys);
          thread_points(2, tz, zs);
          for (std::int64_t gz : zs) {
            for (std::int64_t gy : ys) {
              for (std::int64_t gx : xs) {
                for (int o = 0; o < spec.n_outputs; ++o) {
                  outputs[static_cast<std::size_t>(o)].at(
                      static_cast<int>(gx), static_cast<int>(gy),
                      static_cast<int>(gz)) =
                      stencil::stencil_point(spec, inputs, o,
                                             static_cast<int>(gx),
                                             static_cast<int>(gy),
                                             static_cast<int>(gz));
                }
              }
            }
          }
        }
      }
    }
  };

  auto block_coords = [&](std::int64_t linear, std::int64_t& bx,
                          std::int64_t& by, std::int64_t& bz) {
    bx = linear % plan[0].blocks;
    by = (linear / plan[0].blocks) % plan[1].blocks;
    bz = linear / (plan[0].blocks * plan[1].blocks);
  };

  const int workers = std::max(1, options.n_threads);
  if (workers == 1) {
    for (std::int64_t blk = 0; blk < total_blocks; ++blk) {
      std::int64_t bx, by, bz;
      block_coords(blk, bx, by, bz);
      run_block(bx, by, bz);
    }
    return;
  }
  // Blocks write disjoint output points, so they parallelize freely.
  std::atomic<std::int64_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::int64_t blk = next.fetch_add(1);
        if (blk >= total_blocks) return;
        std::int64_t bx, by, bz;
        block_coords(blk, bx, by, bz);
        run_block(bx, by, bz);
      }
    });
  }
  for (auto& t : pool) t.join();
}

void run_tiled_steps(const StencilSpec& spec, const Setting& setting,
                     stencil::GridSet& grids, int steps,
                     const ExecOptions& options) {
  CSTUNER_CHECK_MSG(spec.n_inputs == 1 && spec.n_outputs == 1,
                    "temporal stepping needs a single in/out grid pair");
  CSTUNER_CHECK(steps >= 1);
  std::vector<Grid3> current = {grids.inputs[0]};
  for (int t = 0; t < steps; ++t) {
    run_tiled(spec, setting, current, grids.outputs, options);
    if (t + 1 < steps) {
      stencil::copy_interior(grids.outputs[0], current[0]);
    }
  }
}

double max_divergence_from_reference_steps(const StencilSpec& spec,
                                           const Setting& setting,
                                           int steps) {
  auto tiled_grids = stencil::make_grids(spec);
  auto reference_grids = stencil::make_grids(spec);
  stencil::run_reference_steps(spec, reference_grids, steps);
  run_tiled_steps(spec, setting, tiled_grids, steps);
  return Grid3::max_abs_diff(reference_grids.outputs[0],
                             tiled_grids.outputs[0]);
}

double max_divergence_from_reference(const StencilSpec& spec,
                                     const Setting& setting) {
  auto grids = stencil::make_grids(spec);
  std::vector<Grid3> expected;
  for (int o = 0; o < spec.n_outputs; ++o) {
    expected.emplace_back(spec.grid[0], spec.grid[1], spec.grid[2], 0);
  }
  stencil::run_reference(spec, grids.inputs, expected);
  run_tiled(spec, setting, grids.inputs, grids.outputs);
  double worst = 0.0;
  for (int o = 0; o < spec.n_outputs; ++o) {
    worst = std::max(worst, Grid3::max_abs_diff(
                                expected[static_cast<std::size_t>(o)],
                                grids.outputs[static_cast<std::size_t>(o)]));
  }
  return worst;
}

}  // namespace cstuner::exec
